package energymis

// Dynamic-workload benchmarks (experiment D1/D2 of cmd/sweep): repair cost
// under churn vs. re-running the static algorithm after every update. The
// headline metric is awake/update — total node-awake-rounds per update —
// which is where the sleeping model's locality pays off.

import (
	"fmt"
	"testing"
)

func benchChurn(b *testing.B, n, updates int, repair RepairAlgo) {
	g := GNP(n, 8.0/float64(n), uint64(n))
	trace := ChurnStream(g, updates, 1, 7)
	var st DynamicStats
	for i := 0; i < b.N; i++ {
		d, err := NewDynamic(g, Luby, DynamicOptions{Seed: uint64(i) + 1, Repair: repair})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		st = d.Stats()
	}
	up := float64(st.Updates)
	b.ReportMetric(float64(st.AwakeTotal)/up, "awake/update")
	b.ReportMetric(float64(st.WokenTotal)/up, "woken/update")
	b.ReportMetric(float64(st.Messages)/up, "msgs/update")
	b.ReportMetric(float64(st.MaxRegion), "maxRegion")
}

// BenchmarkDynamicChurn measures localized repair under uniform churn.
func BenchmarkDynamicChurn(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, repair := range []RepairAlgo{RepairLuby, RepairGhaffari} {
			b.Run(fmt.Sprintf("n=%d/repair=%v", n, repair), func(b *testing.B) {
				benchChurn(b, n, 200, repair)
			})
		}
	}
}

// BenchmarkStaticRecompute measures the alternative the repair engine
// replaces: a full static run per update (one run per iteration; its
// awake/update is the per-update cost of recomputing from scratch).
func BenchmarkStaticRecompute(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := GNP(n, 8.0/float64(n), uint64(n))
			var awake int64
			for i := 0; i < b.N; i++ {
				res, err := Run(g, Luby, Options{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				awake = 0
				for _, a := range res.AwakePerNode {
					awake += a
				}
			}
			b.ReportMetric(float64(awake), "awake/update")
		})
	}
}

// BenchmarkDynamicHubAttack measures repair under the adversarial stream.
func BenchmarkDynamicHubAttack(b *testing.B) {
	g := BarabasiAlbert(5000, 4, 3)
	trace := HubAttackStream(g, 100, 5)
	var st DynamicStats
	for i := 0; i < b.N; i++ {
		d, err := NewDynamic(g, Luby, DynamicOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		st = d.Stats()
	}
	b.ReportMetric(float64(st.AwakeTotal)/float64(st.Batches), "awake/batch")
	b.ReportMetric(float64(st.MaxRegion), "maxRegion")
	b.ReportMetric(float64(st.Evictions), "evictions")
}
