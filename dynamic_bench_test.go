package energymis_test

// Dynamic-workload benchmarks (experiment D1/D2 of cmd/sweep): repair cost
// under churn vs. re-running the static algorithm after every update. The
// headline metric is awake/update — total node-awake-rounds per update —
// which is where the sleeping model's locality pays off. Metrics flow
// through internal/bench so these report exactly what the cmd/bench
// dynamic suite records in BENCH_MIS.json.

import (
	"fmt"
	"testing"

	energymis "github.com/energymis/energymis"
	"github.com/energymis/energymis/internal/bench"
)

func reportDynamic(b *testing.B, m bench.Metrics) {
	b.Helper()
	b.ReportMetric(m.Extra["awake_update"], "awake/update")
	b.ReportMetric(m.Extra["max_region"], "maxRegion")
	if up := m.Extra["updates"]; up > 0 {
		b.ReportMetric(m.Extra["woken_total"]/up, "woken/update")
	}
	if m.AwakeTotal > 0 && b.N > 0 {
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(perOp/float64(m.AwakeTotal), "ns/awake-node-round")
	}
}

func benchChurn(b *testing.B, n, updates int, repair energymis.RepairAlgo) {
	g := energymis.GNP(n, 8.0/float64(n), uint64(n))
	trace := energymis.ChurnStream(g, updates, 1, 7)
	var m bench.Metrics
	for i := 0; i < b.N; i++ {
		d, err := energymis.NewDynamic(g, energymis.Luby, energymis.DynamicOptions{Seed: uint64(i) + 1, Repair: repair})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		m = bench.FromDynamicStats(d.Stats(), d.MISSize(), d.AwakePerNode())
	}
	reportDynamic(b, m)
}

// BenchmarkDynamicChurn measures localized repair under uniform churn.
func BenchmarkDynamicChurn(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, repair := range []energymis.RepairAlgo{energymis.RepairLuby, energymis.RepairGhaffari} {
			b.Run(fmt.Sprintf("n=%d/repair=%v", n, repair), func(b *testing.B) {
				benchChurn(b, n, 200, repair)
			})
		}
	}
}

// BenchmarkStaticRecompute measures the alternative the repair engine
// replaces: a full static run per update (one run per iteration; its
// awake/update is the per-update cost of recomputing from scratch).
func BenchmarkStaticRecompute(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := energymis.GNP(n, 8.0/float64(n), uint64(n))
			var awake int64
			for i := 0; i < b.N; i++ {
				res, err := energymis.Run(g, energymis.Luby, energymis.Options{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				awake = res.AwakeTotal
			}
			b.ReportMetric(float64(awake), "awake/update")
		})
	}
}

// BenchmarkDynamicHubAttack measures repair under the adversarial stream.
func BenchmarkDynamicHubAttack(b *testing.B) {
	g := energymis.BarabasiAlbert(5000, 4, 3)
	trace := energymis.HubAttackStream(g, 100, 5)
	var m bench.Metrics
	var batches, awakeRepairs float64
	for i := 0; i < b.N; i++ {
		d, err := energymis.NewDynamic(g, energymis.Luby, energymis.DynamicOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		st := d.Stats()
		batches = float64(st.Batches)
		awakeRepairs = float64(st.AwakeTotal)
		m = bench.FromDynamicStats(st, d.MISSize(), d.AwakePerNode())
	}
	b.ReportMetric(awakeRepairs/batches, "awake/batch")
	b.ReportMetric(m.Extra["max_region"], "maxRegion")
	b.ReportMetric(m.Extra["evictions"], "evictions")
}
