package energymis

import (
	"fmt"
	"strconv"

	"github.com/energymis/energymis/internal/core"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// Mem is a pool of reusable simulation-engine buffers. Passing one Mem to
// many runs (Options.Mem) amortizes all engine allocations across them:
// every phase of every run executes against the warm pool, so steady-state
// runs allocate ≈nothing in the engine. Results are byte-identical to runs
// without a pool. A Mem must not be shared by concurrent runs — use one
// per worker.
type Mem = sim.Mem

// NewMem returns an empty engine buffer pool (see Mem).
func NewMem() *Mem { return sim.NewMem() }

// Graph is an immutable undirected simple graph in CSR form. Construct one
// with NewBuilder or the generators (GNP, RGG, ...).
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes from an edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// Algorithm selects the MIS algorithm to run.
type Algorithm int

// Available algorithms.
const (
	// Luby is the classic randomized MIS baseline [Lub86, ABI86]:
	// O(log n) rounds, but every node stays awake until decided, so the
	// energy complexity equals the time complexity.
	Luby Algorithm = iota + 1
	// Algorithm1 is the paper's Theorem 1.1: O(log² n) rounds with only
	// O(log log n) awake rounds per node.
	Algorithm1
	// Algorithm2 is the paper's Theorem 1.2: O(log n·log log n·log* n)
	// rounds with O(log² log n) awake rounds per node.
	Algorithm2
	// Algorithm1Avg augments Algorithm1 with the Section 4 pipeline for
	// O(1) node-averaged energy.
	Algorithm1Avg
	// Algorithm2Avg augments Algorithm2 likewise.
	Algorithm2Avg
	// RegularizedLuby is the slowed-down Luby variant of Section 2.1 run
	// in its basic form (no one-shot marking): a second baseline showing
	// the energy blow-up Phase I's modifications remove.
	RegularizedLuby
)

// String implements fmt.Stringer.
func (a Algorithm) String() string { return a.toCore().String() }

func (a Algorithm) toCore() core.Algorithm {
	switch a {
	case Luby:
		return core.Luby
	case Algorithm1:
		return core.Algorithm1
	case Algorithm2:
		return core.Algorithm2
	case Algorithm1Avg:
		return core.Algorithm1Avg
	case Algorithm2Avg:
		return core.Algorithm2Avg
	case RegularizedLuby:
		return core.RegularizedLuby
	default:
		return core.Algorithm(0)
	}
}

// Algorithms lists every supported algorithm, baselines first.
func Algorithms() []Algorithm {
	return []Algorithm{Luby, RegularizedLuby, Algorithm1, Algorithm2, Algorithm1Avg, Algorithm2Avg}
}

// Options configures a run. The zero value is valid: seed 0, sequential
// execution, the default CONGEST budget B = 4·ceil(log2 n) bits, and the
// paper-faithful parameter profile.
type Options struct {
	// Seed drives all randomness; identical (graph, algorithm, Seed)
	// runs produce identical outputs and measurements.
	Seed uint64
	// Workers > 1 executes each round's awake nodes on a worker pool.
	// Results are identical to the sequential executor.
	Workers int
	// B overrides the CONGEST message budget in bits (0 = default).
	B int
	// Mem supplies a pooled engine-buffer set reused across runs (see
	// Mem/NewMem). Nil allocates per run.
	Mem *Mem
	// TracePath, when non-empty, streams a versioned JSONL run trace to
	// the given file: a header with environment metadata, one record per
	// executed round (awake count, message/bit deltas, wall time), phase
	// spans, and a closing summary written from the Result. Traces are
	// deterministic in (graph, algorithm, Seed) up to wall-time fields
	// and are analyzed with cmd/mistrace; see docs/OBSERVABILITY.md.
	// Tracing is off (and free) when empty.
	TracePath string
	// Advanced exposes each phase's constants; nil uses defaults.
	Advanced *core.Options
}

func (o Options) toCore() core.Options {
	opts := core.DefaultOptions()
	if o.Advanced != nil {
		opts = *o.Advanced
	}
	opts.Seed = o.Seed
	opts.Workers = o.Workers
	opts.B = o.B
	if o.Mem != nil {
		opts.Mem = o.Mem
	}
	return opts
}

// PhaseStats reports one phase's contribution to a composed run.
type PhaseStats struct {
	Name     string
	Rounds   int
	MaxAwake int
	AvgAwake float64
	Messages int64
}

// Result reports a run's output and measured complexity.
type Result struct {
	Algorithm Algorithm
	// InSet[v] reports whether node v is in the computed MIS.
	InSet []bool

	// Rounds is the time complexity: total synchronous rounds.
	Rounds int
	// MaxAwake is the energy complexity: the maximum number of awake
	// rounds over all nodes.
	MaxAwake int
	// AvgAwake is the node-averaged energy.
	AvgAwake float64
	// P99Awake is the 99th percentile of per-node awake rounds.
	P99Awake int

	// AwakeTotal is the total awake node-rounds over the run — the
	// denominator of the benchmark harness's ns/awake-node-round metric.
	AwakeTotal int64

	// AwakePerNode is each node's total awake rounds — the per-node
	// energy spend (e.g. for battery-lifetime analyses).
	AwakePerNode []int64

	Messages int64 // CONGEST messages sent
	// MessagesDropped counts messages whose receiver was asleep.
	MessagesDropped int64
	// BitsTotal is the sum of declared message sizes over the run.
	BitsTotal int64
	BitsMax   int // largest single message, in bits
	// CongestViolations counts messages exceeding the model budget
	// (always 0 for the shipped algorithms).
	CongestViolations int64

	Phases []PhaseStats
	// Diag carries structural diagnostics (residual degrees, component
	// sizes, spanning-tree depth, retries).
	Diag core.PhaseDiag
}

// MISSize returns the number of nodes in the computed set.
func (r *Result) MISSize() int { return verify.Count(r.InSet) }

// Run executes the selected algorithm on g.
func Run(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	ca := algo.toCore()
	if ca == 0 {
		return nil, fmt.Errorf("energymis: unknown algorithm %d", int(algo))
	}
	copts := opts.toCore()
	var tw *obs.TraceWriter
	if opts.TracePath != "" {
		var err error
		tw, err = obs.CreateTrace(opts.TracePath, map[string]string{
			"algorithm": ca.String(),
			"n":         strconv.Itoa(g.N()),
			"m":         strconv.Itoa(g.M()),
			"seed":      strconv.FormatUint(opts.Seed, 10),
			"workers":   strconv.Itoa(opts.Workers),
		})
		if err != nil {
			return nil, err
		}
		copts.Tracer = obs.Multi(copts.Tracer, tw)
	}
	cres, err := core.Run(g, ca, copts)
	if err != nil {
		if tw != nil {
			tw.Close()
		}
		return nil, err
	}
	res := fromCore(algo, cres)
	if tw != nil {
		// The summary comes from the Result's own accounting, so the
		// trace's streamed counters can be checked against it
		// (mistrace check / obs.CheckTrace).
		s := cres.Summary
		tw.Summary(obs.SummaryStats{
			Rounds: s.Rounds, MaxAwake: s.MaxAwake, AvgAwake: s.AvgAwake,
			P99Awake: s.P99Awake, AwakeTotal: s.AwakeTotal,
			MsgsSent: s.MsgsSent, MsgsDropped: s.MsgsDropped,
			BitsTotal: s.BitsTotal, BitsMax: s.BitsMax,
			Violations: s.Violations, MISSize: res.MISSize(),
		})
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("energymis: writing trace %s: %w", opts.TracePath, err)
		}
	}
	return res, nil
}

// RunVerified runs the algorithm and additionally checks that the output
// is a maximal independent set of g.
func RunVerified(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	res, err := Run(g, algo, opts)
	if err != nil {
		return nil, err
	}
	if err := Check(g, res.InSet); err != nil {
		return nil, err
	}
	return res, nil
}

func fromCore(algo Algorithm, cres *core.Result) *Result {
	r := &Result{
		Algorithm:         algo,
		InSet:             cres.InSet,
		Rounds:            cres.Summary.Rounds,
		MaxAwake:          cres.Summary.MaxAwake,
		AvgAwake:          cres.Summary.AvgAwake,
		P99Awake:          cres.Summary.P99Awake,
		AwakeTotal:        cres.Summary.AwakeTotal,
		AwakePerNode:      cres.AwakePerNode,
		Messages:          cres.Summary.MsgsSent,
		MessagesDropped:   cres.Summary.MsgsDropped,
		BitsTotal:         cres.Summary.BitsTotal,
		BitsMax:           cres.Summary.BitsMax,
		CongestViolations: cres.Summary.Violations,
		Diag:              cres.Diag,
	}
	for _, p := range cres.Summary.Phases {
		r.Phases = append(r.Phases, PhaseStats{
			Name:     p.Name,
			Rounds:   p.Rounds,
			MaxAwake: p.MaxAwake,
			AvgAwake: p.AvgAwake,
			Messages: p.MsgsSent,
		})
	}
	return r
}

// Check validates that inSet is a maximal independent set of g.
func Check(g *Graph, inSet []bool) error { return verify.Check(g, inSet) }

// GreedyMIS computes a sequential maximal independent set (the
// verification oracle; not a distributed algorithm).
func GreedyMIS(g *Graph) []bool { return verify.GreedyMIS(g) }
