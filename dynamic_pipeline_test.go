package energymis

// Public-surface acceptance for DynamicOptions.Pipeline: the overlapped
// ApplyBatch schedule must reproduce the serial windowed schedule exactly
// (set, energy ledger, lifetime stats, aggregate batch stats), report its
// overlap in Perf, and stream a trace whose summary carries the dynamic
// counters and still satisfies the conservation check.

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/obs"
)

func TestDynamicPipelineMatchesSerial(t *testing.T) {
	g := GNP(500, 12.0/500, 17)
	updates := FlattenStream(ChurnStream(g, 40, 16, 23))

	run := func(pipeline bool) (*DynamicMIS, BatchStats) {
		d, err := NewDynamicFrom(g, GreedyMIS(g),
			DynamicOptions{Seed: 5, Window: 32, Workers: 2, Pipeline: pipeline})
		if err != nil {
			t.Fatal(err)
		}
		bs, err := d.ApplyBatch(updates)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
		return d, bs
	}

	serial, serialBS := run(false)
	pipe, pipeBS := run(true)

	if pipeBS != serialBS {
		t.Errorf("aggregate BatchStats diverge:\n serial:    %+v\n pipelined: %+v", serialBS, pipeBS)
	}
	if !reflect.DeepEqual(pipe.InSet(), serial.InSet()) {
		t.Error("final set differs between pipelined and serial ApplyBatch")
	}
	if !reflect.DeepEqual(pipe.AwakePerNode(), serial.AwakePerNode()) {
		t.Error("awake ledger differs between pipelined and serial ApplyBatch")
	}
	if pipe.Stats() != serial.Stats() {
		t.Errorf("Stats diverge:\n serial:    %+v\n pipelined: %+v", serial.Stats(), pipe.Stats())
	}
	if perf := pipe.Perf(); perf.OverlapWindows == 0 {
		t.Error("pipelined run reports zero overlapped windows")
	} else if perf.SweepWords == 0 || perf.PackBuilds == 0 {
		t.Errorf("sweep/pack counters not populated: %+v", perf)
	}
	if serial.Perf().OverlapWindows != 0 {
		t.Error("serial run reports overlapped windows")
	}
}

func TestDynamicPipelineTraceSummary(t *testing.T) {
	g := GNP(400, 10.0/400, 11)
	path := filepath.Join(t.TempDir(), "pipe.jsonl")
	d, err := NewDynamicFrom(g, GreedyMIS(g),
		DynamicOptions{Seed: 7, Window: 16, Pipeline: true, TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(FlattenStream(ChurnStream(g, 20, 16, 29))); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.CheckTrace(tr); len(problems) > 0 {
		t.Fatalf("trace conservation problems: %v", problems)
	}
	sum := tr.Summary()
	if sum == nil {
		t.Fatal("trace has no summary record")
	}
	st, perf := d.Stats(), d.Perf()
	if sum.Components != st.Components || sum.MaxComponents != st.MaxComponents {
		t.Errorf("summary components %d/%d, engine %d/%d",
			sum.Components, sum.MaxComponents, st.Components, st.MaxComponents)
	}
	if sum.SweepWords != perf.SweepWords || sum.PackBuilds != perf.PackBuilds ||
		sum.PackHits != perf.PackHits || sum.OverlapWindows != perf.OverlapWindows {
		t.Errorf("summary perf fields %+v do not match engine perf %+v", sum, perf)
	}
	if sum.OverlapWindows == 0 || sum.Components == 0 {
		t.Errorf("dynamic summary fields not populated: %+v", sum)
	}
}
