package energymis

import "github.com/energymis/energymis/internal/graph"

// Graph generators. All are deterministic in their seed.

// GNP samples an Erdős–Rényi random graph G(n, p).
func GNP(n int, p float64, seed uint64) *Graph { return graph.GNP(n, p, seed) }

// RGG samples a random geometric graph with expected average degree
// avgDeg: n points uniform in the unit square, connected within the
// corresponding radius. This is the standard model for the sensor/wireless
// networks that motivate the energy measure.
func RGG(n int, avgDeg float64, seed uint64) *Graph { return graph.RGG(n, avgDeg, seed) }

// RandomGeometric samples a unit-disk graph with an explicit communication
// radius: n points uniform in the unit square, connected when within
// radius. Unlike RGG, which rescales the radius to hold expected degree
// constant, a fixed radius models sensors with fixed transmission range —
// degree grows with deployment density.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	return graph.RandomGeometric(n, radius, seed)
}

// RadiusForAvgDegree returns the RandomGeometric radius at which the
// expected average degree over n unit-square points is avgDeg.
func RadiusForAvgDegree(n int, avgDeg float64) float64 {
	return graph.RadiusForAvgDegree(n, avgDeg)
}

// BarabasiAlbert grows a preferential-attachment graph with m edges per
// new node (heavy-tailed degrees).
func BarabasiAlbert(n, m int, seed uint64) *Graph { return graph.BarabasiAlbert(n, m, seed) }

// Grid2D builds a rows×cols grid.
func Grid2D(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// Torus2D builds a rows×cols torus.
func Torus2D(rows, cols int) *Graph { return graph.Torus2D(rows, cols) }

// Cycle builds the n-cycle.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Path builds the n-node path.
func Path(n int) *Graph { return graph.Path(n) }

// Star builds a star with center 0 and n-1 leaves.
func Star(n int) *Graph { return graph.Star(n) }

// Complete builds the clique K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// RandomTree samples a random labeled tree.
func RandomTree(n int, seed uint64) *Graph { return graph.RandomTree(n, seed) }

// NearRegular builds a random graph with degrees close to d.
func NearRegular(n, d int, seed uint64) *Graph { return graph.NearRegular(n, d, seed) }

// CliqueChain builds k cliques of size s connected in a chain.
func CliqueChain(k, s int) *Graph { return graph.CliqueChain(k, s) }
