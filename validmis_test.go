package energymis

// Property test: every algorithm produces a set that Check accepts, on
// every graph family, and the dynamic engine's IsValidMIS agrees with an
// independent Check of its snapshot before and after churn. The table is
// algorithm × family × seed with parallel subtests, so `go test -race`
// also exercises concurrent engine instances sharing nothing.

import (
	"fmt"
	"math"
	"testing"
)

// validMISFamilies mirrors the analytical twin's families (internal/twin):
// sparse random, unit-disk, preferential-attachment, and a structured grid.
var validMISFamilies = []struct {
	name string
	gen  func(n int, seed uint64) *Graph
}{
	{"gnp", func(n int, seed uint64) *Graph { return GNP(n, 10/float64(n), seed) }},
	{"udg", func(n int, seed uint64) *Graph {
		return RandomGeometric(n, RadiusForAvgDegree(n, 10), seed)
	}},
	{"ba", func(n int, seed uint64) *Graph { return BarabasiAlbert(n, 5, seed) }},
	{"grid", func(n int, seed uint64) *Graph {
		side := int(math.Sqrt(float64(n)))
		return Grid2D(side, side)
	}},
}

func TestEveryAlgorithmYieldsValidMIS(t *testing.T) {
	const n = 512
	for _, algo := range Algorithms() {
		for _, fam := range validMISFamilies {
			for seed := uint64(1); seed <= 2; seed++ {
				algo, fam, seed := algo, fam, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", algo, fam.name, seed), func(t *testing.T) {
					t.Parallel()
					g := fam.gen(n, seed)
					res, err := RunVerified(g, algo, Options{Seed: seed})
					if err != nil {
						t.Fatalf("RunVerified: %v", err)
					}
					if err := Check(g, res.InSet); err != nil {
						t.Fatalf("Check rejects RunVerified output: %v", err)
					}
					// Check must not be vacuous: adding a neighbor of a
					// member (or any second node) breaks independence or
					// maximality detectably.
					broken := append([]bool(nil), res.InSet...)
					flipped := false
					for v := 0; v < g.N() && !flipped; v++ {
						if !broken[v] {
							broken[v] = true
							flipped = true
						}
					}
					if flipped && Check(g, broken) == nil {
						t.Fatal("Check accepted a perturbed set")
					}
				})
			}
		}
	}
}

func TestDynamicIsValidMISAgreesWithCheckUnderChurn(t *testing.T) {
	const (
		n     = 400
		steps = 6
		batch = 16
	)
	for _, algo := range Algorithms() {
		for _, fam := range validMISFamilies {
			algo, fam := algo, fam
			t.Run(fmt.Sprintf("%s/%s", algo, fam.name), func(t *testing.T) {
				t.Parallel()
				g := fam.gen(n, 1)
				res, err := RunVerified(g, algo, Options{Seed: 1})
				if err != nil {
					t.Fatalf("RunVerified: %v", err)
				}
				d, err := NewDynamicFrom(g, res.InSet, DynamicOptions{Seed: 1, Window: 8})
				if err != nil {
					t.Fatalf("NewDynamicFrom: %v", err)
				}
				defer d.Close()
				assertAgreement := func(when string) {
					t.Helper()
					sg, _, set := d.Snapshot()
					indep := Check(sg, set) == nil
					if got := d.IsValidMIS(); got != indep {
						t.Fatalf("%s: IsValidMIS()=%v but snapshot Check says %v", when, got, indep)
					}
					if !indep {
						t.Fatalf("%s: maintained set is not a valid MIS", when)
					}
				}
				assertAgreement("bootstrap")
				for i, b := range ChurnStream(g, steps, batch, 7) {
					if _, err := d.ApplyBatch(b); err != nil {
						t.Fatalf("ApplyBatch %d: %v", i, err)
					}
					assertAgreement(fmt.Sprintf("after batch %d", i))
				}
			})
		}
	}
}
