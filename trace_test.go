package energymis

// Run-trace integration tests: every algorithm's JSONL trace must be
// internally consistent (the streamed per-round counter deltas sum exactly
// to the Result's deterministic totals — obs.CheckTrace), and traces must
// be deterministic across executors: same (graph, algorithm, seed) gives a
// byte-identical trace modulo wall-time fields for any worker count.

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/energymis/energymis/internal/obs"
)

func runTraced(t *testing.T, g *Graph, algo Algorithm, seed uint64, workers int) (*Result, *obs.Trace) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	res, err := Run(g, algo, Options{Seed: seed, Workers: workers, TracePath: path})
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	tr, err := obs.ReadTraceFile(path)
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	return res, tr
}

// TestTraceReproducesResultTotals is the acceptance check of the tracing
// layer: for every algorithm, the trace's summed round records equal the
// run's Result totals field by field, and obs.CheckTrace agrees.
func TestTraceReproducesResultTotals(t *testing.T) {
	g := GNP(600, 9.0/600, 7)
	for _, algo := range Algorithms() {
		res, tr := runTraced(t, g, algo, 3, 1)

		var awake, msgs, dropped, bits, viol int64
		var phaseRounds int
		for _, rec := range tr.Records {
			switch rec.Type {
			case obs.RecRound:
				awake += rec.Awake
				msgs += rec.MsgsSent
				dropped += rec.MsgsDropped
				bits += rec.Bits
				viol += rec.Violations
			case obs.RecPhase:
				phaseRounds += rec.Rounds
			}
		}
		if awake != res.AwakeTotal {
			t.Errorf("%s: trace awake sum %d != Result.AwakeTotal %d", algo, awake, res.AwakeTotal)
		}
		if msgs != res.Messages {
			t.Errorf("%s: trace msgs sum %d != Result.Messages %d", algo, msgs, res.Messages)
		}
		if dropped != res.MessagesDropped {
			t.Errorf("%s: trace dropped sum %d != Result.MessagesDropped %d", algo, dropped, res.MessagesDropped)
		}
		if bits != res.BitsTotal {
			t.Errorf("%s: trace bits sum %d != Result.BitsTotal %d", algo, bits, res.BitsTotal)
		}
		if viol != res.CongestViolations {
			t.Errorf("%s: trace violations sum %d != Result.CongestViolations %d", algo, viol, res.CongestViolations)
		}
		if phaseRounds != res.Rounds {
			t.Errorf("%s: trace phase rounds sum %d != Result.Rounds %d", algo, phaseRounds, res.Rounds)
		}
		sum := tr.Summary()
		if sum == nil {
			t.Fatalf("%s: trace has no summary record", algo)
		}
		if sum.Awake != res.AwakeTotal || sum.Rounds != res.Rounds ||
			sum.MaxAwake != res.MaxAwake || sum.MISSize != res.MISSize() {
			t.Errorf("%s: summary record %+v does not match Result", algo, sum)
		}
		if problems := obs.CheckTrace(tr); len(problems) != 0 {
			t.Errorf("%s: CheckTrace: %v", algo, problems)
		}
		// The trace must also describe one phase span per reported phase.
		var phases int
		for _, rec := range tr.Records {
			if rec.Type == obs.RecPhase {
				phases++
			}
		}
		if phases != len(res.Phases) {
			t.Errorf("%s: %d phase records, Result has %d phases", algo, phases, len(res.Phases))
		}
	}
}

// TestTraceDeterminism: same seed and config produce byte-identical traces
// (modulo wall-time fields) for sequential and parallel executors.
func TestTraceDeterminism(t *testing.T) {
	g := GNP(500, 10.0/500, 11)
	for _, algo := range []Algorithm{Luby, Algorithm1, Algorithm2Avg} {
		var want []byte
		for _, workers := range []int{1, 8} {
			// Two runs per worker count guard against run-to-run drift too.
			for rep := 0; rep < 2; rep++ {
				_, tr := runTraced(t, g, algo, 5, workers)
				// Drop the header: its meta legitimately records the
				// differing worker count. Every payload record must match.
				recs := obs.Canonical(tr)
				for len(recs) > 0 && recs[0].Type == obs.RecHeader {
					recs = recs[1:]
				}
				got, err := obs.CanonicalBytes(recs)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
				} else if !bytes.Equal(want, got) {
					t.Fatalf("%s: canonical trace differs (workers=%d rep=%d)", algo, workers, rep)
				}
			}
		}
	}
}
