package avgenergy

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func runOn(t *testing.T, g *graph.Graph, seed uint64) *Outcome {
	t.Helper()
	out, err := Run(g, DefaultParams(), sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIndependence(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.NearRegular(2000, 20, seed+1)
		out := runOn(t, g, seed)
		if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
			t.Fatalf("seed %d: dependent edge (%d,%d)", seed, u, v)
		}
	}
}

func TestRemovesMostNodes(t *testing.T) {
	// Lemma 4.1's job: leave only a small fraction for Phases II/III.
	g := graph.NearRegular(6000, 24, 3)
	out := runOn(t, g, 7)
	if len(out.Remaining) > g.N()/8 {
		t.Fatalf("remaining %d of %d; want a small fraction (failed=%d)",
			len(out.Remaining), g.N(), out.Failed)
	}
}

func TestRemainingConsistent(t *testing.T) {
	g := graph.GNP(1500, 0.02, 5)
	out := runOn(t, g, 9)
	rem := map[int]bool{}
	for _, v := range out.Remaining {
		rem[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if out.InSet[v] && rem[v] {
			t.Fatalf("node %d both in set and remaining", v)
		}
	}
	// Remaining nodes must not be dominated.
	for _, v := range out.Remaining {
		for _, u := range g.Neighbors(v) {
			if out.InSet[u] {
				t.Fatalf("remaining node %d is dominated by %d", v, u)
			}
		}
	}
}

func TestAverageEnergyIsSmall(t *testing.T) {
	// The whole point: averaged over nodes, the pipeline is cheap even on
	// graphs where worst-case-energy algorithms pay Θ(log Δ) everywhere.
	g := graph.NearRegular(8000, 30, 11)
	out := runOn(t, g, 13)
	avgA := out.StageARes.AvgAwake()
	avgB := out.StageBRes.AvgAwake()
	if avgA > 6 {
		t.Fatalf("stage A average awake %v; want O(1)-like", avgA)
	}
	if avgB > 45 {
		t.Fatalf("stage B average awake %v; want O(log d + log k)-like", avgB)
	}
	t.Logf("avg awake: stageA=%.2f stageB=%.2f remaining=%d/%d failed=%d",
		avgA, avgB, len(out.Remaining), g.N(), out.Failed)
}

func TestWorstCaseEnergyBounded(t *testing.T) {
	g := graph.NearRegular(4000, 30, 17)
	out := runOn(t, g, 19)
	// Stage A: schedule-based wake, O(log T) = O(log log n)-ish.
	if got := out.StageARes.MaxAwake(); got > 40 {
		t.Fatalf("stage A MaxAwake = %d", got)
	}
	// Stage B: one burst window + schedule announcements.
	if got := out.StageBRes.MaxAwake(); got > 80 {
		t.Fatalf("stage B MaxAwake = %d", got)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(10).Build(),
		graph.Path(3),
	} {
		out := runOn(t, g, 1)
		if ok, _, _ := verify.IsIndependent(g, out.InSet); !ok {
			t.Fatal("tiny graph dependent set")
		}
	}
}

func TestDegTarget(t *testing.T) {
	p := DefaultParams()
	if got := p.DegTarget(16); got != p.MinDegTarget {
		t.Fatalf("DegTarget(16) = %d", got)
	}
	if p.DegTarget(1<<20) < p.MinDegTarget {
		t.Fatal("target below floor")
	}
}

func TestCongest(t *testing.T) {
	g := graph.NearRegular(2000, 25, 23)
	out := runOn(t, g, 29)
	if out.StageARes.Violations+out.StageBRes.Violations != 0 {
		t.Fatal("CONGEST violations")
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(800, 0.03, 31)
	a := runOn(t, g, 42)
	b := runOn(t, g, 42)
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}
