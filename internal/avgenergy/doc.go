// Package avgenergy implements the Section 4 extension: reducing the
// node-averaged energy complexity to O(1) while preserving the worst-case
// energy and round bounds of Algorithms 1 and 2.
//
// Structure (Section 4.2, Lemma 4.1): after Phase I (whose averaged energy
// is already O(1), Section 4.1), an intermediate "Phase I-II" removes all
// but O(n/log² log n) nodes, so that running the O(log² log n)-energy
// Phases II and III on the remainder adds only O(1) per node on average.
// Phase I-II has two stages:
//
//   - Stage A (Lemma 4.2): the regularized-Luby degree reduction of
//     Section 2.1 re-run with Θ(log log n) rounds per iteration and a
//     poly(log log n) degree target. Nodes that would violate the
//     degree invariants join a failed set F with probability 1/poly(log n)
//     each; F is deferred to Phases II/III. In this implementation F is
//     classified at the phase-boundary synchronization round (each node
//     counts its active neighbors once, one awake round — O(1) average),
//     rather than by the paper's per-iteration three-round all-awake
//     check — a documented substitution with the same asymptotics.
//   - Stage B (stand-in for Lemma 4.5 [GP22]): every still-active node
//     draws one of k slots and runs a short Luby burst only during its
//     slot's window, learning earlier joins at the Lemma 2.5 schedule
//     rounds over windows. This delivers Lemma 4.5's interface guarantee —
//     all but a small fraction of nodes removed, in O(k·log d) rounds —
//     with O(log d + log k) awake rounds per participant instead of
//     [GP22]'s O(1) average (their machinery is out of scope; the
//     end-to-end node-averaged energy remains flat, which experiment E9
//     verifies).
package avgenergy
