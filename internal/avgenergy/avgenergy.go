package avgenergy

import (
	"fmt"
	"math"
	"sort"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/phase1"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// Params configures the Phase I-II pipeline.
type Params struct {
	// Stage A: rounds per iteration = ceil(RoundsAC·log2 log2 n) + 2;
	// iterations run until the degree bound falls to DegTarget(n).
	RoundsAC float64
	// DegTargetC scales the stage-A degree target
	// max(MinDegTarget, ceil(DegTargetC·(log2 log2 n)²)).
	DegTargetC   float64
	MinDegTarget int
	MarkDamp     float64 // as in phase1

	// Stage B: slots k = ceil(SlotsC·log2 log2 n) + 1; burst length =
	// ceil(BurstC·log2(degTarget)) + 2 logical rounds.
	SlotsC float64
	BurstC float64
}

// DefaultParams returns practical constants.
func DefaultParams() Params {
	return Params{
		RoundsAC:     3,
		DegTargetC:   1,
		MinDegTarget: 8,
		MarkDamp:     10,
		SlotsC:       2,
		BurstC:       3,
	}
}

// DegTarget returns the stage-A degree target for an n-node graph.
func (p Params) DegTarget(n int) int {
	ll := math.Log2(math.Max(2, math.Log2(math.Max(4, float64(n)))))
	t := int(math.Ceil(p.DegTargetC * ll * ll))
	if t < p.MinDegTarget {
		t = p.MinDegTarget
	}
	return t
}

// Outcome of the Phase I-II pipeline.
type Outcome struct {
	InSet     []bool // independent set found across both stages
	Remaining []int  // nodes still undecided (to hand to Phases II/III)
	Failed    int    // stage-A nodes classified into F
	StageARes *sim.Result
	StageBRes *sim.Result
	// StageBOrig maps stage-B-local node indices to indices of the input
	// graph (for energy accounting).
	StageBOrig []int32
	StageBLen  int // engine rounds of stage B
}

// Run executes Phase I-II on g (typically the residual left by Phase I,
// with poly(log n) maximum degree).
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	n := g.N()
	out := &Outcome{InSet: make([]bool, n)}
	if n == 0 {
		return out, nil
	}
	target := p.DegTarget(n)
	loglog := math.Log2(math.Max(2, math.Log2(math.Max(4, float64(n)))))

	// --- Stage A: regularized Luby down to the poly(log log n) target ---
	maxDeg := g.MaxDegree()
	iters := 0
	if maxDeg > target {
		iters = int(math.Ceil(math.Log2(float64(maxDeg) / float64(target))))
	}
	rpi := int(math.Ceil(p.RoundsAC*loglog)) + 2
	plan := phase1.PlanExplicit(iters, rpi, maxDeg)
	p1 := phase1.Params{MarkDamp: p.MarkDamp}
	aOut, err := phase1.RunWithPlan(g, plan, p1, cfg)
	if err != nil {
		return nil, fmt.Errorf("avgenergy stage A: %w", err)
	}
	out.StageARes = aOut.Res
	for v, in := range aOut.InSet {
		out.InSet[v] = in
	}

	// Boundary classification: residual nodes whose residual degree still
	// exceeds the target form the failed set F (deferred to later phases,
	// like the paper's F).
	resSub := graph.InducedSubgraph(g, aOut.Residual)
	var aNodes, failed []int
	for i := 0; i < resSub.N(); i++ {
		if resSub.Degree(i) > target {
			failed = append(failed, int(resSub.Orig[i]))
		} else {
			aNodes = append(aNodes, int(resSub.Orig[i]))
		}
	}
	out.Failed = len(failed)

	// --- Stage B: slot-scheduled Luby bursts on the A-nodes ---
	bSub := graph.InducedSubgraph(g, aNodes)
	k := int(math.Ceil(p.SlotsC*loglog)) + 1
	burst := int(math.Ceil(p.BurstC*math.Log2(float64(target+2)))) + 2
	bOut, err := runSlotted(bSub.Graph, k, burst, cfg)
	if err != nil {
		return nil, fmt.Errorf("avgenergy stage B: %w", err)
	}
	out.StageBRes = bOut.res
	out.StageBOrig = bSub.Orig
	out.StageBLen = bOut.rounds
	for v, in := range bOut.inSet {
		if in {
			out.InSet[bSub.Orig[v]] = true
		}
	}

	// Remaining = failed ∪ stage-B leftovers, minus anything dominated.
	rem := verify.Residual(g, out.InSet)
	out.Remaining = rem
	return out, nil
}

// --- slot-scheduled Luby (Lemma 4.5 stand-in) ---

const (
	kindMark  = 71
	kindJoin  = 72
	kindInMIS = 73
)

type slotOutcome struct {
	inSet  []bool
	res    *sim.Result
	rounds int
}

// slotMachine runs one Luby burst during its own slot window and listens
// for join announcements at the Lemma 2.5 schedule over slots.
type slotMachine struct {
	env   *sim.Env
	k     int
	burst int // logical rounds per window; each logical round = 3 engine rounds

	slot     int
	wake     []int
	wi       int
	joined   bool
	inactive bool
	marked   bool
	deg      int
}

var _ sim.Machine = (*slotMachine)(nil)

// windowLen returns engine rounds per slot window.
func (m *slotMachine) windowLen() int { return 3 * m.burst }

// Init implements sim.Machine.
func (m *slotMachine) Init(env *sim.Env) int {
	m.env = env
	m.deg = env.Degree
	m.slot = env.Rand.Intn(m.k)
	wl := m.windowLen()
	seen := map[int]bool{}
	// Whole own window.
	for r := 0; r < wl; r++ {
		seen[m.slot*wl+r] = true
	}
	// Announcement rounds: the last engine round of every window in the
	// schedule set S_slot.
	for _, l := range schedule.Set(m.k, m.slot) {
		seen[l*wl+wl-1] = true
	}
	m.wake = make([]int, 0, len(seen))
	for r := range seen {
		m.wake = append(m.wake, r)
	}
	sort.Ints(m.wake)
	return m.wake[0]
}

// Compose implements sim.Machine.
func (m *slotMachine) Compose(round int, out *sim.Outbox) {
	wl := m.windowLen()
	w, o := round/wl, round%wl
	if o == wl-1 {
		// Announcement sub-round shared across windows.
		if m.joined {
			out.Broadcast(sim.Msg{Kind: kindInMIS, Bits: 1})
		}
		return
	}
	if w != m.slot || m.inactive || m.joined {
		return
	}
	switch o % 3 {
	case 0:
		// Marking targets the expected cohort degree deg/k, so cohort
		// contention matches classic Luby's 1/(2 deg) regime.
		p := 1.0
		if m.deg > 0 {
			p = math.Min(0.5, float64(m.k)/(2*float64(m.deg)))
		}
		m.marked = m.env.Rand.Bernoulli(p)
		if m.marked {
			out.Broadcast(sim.Msg{Kind: kindMark, A: uint64(m.deg), Bits: int32(bits(m.env.N))})
		}
	case 1:
		if m.marked {
			m.joined = true
			out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
		}
	}
}

// Deliver implements sim.Machine.
func (m *slotMachine) Deliver(round int, inbox []sim.Msg) int {
	wl := m.windowLen()
	w, o := round/wl, round%wl
	switch {
	case o == wl-1:
		if !m.joined && w < m.slot {
			for _, msg := range inbox {
				if msg.Kind == kindInMIS {
					m.inactive = true
				}
			}
		}
	case w == m.slot && o%3 == 0:
		if m.marked {
			for _, msg := range inbox {
				if msg.Kind != kindMark {
					continue
				}
				d := int(msg.A)
				if d > m.deg || (d == m.deg && msg.From > int32(m.env.Node)) {
					m.marked = false
					break
				}
			}
		}
	case w == m.slot && o%3 == 1:
		for _, msg := range inbox {
			if msg.Kind == kindJoin && !m.joined {
				m.inactive = true
			}
		}
		m.marked = false
	}
	if m.inactive {
		// Dominated: nothing left to send or learn.
		return sim.Never
	}
	m.wi++
	if m.joined {
		// Only announcement rounds remain relevant.
		for m.wi < len(m.wake) && m.wake[m.wi]%wl != wl-1 {
			m.wi++
		}
	}
	if m.wi >= len(m.wake) {
		return sim.Never
	}
	return m.wake[m.wi]
}

func bits(n int) int {
	b := 1
	for p := 1; p < n; p <<= 1 {
		b++
	}
	return b
}

func runSlotted(g *graph.Graph, k, burst int, cfg sim.Config) (*slotOutcome, error) {
	machines := make([]sim.Machine, g.N())
	nodes := make([]*slotMachine, g.N())
	for v := range machines {
		nodes[v] = &slotMachine{k: k, burst: burst}
		machines[v] = nodes[v]
	}
	slotCfg := cfg
	slotCfg.Seed = cfg.Seed ^ 0xA5A5A5A5
	res, err := sim.Run(g, machines, slotCfg)
	if err != nil {
		return nil, err
	}
	out := &slotOutcome{inSet: make([]bool, g.N()), res: res, rounds: k * 3 * burst}
	for v, nm := range nodes {
		out.inSet[v] = nm.joined
	}
	return out, nil
}
