package degreduce

import (
	"math"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestLemma34EstimateAccuracy reproduces Lemma 3.4: for a node sampled in
// the first round (where its remaining degree is its full degree), the
// estimate deg~ = Δ^0.5 · A_v lies in [deg/2, 2·deg] when deg >= Δ^0.6.
// The Ω(log^20 n) precondition is far beyond feasible n, so tolerance is
// widened to [deg/3, 3·deg]; the concentration is still clearly visible.
func TestLemma34EstimateAccuracy(t *testing.T) {
	g := graph.GNP(3000, 0.4, 11) // Δ ≈ 1250, Δ^0.6 ≈ 72
	p := DefaultParams()
	plan := MakePlan(g.N(), g.MaxDegree(), p)
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{plan: plan, damp: p.ResampleDamp, pmd: p.PreMarkDamp, pexp: p.PreMarkExp, rv: -1}
		machines[v] = nodes[v]
	}
	if _, err := sim.Run(g, machines, sim.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	sqrtD := math.Sqrt(float64(plan.Delta))
	thresh := math.Pow(float64(plan.Delta), 0.6)
	checked, bad := 0, 0
	for v, nm := range nodes {
		// First-round pre-marked nodes: remaining degree = full degree.
		if nm.rv != 0 || !nm.premarked {
			continue
		}
		deg := float64(g.Degree(v))
		if deg < thresh {
			continue
		}
		est := sqrtD * float64(nm.av)
		checked++
		if est < deg/3 || est > 3*deg {
			bad++
			t.Logf("node %d: deg=%v est=%v (A_v=%d)", v, deg, est, nm.av)
		}
	}
	if checked == 0 {
		t.Skip("no first-round high-degree pre-marked nodes; seed-dependent")
	}
	if bad > checked/10 {
		t.Fatalf("%d/%d estimates outside [deg/3, 3deg]", bad, checked)
	}
	t.Logf("estimate accuracy: %d/%d within tolerance", checked-bad, checked)
}

// TestLemma36GoodEdges reproduces Lemma 3.6: among edges whose endpoints
// both have degree >= Δ^0.6, at least half are good (both endpoints good,
// where good = degree >= Δ^0.6 and more than a third of neighbors have
// strictly lower degree... ties counted favorably as in the paper's
// arbitrary tie-breaking).
func TestLemma36GoodEdges(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(1500, 0.3, 3)},
		{"ba", graph.BarabasiAlbert(2000, 40, 5)},
		{"nearreg", graph.NearRegular(1500, 200, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			delta := float64(g.MaxDegree())
			thresh := math.Pow(delta, 0.6)
			// Orient ties by ID, mirroring "breaking ties arbitrarily".
			lower := func(u, v int) bool {
				du, dv := g.Degree(u), g.Degree(v)
				return du < dv || (du == dv && u < v)
			}
			good := make([]bool, g.N())
			for v := 0; v < g.N(); v++ {
				if float64(g.Degree(v)) < thresh {
					continue
				}
				cnt := 0
				for _, u := range g.Neighbors(v) {
					if lower(int(u), v) {
						cnt++
					}
				}
				good[v] = 3*cnt > g.Degree(v)
			}
			total, goodEdges := 0, 0
			for v := 0; v < g.N(); v++ {
				if float64(g.Degree(v)) < thresh {
					continue
				}
				for _, u := range g.Neighbors(v) {
					if int(u) < v || float64(g.Degree(int(u))) < thresh {
						continue
					}
					total++
					if good[v] && good[u] {
						goodEdges++
					}
				}
			}
			if total == 0 {
				t.Skip("no high-high edges")
			}
			// Reproduction note (see also sweep -e E8): the paper
			// claims at least half; measured fractions sit at 0.43–0.45
			// on these families — still the constant fraction the
			// progress argument (Lemma 3.8) needs, but below the stated
			// 1/2. We assert the constant-fraction property.
			if 3*goodEdges < total {
				t.Fatalf("good edges %d/%d below a third", goodEdges, total)
			}
			t.Logf("good high-high edges: %d/%d (%.3f; paper claims >= 0.5)",
				goodEdges, total, float64(goodEdges)/float64(total))
		})
	}
}

// TestLemma310SpoiledBound reproduces Lemma 3.10: per iteration, each
// node has at most ~4Δ^0.6 sampled (tagged or pre-marked) neighbors.
func TestLemma310SpoiledBound(t *testing.T) {
	g := graph.GNP(2500, 0.35, 13)
	p := DefaultParams()
	plan := MakePlan(g.N(), g.MaxDegree(), p)
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{plan: plan, damp: p.ResampleDamp, pmd: p.PreMarkDamp, pexp: p.PreMarkExp, rv: -1}
		machines[v] = nodes[v]
	}
	if _, err := sim.Run(g, machines, sim.Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// The paper's 4Δ^0.6 bound needs Δ >= log^10 n so that the per-node
	// sampling probability O(log n·Δ^-0.5) is at most Δ^-0.4 — far beyond
	// feasible scale. At practical parameters the right check is Chernoff
	// concentration around the analytic expectation
	// deg·min(1, T·(Δ^-0.5 + 1/(2Δ^0.6))).
	perRound := math.Pow(float64(plan.Delta), -0.5) + 1/(2*math.Pow(float64(plan.Delta), 0.6))
	pSample := math.Min(1, float64(plan.T)*perRound)
	paperBound := 4 * math.Pow(float64(plan.Delta), 0.6)
	worstRatio := 0.0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < 50 {
			continue
		}
		cnt := 0
		for _, u := range g.Neighbors(v) {
			if nodes[u].Sampled() {
				cnt++
			}
		}
		mean := float64(g.Degree(v)) * pSample
		if r := float64(cnt) / mean; r > worstRatio {
			worstRatio = r
		}
	}
	if worstRatio > 1.6 {
		t.Fatalf("sampled-neighbor count deviates %.2fx from expectation", worstRatio)
	}
	t.Logf("worst sampled/expected ratio %.2f (paper's asymptotic bound 4Δ^0.6 = %.0f applies only for Δ >= log^10 n)",
		worstRatio, paperBound)
}
