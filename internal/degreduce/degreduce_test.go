package degreduce

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestMakePlan(t *testing.T) {
	p := DefaultParams()
	plan := MakePlan(1024, 10000, p)
	if plan.T != 20 {
		t.Fatalf("T = %d, want 20", plan.T)
	}
	if plan.TagProb <= 0 || plan.TagProb > 0.011 {
		t.Fatalf("TagProb = %v", plan.TagProb)
	}
	if plan.PreMarkProb >= plan.TagProb {
		t.Fatalf("PreMarkProb %v should be below TagProb %v at this Δ", plan.PreMarkProb, plan.TagProb)
	}
	if plan.HighThresh <= 0 {
		t.Fatal("HighThresh not positive")
	}
}

func TestStopDelta(t *testing.T) {
	p := DefaultParams()
	if got := p.StopDelta(2); got != p.StopMin {
		t.Fatalf("StopDelta(2) = %d", got)
	}
	if got := p.StopDelta(1 << 20); got != 400 { // (log2 n)^2 = 400
		t.Fatalf("StopDelta(2^20) = %d, want 400", got)
	}
}

func runReduce(t *testing.T, g *graph.Graph, p Params, seed uint64) *Outcome {
	t.Helper()
	out, err := Run(g, p, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIndependence(t *testing.T) {
	graphs := []*graph.Graph{
		graph.GNP(1200, 0.3, 1),
		graph.Complete(500),
		graph.BarabasiAlbert(1500, 40, 2),
		graph.CompleteBipartite(250, 250),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 4; seed++ {
			out := runReduce(t, g, DefaultParams(), seed)
			if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
				t.Fatalf("graph %d seed %d: dependent edge (%d,%d)", gi, seed, u, v)
			}
		}
	}
}

func TestDegreeReduction(t *testing.T) {
	g := graph.GNP(2000, 0.3, 3)
	p := DefaultParams()
	out := runReduce(t, g, p, 5)
	if len(out.Iters) == 0 {
		t.Fatal("no iterations ran on a dense graph")
	}
	stop := p.StopDelta(g.N())
	sub := graph.InducedSubgraph(g, out.Residual)
	if got := sub.MaxDegree(); got > 4*stop {
		t.Fatalf("residual max degree %d > 4*stop=%d (input Δ=%d, iters=%d, boundExceeded=%d)",
			got, 4*stop, g.MaxDegree(), len(out.Iters), out.BoundExceeded)
	}
	// Progress within each iteration: measured degree after iteration i
	// must be below the incoming bound.
	for i, st := range out.Iters {
		if st.MeasuredD >= st.Delta && st.Delta > 1 {
			t.Fatalf("iteration %d did not reduce: Δ=%d measured=%d", i, st.Delta, st.MeasuredD)
		}
	}
}

func TestMultipleIterations(t *testing.T) {
	p := DefaultParams()
	p.StopLogExp = 0
	p.StopMin = 8
	g := graph.GNP(1500, 0.4, 7)
	out := runReduce(t, g, p, 9)
	if len(out.Iters) < 3 {
		t.Fatalf("expected >=3 iterations, got %d", len(out.Iters))
	}
	// Bounds must be strictly decreasing.
	for i := 1; i < len(out.Iters); i++ {
		if out.Iters[i].Delta >= out.Iters[i-1].Delta {
			t.Fatalf("Δ did not decrease: %d -> %d", out.Iters[i-1].Delta, out.Iters[i].Delta)
		}
	}
	if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
		t.Fatalf("dependent edge (%d,%d)", u, v)
	}
}

func TestEnergyPerIteration(t *testing.T) {
	g := graph.GNP(2000, 0.3, 11)
	p := DefaultParams()
	out := runReduce(t, g, p, 13)
	for i, st := range out.Iters {
		// Sampled nodes: |S| schedule rounds + 3 cohort rounds + 4 end
		// rounds. Unsampled: 4 end rounds.
		bound := schedule.MaxSize(MakePlan(g.N(), st.Delta, p).T) + 3 + 4
		if got := st.Res.MaxAwake(); got > bound {
			t.Fatalf("iteration %d: MaxAwake %d > %d", i, got, bound)
		}
	}
}

func TestUnsampledNodesOnlyPayEndWindow(t *testing.T) {
	g := graph.GNP(1500, 0.3, 15)
	plan := MakePlan(g.N(), g.MaxDegree(), DefaultParams())
	p := DefaultParams()
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{plan: plan, damp: p.ResampleDamp, pmd: p.PreMarkDamp, pexp: p.PreMarkExp, rv: -1}
		machines[v] = nodes[v]
	}
	res, err := sim.Run(g, machines, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, nm := range nodes {
		if !nm.Sampled() && res.Awake[v] > 4 {
			t.Fatalf("unsampled node %d awake %d rounds", v, res.Awake[v])
		}
	}
}

func TestCongestCompliance(t *testing.T) {
	g := graph.GNP(1200, 0.4, 17)
	out := runReduce(t, g, DefaultParams(), 19)
	for i, st := range out.Iters {
		if st.Res.Violations != 0 {
			t.Fatalf("iteration %d: %d violations (bitsMax=%d)", i, st.Res.Violations, st.Res.BitsMax)
		}
	}
}

func TestSparseGraphSkipsPhase(t *testing.T) {
	g := graph.GNP(1000, 0.01, 1)
	out := runReduce(t, g, DefaultParams(), 1)
	if len(out.Iters) != 0 {
		t.Fatalf("iterations = %d on low-degree graph", len(out.Iters))
	}
	if len(out.Residual) != g.N() {
		t.Fatal("sparse graph lost nodes")
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(900, 0.3, 23)
	a := runReduce(t, g, DefaultParams(), 42)
	b := runReduce(t, g, DefaultParams(), 42)
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestCliqueReduces(t *testing.T) {
	g := graph.Complete(600)
	out := runReduce(t, g, DefaultParams(), 25)
	if ok, _, _ := verify.IsIndependent(g, out.InSet); !ok {
		t.Fatal("clique set dependent")
	}
	sub := graph.InducedSubgraph(g, out.Residual)
	if sub.MaxDegree() >= g.MaxDegree() {
		t.Fatalf("clique did not reduce: %d -> %d", g.MaxDegree(), sub.MaxDegree())
	}
}
