package degreduce

import (
	"slices"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
)

// Per-node flag bits of the batch automaton.
const (
	bTagged = 1 << iota
	bPremarked
	bMarked
	bUnmarked
	bJoined
	bInactive
	bHigh
	bInMIS
)

// Batch is the struct-of-arrays automaton of one reduction iteration: the
// pre-sampled participation rounds, the Lemma 2.5 wake schedules (flattened
// into one arena with per-node offsets), the tagged-neighbor counts, and
// the protocol flags, all in flat arrays driven whole-awake-sets at a time.
// Random draws, wake schedules, and state transitions replicate the
// per-node Machine exactly, so runs are byte-identical to the legacy path
// (enforced by TestBatchMatchesLegacy).
type Batch struct {
	g    *graph.Graph
	plan Plan
	damp float64 // ResampleDamp
	pmd  float64 // PreMarkDamp
	pexp float64 // PreMarkExp

	markedBits int32 // 1 + ceil(log2 N) of the current subgraph

	rands   []rng.Stream
	rv      []int32 // first sampled logical round; -1 = never sampled
	av      []int32 // tagged-neighbor count observed in r_v
	remDeg  []int32 // end window: active non-spoiled neighbor count
	flags   []uint8
	wakeAll []int32 // flattened sorted engine wake rounds
	wakeOff []int32 // node v's schedule is wakeAll[wakeOff[v]:wakeOff[v+1]]
	wi      []int32 // per-node cursor into its schedule segment
}

var _ sim.BatchMachine = (*Batch)(nil)

// NewBatchIter builds the batch automaton for one iteration over g.
func NewBatchIter(g *graph.Graph, plan Plan, p Params) *Batch {
	return &Batch{g: g, plan: plan, damp: p.ResampleDamp, pmd: p.PreMarkDamp, pexp: p.PreMarkExp}
}

// InitAll implements sim.BatchMachine: pre-sample each node's first
// participating round via the two sampling processes and derive its
// S_{r_v} awake plan plus the end window.
func (b *Batch) InitAll(env *sim.BatchEnv) []int {
	n := b.g.N()
	b.markedBits = int32(1 + bitsFor(env.N))
	b.rands = make([]rng.Stream, n)
	b.rv = make([]int32, n)
	b.av = make([]int32, n)
	b.remDeg = make([]int32, n)
	b.flags = make([]uint8, n)
	b.wakeOff = make([]int32, n+1)
	b.wi = make([]int32, n)
	first := make([]int, n)
	var scratch []int32
	for v := 0; v < n; v++ {
		b.rands[v] = rng.ForNode(env.Seed, v)
		r := &b.rands[v]
		tA := r.FirstSuccess(b.plan.TagProb, b.plan.T)
		tB := r.FirstSuccess(b.plan.PreMarkProb, b.plan.T)
		rv := -1
		switch {
		case tA >= 0 && (tB < 0 || tA < tB):
			rv = tA
			b.flags[v] |= bTagged
		case tB >= 0 && (tA < 0 || tB < tA):
			rv = tB
			b.flags[v] |= bPremarked
		case tA >= 0 && tA == tB:
			rv = tA
			b.flags[v] |= bTagged | bPremarked
		}
		b.rv[v] = int32(rv)
		scratch = scratch[:0]
		if rv >= 0 {
			for _, l := range schedule.Set(b.plan.T, rv) {
				scratch = append(scratch, int32(4*l+3))
			}
			scratch = append(scratch, int32(4*rv), int32(4*rv+1), int32(4*rv+2))
		}
		// Every node participates in the end window.
		for s := 0; s < 4; s++ {
			scratch = append(scratch, int32(b.plan.endRound(s)))
		}
		slices.Sort(scratch)
		scratch = dedup32(scratch)
		b.wakeAll = append(b.wakeAll, scratch...)
		b.wakeOff[v+1] = int32(len(b.wakeAll))
		first[v] = int(scratch[0])
	}
	return first
}

func dedup32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ComposeAll implements sim.BatchMachine.
func (b *Batch) ComposeAll(round int, awake []int32, out *sim.BatchOutbox) {
	if round >= 4*b.plan.T {
		b.composeEnd(round-4*b.plan.T, awake, out)
		return
	}
	l, sub := int32(round/4), round%4
	switch sub {
	case 0:
		for _, v := range awake {
			if l == b.rv[v] && b.flags[v]&(bTagged|bInactive) == bTagged {
				out.Broadcast(v, sim.Msg{Kind: kindTag, Bits: 1})
			}
		}
	case 1:
		for _, v := range awake {
			if l == b.rv[v] && b.flags[v]&(bPremarked|bInactive) == bPremarked {
				if b.rands[v].Bernoulli(markProb(b.plan, b.damp, b.pmd, b.pexp, int(b.av[v]))) {
					b.flags[v] |= bMarked
					out.Broadcast(v, sim.Msg{
						Kind: kindMarked,
						A:    uint64(b.av[v]),
						Bits: b.markedBits,
					})
				}
			}
		}
	case 2:
		for _, v := range awake {
			if l == b.rv[v] && b.flags[v]&(bMarked|bUnmarked|bInactive) == bMarked {
				b.flags[v] |= bJoined | bInMIS
				out.Broadcast(v, sim.Msg{Kind: kindJoin, Bits: 1})
			}
		}
	case 3:
		for _, v := range awake {
			if b.flags[v]&bJoined != 0 {
				out.Broadcast(v, sim.Msg{Kind: kindInMIS, Bits: 1})
			}
		}
	}
}

func (b *Batch) composeEnd(s int, awake []int32, out *sim.BatchOutbox) {
	switch s {
	case 0:
		for _, v := range awake {
			if b.flags[v]&bJoined != 0 {
				out.Broadcast(v, sim.Msg{Kind: kindInMIS, Bits: 1})
			}
		}
	case 1:
		// Active non-spoiled nodes announce themselves for the remaining-
		// degree count. Spoiled = sampled but did not join.
		for _, v := range awake {
			if b.flags[v]&(bInactive|bJoined) == 0 && b.rv[v] < 0 {
				out.Broadcast(v, sim.Msg{Kind: kindAlive, Bits: 1})
			}
		}
	case 2:
		for _, v := range awake {
			if b.flags[v]&(bInactive|bJoined) == 0 && float64(b.remDeg[v]) > b.plan.HighThresh {
				b.flags[v] |= bHigh
				out.Broadcast(v, sim.Msg{Kind: kindHigh, Bits: 1})
			}
		}
	case 3:
		for _, v := range awake {
			if b.flags[v]&bHigh != 0 {
				b.flags[v] |= bJoined | bInMIS
				out.Broadcast(v, sim.Msg{Kind: kindHiJoin, Bits: 1})
			}
		}
	}
}

// DeliverAll implements sim.BatchMachine.
func (b *Batch) DeliverAll(round int, awake []int32, in sim.Inboxes, next []int) {
	if round >= 4*b.plan.T {
		b.deliverEnd(round-4*b.plan.T, awake, in)
	} else {
		b.deliverMain(round, awake, in)
	}
	for i, v := range awake {
		b.wi[v]++
		seg := b.wakeAll[b.wakeOff[v]:b.wakeOff[v+1]]
		if int(b.wi[v]) >= len(seg) {
			next[i] = sim.Never
		} else {
			next[i] = int(seg[b.wi[v]])
		}
	}
}

func (b *Batch) deliverMain(round int, awake []int32, in sim.Inboxes) {
	l, sub := int32(round/4), round%4
	switch sub {
	case 0:
		for i, v := range awake {
			if l == b.rv[v] && b.flags[v]&bInactive == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindTag {
						b.av[v]++
					}
				}
			}
		}
	case 1:
		for i, v := range awake {
			if l == b.rv[v] && b.flags[v]&bMarked != 0 {
				for _, msg := range in.At(i) {
					// Unmark when a marked neighbor's estimate is at least
					// as large ("removes its marking if deg~(v) <= deg~(u)").
					if msg.Kind == kindMarked && int32(msg.A) >= b.av[v] {
						b.flags[v] |= bUnmarked
						break
					}
				}
			}
		}
	case 2:
		for i, v := range awake {
			if l == b.rv[v] && b.flags[v]&bJoined == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindJoin {
						b.flags[v] |= bInactive
						break
					}
				}
			}
		}
	case 3:
		for i, v := range awake {
			if l < b.rv[v] && b.flags[v]&bJoined == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindInMIS {
						b.flags[v] |= bInactive
						break
					}
				}
			}
		}
	}
}

func (b *Batch) deliverEnd(s int, awake []int32, in sim.Inboxes) {
	switch s {
	case 0:
		for i, v := range awake {
			if b.flags[v]&bJoined == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindInMIS {
						b.flags[v] |= bInactive
						break
					}
				}
			}
		}
	case 1:
		for i, v := range awake {
			if b.flags[v]&(bInactive|bJoined) == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindAlive {
						b.remDeg[v]++
					}
				}
			}
		}
	case 2:
		for i, v := range awake {
			if b.flags[v]&bHigh != 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindHigh {
						// A high neighbor exists: do not join.
						b.flags[v] &^= bHigh
						break
					}
				}
			}
		}
	case 3:
		for i, v := range awake {
			if b.flags[v]&bJoined == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindHiJoin {
						b.flags[v] |= bInactive
						break
					}
				}
			}
		}
	}
}

// inSet returns the iteration's independent set.
func (b *Batch) inSet() []bool {
	out := make([]bool, len(b.flags))
	for v := range out {
		out[v] = b.flags[v]&bInMIS != 0
	}
	return out
}

// sampledCount returns the number of nodes that woke during the main
// window (tagged or pre-marked).
func (b *Batch) sampledCount() int {
	n := 0
	for _, rv := range b.rv {
		if rv >= 0 {
			n++
		}
	}
	return n
}
