package degreduce

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestBatchMatchesLegacy is the differential gate of the batch port: the
// full iterated reduction on the batch runtime must produce byte-identical
// Outcomes — set, residual, per-iteration stats, complexity counters — to
// the per-node reference, for every graph shape, seed, and worker count.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(500, 60.0/500, 3)},
		{"rgg", graph.RGG(300, 40, 5)},
		{"clique", graph.Complete(90)},
		{"star", graph.Star(120)},
		{"isolated", graph.FromEdges(10, [][2]int{{0, 1}})},
		{"empty", graph.FromEdges(0, nil)},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 2; seed++ {
			ref, err := RunLegacy(tc.g, DefaultParams(), sim.Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d legacy: %v", tc.name, seed, err)
			}
			for _, w := range []int{1, 2, 8} {
				got, err := Run(tc.g, DefaultParams(), sim.Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s seed=%d workers=%d batch: %v", tc.name, seed, w, err)
				}
				for v := range ref.InSet {
					if got.InSet[v] != ref.InSet[v] {
						t.Fatalf("%s seed=%d workers=%d: InSet[%d] = %v, legacy %v",
							tc.name, seed, w, v, got.InSet[v], ref.InSet[v])
					}
				}
				if len(got.Residual) != len(ref.Residual) {
					t.Fatalf("%s seed=%d workers=%d: %d residual nodes, legacy %d",
						tc.name, seed, w, len(got.Residual), len(ref.Residual))
				}
				for i := range got.Residual {
					if got.Residual[i] != ref.Residual[i] {
						t.Fatalf("%s seed=%d workers=%d: residual[%d] differs", tc.name, seed, w, i)
					}
				}
				if len(got.Iters) != len(ref.Iters) || got.BoundExceeded != ref.BoundExceeded {
					t.Fatalf("%s seed=%d workers=%d: %d iters (exceeded %d), legacy %d (%d)",
						tc.name, seed, w, len(got.Iters), got.BoundExceeded,
						len(ref.Iters), ref.BoundExceeded)
				}
				for i := range got.Iters {
					gi, ri := got.Iters[i], ref.Iters[i]
					if gi.Delta != ri.Delta || gi.NextDelta != ri.NextDelta ||
						gi.MeasuredD != ri.MeasuredD || gi.Nodes != ri.Nodes || gi.Sampled != ri.Sampled {
						t.Fatalf("%s seed=%d workers=%d iter %d: stats differ\n legacy: %+v\n batch:  %+v",
							tc.name, seed, w, i, ri, gi)
					}
					r, gr := ri.Res, gi.Res
					if gr.Rounds != r.Rounds || gr.MsgsSent != r.MsgsSent ||
						gr.MsgsDropped != r.MsgsDropped || gr.BitsTotal != r.BitsTotal ||
						gr.BitsMax != r.BitsMax || gr.Violations != r.Violations {
						t.Fatalf("%s seed=%d workers=%d iter %d: counters differ\n legacy: %+v\n batch:  %+v",
							tc.name, seed, w, i, r, gr)
					}
					for v := range gr.Awake {
						if gr.Awake[v] != r.Awake[v] {
							t.Fatalf("%s seed=%d workers=%d iter %d: Awake[%d] differs",
								tc.name, seed, w, i, v)
						}
					}
				}
			}
		}
	}
}
