// Package degreduce implements Phase I of Algorithm 2 (Section 3.1,
// Lemmas 3.1–3.10): a degree-reduction from Δ to Δ^0.7 per iteration, with
// every iteration costing O(log n) rounds and O(log log n) awake rounds.
//
// One iteration works on a graph with known degree bound Δ:
//
//   - Sampling of type (A): per logical round, each node flips heads with
//     probability Δ^{-1/2}; the first heads *tags* the node in that round.
//     Tagged nodes are used by their neighbors to estimate remaining
//     degrees: a node that sees A_v tagged neighbors in its round
//     estimates deg~(v) = Δ^{1/2}·A_v.
//   - Sampling of type (B): the same process with probability 1/(2Δ^0.6);
//     the first heads *pre-marks* the node.
//   - A node participates only in the first round r_v in which either
//     sampling fires (it may be both tagged and pre-marked in that round);
//     afterwards it is "spoiled" and never acts again this iteration.
//   - A pre-marked node re-samples itself as *marked* with probability
//     min{1, 2Δ^0.6/(5·deg~(v))}, so the effective marking probability is
//     min{1/(2Δ^0.6), 1/(5·deg~(v))}. Marked nodes exchange their
//     estimates; a marked node unmarks when some marked neighbor has an
//     estimate at least as large as its own. Survivors join the MIS.
//   - Wake schedule: exactly as in Phase I of Algorithm 1, with a fourth
//     sub-round per logical round in which MIS joiners announce themselves
//     at the rounds of the Lemma 2.5 schedule S_{r_v}.
//   - End of iteration: every node still alive wakes for a 4-round window:
//     joiners announce; active non-spoiled nodes are counted; active nodes
//     with more than 4Δ^0.6 active non-spoiled neighbors and no such
//     neighbor join the MIS (Corollary 3.9 shows these high-degree nodes
//     form an independent set w.h.p.).
//
// Corollary 3.2: iterating with Δ ← Δ^0.7 until Δ is polylogarithmic
// reduces the maximum residual degree to the shattering regime in
// O(log log Δ) iterations.
package degreduce
