package degreduce

import (
	"fmt"
	"math"
	"sort"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// Message kinds.
const (
	kindTag    = 31
	kindMarked = 32 // A = A_v, the sender's tagged-neighbor count
	kindJoin   = 33
	kindInMIS  = 34
	kindAlive  = 35 // end window: sender is active and non-spoiled
	kindHigh   = 36 // end window: sender's remaining degree exceeds the threshold
	kindHiJoin = 37 // end window: high-degree node joins
)

// Params are the tunable constants of the phase.
type Params struct {
	RoundsC      float64 // c in R = ceil(c·log2 n) logical rounds per iteration
	TagExp       float64 // tagging probability Δ^{-TagExp}; paper: 0.5
	PreMarkExp   float64 // pre-marking probability 1/(PreMarkDamp·Δ^{PreMarkExp}); paper: 0.6
	PreMarkDamp  float64 // paper: 2
	ResampleDamp float64 // target marking probability 1/(ResampleDamp·deg~); paper: 5
	HighFactor   float64 // end-window threshold HighFactor·Δ^{PreMarkExp}; paper: 4
	NextExp      float64 // Δ' = Δ^{NextExp}; paper: 0.7
	// Stop iterating when Δ <= max(StopMin, (log2 n)^StopLogExp). The
	// paper's threshold is log^20 n, which is never reached at feasible
	// scale; the practical default keeps the same structure at log^2 n.
	StopLogExp float64
	StopMin    int
	MaxIters   int // safety cap on Corollary 3.2 iterations
}

// DefaultParams returns paper exponents with practical stopping rules.
func DefaultParams() Params {
	return Params{
		RoundsC:      2,
		TagExp:       0.5,
		PreMarkExp:   0.6,
		PreMarkDamp:  2,
		ResampleDamp: 5,
		HighFactor:   4,
		NextExp:      0.7,
		StopLogExp:   2,
		StopMin:      48,
		MaxIters:     64,
	}
}

// StopDelta returns the degree threshold below which the phase stops.
func (p Params) StopDelta(n int) int {
	log2n := math.Log2(math.Max(float64(n), 2))
	v := int(math.Pow(log2n, p.StopLogExp))
	if v < p.StopMin {
		v = p.StopMin
	}
	return v
}

// Plan is the timetable of one iteration.
type Plan struct {
	T     int // logical rounds (4 engine sub-rounds each)
	Delta int // degree bound the probabilities use
	// Derived probabilities and thresholds.
	TagProb     float64
	PreMarkProb float64
	HighThresh  float64
}

// MakePlan computes the timetable of one iteration for an n-node graph
// with degree bound delta.
func MakePlan(n, delta int, p Params) Plan {
	if n < 2 {
		n = 2
	}
	t := int(math.Ceil(p.RoundsC * math.Log2(float64(n))))
	if t < 1 {
		t = 1
	}
	d := float64(delta)
	return Plan{
		T:           t,
		Delta:       delta,
		TagProb:     math.Min(1, math.Pow(d, -p.TagExp)),
		PreMarkProb: math.Min(1, 1/(p.PreMarkDamp*math.Pow(d, p.PreMarkExp))),
		HighThresh:  p.HighFactor * math.Pow(d, p.PreMarkExp),
	}
}

// endRound returns the engine round of end-window step s (0..3).
func (pl Plan) endRound(s int) int { return 4*pl.T + s }

// Machine is the per-node automaton of one iteration.
type Machine struct {
	env  *sim.Env
	plan Plan
	damp float64 // ResampleDamp
	pmd  float64 // PreMarkDamp
	pexp float64 // PreMarkExp

	rv        int // first sampled logical round; -1 = never sampled
	tagged    bool
	premarked bool
	wake      []int
	wi        int

	av       int  // tagged-neighbor count observed in r_v
	marked   bool // survived re-sampling
	unmarked bool // lost the estimate comparison

	joined   bool
	inactive bool

	remDeg int  // end window: active non-spoiled neighbor count
	high   bool // end window: above threshold

	InMIS bool
}

var _ sim.Machine = (*Machine)(nil)

// Init implements sim.Machine.
func (m *Machine) Init(env *sim.Env) int {
	m.env = env
	tA := env.Rand.FirstSuccess(m.plan.TagProb, m.plan.T)
	tB := env.Rand.FirstSuccess(m.plan.PreMarkProb, m.plan.T)
	m.rv = -1
	switch {
	case tA >= 0 && (tB < 0 || tA < tB):
		m.rv, m.tagged = tA, true
	case tB >= 0 && (tA < 0 || tB < tA):
		m.rv, m.premarked = tB, true
	case tA >= 0 && tA == tB:
		m.rv, m.tagged, m.premarked = tA, true, true
	}
	wake := make(map[int]bool)
	if m.rv >= 0 {
		for _, l := range schedule.Set(m.plan.T, m.rv) {
			wake[4*l+3] = true
		}
		wake[4*m.rv] = true
		wake[4*m.rv+1] = true
		wake[4*m.rv+2] = true
	}
	// Every node participates in the end window.
	for s := 0; s < 4; s++ {
		wake[m.plan.endRound(s)] = true
	}
	m.wake = make([]int, 0, len(wake))
	for r := range wake {
		m.wake = append(m.wake, r)
	}
	sort.Ints(m.wake)
	m.wi = 0
	return m.wake[0]
}

// markProbFromCount returns the re-sampling probability from a
// tagged-neighbor count, via the degree estimate deg~ = Δ^{1/2}·A. Since
// estimates are compared between neighbors and the scale factor is common,
// comparisons use the raw counts.
func (m *Machine) markProbFromCount(av int) float64 {
	return markProb(m.plan, m.damp, m.pmd, m.pexp, av)
}

func markProb(plan Plan, damp, pmd, pexp float64, av int) float64 {
	cap1 := 1 / (pmd * math.Pow(float64(plan.Delta), pexp))
	if av == 0 {
		return 1 // estimate zero: resample with probability min{1, ∞}
	}
	est := math.Sqrt(float64(plan.Delta)) * float64(av)
	p := (1 / (damp * est)) / cap1
	// The pre-marking already applied probability cap1; re-sampling with
	// min{1, target/cap1} yields overall min{cap1, target}.
	if p > 1 {
		p = 1
	}
	return p
}

// Compose implements sim.Machine.
func (m *Machine) Compose(round int, out *sim.Outbox) {
	if round >= 4*m.plan.T {
		m.composeEnd(round-4*m.plan.T, out)
		return
	}
	l, sub := round/4, round%4
	switch sub {
	case 0:
		if l == m.rv && m.tagged && !m.inactive {
			out.Broadcast(sim.Msg{Kind: kindTag, Bits: 1})
		}
	case 1:
		if l == m.rv && m.premarked && !m.inactive {
			if m.env.Rand.Bernoulli(m.markProbFromCount(m.av)) {
				m.marked = true
				out.Broadcast(sim.Msg{
					Kind: kindMarked,
					A:    uint64(m.av),
					Bits: int32(1 + bitsFor(m.env.N)),
				})
			}
		}
	case 2:
		if l == m.rv && m.marked && !m.unmarked && !m.inactive {
			m.joined = true
			m.InMIS = true
			out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
		}
	case 3:
		if m.joined {
			out.Broadcast(sim.Msg{Kind: kindInMIS, Bits: 1})
		}
	}
}

func (m *Machine) composeEnd(s int, out *sim.Outbox) {
	switch s {
	case 0:
		if m.joined {
			out.Broadcast(sim.Msg{Kind: kindInMIS, Bits: 1})
		}
	case 1:
		// Active non-spoiled nodes announce themselves for the remaining-
		// degree count. Spoiled = sampled but did not join.
		if !m.inactive && !m.joined && m.rv < 0 {
			out.Broadcast(sim.Msg{Kind: kindAlive, Bits: 1})
		}
	case 2:
		if !m.inactive && !m.joined && float64(m.remDeg) > m.plan.HighThresh {
			m.high = true
			out.Broadcast(sim.Msg{Kind: kindHigh, Bits: 1})
		}
	case 3:
		if m.high {
			m.joined = true
			m.InMIS = true
			out.Broadcast(sim.Msg{Kind: kindHiJoin, Bits: 1})
		}
	}
}

// Deliver implements sim.Machine.
func (m *Machine) Deliver(round int, inbox []sim.Msg) int {
	if round >= 4*m.plan.T {
		m.deliverEnd(round-4*m.plan.T, inbox)
	} else {
		m.deliverMain(round, inbox)
	}
	m.wi++
	if m.wi >= len(m.wake) {
		return sim.Never
	}
	return m.wake[m.wi]
}

func (m *Machine) deliverMain(round int, inbox []sim.Msg) {
	l, sub := round/4, round%4
	switch sub {
	case 0:
		if l == m.rv && !m.inactive {
			for _, msg := range inbox {
				if msg.Kind == kindTag {
					m.av++
				}
			}
		}
	case 1:
		if l == m.rv && m.marked {
			for _, msg := range inbox {
				// Unmark when a marked neighbor's estimate is at least as
				// large ("removes its marking if deg~(v) <= deg~(u)").
				if msg.Kind == kindMarked && int(msg.A) >= m.av {
					m.unmarked = true
					break
				}
			}
		}
	case 2:
		if l == m.rv && !m.joined {
			for _, msg := range inbox {
				if msg.Kind == kindJoin {
					m.inactive = true
					break
				}
			}
		}
	case 3:
		if l < m.rv && !m.joined {
			for _, msg := range inbox {
				if msg.Kind == kindInMIS {
					m.inactive = true
					break
				}
			}
		}
	}
}

func (m *Machine) deliverEnd(s int, inbox []sim.Msg) {
	switch s {
	case 0:
		if !m.joined {
			for _, msg := range inbox {
				if msg.Kind == kindInMIS {
					m.inactive = true
					break
				}
			}
		}
	case 1:
		if !m.inactive && !m.joined {
			for _, msg := range inbox {
				if msg.Kind == kindAlive {
					m.remDeg++
				}
			}
		}
	case 2:
		if m.high {
			for _, msg := range inbox {
				if msg.Kind == kindHigh {
					// A high neighbor exists: do not join.
					m.high = false
					break
				}
			}
		}
	case 3:
		if !m.joined {
			for _, msg := range inbox {
				if msg.Kind == kindHiJoin {
					m.inactive = true
					break
				}
			}
		}
	}
}

// Sampled reports whether the node was tagged or pre-marked.
func (m *Machine) Sampled() bool { return m.rv >= 0 }

func bitsFor(n int) int {
	b := 1
	for p := 1; p < n; p <<= 1 {
		b++
	}
	return b
}

// IterStats records one iteration of the reduction loop.
type IterStats struct {
	Delta     int // the bound the iteration assumed
	NextDelta int // the bound handed to the next iteration
	MeasuredD int // measured residual max degree after the iteration
	Nodes     int // nodes entering the iteration
	Sampled   int // nodes that woke during the main window
	Res       *sim.Result
	Orig      []int32 // original node IDs of the iteration's subgraph
}

// Outcome of the full reduction loop (Corollary 3.2).
type Outcome struct {
	InSet    []bool // independent set on the input graph
	Residual []int  // surviving nodes of the input graph
	Iters    []IterStats
	// BoundExceeded counts iterations whose measured residual degree
	// exceeded the Δ^0.7 bound (a w.h.p. failure of Lemma 3.1).
	BoundExceeded int
}

// iterOut is one iteration's raw output, independent of engine path.
type iterOut struct {
	inSet   []bool
	sampled int
	res     *sim.Result
}

// runIterLegacy executes one iteration with per-node machines on the
// per-node engine.
func runIterLegacy(cur *graph.Graph, plan Plan, p Params, cfg sim.Config) (iterOut, error) {
	machines := make([]sim.Machine, cur.N())
	nodes := make([]*Machine, cur.N())
	for v := range machines {
		nodes[v] = &Machine{
			plan: plan,
			damp: p.ResampleDamp,
			pmd:  p.PreMarkDamp,
			pexp: p.PreMarkExp,
			rv:   -1,
		}
		machines[v] = nodes[v]
	}
	res, err := sim.Run(cur, machines, cfg)
	if err != nil {
		return iterOut{}, err
	}
	it := iterOut{inSet: make([]bool, cur.N()), res: res}
	for v, nm := range nodes {
		it.inSet[v] = nm.InMIS
		if nm.Sampled() {
			it.sampled++
		}
	}
	return it, nil
}

// runIterBatch executes one iteration with the struct-of-arrays automaton
// on the batch runtime.
func runIterBatch(cur *graph.Graph, plan Plan, p Params, cfg sim.Config) (iterOut, error) {
	b := NewBatchIter(cur, plan, p)
	res, err := sim.RunBatch(cur, b, cfg)
	if err != nil {
		return iterOut{}, err
	}
	return iterOut{inSet: b.inSet(), sampled: b.sampledCount(), res: res}, nil
}

// Run executes the iterated reduction on g until the degree bound falls
// under the stopping threshold. Each iteration runs the struct-of-arrays
// automaton on the batch runtime; results are byte-identical to RunLegacy
// (the per-node reference, enforced by TestBatchMatchesLegacy).
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	return runLoop(g, p, cfg, runIterBatch)
}

// RunLegacy executes the reduction with per-node machines on the per-node
// engine: the reference the batch path is differentially tested against.
func RunLegacy(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	return runLoop(g, p, cfg, runIterLegacy)
}

func runLoop(g *graph.Graph, p Params, cfg sim.Config,
	runIter func(*graph.Graph, Plan, Params, sim.Config) (iterOut, error)) (*Outcome, error) {
	out := &Outcome{InSet: make([]bool, g.N())}
	stop := p.StopDelta(g.N())
	cur := g
	orig := make([]int32, g.N())
	for v := range orig {
		orig[v] = int32(v)
	}
	delta := g.MaxDegree()
	for iter := 0; delta > stop && cur.N() > 0 && iter < p.MaxIters; iter++ {
		plan := MakePlan(g.N(), delta, p)
		iterCfg := cfg
		iterCfg.Seed = cfg.Seed + uint64(iter)*0x9e3779b97f4a7c15
		it, err := runIter(cur, plan, p, iterCfg)
		if err != nil {
			return nil, fmt.Errorf("degreduce iteration %d: %w", iter, err)
		}
		st := IterStats{Delta: delta, Nodes: cur.N(), Res: it.res, Orig: orig, Sampled: it.sampled}
		inSetLocal := it.inSet
		for v, in := range inSetLocal {
			if in {
				out.InSet[orig[v]] = true
			}
		}
		restLocal := verify.Residual(cur, inSetLocal)
		sub := graph.InducedSubgraph(cur, restLocal)
		st.MeasuredD = sub.MaxDegree()

		next := int(math.Ceil(math.Pow(float64(delta), p.NextExp)))
		if next >= delta {
			next = delta - 1 // guarantee progress at small Δ
		}
		st.NextDelta = next
		if st.MeasuredD > next {
			out.BoundExceeded++
		}
		out.Iters = append(out.Iters, st)

		newOrig := make([]int32, sub.N())
		for i, pv := range sub.Orig {
			newOrig[i] = orig[pv]
		}
		cur, orig, delta = sub.Graph, newOrig, next
	}
	out.Residual = make([]int, 0, cur.N())
	for v := 0; v < cur.N(); v++ {
		out.Residual = append(out.Residual, int(orig[v]))
	}
	sort.Ints(out.Residual)
	return out, nil
}
