package stream

import (
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/verify"
)

// applyAll replays a trace against a self-checking engine, so every
// emitted update must be valid at its point of application.
func applyAll(t *testing.T, g *graph.Graph, trace [][]dynamic.Update) *dynamic.Engine {
	t.Helper()
	e, err := dynamic.New(g, verify.GreedyMIS(g), dynamic.Params{Seed: 1, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range trace {
		if _, err := e.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return e
}

func TestUniformChurn(t *testing.T) {
	g := graph.GNP(150, 8.0/150, 3)
	trace := UniformChurn(g, 100, 2, 42)
	if len(trace) != 100 {
		t.Fatalf("trace length %d", len(trace))
	}
	applyAll(t, g, trace)
	// Determinism.
	if !reflect.DeepEqual(trace, UniformChurn(g, 100, 2, 42)) {
		t.Fatal("trace not deterministic")
	}
	if reflect.DeepEqual(trace, UniformChurn(g, 100, 2, 43)) {
		t.Fatal("seed has no effect")
	}
}

func TestUniformChurnKeepsDensityStationary(t *testing.T) {
	g := graph.GNP(200, 10.0/200, 5)
	e := applyAll(t, g, UniformChurn(g, 500, 1, 7))
	m0 := g.M()
	if m := e.M(); m < m0/2 || m > m0*2 {
		t.Fatalf("density drifted: m0=%d m=%d", m0, m)
	}
}

func TestSlidingWindow(t *testing.T) {
	trace := SlidingWindow(100, 50, 300, 9)
	if len(trace) != 300 {
		t.Fatalf("trace length %d", len(trace))
	}
	g := graph.NewBuilder(100).Build() // empty start
	e := applyAll(t, g, trace)
	// Steady state keeps roughly `window` live edges.
	if m := e.M(); m < 40 || m > 51 {
		t.Fatalf("window not maintained: m=%d", m)
	}
	ins, del := 0, 0
	for _, b := range trace {
		for _, up := range b {
			switch up.Op {
			case dynamic.OpInsertEdge:
				ins++
			case dynamic.OpRemoveEdge:
				del++
			}
		}
	}
	if ins == 0 || del == 0 || del > ins {
		t.Fatalf("arrivals %d departures %d", ins, del)
	}
}

func TestHubAttack(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 11)
	trace := HubAttack(g, 40, 2)
	if len(trace) != 40 {
		t.Fatalf("trace length %d", len(trace))
	}
	for i, b := range trace {
		if i%2 == 0 {
			if len(b) != 2 || b[0].Op != dynamic.OpRemoveNode || b[1].Op != dynamic.OpInsertNode {
				t.Fatalf("kill batch %d malformed: %+v", i, b)
			}
		} else {
			if len(b) == 0 || b[0].Op != dynamic.OpInsertEdge {
				t.Fatalf("reconnect batch %d malformed: %+v", i, b)
			}
		}
	}
	e := applyAll(t, g, trace)
	if e.AliveCount() != g.N() {
		t.Fatalf("alive count %d, want %d (kill+replace)", e.AliveCount(), g.N())
	}
	// The attack must force large repair regions — a member hub's death
	// uncovers its whole neighborhood.
	if e.Stats().MaxRegion < 3 {
		t.Fatalf("max region %d — hub kills should uncover whole neighborhoods", e.Stats().MaxRegion)
	}
	if e.Stats().Evictions == 0 {
		t.Fatal("reconnects forced no evictions")
	}
}

func TestDegenerateUniverses(t *testing.T) {
	if got := len(UniformChurn(graph.Path(1), 5, 1, 1)); got != 5 {
		t.Fatalf("churn on 1 node: %d batches", got)
	}
	if got := len(SlidingWindow(0, 10, 5, 1)); got != 5 {
		t.Fatalf("window on 0 nodes: %d batches", got)
	}
	if got := len(HubAttack(graph.Path(1), 5, 1)); got != 0 {
		t.Fatalf("hub attack with no edges: %d batches", got)
	}
}

func TestUpdatesCount(t *testing.T) {
	trace := [][]dynamic.Update{{dynamic.InsEdge(0, 1)}, {}, {dynamic.DelEdge(0, 1), dynamic.InsNode()}}
	if got := Updates(trace); got != 3 {
		t.Fatalf("Updates = %d", got)
	}
}
