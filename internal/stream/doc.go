// Package stream generates deterministic update traces — workloads for
// the dynamic MIS engine. A trace is a sequence of batches; each batch is
// applied atomically by dynamic.Engine.Apply.
//
// Three workload classes are provided:
//
//   - UniformChurn: memoryless random edge toggles, the standard model for
//     steady background churn;
//   - SlidingWindow: edges arrive in stream order and expire after a fixed
//     window, modeling temporal contact graphs;
//   - HubAttack: an adaptive adversary that repeatedly kills the current
//     maximum-degree node and reintroduces it, forcing the largest
//     possible repair regions.
//
// Every generator simulates a shadow copy of the topology so that each
// emitted update is valid when applied in order (no duplicate insertions,
// no removals of absent edges), and is deterministic in its seed.
package stream
