package stream

import (
	"sort"

	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
)

// UniformChurn emits steps batches of `batch` edge toggles each, starting
// from g's topology: a uniform node pair is inserted when absent and
// removed when present, keeping density roughly stationary.
func UniformChurn(g *graph.Graph, steps, batch int, seed uint64) [][]dynamic.Update {
	if batch < 1 {
		batch = 1
	}
	n := g.N()
	if n < 2 {
		return make([][]dynamic.Update, steps)
	}
	r := rng.New(seed)
	present := make(map[[2]int32]bool, g.M())
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) < u {
				present[[2]int32{int32(v), u}] = true
			}
		}
	}
	trace := make([][]dynamic.Update, 0, steps)
	for t := 0; t < steps; t++ {
		b := make([]dynamic.Update, 0, batch)
		for k := 0; k < batch; k++ {
			// Uniform distinct pair, so every step emits exactly one toggle.
			u, v := r.Intn(n), r.Intn(n-1)
			if v >= u {
				v++
			}
			key := edgeKey(u, v)
			if present[key] {
				delete(present, key)
				b = append(b, dynamic.DelEdge(u, v))
			} else {
				present[key] = true
				b = append(b, dynamic.InsEdge(u, v))
			}
		}
		trace = append(trace, b)
	}
	return trace
}

// SlidingWindow emits steps batches over a fixed n-node universe: each
// step one fresh random edge arrives, and the edge that arrived window
// steps earlier departs — the classic sliding-window arrival model.
func SlidingWindow(n, window, steps int, seed uint64) [][]dynamic.Update {
	if window < 1 {
		window = 1
	}
	if n < 2 {
		return make([][]dynamic.Update, steps)
	}
	r := rng.New(seed)
	present := make(map[[2]int32]bool)
	queue := make([][2]int32, 0, window)
	trace := make([][]dynamic.Update, 0, steps)
	for t := 0; t < steps; t++ {
		var b []dynamic.Update
		// Draw a fresh absent edge (bounded retries keep determinism even
		// on near-complete windows).
		for try := 0; try < 32; try++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			key := edgeKey(u, v)
			if present[key] {
				continue
			}
			present[key] = true
			queue = append(queue, key)
			b = append(b, dynamic.InsEdge(u, v))
			break
		}
		if len(queue) > window {
			old := queue[0]
			queue = queue[1:]
			delete(present, old)
			b = append(b, dynamic.DelEdge(int(old[0]), int(old[1])))
		}
		trace = append(trace, b)
	}
	return trace
}

// HubAttack emits steps batches attacking the current maximum-degree
// node: first a batch that kills the hub and inserts an isolated
// replacement (the replacement must join the set, and a member hub's death
// uncovers its whole neighborhood), then a batch reconnecting the
// replacement to the hub's old neighbors (a fresh member acquiring a full
// neighborhood at once, forcing conflict evictions and their cascading
// re-elections). The adversarial worst case for repair locality.
func HubAttack(g *graph.Graph, steps int, seed uint64) [][]dynamic.Update {
	// Shadow topology: adjacency sets over a growing slot space.
	adj := make([]map[int32]struct{}, g.N())
	alive := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		alive[v] = true
		adj[v] = make(map[int32]struct{}, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			adj[v][u] = struct{}{}
		}
	}
	trace := make([][]dynamic.Update, 0, steps)
	for len(trace) < steps {
		hub := -1
		for v := range adj {
			if !alive[v] {
				continue
			}
			if hub < 0 || len(adj[v]) > len(adj[hub]) {
				hub = v
			}
		}
		if hub < 0 || len(adj[hub]) == 0 {
			break // no edges left to attack
		}
		neighbors := make([]int, 0, len(adj[hub]))
		for u := range adj[hub] {
			neighbors = append(neighbors, int(u))
		}
		sort.Ints(neighbors)

		// Batch A: kill the hub, insert an isolated replacement.
		trace = append(trace, []dynamic.Update{dynamic.DelNode(hub), dynamic.InsNode()})
		for u := range adj[hub] {
			delete(adj[u], int32(hub))
		}
		alive[hub] = false
		adj[hub] = nil
		id := int32(len(adj))
		adj = append(adj, make(map[int32]struct{}, len(neighbors)))
		alive = append(alive, true)
		if len(trace) >= steps {
			break
		}

		// Batch B: wire the replacement into the old neighborhood.
		reconnect := make([]dynamic.Update, 0, len(neighbors))
		for _, u := range neighbors {
			reconnect = append(reconnect, dynamic.InsEdge(int(id), u))
			adj[id][int32(u)] = struct{}{}
			adj[u][id] = struct{}{}
		}
		trace = append(trace, reconnect)
	}
	return trace
}

// Updates counts the individual updates in a trace.
func Updates(trace [][]dynamic.Update) int {
	n := 0
	for _, b := range trace {
		n += len(b)
	}
	return n
}

func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}
