// Package cluster provides the labeled-distance-tree (LDT) machinery of
// Section 2.3: rooted spanning trees in which every node knows its parent,
// its depth, and a global depth bound D, enabling broadcast and
// convergecast with O(1) awake rounds per node and O(D) total rounds.
//
// The scheduling trick (from [AMP22, BM21a], restated in the paper): in a
// broadcast, a node at depth d receives from its parent exactly at window
// round d−1 and forwards at round d; in a convergecast, a node at depth d
// receives from its children at window round D−2−d and sends its aggregate
// at round D−1−d. Every node is awake for at most two rounds per tree
// operation, and can compute those rounds locally from its depth.
package cluster
