package cluster

// Tree is the per-node LDT state.
type Tree struct {
	Parent int32 // local node index of the parent; -1 at the root
	Depth  int32
	CID    int32 // cluster identifier (the root's node index)
}

// IsRoot reports whether the node is its cluster's root.
func (t *Tree) IsRoot() bool { return t.Parent < 0 }

// Singleton initializes the tree as a fresh singleton cluster rooted at
// the node itself.
func Singleton(self int32) Tree {
	return Tree{Parent: -1, Depth: 0, CID: self}
}

// BroadcastSendRound returns the round (offset within a window of length
// D) at which a node of depth d forwards a broadcast message.
func BroadcastSendRound(d int) int { return d }

// BroadcastListenRound returns the window round at which a node of depth d
// receives the broadcast from its parent, or -1 for the root (which
// originates the message).
func BroadcastListenRound(d int) int { return d - 1 }

// ConvergecastSendRound returns the window round at which a node of depth
// d sends its aggregate to its parent (the root never sends).
func ConvergecastSendRound(d, depthBound int) int { return depthBound - 1 - d }

// ConvergecastListenRound returns the window round at which a node of
// depth d receives its children's aggregates, or -1 when the node cannot
// have children within the bound.
func ConvergecastListenRound(d, depthBound int) int {
	r := depthBound - 2 - d
	if r < 0 {
		return -1
	}
	return r
}

// OpAwakeRounds lists the (at most two) window rounds a node of depth d is
// awake during a tree operation of the given kind.
type OpKind int

// Tree operation kinds.
const (
	OpBroadcast OpKind = iota + 1
	OpConvergecast
)

// AwakeRounds returns the window-relative rounds a node of depth d must be
// awake for the operation, in increasing order.
func AwakeRounds(op OpKind, d, depthBound int) []int {
	switch op {
	case OpBroadcast:
		if d == 0 {
			return []int{0}
		}
		if d >= depthBound {
			return nil
		}
		return []int{d - 1, d}
	case OpConvergecast:
		listen := ConvergecastListenRound(d, depthBound)
		send := ConvergecastSendRound(d, depthBound)
		if d == 0 {
			// The root only aggregates; it has no parent to send to.
			if listen < 0 {
				return nil
			}
			return []int{listen}
		}
		if send < 0 {
			return nil
		}
		if listen < 0 {
			return []int{send}
		}
		return []int{listen, send}
	default:
		return nil
	}
}
