package cluster

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

func TestSingleton(t *testing.T) {
	tr := Singleton(7)
	if !tr.IsRoot() || tr.Depth != 0 || tr.CID != 7 {
		t.Fatalf("singleton = %+v", tr)
	}
}

func TestSlotArithmetic(t *testing.T) {
	const D = 8
	// Broadcast: parent's send round must equal the child's listen round.
	for d := 1; d < D; d++ {
		if BroadcastSendRound(d-1) != BroadcastListenRound(d) {
			t.Fatalf("broadcast slots mismatch at depth %d", d)
		}
	}
	// Convergecast: child's send round must equal the parent's listen round.
	for d := 1; d < D; d++ {
		if ConvergecastSendRound(d, D) != ConvergecastListenRound(d-1, D) {
			t.Fatalf("convergecast slots mismatch at depth %d", d)
		}
	}
	if ConvergecastListenRound(D-1, D) != -1 {
		t.Fatal("deepest node should have no listen round")
	}
}

func TestAwakeRoundsAtMostTwo(t *testing.T) {
	const D = 16
	for d := 0; d < D; d++ {
		for _, op := range []OpKind{OpBroadcast, OpConvergecast} {
			rs := AwakeRounds(op, d, D)
			if len(rs) > 2 {
				t.Fatalf("op %d depth %d: %d awake rounds", op, d, len(rs))
			}
			for i := 1; i < len(rs); i++ {
				if rs[i] <= rs[i-1] {
					t.Fatalf("op %d depth %d: rounds not increasing: %v", op, d, rs)
				}
			}
			for _, r := range rs {
				if r < 0 || r >= D {
					t.Fatalf("op %d depth %d: round %d outside window", op, d, r)
				}
			}
		}
	}
}

// treeOpMachine runs one broadcast followed by one convergecast on a path
// graph rooted at node 0, exercising the slot schedule end to end: the
// broadcast distributes a value from the root, the convergecast sums node
// IDs back up.
type treeOpMachine struct {
	env   *sim.Env
	tree  Tree
	D     int
	wake  []int
	wi    int
	got   uint64 // broadcast payload received
	sum   uint64 // convergecast aggregate
	final uint64 // root only: total
}

func (m *treeOpMachine) Init(env *sim.Env) int {
	m.env = env
	// On a path, node v's parent is v-1; depth = v.
	m.tree = Tree{Parent: int32(env.Node - 1), Depth: int32(env.Node), CID: 0}
	if env.Node == 0 {
		m.tree.Parent = -1
	}
	m.sum = uint64(env.Node)
	for _, r := range AwakeRounds(OpBroadcast, int(m.tree.Depth), m.D) {
		m.wake = append(m.wake, r)
	}
	for _, r := range AwakeRounds(OpConvergecast, int(m.tree.Depth), m.D) {
		m.wake = append(m.wake, m.D+r)
	}
	if len(m.wake) == 0 {
		return sim.Never
	}
	return m.wake[0]
}

func (m *treeOpMachine) Compose(round int, out *sim.Outbox) {
	if round < m.D { // broadcast window
		if round == BroadcastSendRound(int(m.tree.Depth)) {
			payload := m.got
			if m.tree.IsRoot() {
				payload = 42
			}
			// Forward to the child (node+1) if it exists.
			if m.env.Node+1 < m.env.N {
				out.Send(int32(m.env.Node+1), sim.Msg{Kind: 1, A: payload, Bits: 16})
			}
		}
		return
	}
	w := round - m.D // convergecast window
	if w == ConvergecastSendRound(int(m.tree.Depth), m.D) && !m.tree.IsRoot() {
		out.Send(m.tree.Parent, sim.Msg{Kind: 2, A: m.sum, Bits: 16})
	}
}

func (m *treeOpMachine) Deliver(round int, inbox []sim.Msg) int {
	for _, msg := range inbox {
		switch msg.Kind {
		case 1:
			m.got = msg.A
		case 2:
			m.sum += msg.A
		}
	}
	if m.tree.IsRoot() && round == m.D+ConvergecastListenRound(0, m.D) {
		m.final = m.sum
	}
	m.wi++
	if m.wi >= len(m.wake) {
		return sim.Never
	}
	return m.wake[m.wi]
}

func TestBroadcastConvergecastOnPath(t *testing.T) {
	const n = 9
	g := graph.Path(n)
	machines := make([]sim.Machine, n)
	nodes := make([]*treeOpMachine, n)
	for v := range machines {
		nodes[v] = &treeOpMachine{D: n}
		machines[v] = nodes[v]
	}
	res, err := sim.Run(g, machines, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every node received the root's broadcast value.
	for v := 1; v < n; v++ {
		if nodes[v].got != 42 {
			t.Fatalf("node %d got %d from broadcast", v, nodes[v].got)
		}
	}
	// The root aggregated the full ID sum: 0+1+...+8 = 36.
	if nodes[0].final != 36 {
		t.Fatalf("root aggregate = %d, want 36", nodes[0].final)
	}
	// O(1) awake per node per operation: at most 4 awake rounds total.
	if res.MaxAwake() > 4 {
		t.Fatalf("MaxAwake = %d, want <= 4", res.MaxAwake())
	}
	// Both operations take O(D) rounds.
	if res.Rounds > 2*n {
		t.Fatalf("rounds = %d, want <= %d", res.Rounds, 2*n)
	}
}
