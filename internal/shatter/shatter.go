// Package shatter implements Phase II of both algorithms (Section 2.2,
// Lemma 2.6): given the poly(log n)-degree residual left by Phase I, run
// the desire-level dynamics of [Gha16] with every node awake, so that the
// undecided survivors form only small ("shattered") connected components.
//
// The phase costs O(log Δ) rounds with all nodes awake — affordable
// because Phase I already reduced Δ to poly(log n), so this is O(log log n)
// energy. The paper additionally clusters survivors into
// O(log log n)-diameter clusters via [Gha16, Gha19]; as documented in
// DESIGN.md (substitution 2), this implementation starts Phase III from
// singleton clusters, which leaves Phase III's iteration count and both
// headline complexities unchanged because components have poly(log n) size
// either way.
package shatter

import (
	"fmt"
	"math"

	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// Params are the tunable constants of the phase.
type Params struct {
	// RoundsC scales the round count: rounds = ceil(RoundsC·log2(Δ+2)) +
	// Floor. The analysis needs Θ(log Δ) rounds for the per-node
	// undecided-probability to reach 1/poly(Δ).
	RoundsC float64
	Floor   int
}

// DefaultParams returns practical constants: enough rounds that the
// survivor components are small, short enough that shattering does not
// degenerate into running the dynamics to completion (which would spend
// Θ(log n)-style energy on the last deciders and leave Phase III idle).
func DefaultParams() Params { return Params{RoundsC: 2, Floor: 4} }

// Rounds returns the logical round count used for maximum degree maxDeg.
func (p Params) Rounds(maxDeg int) int {
	return int(math.Ceil(p.RoundsC*math.Log2(float64(maxDeg+2)))) + p.Floor
}

// Outcome of a shattering run.
type Outcome struct {
	InSet        []bool  // independent set found by the dynamics
	Survivors    []int   // undecided nodes
	Components   [][]int // survivor components (indices into the input graph)
	MaxComponent int
	Rounds       int
	Res          *sim.Result
}

// Run executes the phase on g.
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	rounds := p.Rounds(g.MaxDegree())
	inSet, survivors, res, err := ghaffari.RunShatter(g, rounds, cfg)
	if err != nil {
		return nil, fmt.Errorf("shatter: %w", err)
	}
	out := &Outcome{InSet: inSet, Survivors: survivors, Rounds: rounds, Res: res}
	if len(survivors) > 0 {
		sub := graph.InducedSubgraph(g, survivors)
		for _, comp := range graph.Components(sub.Graph) {
			mapped := make([]int, len(comp))
			for i, v := range comp {
				mapped[i] = int(sub.Orig[v])
			}
			out.Components = append(out.Components, mapped)
			if len(comp) > out.MaxComponent {
				out.MaxComponent = len(comp)
			}
		}
	}
	return out, nil
}
