package shatter

import (
	"fmt"
	"math"

	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// Params are the tunable constants of the phase.
type Params struct {
	// RoundsC scales the round count: rounds = ceil(RoundsC·log2(Δ+2)) +
	// Floor. The analysis needs Θ(log Δ) rounds for the per-node
	// undecided-probability to reach 1/poly(Δ).
	RoundsC float64
	Floor   int
}

// DefaultParams returns practical constants: enough rounds that the
// survivor components are small, short enough that shattering does not
// degenerate into running the dynamics to completion (which would spend
// Θ(log n)-style energy on the last deciders and leave Phase III idle).
func DefaultParams() Params { return Params{RoundsC: 2, Floor: 4} }

// Rounds returns the logical round count used for maximum degree maxDeg.
func (p Params) Rounds(maxDeg int) int {
	return int(math.Ceil(p.RoundsC*math.Log2(float64(maxDeg+2)))) + p.Floor
}

// Outcome of a shattering run.
type Outcome struct {
	InSet        []bool  // independent set found by the dynamics
	Survivors    []int   // undecided nodes
	Components   [][]int // survivor components (indices into the input graph)
	MaxComponent int
	Rounds       int
	Res          *sim.Result
}

// Run executes the phase on g. The dynamics run as a struct-of-arrays
// automaton on the batch runtime (ghaffari.Batch); results are
// byte-identical to RunLegacy (the per-node reference).
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	return run(g, p, cfg, ghaffari.RunShatter)
}

// RunLegacy executes the phase with the per-node machines on the per-node
// engine: the reference the batch path is differentially tested against.
func RunLegacy(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	return run(g, p, cfg, ghaffari.RunShatterLegacy)
}

func run(g *graph.Graph, p Params, cfg sim.Config,
	shatter func(*graph.Graph, int, sim.Config) ([]bool, []int, *sim.Result, error)) (*Outcome, error) {
	rounds := p.Rounds(g.MaxDegree())
	inSet, survivors, res, err := shatter(g, rounds, cfg)
	if err != nil {
		return nil, fmt.Errorf("shatter: %w", err)
	}
	out := &Outcome{InSet: inSet, Survivors: survivors, Rounds: rounds, Res: res}
	if len(survivors) > 0 {
		sub := graph.InducedSubgraph(g, survivors)
		for _, comp := range graph.Components(sub.Graph) {
			mapped := make([]int, len(comp))
			for i, v := range comp {
				mapped[i] = int(sub.Orig[v])
			}
			out.Components = append(out.Components, mapped)
			if len(comp) > out.MaxComponent {
				out.MaxComponent = len(comp)
			}
		}
	}
	return out, nil
}
