package shatter

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestShatterSmallComponents(t *testing.T) {
	// A polylog-degree graph, like the residual Phase I leaves behind.
	g := graph.NearRegular(5000, 12, 3)
	out, err := Run(g, DefaultParams(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
		t.Fatalf("dependent edge (%d,%d)", u, v)
	}
	// Lemma 2.6 regime: survivor components should be tiny relative to n.
	if out.MaxComponent > 250 {
		t.Fatalf("max survivor component %d of n=%d; shattering failed", out.MaxComponent, g.N())
	}
	if len(out.Survivors) > g.N()/10 {
		t.Fatalf("%d/%d survivors", len(out.Survivors), g.N())
	}
}

func TestComponentsPartitionSurvivors(t *testing.T) {
	g := graph.GNP(2000, 6.0/2000, 5)
	out, err := Run(g, DefaultParams(), sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, comp := range out.Components {
		for _, v := range comp {
			if seen[v] {
				t.Fatalf("node %d in two components", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != len(out.Survivors) {
		t.Fatalf("components cover %d nodes, survivors %d", total, len(out.Survivors))
	}
	for _, v := range out.Survivors {
		if !seen[v] {
			t.Fatalf("survivor %d not in any component", v)
		}
	}
}

func TestEnergyEqualsRounds(t *testing.T) {
	// Phase II keeps all nodes awake: energy = 2 engine rounds per logical
	// round.
	g := graph.GNP(500, 0.02, 7)
	out, err := Run(g, DefaultParams(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Res.MaxAwake(); got > 2*out.Rounds {
		t.Fatalf("MaxAwake %d > 2*rounds %d", got, 2*out.Rounds)
	}
}

func TestEmptyGraph(t *testing.T) {
	out, err := Run(graph.NewBuilder(0).Build(), DefaultParams(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Survivors) != 0 || out.MaxComponent != 0 {
		t.Fatal("empty graph produced survivors")
	}
}

func TestIsolatedNodesDecideFast(t *testing.T) {
	g := graph.NewBuilder(50).Build()
	out, err := Run(g, DefaultParams(), sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Survivors) != 0 {
		t.Fatalf("isolated survivors: %d", len(out.Survivors))
	}
	if got := verify.Count(out.InSet); got != 50 {
		t.Fatalf("isolated nodes in set: %d", got)
	}
}
