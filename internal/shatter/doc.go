// Package shatter implements Phase II of both algorithms (Section 2.2,
// Lemma 2.6): given the poly(log n)-degree residual left by Phase I, run
// the desire-level dynamics of [Gha16] with every node awake, so that the
// undecided survivors form only small ("shattered") connected components.
//
// The phase costs O(log Δ) rounds with all nodes awake — affordable
// because Phase I already reduced Δ to poly(log n), so this is O(log log n)
// energy. The paper additionally clusters survivors into
// O(log log n)-diameter clusters via [Gha16, Gha19]; as a documented
// substitution, this implementation starts Phase III from
// singleton clusters, which leaves Phase III's iteration count and both
// headline complexities unchanged because components have poly(log n) size
// either way.
package shatter
