package shatter

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestBatchMatchesLegacy is the differential gate of the phase's batch
// path: Run (ghaffari.Batch on the batch runtime) must produce the same
// Outcome — set, survivors, components — and identical complexity counters
// as RunLegacy (per-node machines on the per-node engine), for every
// worker count.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(600, 10.0/600, 3)},
		{"rgg", graph.RGG(300, 8, 5)},
		{"clique", graph.Complete(50)},
		{"isolated", graph.FromEdges(10, [][2]int{{0, 1}})},
		{"empty", graph.FromEdges(0, nil)},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			ref, err := RunLegacy(tc.g, DefaultParams(), sim.Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d legacy: %v", tc.name, seed, err)
			}
			for _, w := range []int{1, 2, 8} {
				got, err := Run(tc.g, DefaultParams(), sim.Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s seed=%d workers=%d batch: %v", tc.name, seed, w, err)
				}
				for v := range ref.InSet {
					if got.InSet[v] != ref.InSet[v] {
						t.Fatalf("%s seed=%d workers=%d: InSet[%d] differs", tc.name, seed, w, v)
					}
				}
				if len(got.Survivors) != len(ref.Survivors) || got.MaxComponent != ref.MaxComponent ||
					len(got.Components) != len(ref.Components) || got.Rounds != ref.Rounds {
					t.Fatalf("%s seed=%d workers=%d: outcome shape differs\n legacy: %d surv, %d comps (max %d), %d rounds\n batch:  %d surv, %d comps (max %d), %d rounds",
						tc.name, seed, w,
						len(ref.Survivors), len(ref.Components), ref.MaxComponent, ref.Rounds,
						len(got.Survivors), len(got.Components), got.MaxComponent, got.Rounds)
				}
				for i := range got.Survivors {
					if got.Survivors[i] != ref.Survivors[i] {
						t.Fatalf("%s seed=%d workers=%d: survivor[%d] differs", tc.name, seed, w, i)
					}
				}
				r, gr := ref.Res, got.Res
				if gr.Rounds != r.Rounds || gr.MsgsSent != r.MsgsSent || gr.MsgsDropped != r.MsgsDropped ||
					gr.BitsTotal != r.BitsTotal || gr.BitsMax != r.BitsMax || gr.Violations != r.Violations {
					t.Fatalf("%s seed=%d workers=%d: counters differ\n legacy: %+v\n batch:  %+v",
						tc.name, seed, w, r, gr)
				}
				for v := range gr.Awake {
					if gr.Awake[v] != r.Awake[v] {
						t.Fatalf("%s seed=%d workers=%d: Awake[%d] differs", tc.name, seed, w, v)
					}
				}
			}
		}
	}
}
