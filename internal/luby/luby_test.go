package luby

import (
	"math"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func runOn(t *testing.T, g *graph.Graph, seed uint64) ([]bool, *sim.Result) {
	t.Helper()
	inSet, res, err := Run(g, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return inSet, res
}

func TestComputesMIS(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse", graph.GNP(500, 0.01, 1)},
		{"gnp-dense", graph.GNP(300, 0.2, 2)},
		{"complete", graph.Complete(64)},
		{"star", graph.Star(100)},
		{"cycle", graph.Cycle(101)},
		{"path", graph.Path(64)},
		{"tree", graph.RandomTree(300, 3)},
		{"grid", graph.Grid2D(17, 19)},
		{"ba", graph.BarabasiAlbert(400, 3, 4)},
		{"edgeless", graph.NewBuilder(40).Build()},
		{"single", graph.Path(1)},
		{"cliquechain", graph.CliqueChain(8, 7)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inSet, _ := runOn(t, c.g, 7)
			if err := verify.Check(c.g, inSet); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManySeeds(t *testing.T) {
	g := graph.GNP(200, 0.05, 9)
	for seed := uint64(0); seed < 20; seed++ {
		inSet, _, err := Run(g, sim.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Check(g, inSet); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCliqueMISSizeOne(t *testing.T) {
	inSet, _ := runOn(t, graph.Complete(50), 3)
	if got := verify.Count(inSet); got != 1 {
		t.Fatalf("clique MIS size = %d, want 1", got)
	}
}

func TestEdgelessAllJoin(t *testing.T) {
	g := graph.NewBuilder(25).Build()
	inSet, res := runOn(t, g, 1)
	if got := verify.Count(inSet); got != 25 {
		t.Fatalf("edgeless MIS size = %d, want 25", got)
	}
	// Isolated nodes decide in the very first logical round.
	if res.MaxAwake() > 3 {
		t.Fatalf("isolated nodes awake %d rounds, want <= 3", res.MaxAwake())
	}
}

func TestLogarithmicRounds(t *testing.T) {
	// Luby terminates in O(log n) logical rounds w.h.p. Use a generous
	// constant: 12 * log2(n) logical rounds = 36 log2 n engine rounds.
	for _, n := range []int{100, 1000, 4000} {
		g := graph.GNP(n, 10/float64(n), uint64(n))
		_, res := runOn(t, g, 5)
		bound := int(36 * math.Log2(float64(n)))
		if res.Rounds > bound {
			t.Fatalf("n=%d: %d rounds exceeds %d", n, res.Rounds, bound)
		}
	}
}

func TestEnergyEqualsDecisionTime(t *testing.T) {
	// The point of the baseline: max awake grows with log n (it is within
	// a factor 3 of the total rounds since undecided nodes stay awake).
	g := graph.GNP(2000, 0.005, 11)
	_, res := runOn(t, g, 3)
	if res.MaxAwake() < res.Rounds/3 {
		t.Fatalf("maxAwake %d unexpectedly far below rounds %d", res.MaxAwake(), res.Rounds)
	}
}

func TestCongestCompliance(t *testing.T) {
	g := graph.GNP(1000, 0.01, 13)
	_, res := runOn(t, g, 1)
	if res.Violations != 0 {
		t.Fatalf("CONGEST violations: %d (bitsMax=%d)", res.Violations, res.BitsMax)
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(300, 0.02, 17)
	a, _ := runOn(t, g, 42)
	b, _ := runOn(t, g, 42)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d output differs across identical runs", v)
		}
	}
}
