package luby

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestBatchMatchesLegacy is the differential gate of the batch port: for
// every graph shape, seed, and worker count, the struct-of-arrays batch
// automaton must produce byte-identical output and identical complexity
// counters to the per-node reference implementation.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(600, 10.0/600, 3)},
		{"rgg", graph.RGG(400, 8, 5)},
		{"star", graph.Star(80)},
		{"clique", graph.Complete(60)},
		{"path", graph.Path(50)},
		{"isolated", graph.FromEdges(10, [][2]int{{0, 1}})}, // 8 degree-0 nodes
		{"empty", graph.FromEdges(0, nil)},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			refSet, refRes, err := RunLegacy(tc.g, sim.Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d legacy: %v", tc.name, seed, err)
			}
			for _, w := range []int{1, 2, 8} {
				set, res, err := Run(tc.g, sim.Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s seed=%d workers=%d batch: %v", tc.name, seed, w, err)
				}
				for v := range refSet {
					if set[v] != refSet[v] {
						t.Fatalf("%s seed=%d workers=%d: InSet[%d] = %v, legacy %v",
							tc.name, seed, w, v, set[v], refSet[v])
					}
				}
				if res.Rounds != refRes.Rounds || res.MsgsSent != refRes.MsgsSent ||
					res.MsgsDropped != refRes.MsgsDropped || res.BitsTotal != refRes.BitsTotal ||
					res.BitsMax != refRes.BitsMax || res.Violations != refRes.Violations {
					t.Fatalf("%s seed=%d workers=%d: counters differ\n legacy: %+v\n batch:  %+v",
						tc.name, seed, w, refRes, res)
				}
				for v := range res.Awake {
					if res.Awake[v] != refRes.Awake[v] {
						t.Fatalf("%s seed=%d workers=%d: Awake[%d] = %d, legacy %d",
							tc.name, seed, w, v, res.Awake[v], refRes.Awake[v])
					}
				}
			}
		}
	}
}

// TestBatchMemReuse runs many simulations through one pooled Mem and checks
// each run still matches a fresh-buffer run (the stamp-epoch trick must not
// leak awake state across runs of different sizes).
func TestBatchMemReuse(t *testing.T) {
	mem := sim.NewMem()
	graphs := []*graph.Graph{
		graph.GNP(300, 8.0/300, 1),
		graph.GNP(120, 0.1, 2), // smaller: buffers shrink logically, not physically
		graph.Complete(40),
		graph.GNP(300, 8.0/300, 9),
	}
	for i, g := range graphs {
		for seed := uint64(1); seed <= 4; seed++ {
			fresh, fres, err := Run(g, sim.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			pooled, pres, err := Run(g, sim.Config{Seed: seed, Mem: mem})
			if err != nil {
				t.Fatal(err)
			}
			for v := range fresh {
				if fresh[v] != pooled[v] {
					t.Fatalf("graph %d seed %d: pooled InSet[%d] differs", i, seed, v)
				}
			}
			if fres.Rounds != pres.Rounds || fres.MsgsSent != pres.MsgsSent ||
				fres.MsgsDropped != pres.MsgsDropped || fres.BitsTotal != pres.BitsTotal {
				t.Fatalf("graph %d seed %d: pooled counters differ\n fresh:  %+v\n pooled: %+v",
					i, seed, fres, pres)
			}
		}
	}
}

func benchLuby(b *testing.B, n int, batch bool) {
	g := graph.GNP(n, 10.0/float64(n), uint64(n))
	var awake int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *sim.Result
		var err error
		if batch {
			_, res, err = Run(g, sim.Config{Seed: 1})
		} else {
			_, res, err = RunLegacy(g, sim.Config{Seed: 1})
		}
		if err != nil {
			b.Fatal(err)
		}
		awake = 0
		for _, a := range res.Awake {
			awake += int64(a)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(awake), "ns/awake-node-round")
}

func BenchmarkLubyLegacyGNP4096(b *testing.B)  { benchLuby(b, 4096, false) }
func BenchmarkLubyBatchGNP4096(b *testing.B)   { benchLuby(b, 4096, true) }
func BenchmarkLubyLegacyGNP16384(b *testing.B) { benchLuby(b, 16384, false) }
func BenchmarkLubyBatchGNP16384(b *testing.B)  { benchLuby(b, 16384, true) }
