package luby

import (
	"github.com/energymis/energymis/internal/sim"
)

// Message kinds.
const (
	kindMark    = 1 // A = remaining degree of the sender
	kindJoin    = 2
	kindRemoved = 3
)

// Machine is the per-node Luby automaton. After the run, InMIS reports the
// node's output.
type Machine struct {
	env *sim.Env

	InMIS   bool
	decided bool

	activeDeg   int
	marked      bool
	justDecided bool
	removedSent bool
}

var _ sim.Machine = (*Machine)(nil)

// Init implements sim.Machine.
func (m *Machine) Init(env *sim.Env) int {
	m.env = env
	m.activeDeg = env.Degree
	return 0
}

// Compose implements sim.Machine. Engine round 3r+s is sub-round s of
// logical round r.
func (m *Machine) Compose(round int, out *sim.Outbox) {
	switch round % 3 {
	case 0: // marking sub-round
		if m.decided {
			return
		}
		p := 1.0
		if m.activeDeg > 0 {
			p = 1 / (2 * float64(m.activeDeg))
		}
		m.marked = m.env.Rand.Bernoulli(p)
		if m.marked {
			out.Broadcast(sim.Msg{
				Kind: kindMark,
				A:    uint64(m.activeDeg),
				Bits: int32(bitsFor(m.env.N)),
			})
		}
	case 1: // join sub-round
		if m.marked && !m.decided {
			out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
		}
	case 2: // removal notification sub-round
		if m.justDecided && !m.removedSent {
			out.Broadcast(sim.Msg{Kind: kindRemoved, Bits: 1})
			m.removedSent = true
		}
	}
}

// Deliver implements sim.Machine.
func (m *Machine) Deliver(round int, inbox []sim.Msg) int {
	switch round % 3 {
	case 0:
		// Unmark if a marked neighbor beats us: higher remaining degree,
		// ties broken toward the higher ID ("remove the marking of the
		// endpoint with the lower degree, breaking ties arbitrarily").
		if m.marked {
			for _, msg := range inbox {
				if msg.Kind != kindMark {
					continue
				}
				d := int(msg.A)
				if d > m.activeDeg || (d == m.activeDeg && msg.From > int32(m.env.Node)) {
					m.marked = false
					break
				}
			}
		}
		return round + 1
	case 1:
		if !m.decided {
			if m.marked {
				// No conflicting marked neighbor remained: join.
				m.InMIS = true
				m.decided = true
				m.justDecided = true
			}
			for _, msg := range inbox {
				if msg.Kind == kindJoin && !m.InMIS {
					m.decided = true
					m.justDecided = true
				}
			}
		}
		m.marked = false
		return round + 1
	default:
		for _, msg := range inbox {
			if msg.Kind == kindRemoved {
				m.activeDeg--
			}
		}
		if m.decided {
			return sim.Never
		}
		return round + 1
	}
}

func bitsFor(n int) int {
	b := 1
	for p := 1; p < n; p <<= 1 {
		b++
	}
	return b
}
