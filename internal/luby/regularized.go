package luby

import (
	"fmt"
	"math"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// Regularized Luby is the slowed-down variant the paper's Section 2.1
// builds on, run here in its basic full-MIS form (without the one-shot
// marking restriction of Phase I): iteration i marks every undecided node
// with probability 2^i/(damp·Δ) for c·log n rounds, so that after
// iteration i the maximum undecided degree is Δ/2^i w.h.p.; after
// ⌈log Δ⌉ iterations all remaining nodes are isolated and join. Nodes may
// be marked many times, so every undecided node must stay awake —
// the energy blow-up that motivates Phase I's modifications (ablation A1).

// RegularizedParams are the constants of the basic regularized Luby.
type RegularizedParams struct {
	RoundsPerIterC float64 // c in "⌈c·log2 n⌉ rounds per iteration"
	MarkDamp       float64 // the 10 in 2^i/(10Δ)
}

// DefaultRegularizedParams returns the paper's structure with a practical
// round multiplier.
func DefaultRegularizedParams() RegularizedParams {
	return RegularizedParams{RoundsPerIterC: 1, MarkDamp: 10}
}

// regMachine is the per-node automaton. Logical round k occupies engine
// rounds 2k (mark + conflict) and 2k+1 (join notification).
type regMachine struct {
	env  *sim.Env
	p    RegularizedParams
	rpi  int // rounds per iteration
	T    int // total logical rounds
	dMax int

	marked  bool
	decided bool
	InMIS   bool
}

var _ sim.Machine = (*regMachine)(nil)

func (m *regMachine) Init(env *sim.Env) int {
	m.env = env
	return 0
}

func (m *regMachine) prob(k int) float64 {
	i := k / m.rpi
	p := math.Pow(2, float64(i)) / (m.p.MarkDamp * float64(m.dMax))
	if p > 1 {
		p = 1
	}
	return p
}

func (m *regMachine) Compose(round int, out *sim.Outbox) {
	k, sub := round/2, round%2
	if m.decided {
		return
	}
	if k >= m.T {
		// Epilogue (w.h.p. unreached): greedy by identifier among the
		// leftover undecided nodes, so the output is always an MIS.
		if sub == 0 {
			out.Broadcast(sim.Msg{Kind: kindMark, A: uint64(m.env.Node), Bits: int32(bitsFor(m.env.N))})
		} else if m.marked {
			m.InMIS = true
			m.decided = true
			out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
		}
		return
	}
	if sub == 0 {
		m.marked = m.env.Rand.Bernoulli(m.prob(k))
		if m.marked {
			out.Broadcast(sim.Msg{Kind: kindMark, Bits: 1})
		}
		return
	}
	if m.marked {
		// No marked neighbor seen: join and announce.
		m.InMIS = true
		m.decided = true
		out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
	}
}

func (m *regMachine) Deliver(round int, inbox []sim.Msg) int {
	k, sub := round/2, round%2
	if sub == 0 {
		if k >= m.T {
			// Epilogue: join next sub-round iff no undecided neighbor has
			// a larger identifier.
			m.marked = true
			for _, msg := range inbox {
				if msg.Kind == kindMark && int(msg.A) > m.env.Node {
					m.marked = false
					break
				}
			}
		} else if m.marked {
			for _, msg := range inbox {
				if msg.Kind == kindMark {
					m.marked = false
					break
				}
			}
		}
		return round + 1
	}
	for _, msg := range inbox {
		if msg.Kind == kindJoin && !m.InMIS {
			m.decided = true
		}
	}
	if m.decided {
		return sim.Never
	}
	return round + 1
}

// RunRegularized executes basic regularized Luby on g.
func RunRegularized(g *graph.Graph, p RegularizedParams, cfg sim.Config) ([]bool, *sim.Result, error) {
	n := g.N()
	dMax := g.MaxDegree()
	if dMax < 1 {
		dMax = 1
	}
	rpi := int(math.Ceil(p.RoundsPerIterC * math.Log2(math.Max(2, float64(n)))))
	iters := int(math.Ceil(math.Log2(float64(dMax)))) + 1
	if iters < 1 {
		iters = 1
	}
	machines := make([]sim.Machine, n)
	nodes := make([]*regMachine, n)
	for v := range machines {
		nodes[v] = &regMachine{p: p, rpi: rpi, T: iters * rpi, dMax: dMax}
		machines[v] = nodes[v]
	}
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("luby regularized: %w", err)
	}
	inSet := make([]bool, n)
	for v, nm := range nodes {
		inSet[v] = nm.InMIS
	}
	return inSet, res, nil
}
