// Package luby implements Luby's classic randomized MIS algorithm
// [Lub86, ABI86], the O(log n)-round state of the art that the paper uses
// as its time-complexity yardstick (Section 1.2).
//
// The variant implemented is the degree-based one described in Section 3.1
// of the paper: per round every undecided node marks itself with
// probability 1/(2 deg(v)), where deg counts undecided neighbors; for any
// edge with both endpoints marked, the endpoint with lower degree (ties by
// lower ID) unmarks; surviving marked nodes join the MIS and their
// neighbors drop out.
//
// Energy behavior: a node stays awake until it is decided and has told its
// neighbors, so the energy complexity equals the time complexity — the
// Θ(log n) baseline the paper improves on.
package luby
