package luby

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestRegularizedComputesMIS(t *testing.T) {
	cases := []*graph.Graph{
		graph.GNP(600, 0.02, 1),
		graph.GNP(400, 0.2, 2),
		graph.Complete(100),
		graph.Star(200),
		graph.Cycle(99),
		graph.RandomTree(300, 3),
		graph.NewBuilder(30).Build(),
		graph.Path(1),
	}
	for gi, g := range cases {
		for seed := uint64(0); seed < 3; seed++ {
			inSet, _, err := RunRegularized(g, DefaultRegularizedParams(), sim.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Check(g, inSet); err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
		}
	}
}

func TestRegularizedEnergyIsHigh(t *testing.T) {
	// The ablation's point (A1): without one-shot marking, undecided
	// nodes stay awake through the iteration schedule, so energy tracks
	// Θ(log Δ · log n) rather than Phase I's O(log log n).
	g := graph.GNP(1500, 0.3, 5)
	inSet, res, err := RunRegularized(g, DefaultRegularizedParams(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(g, inSet); err != nil {
		t.Fatal(err)
	}
	if res.MaxAwake() < 20 {
		t.Fatalf("regularized Luby MaxAwake = %d; expected the always-awake blow-up", res.MaxAwake())
	}
}

func TestRegularizedDeterministic(t *testing.T) {
	g := graph.GNP(300, 0.05, 7)
	a, _, err := RunRegularized(g, DefaultRegularizedParams(), sim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunRegularized(g, DefaultRegularizedParams(), sim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestRegularizedCongest(t *testing.T) {
	g := graph.GNP(800, 0.1, 11)
	_, res, err := RunRegularized(g, DefaultRegularizedParams(), sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("violations: %d (bitsMax=%d)", res.Violations, res.BitsMax)
	}
}
