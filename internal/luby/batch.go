package luby

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/sim"
)

// Per-node flag bits of the batch automaton.
const (
	fDecided = 1 << iota
	fMarked
	fJustDecided
	fRemovedSent
	fInMIS
)

// Batch is the struct-of-arrays Luby automaton: the whole network's state
// in three flat arrays, driven whole-awake-sets at a time by the batch
// runtime. State transitions, message contents, and random draws are
// identical to the per-node Machine, so runs are byte-identical to the
// legacy path (enforced by TestBatchMatchesLegacy).
type Batch struct {
	g         *graph.Graph
	n         int
	markBits  int32
	activeDeg []int32
	flags     []uint8
	rands     []rng.Stream
}

var _ sim.BatchMachine = (*Batch)(nil)

// NewBatch builds the batch automaton for g.
func NewBatch(g *graph.Graph) *Batch {
	return &Batch{g: g, n: g.N()}
}

// InitAll implements sim.BatchMachine.
func (b *Batch) InitAll(env *sim.BatchEnv) []int {
	b.markBits = int32(bitsFor(env.N))
	b.activeDeg = make([]int32, b.n)
	b.flags = make([]uint8, b.n)
	b.rands = make([]rng.Stream, b.n)
	first := make([]int, b.n)
	for v := 0; v < b.n; v++ {
		b.activeDeg[v] = int32(b.g.Degree(v))
		b.rands[v] = rng.ForNode(env.Seed, v)
		first[v] = 0
	}
	return first
}

// ComposeAll implements sim.BatchMachine. Engine round 3r+s is sub-round s
// of logical round r, exactly as in the per-node machine.
func (b *Batch) ComposeAll(round int, awake []int32, out *sim.BatchOutbox) {
	switch round % 3 {
	case 0: // marking sub-round
		for _, v := range awake {
			f := b.flags[v]
			if f&fDecided != 0 {
				continue
			}
			p := 1.0
			if d := b.activeDeg[v]; d > 0 {
				p = 1 / (2 * float64(d))
			}
			if b.rands[v].Bernoulli(p) {
				b.flags[v] = f | fMarked
				out.Broadcast(v, sim.Msg{
					Kind: kindMark,
					A:    uint64(b.activeDeg[v]),
					Bits: b.markBits,
				})
			} else {
				b.flags[v] = f &^ fMarked
			}
		}
	case 1: // join sub-round
		for _, v := range awake {
			if f := b.flags[v]; f&fMarked != 0 && f&fDecided == 0 {
				out.Broadcast(v, sim.Msg{Kind: kindJoin, Bits: 1})
			}
		}
	case 2: // removal notification sub-round
		for _, v := range awake {
			if f := b.flags[v]; f&fJustDecided != 0 && f&fRemovedSent == 0 {
				out.Broadcast(v, sim.Msg{Kind: kindRemoved, Bits: 1})
				b.flags[v] = f | fRemovedSent
			}
		}
	}
}

// DeliverAll implements sim.BatchMachine.
func (b *Batch) DeliverAll(round int, awake []int32, in sim.Inboxes, next []int) {
	switch round % 3 {
	case 0:
		for i, v := range awake {
			if b.flags[v]&fMarked != 0 {
				for _, msg := range in.At(i) {
					if msg.Kind != kindMark {
						continue
					}
					d := int32(msg.A)
					if d > b.activeDeg[v] || (d == b.activeDeg[v] && msg.From > v) {
						b.flags[v] &^= fMarked
						break
					}
				}
			}
			next[i] = round + 1
		}
	case 1:
		for i, v := range awake {
			f := b.flags[v]
			if f&fDecided == 0 {
				if f&fMarked != 0 {
					f |= fInMIS | fDecided | fJustDecided
				}
				for _, msg := range in.At(i) {
					if msg.Kind == kindJoin && f&fInMIS == 0 {
						f |= fDecided | fJustDecided
					}
				}
			}
			b.flags[v] = f &^ fMarked
			next[i] = round + 1
		}
	default:
		for i, v := range awake {
			for _, msg := range in.At(i) {
				if msg.Kind == kindRemoved {
					b.activeDeg[v]--
				}
			}
			if b.flags[v]&fDecided != 0 {
				next[i] = sim.Never
			} else {
				next[i] = round + 1
			}
		}
	}
}

// InSet returns the computed MIS membership after a run.
func (b *Batch) InSet() []bool {
	out := make([]bool, b.n)
	for v := range out {
		out[v] = b.flags[v]&fInMIS != 0
	}
	return out
}

// Run executes Luby's algorithm on g through the batch runtime and returns
// the MIS and the engine result. It is byte-identical to RunLegacy for
// every (graph, Config) — the batch form only removes per-node dispatch and
// allocation from the hot path.
func Run(g *graph.Graph, cfg sim.Config) ([]bool, *sim.Result, error) {
	b := NewBatch(g)
	res, err := sim.RunBatch(g, b, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("luby: %w", err)
	}
	return b.InSet(), res, nil
}

// RunLegacy executes the per-node Machine implementation on the per-node
// engine: the reference the batch path is differentially tested against.
func RunLegacy(g *graph.Graph, cfg sim.Config) ([]bool, *sim.Result, error) {
	machines := make([]sim.Machine, g.N())
	nodes := make([]Machine, g.N())
	for v := range machines {
		machines[v] = &nodes[v]
	}
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("luby: %w", err)
	}
	inSet := make([]bool, g.N())
	for v := range nodes {
		inSet[v] = nodes[v].InMIS
	}
	return inSet, res, nil
}
