// Package twin is the analytical twin of the simulator: it encodes the
// paper's closed-form complexity claims (Theorems 1.1/1.2 and the Section
// 4 averaged variants) as per-algorithm × per-metric growth shapes, fits
// their constants from multi-size sweep measurements by least squares
// (internal/stats), and evaluates fresh measurements against a committed
// TWIN_MIS.json baseline with tolerance bands. Because every measurement
// is deterministic in (graph, algorithm, seed), a curve leaving its band
// means the simulated algorithm itself changed shape — drift that
// byte-identical differential tests cannot express. See docs/TWIN.md.
package twin
