package twin

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Finding is the comparison of one re-fitted entry against its baseline:
// constant drift, the worst per-point drift, residual growth, and the
// out-of-band verdict with its reasons.
type Finding struct {
	Key   string
	Shape ShapeID

	BaseConstant float64
	CurConstant  float64
	// ConstantDrift is |cur−base|/base.
	ConstantDrift float64

	// MaxPointDrift is the worst relative deviation of a current point
	// from the baseline's measurement at the same n; WorstN is that size.
	MaxPointDrift float64
	WorstN        int

	// R2 and MaxRelResidual describe the current fit's quality.
	R2             float64
	R2OK           bool
	BaseResidual   float64
	MaxRelResidual float64

	OutOfBand bool
	Reasons   []string
}

// Evaluation is the outcome of evaluating a re-fitted baseline against
// the committed one.
type Evaluation struct {
	Findings []Finding
	// Missing lists committed entries the current fit did not produce;
	// Extra lists current entries absent from the baseline. Missing
	// entries fail the gate (the claim went unmeasured), extra ones are
	// informational (a new algorithm awaiting a regenerated baseline).
	Missing []string
	Extra   []string
}

// OutOfBand reports whether the fitness gate should fail.
func (e *Evaluation) OutOfBand() bool {
	if len(e.Missing) > 0 {
		return true
	}
	for i := range e.Findings {
		if e.Findings[i].OutOfBand {
			return true
		}
	}
	return false
}

func relDrift(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(cur-base) / math.Abs(base)
}

// Evaluate compares cur (a fresh CollectAndFit over the baseline's sweep
// spec) against the committed base, entry by entry. The sweeps must match
// — comparing constants fitted at different sizes would confuse
// pre-asymptotic terms with drift.
func Evaluate(base, cur *Baseline) (*Evaluation, error) {
	if fmt.Sprintf("%+v", base.Sweep) != fmt.Sprintf("%+v", cur.Sweep) {
		return nil, fmt.Errorf("twin: sweep specs differ: baseline %+v vs current %+v", base.Sweep, cur.Sweep)
	}
	ev := &Evaluation{}
	seen := map[string]bool{}
	for i := range base.Entries {
		be := &base.Entries[i]
		ce := cur.Entry(be.Key())
		if ce == nil {
			ev.Missing = append(ev.Missing, be.Key())
			continue
		}
		seen[be.Key()] = true
		f := Finding{
			Key:            be.Key(),
			Shape:          be.Shape,
			BaseConstant:   be.Constant,
			CurConstant:    ce.Constant,
			ConstantDrift:  relDrift(be.Constant, ce.Constant),
			R2:             ce.R2,
			R2OK:           ce.R2OK,
			BaseResidual:   be.MaxRelResidual,
			MaxRelResidual: ce.MaxRelResidual,
		}
		basePoints := map[int]float64{}
		for _, p := range be.Points {
			basePoints[p.N] = p.Value
		}
		for _, p := range ce.Points {
			bv, ok := basePoints[p.N]
			if !ok {
				continue
			}
			if d := relDrift(bv, p.Value); d > f.MaxPointDrift {
				f.MaxPointDrift, f.WorstN = d, p.N
			}
			delete(basePoints, p.N)
		}
		if len(basePoints) > 0 {
			var ns []int
			for n := range basePoints {
				ns = append(ns, n)
			}
			sort.Ints(ns)
			f.Reasons = append(f.Reasons, fmt.Sprintf("baseline sizes %v not measured", ns))
		}
		if f.ConstantDrift > be.Bands.Constant {
			f.Reasons = append(f.Reasons, fmt.Sprintf("constant drift %.1f%% > band %.0f%%",
				f.ConstantDrift*100, be.Bands.Constant*100))
		}
		if f.MaxPointDrift > be.Bands.Point {
			f.Reasons = append(f.Reasons, fmt.Sprintf("point drift %.1f%% at n=%d > band %.0f%%",
				f.MaxPointDrift*100, f.WorstN, be.Bands.Point*100))
		}
		if f.MaxRelResidual > be.MaxRelResidual+be.Bands.Shape {
			f.Reasons = append(f.Reasons, fmt.Sprintf("fit residual %.2f > baseline %.2f + %.2f: curve left its %s shape",
				f.MaxRelResidual, be.MaxRelResidual, be.Bands.Shape, be.Shape))
		}
		f.OutOfBand = len(f.Reasons) > 0
		ev.Findings = append(ev.Findings, f)
	}
	for i := range cur.Entries {
		if !seen[cur.Entries[i].Key()] && base.Entry(cur.Entries[i].Key()) == nil {
			ev.Extra = append(ev.Extra, cur.Entries[i].Key())
		}
	}
	if len(ev.Findings) == 0 {
		return nil, fmt.Errorf("twin: no entries in common between baseline (%d) and current fit (%d)",
			len(base.Entries), len(cur.Entries))
	}
	return ev, nil
}

// Format writes the evaluation as a human-readable residual table,
// out-of-band findings called out.
func (e *Evaluation) Format(w io.Writer) {
	fmt.Fprintf(w, "%-28s %-24s %12s %12s %7s %7s %7s %6s\n",
		"model", "shape", "base c", "cur c", "Δc%", "Δpt%", "resid", "R²")
	for i := range e.Findings {
		f := &e.Findings[i]
		r2 := "  —"
		if f.R2OK {
			r2 = fmt.Sprintf("%6.3f", f.R2)
		}
		mark := ""
		if f.OutOfBand {
			mark = "  OUT-OF-BAND: " + strings.Join(f.Reasons, "; ")
		}
		fmt.Fprintf(w, "%-28s %-24s %12.3f %12.3f %6.1f%% %6.1f%% %7.3f %6s%s\n",
			f.Key, f.Shape.String(), f.BaseConstant, f.CurConstant,
			f.ConstantDrift*100, f.MaxPointDrift*100, f.MaxRelResidual, r2, mark)
	}
	if len(e.Missing) > 0 {
		fmt.Fprintf(w, "\nmissing from current fit (gate fails): %v\n", e.Missing)
	}
	if len(e.Extra) > 0 {
		fmt.Fprintf(w, "\nnew models without a baseline (regenerate TWIN_MIS.json): %v\n", e.Extra)
	}
	n := 0
	for i := range e.Findings {
		if e.Findings[i].OutOfBand {
			n++
		}
	}
	if e.OutOfBand() {
		fmt.Fprintf(w, "\nFAIL: %d model(s) out of band — the measured curves no longer match the committed analytical twin\n", n+len(e.Missing))
	} else {
		fmt.Fprintf(w, "\nOK: %d model(s) inside their tolerance bands\n", len(e.Findings))
	}
}

// WriteCSV emits the residual table as CSV — the CI artifact.
func (e *Evaluation) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"model,shape,base_constant,cur_constant,constant_drift,max_point_drift,worst_n,max_rel_residual,base_residual,r2,r2_ok,out_of_band,reasons"); err != nil {
		return err
	}
	for i := range e.Findings {
		f := &e.Findings[i]
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%d,%g,%g,%g,%t,%t,%q\n",
			f.Key, f.Shape, f.BaseConstant, f.CurConstant, f.ConstantDrift,
			f.MaxPointDrift, f.WorstN, f.MaxRelResidual, f.BaseResidual,
			f.R2, f.R2OK, f.OutOfBand, strings.Join(f.Reasons, "; ")); err != nil {
			return err
		}
	}
	return nil
}
