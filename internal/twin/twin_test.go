package twin

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	energymis "github.com/energymis/energymis"
)

// syntheticMeasurements builds exact c·φ(n) series for every registry
// model, so fits must recover the constants to machine precision.
func syntheticMeasurements(sizes []int, constants map[string]float64) Measurements {
	ms := Measurements{}
	for _, m := range Registry() {
		c := constants[m.Key()]
		if c == 0 {
			c = 2.5
		}
		series := ms[m.Algorithm]
		if series == nil {
			series = map[Metric][]Point{}
			ms[m.Algorithm] = series
		}
		for _, n := range sizes {
			series[m.Metric] = append(series[m.Metric], Point{N: n, Value: c * m.Shape.Eval(n)})
		}
	}
	return ms
}

func testSpec() SweepSpec {
	return SweepSpec{Family: "gnp", AvgDeg: 10, Sizes: []int{1024, 4096, 16384}, Seeds: 1}
}

func TestRegistryCoversEveryAlgorithmAndMetric(t *testing.T) {
	want := map[string]bool{}
	for _, algo := range energymis.Algorithms() {
		for _, metric := range Metrics() {
			want[algo.String()+"/"+string(metric)] = true
		}
	}
	for _, m := range Registry() {
		if !want[m.Key()] {
			t.Errorf("registry model %s does not match a public algorithm × metric", m.Key())
		}
		delete(want, m.Key())
		if !m.Shape.Valid() {
			t.Errorf("model %s has invalid shape %q", m.Key(), m.Shape)
		}
	}
	for k := range want {
		t.Errorf("registry missing model %s", k)
	}
	if _, err := Lookup("algorithm1", MetricAwakeMax); err != nil {
		t.Errorf("Lookup(algorithm1, awake_max): %v", err)
	}
	if _, err := Lookup("nope", MetricRounds); err == nil {
		t.Error("Lookup of unknown algorithm succeeded")
	}
}

func TestShapesGrowMonotonically(t *testing.T) {
	for _, s := range []ShapeID{ShapeLogN, ShapeLog2N, ShapeLogLogN, ShapeLogLog2N, ShapeLogLogLogStarN, ShapeN} {
		prev := 0.0
		for _, n := range []int{256, 1024, 4096, 65536, 1 << 20} {
			v := s.Eval(n)
			if !(v > prev) {
				t.Errorf("shape %s not increasing at n=%d: %v -> %v", s, n, prev, v)
			}
			prev = v
		}
	}
	if ShapeConst.Eval(10) != 1 || ShapeConst.Eval(1<<20) != 1 {
		t.Error("const shape must be 1 everywhere")
	}
	if ShapeID("frobnicate").Valid() {
		t.Error("unknown shape reported valid")
	}
}

func TestFitRecoversSyntheticConstants(t *testing.T) {
	spec := testSpec()
	constants := map[string]float64{
		"luby/rounds":          2.1,
		"algorithm1/rounds":    4.0,
		"algorithm1/awake_max": 19.0,
	}
	b, err := FitAll(spec, syntheticMeasurements(spec.Sizes, constants))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != len(Registry()) {
		t.Fatalf("fitted %d entries, want %d", len(b.Entries), len(Registry()))
	}
	for key, want := range constants {
		e := b.Entry(key)
		if e == nil {
			t.Fatalf("no entry %s", key)
		}
		if math.Abs(e.Constant-want) > 1e-9 {
			t.Errorf("%s constant = %v, want %v", key, e.Constant, want)
		}
		if e.MaxRelResidual > 1e-9 {
			t.Errorf("%s residual = %v on exact data", key, e.MaxRelResidual)
		}
		if e.Shape != ShapeConst && (!e.R2OK || math.Abs(e.R2-1) > 1e-9) {
			t.Errorf("%s R² = %v (ok=%v), want 1 on exact data", key, e.R2, e.R2OK)
		}
	}
	// Constant shapes must not claim a defined R².
	if e := b.Entry("luby/awake_avg"); e == nil || e.R2OK {
		t.Errorf("const-shape entry should have R2OK=false, got %+v", e)
	}
}

func TestFitAllMissingAlgorithmFails(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	delete(ms, "algorithm2")
	if _, err := FitAll(spec, ms); err == nil || !strings.Contains(err.Error(), "algorithm2") {
		t.Fatalf("missing algorithm: err = %v", err)
	}
	// A single-size sweep cannot identify a growth constant.
	one := SweepSpec{Family: "gnp", AvgDeg: 10, Sizes: []int{1024}, Seeds: 1}
	if _, err := FitAll(one, syntheticMeasurements(one.Sizes, nil)); err == nil {
		t.Fatal("single-point fit succeeded")
	}
}

func TestEvaluateIdenticalIsInBand(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	base, err := FitAll(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := FitAll(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if ev.OutOfBand() {
		var buf bytes.Buffer
		ev.Format(&buf)
		t.Fatalf("identical measurements flagged out of band:\n%s", buf.String())
	}
	var buf bytes.Buffer
	ev.Format(&buf)
	if !strings.Contains(buf.String(), "OK:") {
		t.Errorf("format missing OK verdict:\n%s", buf.String())
	}
}

// TestEvaluateFlagsPerturbedConstant is the acceptance fixture: a
// deliberately perturbed baseline constant — the committed twin claiming
// a different curve than the measured one — must be flagged out-of-band.
func TestEvaluateFlagsPerturbedConstant(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	base, err := FitAll(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := FitAll(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb Theorem 1.1's round constant by 1.5× — far past the 10%
	// band. Only the constant moves; the stored points stay, as if an
	// optimization had changed the algorithm the constant was fitted on.
	pe := base.Entry("algorithm1/rounds")
	pe.Constant *= 1.5
	ev, err := Evaluate(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OutOfBand() {
		t.Fatal("perturbed constant not flagged out of band")
	}
	found := false
	for _, f := range ev.Findings {
		if f.Key == "algorithm1/rounds" {
			found = true
			if !f.OutOfBand {
				t.Fatal("algorithm1/rounds finding not out of band")
			}
			if len(f.Reasons) == 0 || !strings.Contains(f.Reasons[0], "constant drift") {
				t.Fatalf("reasons = %v, want constant drift", f.Reasons)
			}
		} else if f.OutOfBand {
			t.Errorf("unperturbed %s flagged: %v", f.Key, f.Reasons)
		}
	}
	if !found {
		t.Fatal("no finding for algorithm1/rounds")
	}
	var buf bytes.Buffer
	ev.Format(&buf)
	if !strings.Contains(buf.String(), "OUT-OF-BAND") || !strings.Contains(buf.String(), "FAIL:") {
		t.Errorf("format missing out-of-band verdict:\n%s", buf.String())
	}
	var csv bytes.Buffer
	if err := ev.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "algorithm1/rounds") || !strings.Contains(csv.String(), "true") {
		t.Errorf("CSV missing flagged row:\n%s", csv.String())
	}
}

// TestEvaluateFlagsShapeDrift: same fitted constant, different growth
// curve — the residual band must catch what the constant band cannot.
func TestEvaluateFlagsShapeDrift(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	base, err := FitAll(spec, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Replace algorithm1's rounds with a series growing like log³ n,
	// rescaled so the fitted log²n constant stays inside the band.
	drifted := syntheticMeasurements(spec.Sizes, nil)
	var phiSum, psiSum float64
	for _, n := range spec.Sizes {
		ln := math.Log2(float64(n))
		phiSum += ln * ln
		psiSum += ln * ln * ln
	}
	scale := phiSum / psiSum // matches the least-squares constant on average
	var pts []Point
	for _, n := range spec.Sizes {
		ln := math.Log2(float64(n))
		pts = append(pts, Point{N: n, Value: 2.5 * scale * ln * ln * ln})
	}
	drifted["algorithm1"][MetricRounds] = pts
	cur, err := FitAll(spec, drifted)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	var f *Finding
	for i := range ev.Findings {
		if ev.Findings[i].Key == "algorithm1/rounds" {
			f = &ev.Findings[i]
		}
	}
	if f == nil || !f.OutOfBand {
		t.Fatalf("shape drift not flagged: %+v", f)
	}
}

func TestEvaluateRejectsMismatchedSweeps(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	base, _ := FitAll(spec, ms)
	other := spec
	other.Sizes = []int{512, 2048}
	cur, _ := FitAll(other, syntheticMeasurements(other.Sizes, nil))
	if _, err := Evaluate(base, cur); err == nil {
		t.Fatal("mismatched sweep specs accepted")
	}
}

func TestEvaluateMissingEntryFailsGate(t *testing.T) {
	spec := testSpec()
	ms := syntheticMeasurements(spec.Sizes, nil)
	base, _ := FitAll(spec, ms)
	cur, _ := FitAll(spec, ms)
	cur.Entries = cur.Entries[:len(cur.Entries)-1]
	ev, err := Evaluate(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OutOfBand() || len(ev.Missing) != 1 {
		t.Fatalf("missing entry not flagged: missing=%v", ev.Missing)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	spec := testSpec()
	b, err := FitAll(spec, syntheticMeasurements(spec.Sizes, nil))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "TWIN_MIS.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(b.Entries) || got.Sweep.Family != spec.Family {
		t.Fatalf("round trip mangled baseline: %d entries, sweep %+v", len(got.Entries), got.Sweep)
	}
	ev, err := Evaluate(b, got)
	if err != nil {
		t.Fatal(err)
	}
	if ev.OutOfBand() {
		t.Fatal("round-tripped baseline out of band against itself")
	}
	// Schema version mismatches are refused.
	got.SchemaVersion = 99
	if err := WriteBaseline(path, got); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestCollectAndFitSmoke runs a tiny real sweep end to end: every
// algorithm, two sizes, verified outputs, all registry models fitted.
// Also pins determinism: two collects produce identical measurements.
func TestCollectAndFitSmoke(t *testing.T) {
	spec := SweepSpec{Family: "gnp", AvgDeg: 8, Sizes: []int{256, 512}, Seeds: 1}
	b1, err := CollectAndFit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := CollectAndFit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.OutOfBand() {
		var buf bytes.Buffer
		ev.Format(&buf)
		t.Fatalf("repeated collect drifted — measurements are not deterministic:\n%s", buf.String())
	}
	for _, e := range b1.Entries {
		if e.Constant <= 0 {
			t.Errorf("%s fitted non-positive constant %v", e.Key(), e.Constant)
		}
	}
}

func TestFamilyGraphs(t *testing.T) {
	for _, fam := range Families() {
		spec := SweepSpec{Family: fam, AvgDeg: 8, Sizes: []int{256}, Seeds: 1}
		g, err := FamilyGraph(spec, 256)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 200 || g.M() == 0 {
			t.Errorf("%s: degenerate graph n=%d m=%d", fam, g.N(), g.M())
		}
	}
	if _, err := FamilyGraph(SweepSpec{Family: "nope"}, 256); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestSpecScale(t *testing.T) {
	s := DefaultSpec().Scale(0.25)
	if s.Sizes[0] != 256 {
		t.Fatalf("scaled sizes = %v, want floor 256", s.Sizes)
	}
	for i := 1; i < len(s.Sizes); i++ {
		if s.Sizes[i] <= s.Sizes[i-1] {
			t.Fatalf("scaled sizes not strictly ascending: %v", s.Sizes)
		}
	}
}
