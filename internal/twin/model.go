package twin

import (
	"fmt"
	"math"
)

// ShapeID names a closed-form growth shape φ(n). Shapes evaluate in
// log base 2, matching the paper's round bounds.
type ShapeID string

// The shape vocabulary of the paper's bounds.
const (
	// ShapeConst is φ(n) = 1 — the O(1) claims (node-averaged energy of
	// the Avg variants).
	ShapeConst ShapeID = "const"
	// ShapeLogN is φ(n) = log n — Luby's round and energy complexity.
	ShapeLogN ShapeID = "log_n"
	// ShapeLog2N is φ(n) = log² n — Theorem 1.1's round complexity.
	ShapeLog2N ShapeID = "log2_n"
	// ShapeLogLogN is φ(n) = log log n — Theorem 1.1's awake complexity.
	ShapeLogLogN ShapeID = "loglog_n"
	// ShapeLogLog2N is φ(n) = (log log n)² — Theorem 1.2's awake bound.
	ShapeLogLog2N ShapeID = "loglog2_n"
	// ShapeLogLogLogStarN is φ(n) = log n·log log n·log* n — Theorem
	// 1.2's round complexity.
	ShapeLogLogLogStarN ShapeID = "logn_loglogn_logstar_n"
	// ShapeN is φ(n) = n — totals that scale with the node count at a
	// fixed average degree (message volume).
	ShapeN ShapeID = "n"
)

// Eval returns φ(n). Sizes below 4 are clamped so the iterated logs stay
// positive; the sweeps never run that small.
func (s ShapeID) Eval(n int) float64 {
	if n < 4 {
		n = 4
	}
	ln := math.Log2(float64(n))
	switch s {
	case ShapeConst:
		return 1
	case ShapeLogN:
		return ln
	case ShapeLog2N:
		return ln * ln
	case ShapeLogLogN:
		return math.Log2(ln)
	case ShapeLogLog2N:
		ll := math.Log2(ln)
		return ll * ll
	case ShapeLogLogLogStarN:
		return ln * math.Log2(ln) * float64(logStar(float64(n)))
	case ShapeN:
		return float64(n)
	}
	return math.NaN()
}

// String renders the shape in the paper's notation.
func (s ShapeID) String() string {
	switch s {
	case ShapeConst:
		return "O(1)"
	case ShapeLogN:
		return "log n"
	case ShapeLog2N:
		return "log² n"
	case ShapeLogLogN:
		return "log log n"
	case ShapeLogLog2N:
		return "log² log n"
	case ShapeLogLogLogStarN:
		return "log n·log log n·log* n"
	case ShapeN:
		return "n"
	}
	return string(s)
}

// Valid reports whether the shape is part of the vocabulary (a baseline
// written by a newer binary could carry shapes this one cannot evaluate).
func (s ShapeID) Valid() bool { return !math.IsNaN(s.Eval(16)) }

// logStar is the iterated logarithm: the number of times log2 must be
// applied before the value drops to ≤ 1.
func logStar(x float64) int {
	k := 0
	for x > 1 {
		x = math.Log2(x)
		k++
	}
	return k
}

// Metric names one measured quantity of a run.
type Metric string

// The modeled metrics. Each is deterministic in (graph, algorithm, seed).
const (
	MetricRounds   Metric = "rounds"    // time complexity
	MetricAwakeMax Metric = "awake_max" // worst-case energy
	MetricAwakeAvg Metric = "awake_avg" // node-averaged energy
	MetricMessages Metric = "messages"  // total CONGEST messages
)

// Metrics lists the modeled metrics in canonical order.
func Metrics() []Metric {
	return []Metric{MetricRounds, MetricAwakeMax, MetricAwakeAvg, MetricMessages}
}

// Model declares the expected closed form of one algorithm × metric on
// the bounded-degree random families the sweeps run (fixed average
// degree, so message totals are linear in n).
type Model struct {
	Algorithm string // energymis.Algorithm.String() name
	Metric    Metric
	Shape     ShapeID
	Claim     string // the paper statement the shape encodes
}

// Key identifies the model across baselines.
func (m Model) Key() string { return m.Algorithm + "/" + string(m.Metric) }

// Registry returns the analytical models for every public algorithm. The
// shapes are the paper's asymptotic claims; the fitted constants and R²
// recorded in TWIN_MIS.json document how far the measured sizes are from
// the asymptotic regime.
func Registry() []Model {
	type row struct {
		algo                             string
		rounds, awakeMax, awakeAvg, msgs ShapeID
		claim                            string
	}
	rows := []row{
		{"luby", ShapeLogN, ShapeLogN, ShapeConst, ShapeN,
			"Luby [Lub86]: O(log n) rounds, energy = time"},
		{"regularized-luby", ShapeLogN, ShapeLogN, ShapeLogLogN, ShapeN,
			"Section 2.1: slowed Luby, O(log n) stages, energy still grows"},
		{"algorithm1", ShapeLog2N, ShapeLogLogN, ShapeConst, ShapeN,
			"Theorem 1.1: O(log² n) rounds, O(log log n) awake rounds"},
		{"algorithm2", ShapeLogLogLogStarN, ShapeLogLog2N, ShapeConst, ShapeN,
			"Theorem 1.2: O(log n·log log n·log* n) rounds, O(log² log n) awake"},
		{"algorithm1-avg", ShapeLog2N, ShapeLogLogN, ShapeConst, ShapeN,
			"Section 4 over Theorem 1.1: O(1) node-averaged awake rounds"},
		{"algorithm2-avg", ShapeLogLogLogStarN, ShapeLogLog2N, ShapeConst, ShapeN,
			"Section 4 over Theorem 1.2: O(1) node-averaged awake rounds"},
	}
	var out []Model
	for _, r := range rows {
		out = append(out,
			Model{r.algo, MetricRounds, r.rounds, r.claim},
			Model{r.algo, MetricAwakeMax, r.awakeMax, r.claim},
			Model{r.algo, MetricAwakeAvg, r.awakeAvg, r.claim},
			Model{r.algo, MetricMessages, r.msgs, r.claim},
		)
	}
	return out
}

// Lookup finds the registry model for an algorithm × metric pair.
func Lookup(algorithm string, metric Metric) (Model, error) {
	for _, m := range Registry() {
		if m.Algorithm == algorithm && m.Metric == metric {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("twin: no model for %s/%s", algorithm, metric)
}
