package twin

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/energymis/energymis/internal/bench"
)

// SchemaVersion identifies the TWIN_MIS.json layout. Bump when fields
// change incompatibly; ReadBaseline refuses mismatched versions.
const SchemaVersion = 1

// Bands are the tolerance bands of one entry, all relative fractions.
// Measurements are deterministic, so in an unchanged tree every drift is
// exactly zero; the bands define how far an intentional change may move a
// curve before the fitness gate calls it a different algorithm.
type Bands struct {
	// Constant bounds the relative drift of the re-fitted constant.
	Constant float64 `json:"constant"`
	// Point bounds the relative drift of each measured point against the
	// baseline's measurement at the same n.
	Point float64 `json:"point"`
	// Shape bounds the growth of the max relative residual of the fit:
	// residuals swelling beyond baseline+Shape mean the series no longer
	// follows its declared closed form, even if the constant held.
	Shape float64 `json:"shape"`
}

// DefaultBands returns the standard tolerance bands: 10% constant drift,
// 10% per-point drift, +0.10 residual growth.
func DefaultBands() Bands { return Bands{Constant: 0.10, Point: 0.10, Shape: 0.10} }

// Entry is one fitted model: the declared shape, the least-squares
// constant, fit quality, tolerance bands, and the measured points the fit
// consumed (committed so the CI artifact can show residuals without
// re-deriving them).
type Entry struct {
	Algorithm string  `json:"algorithm"`
	Metric    Metric  `json:"metric"`
	Family    string  `json:"family"`
	Shape     ShapeID `json:"shape"`
	Claim     string  `json:"claim,omitempty"`
	// Constant is the least-squares estimate of c in metric ≈ c·φ(n).
	Constant float64 `json:"constant"`
	// R2 is the coefficient of determination of the fit; R2OK is false
	// when R² is undefined (constant shapes have zero model variance).
	R2   float64 `json:"r2,omitempty"`
	R2OK bool    `json:"r2_ok"`
	// MaxRelResidual is the worst relative deviation of a measured point
	// from the fitted curve — how non-asymptotic the swept sizes are.
	MaxRelResidual float64 `json:"max_rel_residual"`
	Bands          Bands   `json:"bands"`
	Points         []Point `json:"points"`
}

// Key identifies the entry across baselines.
func (e *Entry) Key() string { return e.Algorithm + "/" + string(e.Metric) }

// Predict evaluates the fitted curve at n.
func (e *Entry) Predict(n int) float64 { return e.Constant * e.Shape.Eval(n) }

// Baseline is the versioned top-level document of TWIN_MIS.json.
type Baseline struct {
	SchemaVersion int           `json:"schema_version"`
	Env           bench.EnvInfo `json:"env"`
	Sweep         SweepSpec     `json:"sweep"`
	Entries       []Entry       `json:"entries"`
}

// Entry finds an entry by key, or nil.
func (b *Baseline) Entry(key string) *Entry {
	for i := range b.Entries {
		if b.Entries[i].Key() == key {
			return &b.Entries[i]
		}
	}
	return nil
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline and validates its schema version and
// shape vocabulary.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("twin: parsing %s: %w", path, err)
	}
	if b.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("twin: %s has schema version %d, this binary speaks %d",
			path, b.SchemaVersion, SchemaVersion)
	}
	for i := range b.Entries {
		if !b.Entries[i].Shape.Valid() {
			return nil, fmt.Errorf("twin: %s entry %s declares unknown shape %q",
				path, b.Entries[i].Key(), b.Entries[i].Shape)
		}
	}
	return &b, nil
}
