package twin

import (
	"fmt"

	energymis "github.com/energymis/energymis"
)

// SweepSpec pins a measurement sweep so a baseline can be reproduced
// exactly: the graph family, its density parameter, the instance sizes,
// and the number of seeds averaged per size. Graph generation and every
// run are deterministic in these fields, so two Collect calls with the
// same spec on the same code produce identical Measurements — the twin
// gate compares shapes, and determinism keeps it noise-free.
type SweepSpec struct {
	// Family is one of gnp, udg, ba, grid (see FamilyGraph).
	Family string `json:"family"`
	// AvgDeg is the target average degree (gnp edge probability
	// AvgDeg/n, udg radius for that degree, ba attachment m = AvgDeg/2).
	// Grid ignores it (degree is structural).
	AvgDeg float64 `json:"avg_degree"`
	// Sizes are the swept node counts, ascending.
	Sizes []int `json:"sizes"`
	// Seeds is the number of seeds (1..Seeds) averaged per size.
	Seeds int `json:"seeds"`
}

// DefaultSpec is the committed TWIN_MIS.json sweep: the gnp family at
// average degree 10 (the bench suites' density), five sizes spanning 16×,
// two seeds. Small enough for a CI job, wide enough to separate log n
// from log² n growth.
func DefaultSpec() SweepSpec {
	return SweepSpec{Family: "gnp", AvgDeg: 10, Sizes: []int{1024, 2048, 4096, 8192, 16384}, Seeds: 2}
}

// Scale returns a copy of the spec with sizes multiplied by f (minimum
// 256, so iterated-log shapes keep headroom) and deduplicated.
func (s SweepSpec) Scale(f float64) SweepSpec {
	out := s
	out.Sizes = nil
	last := -1
	for _, n := range s.Sizes {
		m := int(float64(n) * f)
		if m < 256 {
			m = 256
		}
		if m != last {
			out.Sizes = append(out.Sizes, m)
		}
		last = m
	}
	return out
}

// Families lists the graph families FamilyGraph can build.
func Families() []string { return []string{"gnp", "udg", "ba", "grid"} }

// FamilyGraph builds the spec's graph instance at size n. The generator
// seed is n, matching the bench suites, so twin and bench measure the
// same instances where sizes coincide.
func FamilyGraph(spec SweepSpec, n int) (*energymis.Graph, error) {
	switch spec.Family {
	case "gnp":
		return energymis.GNP(n, spec.AvgDeg/float64(n), uint64(n)), nil
	case "udg":
		return energymis.RandomGeometric(n, energymis.RadiusForAvgDegree(n, spec.AvgDeg), uint64(n)), nil
	case "ba":
		m := int(spec.AvgDeg / 2)
		if m < 1 {
			m = 1
		}
		return energymis.BarabasiAlbert(n, m, uint64(n)), nil
	case "grid":
		side := intSqrt(n)
		return energymis.Grid2D(side, side), nil
	default:
		return nil, fmt.Errorf("twin: unknown graph family %q (have %v)", spec.Family, Families())
	}
}

func intSqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Point is one averaged measurement: the metric's value at size N,
// averaged over the spec's seeds.
type Point struct {
	N     int     `json:"n"`
	Value float64 `json:"value"`
}

// Measurements holds one metric series per algorithm, keyed by the
// algorithm's canonical name.
type Measurements map[string]map[Metric][]Point

// Collect runs the sweep: every algorithm on every size, averaged over
// the seeds, verified (each output must be a maximal independent set —
// a twin fit over an invalid run would be meaningless). progress, when
// non-nil, receives one line per completed (algorithm, size) cell.
func Collect(spec SweepSpec, progress func(string)) (Measurements, error) {
	if len(spec.Sizes) == 0 || spec.Seeds < 1 {
		return nil, fmt.Errorf("twin: empty sweep spec %+v", spec)
	}
	ms := Measurements{}
	// One pooled Mem across the whole sweep: identical counters, far
	// fewer allocations (see docs/ARCHITECTURE.md on sim.Mem).
	mem := energymis.NewMem()
	for _, n := range spec.Sizes {
		g, err := FamilyGraph(spec, n)
		if err != nil {
			return nil, err
		}
		for _, algo := range energymis.Algorithms() {
			var rounds, awakeMax, awakeAvg, msgs float64
			for s := 0; s < spec.Seeds; s++ {
				res, err := energymis.RunVerified(g, algo, energymis.Options{Seed: uint64(s) + 1, Mem: mem})
				if err != nil {
					return nil, fmt.Errorf("twin: %s on %s n=%d seed %d: %w", algo, spec.Family, n, s+1, err)
				}
				rounds += float64(res.Rounds)
				awakeMax += float64(res.MaxAwake)
				awakeAvg += res.AvgAwake
				msgs += float64(res.Messages)
			}
			k := float64(spec.Seeds)
			name := algo.String()
			series := ms[name]
			if series == nil {
				series = map[Metric][]Point{}
				ms[name] = series
			}
			for _, mv := range []struct {
				metric Metric
				value  float64
			}{
				{MetricRounds, rounds / k},
				{MetricAwakeMax, awakeMax / k},
				{MetricAwakeAvg, awakeAvg / k},
				{MetricMessages, msgs / k},
			} {
				series[mv.metric] = append(series[mv.metric], Point{N: g.N(), Value: mv.value})
			}
			if progress != nil {
				progress(fmt.Sprintf("twin: %-18s %s n=%-6d rounds=%.1f awakeMax=%.1f awakeAvg=%.2f msgs=%.0f",
					name, spec.Family, g.N(), rounds/k, awakeMax/k, awakeAvg/k, msgs/k))
			}
		}
	}
	return ms, nil
}
