package twin

import (
	"errors"
	"fmt"

	"github.com/energymis/energymis/internal/bench"
	"github.com/energymis/energymis/internal/stats"
)

// FitModel fits one registry model against its measured series: the
// least-squares constant through the origin, R² (when defined), and the
// worst relative residual. The points must span at least two sizes.
func FitModel(m Model, family string, points []Point) (Entry, error) {
	if len(points) < 2 {
		return Entry{}, fmt.Errorf("twin: %s: %w", m.Key(), stats.ErrTooFewPoints)
	}
	phi := make([]float64, len(points))
	y := make([]float64, len(points))
	for i, p := range points {
		phi[i] = m.Shape.Eval(p.N)
		y[i] = p.Value
	}
	c, err := stats.FitProportional(phi, y)
	if err != nil {
		return Entry{}, fmt.Errorf("twin: fitting %s: %w", m.Key(), err)
	}
	pred := make([]float64, len(points))
	for i := range pred {
		pred[i] = c * phi[i]
	}
	e := Entry{
		Algorithm: m.Algorithm,
		Metric:    m.Metric,
		Family:    family,
		Shape:     m.Shape,
		Claim:     m.Claim,
		Constant:  c,
		Bands:     DefaultBands(),
		Points:    append([]Point(nil), points...),
	}
	// R² measures explained variance, which a constant shape has none of;
	// for those (and for degenerate series) the residual bound is the
	// only quality measure, and R2OK records the distinction explicitly.
	if m.Shape != ShapeConst {
		r2, rerr := stats.RSquared(y, pred)
		if rerr == nil {
			e.R2, e.R2OK = r2, true
		} else if !errors.Is(rerr, stats.ErrConstantSeries) {
			return Entry{}, fmt.Errorf("twin: R² of %s: %w", m.Key(), rerr)
		}
	}
	resid, err := stats.MaxRelResidual(y, pred)
	if err != nil {
		return Entry{}, fmt.Errorf("twin: residuals of %s: %w", m.Key(), err)
	}
	e.MaxRelResidual = resid
	return e, nil
}

// FitAll fits the full registry against a sweep's measurements and
// assembles the baseline document. Every registry model must have a
// measured series — a missing algorithm is an error, not a silent gap.
func FitAll(spec SweepSpec, ms Measurements) (*Baseline, error) {
	b := &Baseline{SchemaVersion: SchemaVersion, Env: bench.Env(), Sweep: spec}
	for _, m := range Registry() {
		series, ok := ms[m.Algorithm]
		if !ok {
			return nil, fmt.Errorf("twin: no measurements for algorithm %s", m.Algorithm)
		}
		points := series[m.Metric]
		e, err := FitModel(m, spec.Family, points)
		if err != nil {
			return nil, err
		}
		b.Entries = append(b.Entries, e)
	}
	return b, nil
}

// CollectAndFit runs the sweep and fits the registry — the one-call path
// used by `mistrace fit` and the F1 experiment.
func CollectAndFit(spec SweepSpec, progress func(string)) (*Baseline, error) {
	ms, err := Collect(spec, progress)
	if err != nil {
		return nil, err
	}
	return FitAll(spec, ms)
}
