package bitvec

import "math/bits"

// Word-level kernels over CSR adjacency rows. A row is a sorted list of
// int32 ids; `words` is a plain bitset indexed id>>6 (the dynamic
// engine's membership words). The Row variants group consecutive ids
// sharing a word into one mask on the fly, so a probe over a clustered
// neighborhood does one AND per 64-key word instead of one load per
// neighbor; the Runs variants consume a row pre-packed by PackRow (used
// when the raw row is not safe to read, e.g. a snapshot taken before
// overlapping structural updates). Rows and packs enumerate the same
// ids in the same ascending order, so the two forms are interchangeable
// bit for bit.

// PackRow converts a sorted row into word runs appended to wbuf/mbuf:
// run i covers keys [wbuf[i]<<6, wbuf[i]<<6+64) with bit mask mbuf[i].
// Runs are ascending in word index and non-empty.
func PackRow(row []int32, wbuf []int32, mbuf []uint64) ([]int32, []uint64) {
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		wbuf = append(wbuf, w)
		mbuf = append(mbuf, m)
	}
	return wbuf, mbuf
}

// FirstAndRow returns the smallest row id whose bit is set in words, or
// -1 when the row and the bitset are disjoint.
func FirstAndRow(words []uint64, row []int32) int32 {
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		if int(w) < len(words) {
			if x := m & words[w]; x != 0 {
				return w<<6 + int32(bits.TrailingZeros64(x))
			}
		}
	}
	return -1
}

// FirstAndRuns is FirstAndRow over a pre-packed row.
func FirstAndRuns(words []uint64, rw []int32, rm []uint64) int32 {
	for i, w := range rw {
		if int(w) < len(words) {
			if x := rm[i] & words[w]; x != 0 {
				return w<<6 + int32(bits.TrailingZeros64(x))
			}
		}
	}
	return -1
}

// CountAndRow returns how many row ids have their bit set in words.
func CountAndRow(words []uint64, row []int32) int {
	n := 0
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		if int(w) < len(words) {
			n += bits.OnesCount64(m & words[w])
		}
	}
	return n
}

// CountAndRuns is CountAndRow over a pre-packed row.
func CountAndRuns(words []uint64, rw []int32, rm []uint64) int {
	n := 0
	for i, w := range rw {
		if int(w) < len(words) {
			n += bits.OnesCount64(rm[i] & words[w])
		}
	}
	return n
}

// IntersectsRow reports whether any row id has its bit set in words,
// short-circuiting on the first overlapping word.
func IntersectsRow(words []uint64, row []int32) bool {
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		if int(w) < len(words) && m&words[w] != 0 {
			return true
		}
	}
	return false
}

// IntersectsRuns is IntersectsRow over a pre-packed row.
func IntersectsRuns(words []uint64, rw []int32, rm []uint64) bool {
	for i, w := range rw {
		if int(w) < len(words) && rm[i]&words[w] != 0 {
			return true
		}
	}
	return false
}
