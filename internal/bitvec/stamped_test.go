package bitvec

import (
	"math/rand"
	"slices"
	"testing"
)

func TestStampedZeroValue(t *testing.T) {
	var s Stamped
	if s.Any() || s.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	if s.Has(0) || s.Has(1000) {
		t.Fatal("zero value Has reported a member")
	}
	s.Clear(5) // out of range: must not panic
	if got := s.AppendAscending(nil); len(got) != 0 {
		t.Fatalf("zero value enumerates %v", got)
	}
}

func TestStampedSetHasClear(t *testing.T) {
	var s Stamped
	s.Grow(200)
	keys := []int32{0, 1, 63, 64, 65, 127, 128, 199}
	for _, k := range keys {
		if !s.Set(k) {
			t.Fatalf("Set(%d) reported already present", k)
		}
	}
	for _, k := range keys {
		if s.Set(k) {
			t.Fatalf("second Set(%d) reported newly added", k)
		}
	}
	if got := s.Count(); got != len(keys) {
		t.Fatalf("Count = %d, want %d", got, len(keys))
	}
	for i := int32(0); i < 200; i++ {
		want := slices.Contains(keys, i)
		if s.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, s.Has(i), want)
		}
	}
	s.Clear(64)
	if s.Has(64) {
		t.Fatal("Clear(64) did not remove the key")
	}
	if got := s.Count(); got != len(keys)-1 {
		t.Fatalf("Count after Clear = %d, want %d", got, len(keys)-1)
	}
}

func TestStampedResetIsEmpty(t *testing.T) {
	var s Stamped
	s.Grow(500)
	for i := int32(0); i < 500; i += 7 {
		s.Set(i)
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset did not empty the set")
	}
	for i := int32(0); i < 500; i++ {
		if s.Has(i) {
			t.Fatalf("Has(%d) after Reset", i)
		}
	}
	// The next epoch must behave like a fresh set on the same storage.
	if !s.Set(42) || !s.Has(42) || s.Has(49) {
		t.Fatal("set corrupted after Reset")
	}
	if got := s.AppendAscending(nil); !slices.Equal(got, []int32{42}) {
		t.Fatalf("AppendAscending after Reset = %v", got)
	}
}

func TestStampedGrowPreservesMembers(t *testing.T) {
	var s Stamped
	s.Grow(10)
	s.Set(3)
	s.Grow(10000)
	if !s.Has(3) {
		t.Fatal("Grow lost a member")
	}
	s.Set(9999)
	if got := s.AppendAscending(nil); !slices.Equal(got, []int32{3, 9999}) {
		t.Fatalf("AppendAscending = %v", got)
	}
}

func TestStampedAppendAscendingSorted(t *testing.T) {
	var s Stamped
	rng := rand.New(rand.NewSource(7))
	ref := map[int32]bool{}
	s.Grow(4096)
	for i := 0; i < 1000; i++ {
		k := int32(rng.Intn(4096))
		s.Set(k)
		ref[k] = true
	}
	// Out-of-order insertion plus some clears.
	for k := range ref {
		if k%5 == 0 {
			s.Clear(k)
			delete(ref, k)
		}
	}
	want := make([]int32, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	slices.Sort(want)
	got := s.AppendAscending(nil)
	if !slices.Equal(got, want) {
		t.Fatalf("AppendAscending mismatch: got %d keys, want %d", len(got), len(want))
	}
	if s.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(want))
	}
	// Appending to a non-empty destination extends it.
	pre := []int32{-1}
	ext := s.AppendAscending(pre)
	if ext[0] != -1 || !slices.Equal(ext[1:], want) {
		t.Fatal("AppendAscending does not append to dst")
	}
}

func TestStampedManyEpochs(t *testing.T) {
	var s Stamped
	s.Grow(128)
	for epoch := 0; epoch < 100; epoch++ {
		k := int32(epoch % 128)
		s.Set(k)
		if got := s.Count(); got != 1 {
			t.Fatalf("epoch %d: Count = %d, want 1", epoch, got)
		}
		if !slices.Equal(s.AppendAscending(nil), []int32{k}) {
			t.Fatalf("epoch %d: wrong members", epoch)
		}
		s.Reset()
	}
}
