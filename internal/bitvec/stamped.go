package bitvec

import "math/bits"

// Stamped is a reusable set of int32 keys with O(1) clearing: every
// 64-bit word carries an epoch stamp, Reset bumps the epoch, and a stale
// word is zeroed lazily on its first write in the new epoch. A touched
// list records which words the current epoch wrote, so enumeration and
// population count scan only those — a set that marks k keys costs O(k)
// to walk no matter how large the key space has grown.
//
// This is the first slice of the frontier/bitset engine (ROADMAP item 3):
// the dynamic repair path tracks its dirty/woken/region sets in Stamped
// vectors, replacing insertion-ordered id lists plus sort.Slice snapshots
// with word operations and an ascending walk over the touched words.
//
// Ascending enumeration never sorts: a two-level summary bitmap marks
// which words the current epoch touched (bit w&63 of sum[w>>6]), so the
// ordered sweeps walk the summary low-to-high instead of sorting the
// touched list — O(W/64 + t) for W words and t touched, with no
// comparison sort on the repair hot path.
//
// The zero value is an empty set. Methods are not safe for concurrent
// use.
type Stamped struct {
	words     []uint64
	stamps    []uint64
	sum       []uint64 // summary bitmap: word w touched ⇒ bit w&63 of sum[w>>6]
	sumStamps []uint64 // epoch stamps for sum, same lazy-clear scheme
	touched   []int32  // word indices written this epoch, unordered
	epoch     uint64
}

// A word is live when its stamp equals epoch+1, so the zero value's
// epoch 0 never matches the zero stamps of freshly grown words.
func (s *Stamped) cur() uint64 { return s.epoch + 1 }

// Reset empties the set in O(1) (plus truncating the touched list).
func (s *Stamped) Reset() {
	s.epoch++
	s.touched = s.touched[:0]
}

// touch records word w's first write of the epoch: the unordered touched
// list for counts and folds, the summary bitmap for ordered sweeps.
func (s *Stamped) touch(w int32) {
	s.touched = append(s.touched, w)
	sw := w >> 6
	if s.sumStamps[sw] != s.cur() {
		s.sumStamps[sw] = s.cur()
		s.sum[sw] = 0
	}
	s.sum[sw] |= 1 << (uint32(w) & 63)
}

// Grow extends the key space to cover [0, n). The missing word run is
// appended in one allocation. Set requires a prior Grow covering its key;
// Has and Clear tolerate out-of-range keys.
func (s *Stamped) Grow(n int) {
	w := (n + 63) >> 6
	if w > len(s.words) {
		s.words = append(s.words, make([]uint64, w-len(s.words))...)
		s.stamps = append(s.stamps, make([]uint64, w-len(s.stamps))...)
	}
	sw := (w + 63) >> 6
	if sw > len(s.sum) {
		s.sum = append(s.sum, make([]uint64, sw-len(s.sum))...)
		s.sumStamps = append(s.sumStamps, make([]uint64, sw-len(s.sumStamps))...)
	}
}

// Set adds i to the set, reporting whether it was absent. The key must be
// covered by a prior Grow.
func (s *Stamped) Set(i int32) bool {
	w := int(i) >> 6
	bit := uint64(1) << (uint32(i) & 63)
	if s.stamps[w] != s.cur() {
		s.stamps[w] = s.cur()
		s.words[w] = 0
		s.touch(int32(w))
	}
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	return true
}

// Has reports whether i is in the set.
func (s *Stamped) Has(i int32) bool {
	w := int(i) >> 6
	if w >= len(s.words) || s.stamps[w] != s.cur() {
		return false
	}
	return s.words[w]&(1<<(uint32(i)&63)) != 0
}

// Clear removes i from the set (a no-op when absent).
func (s *Stamped) Clear(i int32) {
	w := int(i) >> 6
	if w >= len(s.words) || s.stamps[w] != s.cur() {
		return
	}
	s.words[w] &^= 1 << (uint32(i) & 63)
}

// Word returns the current-epoch value of word w (64 keys starting at
// key w<<6); stale and out-of-range words read as 0.
func (s *Stamped) Word(w int32) uint64 {
	if int(w) >= len(s.words) || s.stamps[w] != s.cur() {
		return 0
	}
	return s.words[w]
}

// OrWord ORs mask into word w. The word must be covered by a prior Grow.
// The already-stamped fast path is branch-only so the call inlines into
// the row sweeps; the epoch's first write of a word takes the cold call.
func (s *Stamped) OrWord(w int32, mask uint64) {
	if s.stamps[w] == s.cur() {
		s.words[w] |= mask
		return
	}
	s.firstOr(w, mask)
}

// firstOr stamps word w for the current epoch and seeds it with mask.
func (s *Stamped) firstOr(w int32, mask uint64) {
	s.stamps[w] = s.cur()
	s.words[w] = mask
	s.touch(w)
}

// OrRow adds every id of a sorted row in word-grouped ORs: consecutive
// ids sharing a word are folded into one mask before a single OrWord.
// All ids must be covered by a prior Grow.
func (s *Stamped) OrRow(row []int32) {
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		s.OrWord(w, m)
	}
}

// OrRowCount is OrRow fused with CountAndRow: it adds the row's keys to
// the set and returns how many of them have their bit set in filter, in
// a single word-grouped pass (the repair coverage probe: wake the whole
// neighborhood, count member replies). Filter words past len(filter)
// read as zero; the set must cover the row via a prior Grow.
func (s *Stamped) OrRowCount(row []int32, filter []uint64) int {
	n := 0
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		s.OrWord(w, m)
		if int(w) < len(filter) {
			n += bits.OnesCount64(m & filter[w])
		}
	}
	return n
}

// OrRuns adds a packed row (see PackRow): one OrWord per run. All run
// words must be covered by a prior Grow.
func (s *Stamped) OrRuns(words []int32, masks []uint64) {
	for i, w := range words {
		s.OrWord(w, masks[i])
	}
}

// TouchedWords returns the word indices written this epoch, unordered;
// a touched word may have all its bits cleared again. The slice aliases
// the set's bookkeeping and is valid until the next mutation.
func (s *Stamped) TouchedWords() []int32 { return s.touched }

// Any reports whether the set is non-empty.
func (s *Stamped) Any() bool {
	for _, w := range s.touched {
		if s.words[w] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of keys in the set.
func (s *Stamped) Count() int {
	n := 0
	for _, w := range s.touched {
		n += bits.OnesCount64(s.words[w])
	}
	return n
}

// AppendAscending appends the set's keys to dst in ascending order and
// returns the extended slice: the summary bitmap yields the touched words
// low-to-high, then each word's bits are extracted low-to-high. Cost is
// O(W/64 + k) for a W-word key space and k keys — no comparison sort.
func (s *Stamped) AppendAscending(dst []int32) []int32 {
	cur := s.cur()
	for sw, y := range s.sum {
		if s.sumStamps[sw] != cur {
			continue
		}
		for ; y != 0; y &= y - 1 {
			w := int32(sw)<<6 + int32(bits.TrailingZeros64(y))
			x := s.words[w]
			base := w << 6
			for x != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(x)))
				x &= x - 1
			}
		}
	}
	return dst
}

// AndInto appends, ascending, the set's keys whose bit is also set in
// the plain word array (e.g. a membership bitset indexed key>>6), and
// returns the extended slice.
func (s *Stamped) AndInto(words []uint64, dst []int32) []int32 {
	cur := s.cur()
	for sw, y := range s.sum {
		if s.sumStamps[sw] != cur {
			continue
		}
		for ; y != 0; y &= y - 1 {
			w := int32(sw)<<6 + int32(bits.TrailingZeros64(y))
			x := s.words[w]
			if int(w) < len(words) {
				x &= words[w]
			} else {
				x = 0
			}
			base := w << 6
			for x != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(x)))
				x &= x - 1
			}
		}
	}
	return dst
}

// AndNotInto appends, ascending, the set's keys whose bit is clear in
// the plain word array, and returns the extended slice.
func (s *Stamped) AndNotInto(words []uint64, dst []int32) []int32 {
	cur := s.cur()
	for sw, y := range s.sum {
		if s.sumStamps[sw] != cur {
			continue
		}
		for ; y != 0; y &= y - 1 {
			w := int32(sw)<<6 + int32(bits.TrailingZeros64(y))
			x := s.words[w]
			if int(w) < len(words) {
				x &^= words[w]
			}
			base := w << 6
			for x != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(x)))
				x &= x - 1
			}
		}
	}
	return dst
}
