package bitvec

import (
	"math/bits"
	"slices"
)

// Stamped is a reusable set of int32 keys with O(1) clearing: every
// 64-bit word carries an epoch stamp, Reset bumps the epoch, and a stale
// word is zeroed lazily on its first write in the new epoch. A touched
// list records which words the current epoch wrote, so enumeration and
// population count scan only those — a set that marks k keys costs O(k)
// to walk no matter how large the key space has grown.
//
// This is the first slice of the frontier/bitset engine (ROADMAP item 3):
// the dynamic repair path tracks its dirty/woken/region sets in Stamped
// vectors, replacing insertion-ordered id lists plus sort.Slice snapshots
// with word operations and a sorted walk over the touched words.
//
// The zero value is an empty set. Methods are not safe for concurrent
// use.
type Stamped struct {
	words   []uint64
	stamps  []uint64
	touched []int32 // word indices written this epoch, unordered
	epoch   uint64
}

// A word is live when its stamp equals epoch+1, so the zero value's
// epoch 0 never matches the zero stamps of freshly grown words.
func (s *Stamped) cur() uint64 { return s.epoch + 1 }

// Reset empties the set in O(1) (plus truncating the touched list).
func (s *Stamped) Reset() {
	s.epoch++
	s.touched = s.touched[:0]
}

// Grow extends the key space to cover [0, n). The missing word run is
// appended in one allocation. Set requires a prior Grow covering its key;
// Has and Clear tolerate out-of-range keys.
func (s *Stamped) Grow(n int) {
	w := (n + 63) >> 6
	if w > len(s.words) {
		s.words = append(s.words, make([]uint64, w-len(s.words))...)
		s.stamps = append(s.stamps, make([]uint64, w-len(s.stamps))...)
	}
}

// Set adds i to the set, reporting whether it was absent. The key must be
// covered by a prior Grow.
func (s *Stamped) Set(i int32) bool {
	w := int(i) >> 6
	bit := uint64(1) << (uint32(i) & 63)
	if s.stamps[w] != s.cur() {
		s.stamps[w] = s.cur()
		s.words[w] = 0
		s.touched = append(s.touched, int32(w))
	}
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	return true
}

// Has reports whether i is in the set.
func (s *Stamped) Has(i int32) bool {
	w := int(i) >> 6
	if w >= len(s.words) || s.stamps[w] != s.cur() {
		return false
	}
	return s.words[w]&(1<<(uint32(i)&63)) != 0
}

// Clear removes i from the set (a no-op when absent).
func (s *Stamped) Clear(i int32) {
	w := int(i) >> 6
	if w >= len(s.words) || s.stamps[w] != s.cur() {
		return
	}
	s.words[w] &^= 1 << (uint32(i) & 63)
}

// Any reports whether the set is non-empty.
func (s *Stamped) Any() bool {
	for _, w := range s.touched {
		if s.words[w] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of keys in the set.
func (s *Stamped) Count() int {
	n := 0
	for _, w := range s.touched {
		n += bits.OnesCount64(s.words[w])
	}
	return n
}

// AppendAscending appends the set's keys to dst in ascending order and
// returns the extended slice: the touched word list is sorted in place,
// then each word's bits are extracted low-to-high. Cost is O(t log t + k)
// for t touched words and k keys — no per-key comparison sort.
func (s *Stamped) AppendAscending(dst []int32) []int32 {
	slices.Sort(s.touched)
	for _, w := range s.touched {
		x := s.words[w]
		base := w << 6
		for x != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(x)))
			x &= x - 1
		}
	}
	return dst
}
