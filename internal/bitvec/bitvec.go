package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a fixed-length bit vector. The zero value is an empty vector.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector of length n. It panics if n < 0.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits in the vector.
func (v Vec) Len() int { return v.n }

// Set sets bit i to b.
func (v Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Get reports bit i.
func (v Vec) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// OnesCount returns the number of set bits.
func (v Vec) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And sets v = v AND u. The vectors must have equal length.
func (v Vec) And(u Vec) {
	if v.n != u.n {
		panic("bitvec: length mismatch in And")
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
}

// Or sets v = v OR u. The vectors must have equal length.
func (v Vec) Or(u Vec) {
	if v.n != u.n {
		panic("bitvec: length mismatch in Or")
	}
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
}

// FirstSet returns the index of the lowest set bit, or -1 if none.
func (v Vec) FirstSet() int {
	for i, w := range v.words {
		if w != 0 {
			idx := i*64 + bits.TrailingZeros64(w)
			if idx < v.n {
				return idx
			}
			return -1
		}
	}
	return -1
}

// Fill sets every bit to b.
func (v Vec) Fill(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = w
	}
	v.trim()
}

// trim clears bits beyond Len in the last word so OnesCount stays exact.
func (v Vec) trim() {
	if v.n%64 != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) % 64)) - 1
	}
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and u have identical length and contents.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the packed words (little-endian bit order) for transport.
// The returned slice aliases the vector's storage.
func (v Vec) Words() []uint64 { return v.words }

// FromWords reconstructs a vector of length n from packed words.
func FromWords(n int, words []uint64) Vec {
	v := New(n)
	copy(v.words, words)
	v.trim()
	return v
}

// String renders the vector as a 0/1 string, lowest index first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// BitsForRange returns the number of bits needed to express a value in
// [0, n), i.e. ceil(log2(n)) with a minimum of 1. It panics if n <= 0.
func BitsForRange(n int) int {
	if n <= 0 {
		panic("bitvec: BitsForRange of non-positive range")
	}
	if n == 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// BitsForValue returns the number of bits needed to express v itself
// (minimum 1).
func BitsForValue(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}
