package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	v := New(130)
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idxs {
		v.Set(i, true)
	}
	for i := 0; i < v.Len(); i++ {
		want := false
		for _, j := range idxs {
			if i == j {
				want = true
			}
		}
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Fatal("clearing bit 64 failed")
	}
}

func TestOnesCountAndFill(t *testing.T) {
	v := New(100)
	if v.OnesCount() != 0 {
		t.Fatal("fresh vector not empty")
	}
	v.Fill(true)
	if got := v.OnesCount(); got != 100 {
		t.Fatalf("Fill(true) OnesCount = %d, want 100", got)
	}
	v.Fill(false)
	if v.OnesCount() != 0 {
		t.Fatal("Fill(false) left bits set")
	}
}

func TestAndOr(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(3, true)
	a.Set(69, true)
	b.Set(3, true)
	b.Set(10, true)
	c := a.Clone()
	c.And(b)
	if c.OnesCount() != 1 || !c.Get(3) {
		t.Fatalf("And wrong: %v", c)
	}
	d := a.Clone()
	d.Or(b)
	if d.OnesCount() != 3 || !d.Get(3) || !d.Get(10) || !d.Get(69) {
		t.Fatalf("Or wrong: %v", d)
	}
}

func TestAndLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestFirstSet(t *testing.T) {
	v := New(200)
	if v.FirstSet() != -1 {
		t.Fatal("empty vector FirstSet != -1")
	}
	v.Set(130, true)
	v.Set(131, true)
	if got := v.FirstSet(); got != 130 {
		t.Fatalf("FirstSet = %d, want 130", got)
	}
	v.Set(5, true)
	if got := v.FirstSet(); got != 5 {
		t.Fatalf("FirstSet = %d, want 5", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(64)
	v.Set(1, true)
	w := v.Clone()
	w.Set(2, true)
	if v.Get(2) {
		t.Fatal("Clone shares storage")
	}
	if !w.Get(1) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("empty vectors not equal")
	}
	a.Set(64, true)
	if a.Equal(b) {
		t.Fatal("different vectors equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths equal")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	f := func(nRaw uint16, bitsToSet []uint16) bool {
		n := int(nRaw%300) + 1
		v := New(n)
		for _, b := range bitsToSet {
			v.Set(int(b)%n, true)
		}
		u := FromWords(n, v.Words())
		return u.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromWordsTrims(t *testing.T) {
	// Extra high bits beyond n must be discarded.
	v := FromWords(3, []uint64{0xFF})
	if got := v.OnesCount(); got != 3 {
		t.Fatalf("FromWords did not trim: OnesCount = %d, want 3", got)
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(1, true)
	v.Set(3, true)
	if got := v.String(); got != "0101" {
		t.Fatalf("String = %q, want 0101", got)
	}
}

func TestBitsForRange(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := BitsForRange(c.n); got != c.want {
			t.Errorf("BitsForRange(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBitsForValue(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {255, 8}, {256, 9},
	}
	for _, c := range cases {
		if got := BitsForValue(c.v); got != c.want {
			t.Errorf("BitsForValue(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}
