package bitvec

import (
	"math/rand"
	"slices"
	"testing"
)

// Naive references for the word kernels: one membership lookup per row
// id, no word grouping. The fuzz targets cross-check the packed kernels
// against these bit-at-a-time loops.

func hasBit(words []uint64, id int32) bool {
	w := int(id) >> 6
	return w < len(words) && words[w]&(1<<(uint32(id)&63)) != 0
}

func naiveFirstAnd(words []uint64, row []int32) int32 {
	for _, id := range row {
		if hasBit(words, id) {
			return id
		}
	}
	return -1
}

func naiveCountAnd(words []uint64, row []int32) int {
	n := 0
	for _, id := range row {
		if hasBit(words, id) {
			n++
		}
	}
	return n
}

// decodeRow turns fuzz bytes into a sorted, deduped row of small int32
// ids. Consecutive bytes are deltas, so ids cluster within and straddle
// word boundaries depending on the input.
func decodeRow(data []byte) []int32 {
	row := make([]int32, 0, len(data))
	cur := int32(0)
	for _, b := range data {
		cur += int32(b%67) + 1 // deltas 1..67 cross 64-bit word edges often
		row = append(row, cur-1)
	}
	return row
}

// decodeWords builds a membership bitset whose length is deliberately
// decoupled from the row's key range, so rows routinely index past the
// last (partial) word and kernels must treat missing words as zero.
func decodeWords(data []byte, nWords int) []uint64 {
	words := make([]uint64, nWords)
	for i, b := range data {
		w := int(b) % (nWords + 3) // some indices land out of range: skipped
		if w < nWords {
			words[w] |= 1 << ((uint(b) * 7) & 63)
			words[w] |= 1 << (uint(i) & 63)
		}
	}
	return words
}

func FuzzRowKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0, 1}, uint8(2))
	f.Add([]byte{63, 1, 1, 64}, []byte{0, 0, 1, 2}, uint8(3))
	f.Add([]byte{}, []byte{5}, uint8(1))
	f.Add([]byte{200, 200, 200}, []byte{255}, uint8(1)) // row far past words
	f.Fuzz(func(t *testing.T, rowData, wordData []byte, nw uint8) {
		if len(rowData) > 256 || len(wordData) > 256 {
			t.Skip()
		}
		row := decodeRow(rowData)
		words := decodeWords(wordData, int(nw%8)+1)

		if got, want := FirstAndRow(words, row), naiveFirstAnd(words, row); got != want {
			t.Fatalf("FirstAndRow = %d, want %d (row %v)", got, want, row)
		}
		if got, want := CountAndRow(words, row), naiveCountAnd(words, row); got != want {
			t.Fatalf("CountAndRow = %d, want %d (row %v)", got, want, row)
		}
		if got, want := IntersectsRow(words, row), naiveFirstAnd(words, row) >= 0; got != want {
			t.Fatalf("IntersectsRow = %v, want %v (row %v)", got, want, row)
		}

		// PackRow must enumerate exactly the row, and the Runs kernels
		// must agree with the Row kernels on the packed form.
		rw, rm := PackRow(row, nil, nil)
		if !slices.IsSortedFunc(rw, func(a, b int32) int { return int(a - b) }) {
			t.Fatalf("PackRow runs not ascending: %v", rw)
		}
		var unpacked []int32
		for i, w := range rw {
			if rm[i] == 0 {
				t.Fatalf("PackRow produced empty run at word %d", w)
			}
			x := rm[i]
			for x != 0 {
				unpacked = append(unpacked, w<<6+int32(trailingZeros(x)))
				x &= x - 1
			}
		}
		dedup := slices.Compact(slices.Clone(row))
		if !slices.Equal(unpacked, dedup) {
			t.Fatalf("PackRow round-trip = %v, want %v", unpacked, dedup)
		}

		// OrRowCount must count like CountAndRow and mark like OrRow.
		if len(row) > 0 {
			var s Stamped
			s.Grow(int(row[len(row)-1]) + 1)
			if got, want := s.OrRowCount(row, words), naiveCountAnd(words, row); got != want {
				t.Fatalf("OrRowCount = %d, want %d (row %v)", got, want, row)
			}
			if got := s.AppendAscending(nil); !slices.Equal(got, dedup) {
				t.Fatalf("OrRowCount marked %v, want %v", got, dedup)
			}
		}
		if got, want := FirstAndRuns(words, rw, rm), naiveFirstAnd(words, row); got != want {
			t.Fatalf("FirstAndRuns = %d, want %d", got, want)
		}
		if got, want := CountAndRuns(words, rw, rm), naiveCountAnd(words, row); got != want {
			t.Fatalf("CountAndRuns = %d, want %d", got, want)
		}
		if got, want := IntersectsRuns(words, rw, rm), naiveFirstAnd(words, row) >= 0; got != want {
			t.Fatalf("IntersectsRuns = %v, want %v", got, want)
		}
	})
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// FuzzStampedOps drives a Stamped through a random op sequence —
// including Reset epoch boundaries mid-stream — mirrored against a map
// reference, then checks every view the repair sweeps rely on:
// AppendAscending, AndInto, AndNotInto, Word, OrRow, Count.
func FuzzStampedOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4}, int64(1))
	f.Add([]byte{63, 64, 65, 127, 128, 255, 254}, int64(2))
	f.Add([]byte{10, 10, 10}, int64(3))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 512 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		const n = 300 // not a multiple of 64: the last word is partial
		var s Stamped
		s.Grow(n)
		ref := map[int32]bool{}
		member := make([]uint64, (n+63)>>6)
		for i := 0; i < len(member); i++ {
			member[i] = rng.Uint64()
		}

		for _, op := range ops {
			k := int32(op) % n
			switch op % 5 {
			case 0, 1:
				s.Set(k)
				ref[k] = true
			case 2:
				s.Clear(k)
				delete(ref, k)
			case 3:
				// OrRow over a short clustered row around k; every other
				// turn takes the fused OrRowCount and cross-checks the
				// member-reply count against the naive filter walk.
				row := []int32{k}
				for d := int32(1); d <= 3 && k+d < n; d++ {
					row = append(row, k+d)
				}
				if op&1 == 0 {
					s.OrRow(row)
				} else if got, want := s.OrRowCount(row, member), naiveCountAnd(member, row); got != want {
					t.Fatalf("OrRowCount = %d, want %d (row %v)", got, want, row)
				}
				for _, id := range row {
					ref[id] = true
				}
			case 4:
				s.Reset()
				ref = map[int32]bool{}
			}
		}

		want := make([]int32, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)

		if got := s.AppendAscending(nil); !slices.Equal(got, want) {
			t.Fatalf("AppendAscending = %v, want %v", got, want)
		}
		if got := s.Count(); got != len(want) {
			t.Fatalf("Count = %d, want %d", got, len(want))
		}

		var andWant, andNotWant []int32
		for _, k := range want {
			if hasBit(member, k) {
				andWant = append(andWant, k)
			} else {
				andNotWant = append(andNotWant, k)
			}
		}
		if got := s.AndInto(member, nil); !slices.Equal(got, andWant) {
			t.Fatalf("AndInto = %v, want %v", got, andWant)
		}
		if got := s.AndNotInto(member, nil); !slices.Equal(got, andNotWant) {
			t.Fatalf("AndNotInto = %v, want %v", got, andNotWant)
		}

		// Word must agree with Has for every word, including ones never
		// touched this epoch (stale stamps read as zero).
		for w := int32(0); w < int32(len(member)); w++ {
			got := s.Word(w)
			var wantWord uint64
			for b := int32(0); b < 64; b++ {
				if ref[w<<6+b] {
					wantWord |= 1 << uint(b)
				}
			}
			if got != wantWord {
				t.Fatalf("Word(%d) = %#x, want %#x", w, got, wantWord)
			}
		}
		if s.Word(int32(len(member))+5) != 0 {
			t.Fatal("out-of-range Word not zero")
		}
	})
}

// TestKernelsBoundary pins the word-boundary cases the fuzz corpus may
// not hit on a short run: ids at 63/64/127 and a membership array whose
// final word is partial relative to the row's range.
func TestKernelsBoundary(t *testing.T) {
	row := []int32{0, 63, 64, 65, 127, 128, 191}
	words := []uint64{1 << 63, 1 << 1, 1} // members: 63, 65, 128
	for _, id := range []int32{63, 65, 128} {
		if !hasBit(words, id) {
			t.Fatalf("test setup: %d not a member", id)
		}
	}
	if got := FirstAndRow(words, row); got != 63 {
		t.Fatalf("FirstAndRow = %d, want 63", got)
	}
	if got := CountAndRow(words, row); got != 3 {
		t.Fatalf("CountAndRow = %d, want 3", got)
	}
	if !IntersectsRow(words, row) {
		t.Fatal("IntersectsRow = false")
	}
	// Row id 191 indexes word 2 — present; 192 would index word 3 — absent.
	if FirstAndRow(words, []int32{192, 200}) != -1 {
		t.Fatal("ids past the word array must read as non-members")
	}
	if CountAndRow(words, []int32{192}) != 0 || IntersectsRow(words, []int32{250}) {
		t.Fatal("ids past the word array must read as non-members")
	}
	rw, rm := PackRow(row, nil, nil)
	if got := FirstAndRuns(words, rw, rm); got != 63 {
		t.Fatalf("FirstAndRuns = %d, want 63", got)
	}
	if got := CountAndRuns(words, rw, rm); got != 3 {
		t.Fatalf("CountAndRuns = %d, want 3", got)
	}
	if !IntersectsRuns(words, rw, rm) || IntersectsRuns(words, []int32{3}, []uint64{1}) {
		t.Fatal("IntersectsRuns boundary mismatch")
	}
}

// TestStampedEpochBoundaryViews pins that the new word views respect the
// epoch stamps: a word written last epoch reads as zero this epoch, and
// AndInto/AndNotInto skip stale words entirely.
func TestStampedEpochBoundaryViews(t *testing.T) {
	var s Stamped
	s.Grow(256)
	s.Set(5)
	s.OrWord(3, 0xff)
	s.Reset()
	if s.Word(0) != 0 || s.Word(3) != 0 {
		t.Fatal("stale word visible after Reset")
	}
	all := []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	if got := s.AndInto(all, nil); len(got) != 0 {
		t.Fatalf("AndInto after Reset = %v", got)
	}
	if got := s.AndNotInto(nil, nil); len(got) != 0 {
		t.Fatalf("AndNotInto after Reset = %v", got)
	}
	s.Set(70)
	if got := s.AndNotInto(all[:1], nil); !slices.Equal(got, []int32{70}) {
		t.Fatalf("AndNotInto past words end = %v, want [70]", got)
	}
	if got := s.AndInto(all[:1], nil); len(got) != 0 {
		t.Fatalf("AndInto past words end = %v, want empty", got)
	}
	if got := s.TouchedWords(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("TouchedWords = %v, want [1]", got)
	}
}
