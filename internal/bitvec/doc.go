// Package bitvec provides compact bit vectors and bit-size accounting
// helpers used to express CONGEST messages, plus the epoch-stamped sets
// the frontier-style engine paths are built on.
//
// The CONGEST model limits each message to B = O(log n) bits. Protocols in
// this repository build their payloads from integers and bit vectors and
// declare the exact bit count of every message; this package centralizes
// those size computations so tests can assert model compliance.
//
// Stamped is a reusable word-packed set with O(1) clearing (epoch stamps
// instead of eager zeroing) and enumeration proportional to the words an
// epoch actually touched. The dynamic repair path tracks its dirty,
// woken, and region sets in Stamped vectors — the first slice of the
// planned engine-wide bit-packed frontier representation (ROADMAP item 3).
package bitvec
