// Package bitvec provides compact bit vectors and bit-size accounting
// helpers used to express CONGEST messages.
//
// The CONGEST model limits each message to B = O(log n) bits. Protocols in
// this repository build their payloads from integers and bit vectors and
// declare the exact bit count of every message; this package centralizes
// those size computations so tests can assert model compliance.
package bitvec
