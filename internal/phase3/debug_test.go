package phase3

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestTreeConsistencyAfterMerging validates the spanning-tree invariants
// that the finisher depends on: within each component all nodes share one
// cluster ID, parent pointers form a tree rooted at the CID node, and
// depths equal parent depth + 1.
func TestTreeConsistencyAfterMerging(t *testing.T) {
	g := graph.GNP(60, 0.06, 100)
	p := DefaultParams(ModeAlg1)
	comps := graph.Components(g)
	maxComp := 0
	for _, c := range comps {
		if len(c) > maxComp {
			maxComp = len(c)
		}
	}
	tt := NewTimetable(g.N(), maxComp, p)
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{tt: tt, threshVal: p.IndegreeThresh}
		machines[v] = nodes[v]
	}
	if _, err := sim.Run(g, machines, sim.Config{Seed: 0, MaxRounds: tt.TotalLen + 2}); err != nil {
		t.Fatal(err)
	}

	t.Logf("timetable: D=%d iters=%d LR=%d classes=%d GRounds=%d K=%d totalLen=%d",
		tt.D, tt.Iters, tt.LR, tt.Classes, tt.GRounds, tt.K, tt.TotalLen)

	for ci, comp := range comps {
		cid := nodes[comp[0]].tree.CID
		sameCid := true
		for _, v := range comp {
			if nodes[v].tree.CID != cid {
				sameCid = false
			}
		}
		if !sameCid {
			cids := map[int32]int{}
			for _, v := range comp {
				cids[nodes[v].tree.CID]++
			}
			t.Errorf("component %d (size %d): clusters not merged: %v", ci, len(comp), cids)
			continue
		}
		// Parent/depth invariants.
		for _, v := range comp {
			nm := nodes[v]
			if nm.tree.IsRoot() {
				if nm.tree.Depth != 0 {
					t.Errorf("root %d has depth %d", v, nm.tree.Depth)
				}
				if int32(v) != cid {
					t.Errorf("root %d but cid %d", v, cid)
				}
				continue
			}
			p := nm.tree.Parent
			if !g.HasEdge(v, int(p)) {
				t.Errorf("node %d parent %d not adjacent", v, p)
			}
			if nodes[p].tree.Depth != nm.tree.Depth-1 {
				t.Errorf("node %d depth %d, parent %d depth %d", v, nm.tree.Depth, p, nodes[p].tree.Depth)
			}
		}
		// Finisher diagnostics for undecided components.
		und := 0
		for _, v := range comp {
			if !nodes[v].Decided() {
				und++
			}
		}
		if und > 0 {
			nm := nodes[comp[0]]
			t.Errorf("component %d (size %d): %d undecided, broken=%v attempts=%d sameCid=%v",
				ci, len(comp), und, nm.Broken(), nm.AttemptsUsed(), sameCid)
		}
	}
}
