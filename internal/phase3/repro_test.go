package phase3

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// TestStressTreeIntegrity runs the full phase on a spread of graphs and
// validates the spanning-tree invariants and the MIS on every run — the
// regression net for the re-rooting protocol.
func TestStressTreeIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, mode := range []Mode{ModeAlg1, ModeAlg2} {
		for n := 40; n <= 200; n += 40 {
			for _, d := range []float64{2, 5, 9} {
				for gseed := uint64(0); gseed < 3; gseed++ {
					g := graph.GNP(n, d/float64(n), gseed*7+uint64(n))
					p := DefaultParams(mode)
					comps := graph.Components(g)
					maxComp := 0
					for _, c := range comps {
						if len(c) > maxComp {
							maxComp = len(c)
						}
					}
					tt := NewTimetable(g.N(), maxComp, p)
					machines := make([]sim.Machine, g.N())
					nodes := make([]*Machine, g.N())
					for v := range machines {
						nodes[v] = &Machine{tt: tt, threshVal: p.IndegreeThresh}
						machines[v] = nodes[v]
					}
					if _, err := sim.Run(g, machines, sim.Config{Seed: 1, MaxRounds: tt.TotalLen + 2}); err != nil {
						t.Fatal(err)
					}
					inSet := make([]bool, g.N())
					for v, nm := range nodes {
						if nm.tree.Parent >= 0 {
							pp := nm.tree.Parent
							if !g.HasEdge(v, int(pp)) || nodes[pp].tree.Depth != nm.tree.Depth-1 ||
								nodes[pp].tree.CID != nm.tree.CID {
								t.Fatalf("mode=%d n=%d d=%v gseed=%d: tree invariant broken at node %d",
									mode, n, d, gseed, v)
							}
						}
						if !nm.Decided() {
							t.Fatalf("mode=%d n=%d d=%v gseed=%d: node %d undecided (broken=%v)",
								mode, n, d, gseed, v, nm.Broken())
						}
						inSet[v] = nm.InMIS
					}
					if err := verify.Check(g, inSet); err != nil {
						t.Fatalf("mode=%d n=%d d=%v gseed=%d: %v", mode, n, d, gseed, err)
					}
				}
			}
		}
	}
}
