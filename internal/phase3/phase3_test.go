package phase3

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestTimetableLayout(t *testing.T) {
	tt := NewTimetable(100, 20, DefaultParams(ModeAlg1))
	if tt.D != 21 {
		t.Fatalf("D = %d, want 21", tt.D)
	}
	if tt.LR != 2 {
		t.Fatalf("LR = %d", tt.LR)
	}
	if tt.Classes >= 100 || tt.Classes < 2 {
		t.Fatalf("Classes = %d", tt.Classes)
	}
	l := tt.layout
	// Stage offsets must be strictly increasing and fit in the length.
	offs := []int{l.x0, l.cc1, l.bc1, l.x1, l.cc2, l.bc2, l.x2a, l.x2b, l.cvBase, l.clBase, l.cc3, l.bc3, l.xr, l.xr2, l.mgBase}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not increasing: %v", offs)
		}
	}
	if l.mgBase+4*(2*l.d+1) != l.length {
		t.Fatalf("length mismatch: %d vs %d", l.mgBase+4*(2*l.d+1), l.length)
	}
	if tt.TotalLen <= tt.finBase {
		t.Fatal("finisher not scheduled")
	}
}

func TestTimetableAlg2Palette(t *testing.T) {
	tt := NewTimetable(1<<20, 30, DefaultParams(ModeAlg2))
	if tt.Classes > 8 {
		t.Fatalf("Alg2 classes = %d, want O(1)", tt.Classes)
	}
	tt1 := NewTimetable(1<<20, 30, DefaultParams(ModeAlg1))
	if tt1.LR != 2 {
		t.Fatalf("Alg1 LR = %d", tt1.LR)
	}
	if tt1.Classes < tt.Classes {
		t.Fatalf("Alg1 classes %d < Alg2 classes %d", tt1.Classes, tt.Classes)
	}
}

func TestCVStep(t *testing.T) {
	// Proper input: own != parent implies new(own) != new(parent') for the
	// chained application; here just check determinism and range.
	for own := int32(0); own < 32; own++ {
		for par := int32(0); par < 32; par++ {
			if own == par {
				continue
			}
			c := cvStep(own, par, 32)
			if c < 0 || c >= 12 {
				t.Fatalf("cvStep(%d,%d) = %d out of range", own, par, c)
			}
			// The defining property: applying the step to both sides of an
			// edge yields different colors.
			c2 := cvStep(par, own, 32)
			if c == c2 {
				t.Fatalf("cvStep collision: (%d,%d) -> %d, %d", own, par, c, c2)
			}
		}
	}
}

func runP3(t *testing.T, g *graph.Graph, mode Mode, seed uint64) *Outcome {
	t.Helper()
	out, err := Run(g, DefaultParams(mode), sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkMIS(t *testing.T, g *graph.Graph, out *Outcome) {
	t.Helper()
	if len(out.Undecided) > 0 {
		t.Fatalf("%d undecided nodes (broken=%d, attempts=%d)", len(out.Undecided), out.BrokenNodes, out.MaxAttempts)
	}
	if err := verify.Check(g, out.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestSingleEdge(t *testing.T) {
	g := graph.Path(2)
	out := runP3(t, g, ModeAlg1, 1)
	checkMIS(t, g, out)
}

func TestTriangle(t *testing.T) {
	g := graph.Cycle(3)
	out := runP3(t, g, ModeAlg1, 2)
	checkMIS(t, g, out)
	if verify.Count(out.InSet) != 1 {
		t.Fatalf("triangle MIS size %d", verify.Count(out.InSet))
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	out := runP3(t, g, ModeAlg1, 3)
	checkMIS(t, g, out)
	if verify.Count(out.InSet) != 5 {
		t.Fatal("isolated nodes must all join")
	}
}

func TestSmallGraphsBothModes(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path10":    graph.Path(10),
		"cycle9":    graph.Cycle(9),
		"star12":    graph.Star(12),
		"k5":        graph.Complete(5),
		"grid4x4":   graph.Grid2D(4, 4),
		"twocomps":  graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}}),
		"binary":    graph.RandomTree(15, 3),
		"dumbbell":  graph.FromEdges(8, [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}, {6, 7}}),
		"bipartite": graph.CompleteBipartite(3, 4),
	}
	for name, g := range graphs {
		for _, mode := range []Mode{ModeAlg1, ModeAlg2} {
			t.Run(name, func(t *testing.T) {
				out := runP3(t, g, mode, 7)
				checkMIS(t, g, out)
			})
		}
	}
}

func TestShatteredResidualScale(t *testing.T) {
	// The realistic input: many small components.
	g := graph.FromEdges(0, nil)
	b := graph.NewBuilder(300)
	// 30 components of 10 nodes each (random trees plus chords).
	for c := 0; c < 30; c++ {
		base := c * 10
		for v := 1; v < 10; v++ {
			b.AddEdge(base+v, base+(v/2))
		}
		b.AddEdge(base, base+9)
		b.AddEdge(base+3, base+7)
	}
	g = b.Build()
	out := runP3(t, g, ModeAlg1, 11)
	checkMIS(t, g, out)
	if out.Components != 30 || out.MaxComponent != 10 {
		t.Fatalf("components=%d maxComp=%d", out.Components, out.MaxComponent)
	}
	if out.MaxDepth >= out.Timetable.D {
		t.Fatalf("depth %d reached bound %d", out.MaxDepth, out.Timetable.D)
	}
}

func TestRandomGraphsManySeeds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := graph.GNP(60, 0.06, seed+100)
		out := runP3(t, g, ModeAlg1, seed)
		checkMIS(t, g, out)
	}
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.GNP(60, 0.06, seed+200)
		out := runP3(t, g, ModeAlg2, seed)
		checkMIS(t, g, out)
	}
}

func TestEnergyBound(t *testing.T) {
	g := graph.GNP(120, 0.04, 5)
	out := runP3(t, g, ModeAlg1, 9)
	checkMIS(t, g, out)
	tt := out.Timetable
	// Per iteration: a constant number of exchanges and tree ops plus
	// O(LR) coloring rounds and the node's own class window; finisher:
	// 2*GRounds + O(1) tree ops per attempt.
	periter := 40 + 6*tt.LR
	budget := tt.Iters*periter + out.MaxAttempts*(2*tt.GRounds+10) + 10
	if got := out.Res.MaxAwake(); got > budget {
		t.Fatalf("MaxAwake = %d exceeds budget %d (iters=%d LR=%d GR=%d)",
			got, budget, tt.Iters, tt.LR, tt.GRounds)
	}
}

func TestCongestCompliance(t *testing.T) {
	g := graph.GNP(100, 0.05, 6)
	out := runP3(t, g, ModeAlg1, 13)
	if out.Res.Violations != 0 {
		t.Fatalf("violations=%d bitsMax=%d (B=%d)", out.Res.Violations, out.Res.BitsMax, sim.DefaultB(g.N()))
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(80, 0.05, 7)
	a := runP3(t, g, ModeAlg1, 42)
	b := runP3(t, g, ModeAlg1, 42)
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}
