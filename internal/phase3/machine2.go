package phase3

import (
	"sort"

	"github.com/energymis/energymis/internal/cluster"
	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/sim"
)

// debugHook, when non-nil, observes (iteration, node, clusterID) at every
// X0 round. Tests use it to trace merging progress.
var debugHook func(iter, node int, cid int32)

// rerootTrace, when non-nil, observes every applied re-rooting update.
var rerootTrace func(node, iter, stage int, oldD, oldP, newD, newP, newCid int32)

// nbrIndex returns the index of neighbor id in the sorted adjacency list,
// or -1.
func (m *Machine) nbrIndex(id int32) int {
	nb := m.env.Neighbors
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= id })
	if i < len(nb) && nb[i] == id {
		return i
	}
	return -1
}

// nbrStatusOf returns the X2a status bits of the given neighbor.
func (m *Machine) nbrStatusOf(id int32) uint8 {
	if i := m.nbrIndex(id); i >= 0 && i < len(m.nbrStatus) {
		return m.nbrStatus[i]
	}
	return 0xFF
}

// hasForeign reports whether the node has a neighbor in another cluster.
func (m *Machine) hasForeign() bool {
	for _, c := range m.nbrCid {
		if c != m.tree.CID {
			return true
		}
	}
	return false
}

// mergeCand folds a (cid, edge) candidate into the running minimum.
func (m *Machine) mergeCand(cid int32, edge uint64) {
	if cid < 0 {
		return
	}
	if m.candCid < 0 || cid < m.candCid || (cid == m.candCid && edge < m.candEdge) {
		m.candCid, m.candEdge = cid, edge
	}
}

// applyBC1 finalizes the cluster's outgoing-edge choice at the root.
func (m *Machine) applyBC1(cid int32, edge uint64) {
	if cid >= 0 {
		m.chosenEdge = edge
	} else {
		m.chosenEdge = noEdge
	}
	m.notePostBC1()
}

// notePostBC1 derives boundary roles from the chosen edge.
func (m *Machine) notePostBC1() {
	m.active = m.chosenEdge != noEdge
	if !m.active {
		return
	}
	a, b := edgeEnds(m.chosenEdge)
	self := int32(m.env.Node)
	if a == self || b == self {
		other := a
		if a == self {
			other = b
		}
		if i := m.nbrIndex(other); i >= 0 && m.nbrCid[i] != m.tree.CID {
			m.amOutB = true
			m.outNbr = other
			m.outCid = m.nbrCid[i]
		}
	}
}

// fromParent reports whether a message came down the tree.
func (m *Machine) fromParent(msg sim.Msg) bool { return msg.From == m.tree.Parent }

// Deliver implements sim.Machine.
func (m *Machine) Deliver(round int, inbox []sim.Msg) int {
	if round >= m.tt.finCheck {
		m.deliverFinisher(round, inbox)
	} else {
		m.deliverMerge(round, inbox)
	}
	return m.wake.next(round)
}

func (m *Machine) deliverMerge(round int, inbox []sim.Msg) {
	i := round / m.tt.layout.length
	off := round - m.tt.iterBase(i)
	l := &m.tt.layout
	base := m.tt.iterBase(i)
	d := int(m.tree.Depth)

	switch {
	case off == l.x0:
		if debugHook != nil {
			debugHook(i, m.env.Node, m.tree.CID)
		}
		m.resetIteration()
		if len(m.nbrStatus) != m.env.Degree {
			m.nbrStatus = make([]uint8, m.env.Degree)
		}
		for j := range m.nbrStatus {
			m.nbrStatus[j] = 0xFF
		}
		for _, msg := range inbox {
			if msg.Kind == kCid {
				if j := m.nbrIndex(msg.From); j >= 0 {
					m.nbrCid[j] = int32(uint32(msg.A))
				}
			}
		}
		self := int32(m.env.Node)
		for j, c := range m.nbrCid {
			if c != m.tree.CID {
				m.mergeCand(c, packEdge(self, m.env.Neighbors[j]))
			}
		}
		m.addOp(cluster.OpConvergecast, base+l.cc1)
		m.addOp(cluster.OpBroadcast, base+l.bc1)

	case off >= l.cc1 && off < l.cc1+l.d:
		for _, msg := range inbox {
			if msg.Kind == kCC1 && msg.A > 0 {
				m.mergeCand(int32(uint32(msg.A-1)), msg.B)
			}
		}

	case off >= l.bc1 && off < l.bc1+l.d:
		if m.tree.IsRoot() {
			// The root finalized the choice in Compose; plan follow-ups.
			m.planPostBC1(base)
			return
		}
		for _, msg := range inbox {
			if msg.Kind == kBC1 && m.fromParent(msg) {
				if msg.A == 1 {
					m.chosenEdge = msg.B
				} else {
					m.chosenEdge = noEdge
				}
				m.notePostBC1()
				m.planPostBC1(base)
			}
		}

	case off == l.x1:
		for _, msg := range inbox {
			if msg.Kind != kChosen {
				continue
			}
			if m.amOutB && msg.From == m.outNbr {
				m.mPartner = msg.From
				m.mPartnerCid = int32(uint32(msg.A))
			} else {
				m.inEdges = append(m.inEdges, inEdge{nbr: msg.From, fromCid: int32(uint32(msg.A))})
			}
		}
		if len(m.inEdges) > 0 {
			m.wake.add(base + l.xr2) // possible R-attach requests
		}

	case off >= l.cc2 && off < l.cc2+l.d:
		for _, msg := range inbox {
			if msg.Kind == kCC2 {
				m.cc2Cnt += int(msg.A)
				if msg.B&(1<<32) != 0 {
					m.cc2M = true
					m.cc2MCid = int32(uint32(msg.B))
				}
			}
		}

	case off >= l.bc2 && off < l.bc2+l.d:
		if m.tree.IsRoot() {
			m.planPostBC2(base)
			return
		}
		for _, msg := range inbox {
			if msg.Kind == kBC2 && m.fromParent(msg) {
				m.isHigh = msg.A&1 != 0
				m.hasM = msg.A&2 != 0
				m.hasIn = msg.A&4 != 0
				if m.hasM && m.mPartner < 0 {
					m.mPartnerCid = int32(uint32(msg.B - 1))
				}
				m.planPostBC2(base)
			}
		}

	case off == l.x2a:
		for _, msg := range inbox {
			if msg.Kind == kStatus {
				if j := m.nbrIndex(msg.From); j >= 0 {
					m.nbrStatus[j] = uint8(msg.A)
				}
			}
		}
		if m.amOutB {
			st := m.nbrStatusOf(m.outNbr)
			m.targetHigh = st&1 != 0
			m.targetM = st&2 != 0
			if m.targetHigh {
				m.wake.add(base + l.x2b) // may receive an EH-accept
			}
		}
		m.planColorExchanges(base)

	case off == l.x2b:
		for _, msg := range inbox {
			// Only a low, M-free cluster can become an EH leaf: a high
			// cluster's outgoing edge was removed from H.
			if msg.Kind == kEHAccept && msg.From == m.outNbr && m.participant() {
				m.ehLeaf = true
			}
		}

	default:
		m.deliverLate(base, off, d, inbox)
	}
}

// planPostBC1 schedules the stages every node of an active cluster
// attends after learning the chosen edge. A cluster with no outgoing edge
// spans its entire component: components never split, so its nodes skip
// every remaining iteration and sleep until the finisher check.
func (m *Machine) planPostBC1(base int) {
	l := &m.tt.layout
	if !m.active {
		return
	}
	i := base / l.length
	if i+1 < m.tt.Iters {
		m.wake.add(m.tt.iterBase(i+1) + l.x0)
	}
	if m.amOutB || m.hasForeign() {
		m.wake.add(base + l.x1)
	}
	m.addOp(cluster.OpConvergecast, base+l.cc2)
	m.addOp(cluster.OpBroadcast, base+l.bc2)
}

// planPostBC2 schedules stages that depend on the high/M verdict.
func (m *Machine) planPostBC2(base int) {
	l := &m.tt.layout
	if m.hasForeign() {
		m.wake.add(base + l.x2a)
		m.wake.add(base + l.xr)
	}
	if m.isHigh && len(m.inEdges) > 0 {
		m.wake.add(base + l.x2b)
	}
	if m.participant() {
		m.color = m.tree.CID
		// Only a cluster with in-edges can act as a matching acceptor, so
		// only those need a color of their own; pure proposers learn the
		// acceptor's color at the exchange rounds.
		if m.hasIn {
			for r := 0; r < m.tt.LR; r++ {
				_, cc, bc := m.cvOffsets(r)
				m.addOp(cluster.OpConvergecast, base+cc)
				m.addOp(cluster.OpBroadcast, base+bc)
			}
		}
	}
	m.addOp(cluster.OpConvergecast, base+l.cc3)
	m.addOp(cluster.OpBroadcast, base+l.bc3)
	// Center roles known already: M center and EH center handshakes.
	if m.mPartner >= 0 && m.tree.CID < m.mPartnerCid {
		xm, _, _ := l.mgBlock(0)
		m.wake.add(base + xm)
	}
	if m.isHigh && len(m.inEdges) > 0 {
		xm, _, _ := l.mgBlock(1)
		m.wake.add(base + xm)
	}
}

// cvOffsets returns the X, CC, BC offsets of color-reduction round r.
func (m *Machine) cvOffsets(r int) (x, cc, bc int) {
	l := &m.tt.layout
	baseOff := l.cvBase + r*(2*l.d+1)
	return baseOff, baseOff + 1, baseOff + 1 + l.d
}

// cvFinalX returns the offset of the final color-exchange round.
func (m *Machine) cvFinalX() int {
	l := &m.tt.layout
	return l.cvBase + m.tt.LR*(2*l.d+1)
}

// planColorExchanges schedules the per-round color exchanges once
// neighbor statuses are known (at X2a).
func (m *Machine) planColorExchanges(base int) {
	if !m.participant() {
		return
	}
	sendAny := false
	for _, e := range m.inEdges {
		if m.nbrStatusOf(e.nbr)&3 == 0 {
			sendAny = true
			break
		}
	}
	recv := m.amOutB && !m.targetHigh && !m.targetM
	if !sendAny && !recv {
		return
	}
	for r := 0; r < m.tt.LR; r++ {
		x, _, _ := m.cvOffsets(r)
		m.wake.add(base + x)
	}
	m.wake.add(base + m.cvFinalX())
}

// planClassLoop schedules the node's class-window attendance once its
// cluster color is final.
func (m *Machine) planClassLoop(base int) {
	if !m.participant() || !m.hasIn || m.color < 0 || int(m.color) >= m.tt.Classes {
		return
	}
	l := &m.tt.layout
	xa, cca, bca, xb := l.clBlock(int(m.color))
	if len(m.inEdges) > 0 {
		m.wake.add(base + xa)
		m.wake.add(base + xb)
	}
	m.addOp(cluster.OpConvergecast, base+cca)
	m.addOp(cluster.OpBroadcast, base+bca)
}

// planTargetClass schedules the proposer-side rounds of the out-target's
// class window.
func (m *Machine) planTargetClass(base int) {
	if !m.amOutB || !m.participant() || m.targetHigh || m.targetM {
		return
	}
	if m.targetColor < 0 || int(m.targetColor) >= m.tt.Classes {
		return
	}
	l := &m.tt.layout
	xa, _, _, xb := l.clBlock(int(m.targetColor))
	m.wake.add(base + xa)
	m.wake.add(base + xb)
}

// decideRole computes the cluster's merge role at the root (BC3).
func (m *Machine) decideRole() {
	ehL := m.cc3Agg&1 != 0 || m.ehLeaf
	mlL := m.cc3Agg&2 != 0 || m.mlLeaf
	m.hasMerge = m.hasM || m.isHigh || m.clusterMatched || ehL || mlL
	switch {
	case m.hasM && m.tree.CID > m.mPartnerCid:
		m.leafStage = 0
	case ehL:
		m.leafStage = 1
	case mlL:
		m.leafStage = 2
	case m.active && !m.hasMerge:
		m.leafStage = 3
	default:
		m.leafStage = noStage
	}
}

// planPostBC3 schedules the merge sub-stage windows for leaf clusters.
func (m *Machine) planPostBC3(base int) {
	l := &m.tt.layout
	if m.leafStage == 3 && m.amOutB {
		m.wake.add(base + l.xr2)
	}
	if m.leafStage < noStage {
		xm, ccm, bcm := l.mgBlock(m.leafStage)
		// The leaf boundary listens for the depth handshake.
		if m.isLeafBoundary() {
			m.wake.add(base + xm)
		}
		m.addOp(cluster.OpConvergecast, base+ccm)
		m.addOp(cluster.OpBroadcast, base+bcm)
	}
}

// isLeafBoundary reports whether this node anchors its cluster's merge
// edge for the cluster's leaf sub-stage.
func (m *Machine) isLeafBoundary() bool {
	switch m.leafStage {
	case 0:
		return m.mPartner >= 0
	case 1:
		return m.ehLeaf
	case 2:
		return m.mlLeaf
	case 3:
		return m.amOutB
	}
	return false
}

// deliverLate handles CV, class-loop, role, and merge deliveries.
func (m *Machine) deliverLate(base, off, d int, inbox []sim.Msg) {
	l := &m.tt.layout

	if off >= l.cvBase && off < l.clBase {
		rel := off - l.cvBase
		blockLen := 2*l.d + 1
		if rel == m.tt.LR*blockLen { // final color exchange
			for _, msg := range inbox {
				if msg.Kind == kCVx && msg.From == m.outNbr {
					m.targetColor = int32(uint32(msg.A))
				}
			}
			m.planTargetClass(base)
			return
		}
		r := rel / blockLen
		o := rel % blockLen
		switch {
		case o == 0: // X round: u learns target's current color
			for _, msg := range inbox {
				if msg.Kind == kCVx && msg.From == m.outNbr {
					m.targetColor = int32(uint32(msg.A))
					m.cvUp = int64(msg.A) + 1
				}
			}
		case o >= 1 && o < 1+l.d: // CC
			for _, msg := range inbox {
				if msg.Kind == kCVcc && msg.A > 0 {
					m.cvUp = int64(msg.A)
				}
			}
		default: // BC
			if m.tree.IsRoot() {
				if r == m.tt.LR-1 && o-1-l.d == cluster.BroadcastSendRound(0) {
					m.planClassLoop(base)
				}
				return
			}
			for _, msg := range inbox {
				if msg.Kind == kCVbc && m.fromParent(msg) {
					m.color = int32(uint32(msg.A))
					if r == m.tt.LR-1 {
						m.planClassLoop(base)
					}
				}
			}
		}
		return
	}

	if off >= l.clBase && off < l.cc3 {
		rel := off - l.clBase
		blockLen := 2*l.d + 2
		c := rel / blockLen
		o := rel % blockLen
		switch {
		case o == 0: // Xa: record availability proposals
			if int(m.color) != c {
				return
			}
			self := int32(m.env.Node)
			for _, msg := range inbox {
				if msg.Kind != kAvail {
					continue
				}
				for j := range m.inEdges {
					if m.inEdges[j].nbr == msg.From {
						m.inEdges[j].avail = true
						e := packEdge(self, msg.From)
						if e < m.ccaEdge {
							m.ccaEdge = e
						}
					}
				}
			}
		case o >= 1 && o < 1+l.d: // CCa
			for _, msg := range inbox {
				if msg.Kind == kCCa {
					if msg.A < m.ccaEdge {
						m.ccaEdge = msg.A
					}
					if msg.B != 0 {
						m.ccaMatched = true
					}
				}
			}
		case o >= 1+l.d && o < 1+2*l.d: // BCa
			if m.tree.IsRoot() {
				return
			}
			for _, msg := range inbox {
				if msg.Kind == kBCa && m.fromParent(msg) {
					m.acceptEdge = msg.A
					m.clusterMatched = msg.B != 0
				}
			}
		default: // Xb
			for _, msg := range inbox {
				if msg.Kind == kAccept && msg.From == m.outNbr {
					m.mlLeaf = true
				}
			}
			if len(m.mlAccepted) > 0 { // we sent accepts: center in ML stage
				xm, _, _ := l.mgBlock(2)
				m.wake.add(base + xm)
			}
		}
		return
	}

	if off >= l.cc3 && off < l.cc3+l.d {
		for _, msg := range inbox {
			if msg.Kind == kCC3 {
				m.cc3Agg |= msg.A
			}
		}
		return
	}

	if off >= l.bc3 && off < l.bc3+l.d {
		if m.tree.IsRoot() {
			m.planPostBC3(base)
			return
		}
		for _, msg := range inbox {
			if msg.Kind == kBC3 && m.fromParent(msg) {
				m.leafStage = int(msg.A & 7)
				m.hasMerge = msg.A&8 != 0
				m.planPostBC3(base)
			}
		}
		return
	}

	if off == l.xr {
		for _, msg := range inbox {
			if msg.Kind == kXR && m.amOutB && msg.From == m.outNbr {
				m.targetMerge = msg.A != 0
			}
		}
		return
	}

	if off == l.xr2 {
		for _, msg := range inbox {
			if msg.Kind == kRAttach {
				m.rIn = append(m.rIn, msg.From)
			}
		}
		if len(m.rIn) > 0 {
			xm, _, _ := l.mgBlock(3)
			m.wake.add(base + xm)
		}
		return
	}

	if off >= l.mgBase && off < l.length {
		rel := off - l.mgBase
		blockLen := 2*l.d + 1
		s := rel / blockLen
		o := rel % blockLen
		switch {
		case o == 0: // Xm: leaf boundary learns the attachment point
			if m.leafStage != s || !m.isLeafBoundary() {
				return
			}
			for _, msg := range inbox {
				if msg.Kind == kXm {
					m.hasV = true
					m.vIsSelf = true
					m.vDepth = m.tree.Depth
					m.reParent = msg.From
					m.reBase = int32(uint32(msg.A)) + 1
					m.reCid = int32(uint32(msg.B))
				}
			}
		case o >= 1 && o < 1+l.d: // CCm
			for _, msg := range inbox {
				if msg.Kind == kCCm && msg.A&1 != 0 {
					m.hasV = true
					m.vChild = msg.From
					m.vDepth = int32((msg.A >> 1) & 0xFFFFF)
					m.reBase = int32(msg.A >> 21)
					m.reCid = int32(uint32(msg.B))
				}
			}
		default: // BCm
			if m.leafStage != s {
				return
			}
			for _, msg := range inbox {
				if msg.Kind == kBCm && m.fromParent(msg) {
					m.bcmGot = true
					m.vDepth = int32(msg.A & 0xFFFF)
					dist := int32((msg.A >> 16) & 0xFFFF)
					m.reBase = int32(msg.A >> 32)
					m.reCid = int32(uint32(msg.B))
					if !m.hasV {
						m.bcmDist = dist + 1
					}
				}
			}
			if m.pendSet {
				if rerootTrace != nil {
					rerootTrace(m.env.Node, base/m.tt.layout.length, s,
						m.tree.Depth, m.tree.Parent, m.pendDepth, m.pendPar, m.pendCid)
				}
				m.tree.Depth = m.pendDepth
				m.tree.Parent = m.pendPar
				m.tree.CID = m.pendCid
				m.pendSet = false
			}
		}
	}
}

// --- Finisher (Lemma 2.7) ---

func (m *Machine) composeFinisher(round int, out *sim.Outbox) {
	tt := m.tt
	d := int(m.tree.Depth)
	switch {
	case round == tt.finCheck:
		out.Broadcast(sim.Msg{Kind: kFCheck, A: uint64(uint32(m.tree.CID)), Bits: m.idb})
	case round >= tt.finCCb && round < tt.finCCb+tt.D:
		if round-tt.finCCb == cluster.ConvergecastSendRound(d, tt.D) && !m.tree.IsRoot() {
			var a uint64
			if m.brokenLocal {
				a = 1
			}
			out.Send(m.tree.Parent, sim.Msg{Kind: kCCb, A: a, Bits: 1})
		}
	case round >= tt.finBCb && round < tt.finBCb+tt.D:
		if round-tt.finBCb == cluster.BroadcastSendRound(d) {
			if m.tree.IsRoot() {
				m.broken = m.brokenLocal
			}
			var a uint64
			if m.broken {
				a = 1
			}
			out.Broadcast(sim.Msg{Kind: kBCb, A: a, Bits: 1})
		}
	default:
		m.composeAttempt(round, out)
	}
}

func (m *Machine) composeAttempt(round int, out *sim.Outbox) {
	if m.done || m.broken || m.proto == nil {
		return
	}
	a := (round - m.tt.finBase) / m.tt.attLen
	g0, cc, bc := m.tt.attStages(a)
	d := int(m.tree.Depth)
	switch {
	case round >= g0 && round < g0+2*m.tt.GRounds:
		if (round-g0)%2 == 0 {
			marks := m.proto.ComposeMarks()
			out.Broadcast(packVec(kMarks, marks, m.proto.Bits()))
		} else if anyWord(m.pendingJoins) {
			out.Broadcast(packVec(kJoins, m.pendingJoins, m.proto.Bits()))
		}
	case round >= cc && round < cc+m.tt.D:
		if round-cc == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
			sv := m.proto.SuccessVector()
			a0, a1 := m.ccfA&word(sv, 0), m.ccfB&word(sv, 1)
			out.Send(m.tree.Parent, sim.Msg{Kind: kCCf, A: a0, B: a1, Bits: int32(m.tt.K)})
		}
	case round >= bc && round < bc+m.tt.D:
		if round-bc == cluster.BroadcastSendRound(d) {
			if m.tree.IsRoot() {
				sv := m.proto.SuccessVector()
				a0, a1 := m.ccfA&word(sv, 0), m.ccfB&word(sv, 1)
				m0, m1 := maskK(m.tt.K)
				a0, a1 = a0&m0, a1&m1
				m.bcfPayload = 0
				if e := firstSet(a0, a1); e >= 0 {
					m.bcfPayload = 1<<32 | uint64(e)
				}
			}
			out.Broadcast(sim.Msg{Kind: kBCf, A: m.bcfPayload, Bits: 9})
		}
	}
}

// applyBCf consumes the finisher verdict at the node's own send round.
func (m *Machine) applyBCf(attempt int) {
	if m.bcfPayload&(1<<32) != 0 {
		e := int(uint32(m.bcfPayload))
		m.InMIS = m.proto.InMIS[e]
		m.decided = true
		m.done = true
		return
	}
	m.planAttempt(attempt + 1)
}

func (m *Machine) deliverFinisher(round int, inbox []sim.Msg) {
	tt := m.tt
	switch {
	case round == tt.finCheck:
		for _, msg := range inbox {
			if msg.Kind == kFCheck && int32(uint32(msg.A)) != m.tree.CID {
				m.brokenLocal = true
			}
		}
		m.addOp(cluster.OpConvergecast, tt.finCCb)
		m.addOp(cluster.OpBroadcast, tt.finBCb)
	case round >= tt.finCCb && round < tt.finCCb+tt.D:
		for _, msg := range inbox {
			if msg.Kind == kCCb && msg.A != 0 {
				m.brokenLocal = true
			}
		}
	case round >= tt.finBCb && round < tt.finBCb+tt.D:
		if !m.tree.IsRoot() {
			for _, msg := range inbox {
				if msg.Kind == kBCb && m.fromParent(msg) {
					m.broken = msg.A != 0
				}
			}
		}
		if !m.broken {
			m.planAttempt(0)
		}
	default:
		m.deliverAttempt(round, inbox)
	}
}

// planAttempt schedules attempt a and resets the execution state.
func (m *Machine) planAttempt(a int) {
	if a >= m.tt.Attempts {
		return
	}
	m.attempts = a + 1
	m.proto = ghaffari.NewProto(m.tt.K, m.env.Rand)
	m.ccfA, m.ccfB = ^uint64(0), ^uint64(0)
	m.bcfPayload = 0
	g0, cc, bc := m.tt.attStages(a)
	// The dynamics rounds are scheduled one at a time so a node that is
	// decided in every execution can sleep out the rest of the block.
	m.wake.add(g0)
	m.addOp(cluster.OpConvergecast, cc)
	m.addOp(cluster.OpBroadcast, bc)
}

func (m *Machine) deliverAttempt(round int, inbox []sim.Msg) {
	if m.done || m.broken || m.proto == nil {
		return
	}
	a := (round - m.tt.finBase) / m.tt.attLen
	g0, cc, bc := m.tt.attStages(a)
	switch {
	case round >= g0 && round < g0+2*m.tt.GRounds:
		if (round-g0)%2 == 0 {
			m.pendingJoins = m.proto.AbsorbMarks(vecsOf(inbox, kMarks))
		} else {
			m.proto.AbsorbJoins(vecsOf(inbox, kJoins))
		}
		// Continue only while some execution is undecided, and only at
		// logical-round boundaries so mark/join pairs stay intact.
		if round+1 < g0+2*m.tt.GRounds {
			if (round-g0)%2 == 0 || !m.proto.AllDecided() {
				m.wake.add(round + 1)
			}
		}
	case round >= cc && round < cc+m.tt.D:
		for _, msg := range inbox {
			if msg.Kind == kCCf {
				m.ccfA &= msg.A
				m.ccfB &= msg.B
			}
		}
	case round >= bc && round < bc+m.tt.D:
		// Non-roots store the verdict at the listen round and both apply
		// and forward it at their own send round, so the broadcast keeps
		// flowing to deeper nodes before anyone stops participating.
		for _, msg := range inbox {
			if msg.Kind == kBCf && m.fromParent(msg) {
				m.bcfPayload = msg.A
			}
		}
		if round-bc == cluster.BroadcastSendRound(int(m.tree.Depth)) {
			m.applyBCf(a)
		}
	}
}

func packVec(kind uint8, words []uint64, bits int32) sim.Msg {
	msg := sim.Msg{Kind: kind, Bits: bits}
	if len(words) > 0 {
		msg.A = words[0]
	}
	if len(words) > 1 {
		msg.B = words[1]
	}
	return msg
}

func vecsOf(inbox []sim.Msg, kind uint8) [][]uint64 {
	var out [][]uint64
	for _, msg := range inbox {
		if msg.Kind == kind {
			out = append(out, []uint64{msg.A, msg.B})
		}
	}
	return out
}

func anyWord(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

func word(words []uint64, i int) uint64 {
	if i < len(words) {
		return words[i]
	}
	return 0
}

func maskK(k int) (uint64, uint64) {
	if k >= 128 {
		return ^uint64(0), ^uint64(0)
	}
	if k > 64 {
		return ^uint64(0), (uint64(1) << (uint(k) - 64)) - 1
	}
	if k == 64 {
		return ^uint64(0), 0
	}
	return (uint64(1) << uint(k)) - 1, 0
}

func firstSet(a, b uint64) int {
	for i := 0; i < 64; i++ {
		if a&(1<<uint(i)) != 0 {
			return i
		}
	}
	for i := 0; i < 64; i++ {
		if b&(1<<uint(i)) != 0 {
			return 64 + i
		}
	}
	return -1
}
