// Package phase3 implements Phase III of both algorithms: the
// deterministic, energy-efficient Borůvka-style cluster merging of
// Lemma 2.8 and the parallel-executions MIS finisher of Lemma 2.7.
//
// The phase runs on the shattered residual graph, whose connected
// components have poly(log n) size. All components execute the same global
// timetable in parallel. The timetable is static: every node can compute,
// from public parameters only, the engine round of every stage, and wakes
// only at the stages its current role requires (everything else is spent
// asleep), which is how the phase reaches O(1) awake rounds per merge
// iteration.
//
// One merge iteration consists of:
//
//	X0   every node exchanges its cluster ID with its neighbors;
//	CC1  convergecast: minimum (neighbor cluster ID, edge ID) → root;
//	BC1  broadcast: the cluster's chosen outgoing edge;
//	X1   the chosen edge is announced across; mutual choices form M edges;
//	CC2  convergecast: indegree count and M status;
//	BC2  broadcast: high/low indegree verdict, M partner;
//	X2a  every node announces its cluster's (high, M) status;
//	X2b  boundary nodes of high clusters send EH-accepts to in-neighbors;
//	CV   color reduction on the out-forest H_L: LR rounds, each
//	     broadcast(color) + cross-edge exchange + convergecast;
//	     (the paper invokes Linial's reduction; on a forest with known
//	     out-orientation the Cole–Vishkin step gives the same
//	     O(log log n)-colors-in-2-rounds / O(1)-colors-in-log*-rounds
//	     trade-off with identical class counts)
//	CL   class loop: for each color c, availability exchange, a proposal
//	     convergecast + decision broadcast inside clusters of color c, and
//	     an accept exchange — the maximal matching M_L of the paper;
//	CC3  convergecast: leaf roles (EH/ML) discovered at boundary nodes;
//	BC3  broadcast: the cluster's merge role and merge-edge status;
//	XR   merge-edge status exchange (for the R-edge rule);
//	XR2  R-attach requests;
//	MG   four merge sub-stages (M, EH, ML, R), each: a depth handshake
//	     across the merge edge, then a convergecast + broadcast in the leaf
//	     cluster that re-roots it at the attachment point (the "one
//	     convergecast + one broadcast re-rooting" of the paper).
//
// After Iters iterations every component is a single cluster with a rooted
// spanning tree; the finisher then runs K packed executions of the
// [Gha16/Gha19] dynamics, AND-convergecasts the per-execution success bits,
// and broadcasts the index of a fully successful execution (Lemma 2.7),
// retrying with fresh randomness if none succeeded.
package phase3
