package phase3

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// Outcome reports a Phase III run.
type Outcome struct {
	InSet     []bool // MIS membership for decided nodes
	Undecided []int  // nodes whose component failed (w.l.p.); empty normally
	Timetable *Timetable
	Res       *sim.Result

	MaxDepth     int // deepest final spanning-tree node (diameter <= 2*MaxDepth)
	MaxAttempts  int // finisher attempts used by any component
	BrokenNodes  int // nodes in components that failed to merge
	Components   int
	MaxComponent int
}

// plan derives the shared run parameters: the global timetable and the
// high-indegree threshold.
func plan(g *graph.Graph, p Params) (tt *Timetable, thresh, comps, maxComp int) {
	cc := graph.Components(g)
	for _, c := range cc {
		if len(c) > maxComp {
			maxComp = len(c)
		}
	}
	tt = NewTimetable(g.N(), maxComp, p)
	thresh = p.IndegreeThresh
	if thresh < 2 {
		thresh = 2
	}
	return tt, thresh, len(cc), maxComp
}

// assemble extracts the Outcome from the automata after a run.
func assemble(n int, node func(int) *Machine, tt *Timetable, res *sim.Result, comps, maxComp int) *Outcome {
	out := &Outcome{
		InSet:        make([]bool, n),
		Timetable:    tt,
		Res:          res,
		Components:   comps,
		MaxComponent: maxComp,
	}
	for v := 0; v < n; v++ {
		nm := node(v)
		if nm.Decided() {
			out.InSet[v] = nm.InMIS
		} else {
			out.Undecided = append(out.Undecided, v)
		}
		if nm.Broken() {
			out.BrokenNodes++
		}
		if nm.Depth() > out.MaxDepth {
			out.MaxDepth = nm.Depth()
		}
		if nm.AttemptsUsed() > out.MaxAttempts {
			out.MaxAttempts = nm.AttemptsUsed()
		}
	}
	return out
}

// Run executes Phase III on g: Borůvka merging from singleton clusters to
// one rooted spanning tree per connected component, then the Lemma 2.7
// parallel-executions finisher. The automata run as one flat value array
// on the batch runtime (see Batch); results are byte-identical to
// RunLegacy (the per-node reference).
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	tt, thresh, comps, maxComp := plan(g, p)
	b := NewBatch(g, tt, thresh)
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = tt.TotalLen + 2
	}
	res, err := sim.RunBatch(g, b, cfg)
	if err != nil {
		return nil, fmt.Errorf("phase3: %w", err)
	}
	return assemble(g.N(), b.Node, tt, res, comps, maxComp), nil
}

// RunLegacy executes Phase III with per-node machines on the per-node
// engine: the reference the batch path is differentially tested against.
func RunLegacy(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	tt, thresh, comps, maxComp := plan(g, p)
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{tt: tt, threshVal: thresh}
		machines[v] = nodes[v]
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = tt.TotalLen + 2
	}
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		return nil, fmt.Errorf("phase3: %w", err)
	}
	return assemble(g.N(), func(v int) *Machine { return nodes[v] }, tt, res, comps, maxComp), nil
}
