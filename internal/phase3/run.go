package phase3

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// Outcome reports a Phase III run.
type Outcome struct {
	InSet     []bool // MIS membership for decided nodes
	Undecided []int  // nodes whose component failed (w.l.p.); empty normally
	Timetable *Timetable
	Res       *sim.Result

	MaxDepth     int // deepest final spanning-tree node (diameter <= 2*MaxDepth)
	MaxAttempts  int // finisher attempts used by any component
	BrokenNodes  int // nodes in components that failed to merge
	Components   int
	MaxComponent int
}

// Run executes Phase III on g: Borůvka merging from singleton clusters to
// one rooted spanning tree per connected component, then the Lemma 2.7
// parallel-executions finisher.
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	comps := graph.Components(g)
	maxComp := 0
	for _, c := range comps {
		if len(c) > maxComp {
			maxComp = len(c)
		}
	}
	tt := NewTimetable(g.N(), maxComp, p)
	thresh := p.IndegreeThresh
	if thresh < 2 {
		thresh = 2
	}
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{tt: tt, threshVal: thresh}
		machines[v] = nodes[v]
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = tt.TotalLen + 2
	}
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		return nil, fmt.Errorf("phase3: %w", err)
	}
	out := &Outcome{
		InSet:        make([]bool, g.N()),
		Timetable:    tt,
		Res:          res,
		Components:   len(comps),
		MaxComponent: maxComp,
	}
	for v, nm := range nodes {
		if nm.Decided() {
			out.InSet[v] = nm.InMIS
		} else {
			out.Undecided = append(out.Undecided, v)
		}
		if nm.Broken() {
			out.BrokenNodes++
		}
		if nm.Depth() > out.MaxDepth {
			out.MaxDepth = nm.Depth()
		}
		if nm.AttemptsUsed() > out.MaxAttempts {
			out.MaxAttempts = nm.AttemptsUsed()
		}
	}
	return out, nil
}
