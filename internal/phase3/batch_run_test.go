package phase3

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestBatchMatchesLegacy is the differential gate of the batch driver: Run
// (the flat value-array Batch on the batch runtime) must produce
// byte-identical Outcomes and complexity counters to RunLegacy (per-node
// machines on the per-node engine), for every graph shape — including
// multi-component shattered residuals, the phase's real input — seed, and
// worker count.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"components", graph.GNP(220, 2.0/220, 3)}, // sparse: many small components
		{"path", graph.Path(70)},
		{"clique", graph.Complete(30)},
		{"cliquechain", graph.CliqueChain(8, 6)},
		{"isolated", graph.FromEdges(12, [][2]int{{0, 1}, {2, 3}})},
		{"empty", graph.FromEdges(0, nil)},
	}
	for _, mode := range []Mode{ModeAlg1, ModeAlg2} {
		p := DefaultParams(mode)
		for _, tc := range cases {
			for seed := uint64(1); seed <= 2; seed++ {
				ref, err := RunLegacy(tc.g, p, sim.Config{Seed: seed})
				if err != nil {
					t.Fatalf("%s mode=%v seed=%d legacy: %v", tc.name, mode, seed, err)
				}
				for _, w := range []int{1, 2, 8} {
					got, err := Run(tc.g, p, sim.Config{Seed: seed, Workers: w})
					if err != nil {
						t.Fatalf("%s mode=%v seed=%d workers=%d batch: %v", tc.name, mode, seed, w, err)
					}
					for v := range ref.InSet {
						if got.InSet[v] != ref.InSet[v] {
							t.Fatalf("%s mode=%v seed=%d workers=%d: InSet[%d] differs",
								tc.name, mode, seed, w, v)
						}
					}
					if len(got.Undecided) != len(ref.Undecided) || got.MaxDepth != ref.MaxDepth ||
						got.MaxAttempts != ref.MaxAttempts || got.BrokenNodes != ref.BrokenNodes ||
						got.Components != ref.Components || got.MaxComponent != ref.MaxComponent {
						t.Fatalf("%s mode=%v seed=%d workers=%d: outcome differs\n legacy: %+v\n batch:  %+v",
							tc.name, mode, seed, w, summary(ref), summary(got))
					}
					for i := range got.Undecided {
						if got.Undecided[i] != ref.Undecided[i] {
							t.Fatalf("%s mode=%v seed=%d workers=%d: undecided[%d] differs",
								tc.name, mode, seed, w, i)
						}
					}
					r, gr := ref.Res, got.Res
					if gr.Rounds != r.Rounds || gr.MsgsSent != r.MsgsSent ||
						gr.MsgsDropped != r.MsgsDropped || gr.BitsTotal != r.BitsTotal ||
						gr.BitsMax != r.BitsMax || gr.Violations != r.Violations {
						t.Fatalf("%s mode=%v seed=%d workers=%d: counters differ\n legacy: %+v\n batch:  %+v",
							tc.name, mode, seed, w, r, gr)
					}
					for v := range gr.Awake {
						if gr.Awake[v] != r.Awake[v] {
							t.Fatalf("%s mode=%v seed=%d workers=%d: Awake[%d] = %d, legacy %d",
								tc.name, mode, seed, w, v, gr.Awake[v], r.Awake[v])
						}
					}
				}
			}
		}
	}
}

func summary(o *Outcome) map[string]int {
	return map[string]int{
		"undecided": len(o.Undecided), "maxDepth": o.MaxDepth, "attempts": o.MaxAttempts,
		"broken": o.BrokenNodes, "components": o.Components, "maxComponent": o.MaxComponent,
	}
}
