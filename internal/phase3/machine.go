package phase3

import (
	"sort"

	"github.com/energymis/energymis/internal/bitvec"
	"github.com/energymis/energymis/internal/cluster"
	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/sim"
)

// Message kinds.
const (
	kCid      = 41 // A = sender's cluster ID
	kCC1      = 42 // A = best foreign cid + 1 (0 none), B = edge
	kBC1      = 43 // A = 1 if an edge was chosen, B = edge
	kChosen   = 44 // A = sender's cluster ID (sent across the chosen edge)
	kCC2      = 45 // A = indegree count, B = M flags
	kBC2      = 46 // A = flags (high, M), B = M partner cid + 1
	kStatus   = 47 // A = flags (high, M)
	kEHAccept = 48
	kCVx      = 49 // A = target cluster's current color (v -> u)
	kCVcc     = 50 // A = out-target color + 1 (0 none)
	kCVbc     = 51 // A = new color
	kAvail    = 52
	kCCa      = 53 // A = min proposal edge, B = matched bit
	kBCa      = 54 // A = chosen in-edge (noEdge none), B = matched bit
	kAccept   = 55
	kCC3      = 56 // A = role bits (ehLeaf | mlLeaf<<1)
	kBC3      = 57 // A = leafStage(0..4) | hasMergeEdge<<3
	kXR       = 58 // A = hasMergeEdge bit
	kRAttach  = 59
	kXm       = 60 // A = sender depth, B = sender cid
	kCCm      = 61 // A = hasV | dv<<1 | newBase<<21, B = new cid
	kBCm      = 62 // A = dv | dist<<16 | newBase<<32, B = new cid
	kFCheck   = 63 // A = cid
	kCCb      = 64 // A = broken bit
	kBCb      = 65 // A = broken bit
	kMarks    = 66
	kJoins    = 67
	kCCf      = 68 // A,B = AND-ed success bits
	kBCf      = 69 // A = found<<32 | exec index
)

const (
	noEdge  = ^uint64(0)
	noStage = 4
)

func packEdge(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func edgeEnds(e uint64) (int32, int32) {
	return int32(e >> 32), int32(uint32(e))
}

type inEdge struct {
	nbr     int32 // the foreign endpoint
	fromCid int32
	avail   bool // proposed in the current class window
}

// Machine is the per-node Phase III automaton.
type Machine struct {
	env  *sim.Env
	tt   *Timetable
	tree cluster.Tree

	wake wakeSet

	// Iteration state, reset at X0.
	nbrCid         []int32
	active         bool
	candCid        int32
	candEdge       uint64
	chosenEdge     uint64
	amOutB         bool
	outNbr         int32
	outCid         int32
	inEdges        []inEdge
	mPartner       int32 // M-edge neighbor, -1 when none (boundary node only)
	cc2Cnt         int
	cc2M           bool
	cc2MCid        int32
	isHigh         bool
	hasM           bool
	hasIn          bool // the cluster received at least one in-edge
	mPartnerCid    int32
	targetHigh     bool
	targetM        bool
	ehLeaf         bool // our out-edge was accepted by a high cluster (boundary only)
	mlLeaf         bool // our out-edge was ML-accepted (boundary only)
	color          int32
	targetColor    int32
	cvUp           int64 // scratch: out-target color + 1, 0 = none
	ccaEdge        uint64
	ccaMatched     bool
	clusterMatched bool
	acceptEdge     uint64 // in-edge chosen by our root this window
	leafStage      int
	hasMerge       bool
	targetMerge    bool
	rIn            []int32 // neighbors that R-attached to us
	mlAccepted     []int32 // neighbors whose ML proposal we accepted (v side)

	nbrStatus []uint8 // per-neighbor cluster status bits from X2a
	cc3Agg    uint64  // role bits aggregated from children
	threshVal int     // high-indegree threshold
	idb       int32   // bits per node identifier = ceil(log2 N)
	anomalies int     // protocol invariant violations (diagnostics)

	// Re-rooting scratch (leaf clusters during a merge sub-stage).
	reParent  int32
	reBase    int32
	reCid     int32
	hasV      bool
	vIsSelf   bool
	vChild    int32
	vDepth    int32
	bcmDist   int32
	bcmGot    bool
	pendDepth int32
	pendPar   int32
	pendCid   int32
	pendSet   bool

	// Finisher state.
	proto        *ghaffari.Proto
	brokenLocal  bool
	broken       bool
	done         bool
	attempts     int
	pendingJoins []uint64
	ccfA, ccfB   uint64
	bcfPayload   uint64
	InMIS        bool
	decided      bool
}

var _ sim.Machine = (*Machine)(nil)

// Decided reports whether the node has a final MIS answer.
func (m *Machine) Decided() bool { return m.decided }

// Broken reports whether the node's component failed to merge.
func (m *Machine) Broken() bool { return m.broken }

// Depth returns the node's final tree depth (diameter diagnostics).
func (m *Machine) Depth() int { return int(m.tree.Depth) }

// AttemptsUsed returns the number of finisher attempts the node ran.
func (m *Machine) AttemptsUsed() int { return m.attempts }

// wakeSet is a small sorted set of future wake rounds.
type wakeSet struct {
	rounds []int
	idx    int
}

func (w *wakeSet) add(r int) {
	i := sort.SearchInts(w.rounds[w.idx:], r) + w.idx
	if i < len(w.rounds) && w.rounds[i] == r {
		return
	}
	w.rounds = append(w.rounds, 0)
	copy(w.rounds[i+1:], w.rounds[i:])
	w.rounds[i] = r
}

// next returns the first wake round strictly after r, or sim.Never.
func (w *wakeSet) next(r int) int {
	for w.idx < len(w.rounds) && w.rounds[w.idx] <= r {
		w.idx++
	}
	if w.idx >= len(w.rounds) {
		return sim.Never
	}
	return w.rounds[w.idx]
}

// addOp schedules the awake rounds of a tree operation window starting at
// base (absolute round), given the node's current depth.
func (m *Machine) addOp(op cluster.OpKind, base int) {
	for _, r := range cluster.AwakeRounds(op, int(m.tree.Depth), m.tt.D) {
		m.wake.add(base + r)
	}
}

// Init implements sim.Machine.
func (m *Machine) Init(env *sim.Env) int {
	m.env = env
	m.tree = cluster.Singleton(int32(env.Node))
	m.nbrCid = make([]int32, env.Degree)
	m.leafStage = noStage
	m.mPartner = -1
	m.idb = int32(bitvec.BitsForRange(env.N))
	if m.tt.Iters > 0 {
		m.wake.add(m.tt.iterBase(0) + m.tt.layout.x0)
	}
	m.wake.add(m.tt.finCheck)
	return m.wake.next(-1)
}

// resetIteration clears per-iteration scratch.
func (m *Machine) resetIteration() {
	m.active = false
	m.candCid = -1
	m.candEdge = noEdge
	m.chosenEdge = noEdge
	m.amOutB = false
	m.outNbr = -1
	m.outCid = -1
	m.inEdges = m.inEdges[:0]
	m.mPartner = -1
	m.cc2Cnt = 0
	m.cc2M = false
	m.cc2MCid = -1
	m.isHigh = false
	m.hasM = false
	m.hasIn = false
	m.mPartnerCid = -1
	m.targetHigh = false
	m.targetM = false
	m.ehLeaf = false
	m.mlLeaf = false
	m.color = -1
	m.targetColor = -1
	m.cvUp = 0
	m.ccaEdge = noEdge
	m.ccaMatched = false
	m.clusterMatched = false
	m.acceptEdge = noEdge
	m.leafStage = noStage
	m.hasMerge = false
	m.targetMerge = false
	m.rIn = m.rIn[:0]
	m.mlAccepted = m.mlAccepted[:0]
	m.cc3Agg = 0
	m.hasV = false
	m.vIsSelf = false
	m.vChild = -1
	m.vDepth = -1
	m.bcmDist = 0
	m.bcmGot = false
	m.reParent = -1
	m.reBase = -1
	m.reCid = -1
	m.pendSet = false
}

// participant reports whether the cluster takes part in coloring/matching.
func (m *Machine) participant() bool { return m.active && !m.isHigh && !m.hasM }

// Compose implements sim.Machine.
func (m *Machine) Compose(round int, out *sim.Outbox) {
	if round >= m.tt.finCheck {
		m.composeFinisher(round, out)
		return
	}
	i := round / m.tt.layout.length
	off := round - m.tt.iterBase(i)
	l := &m.tt.layout
	d := int(m.tree.Depth)

	switch {
	case off == l.x0:
		out.Broadcast(sim.Msg{Kind: kCid, A: uint64(uint32(m.tree.CID)), Bits: m.idb})

	case off >= l.cc1 && off < l.cc1+l.d:
		if off-l.cc1 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
			a := uint64(0)
			if m.candCid >= 0 {
				a = uint64(uint32(m.candCid)) + 1
			}
			out.Send(m.tree.Parent, sim.Msg{Kind: kCC1, A: a, B: m.candEdge, Bits: 3*m.idb + 1})
		}

	case off >= l.bc1 && off < l.bc1+l.d:
		if off-l.bc1 == cluster.BroadcastSendRound(d) {
			if m.tree.IsRoot() {
				m.applyBC1(m.candCid, m.candEdge)
			}
			flag := uint64(0)
			if m.chosenEdge != noEdge {
				flag = 1
			}
			out.Broadcast(sim.Msg{Kind: kBC1, A: flag, B: m.chosenEdge, Bits: 1 + 2*m.idb})
		}

	case off == l.x1:
		if m.amOutB {
			out.Send(m.outNbr, sim.Msg{Kind: kChosen, A: uint64(uint32(m.tree.CID)), Bits: m.idb})
		}

	case off >= l.cc2 && off < l.cc2+l.d:
		if off-l.cc2 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
			cnt := m.cc2Cnt + len(m.inEdges)
			b := uint64(0)
			if m.cc2M || m.mPartner >= 0 {
				mcid := m.cc2MCid
				if m.mPartner >= 0 {
					mcid = m.mPartnerCid
				}
				b = 1<<32 | uint64(uint32(mcid))
			}
			out.Send(m.tree.Parent, sim.Msg{Kind: kCC2, A: uint64(cnt), B: b, Bits: 2*m.idb + 1})
		}

	case off >= l.bc2 && off < l.bc2+l.d:
		if off-l.bc2 == cluster.BroadcastSendRound(d) {
			if m.tree.IsRoot() {
				cnt := m.cc2Cnt + len(m.inEdges)
				m.isHigh = cnt >= m.threshVal
				m.hasIn = cnt > 0
				if m.cc2M || m.mPartner >= 0 {
					m.hasM = true
					if m.mPartner < 0 {
						m.mPartnerCid = m.cc2MCid
					}
				}
			}
			var a uint64
			if m.isHigh {
				a |= 1
			}
			if m.hasM {
				a |= 2
			}
			if m.hasIn {
				a |= 4
			}
			out.Broadcast(sim.Msg{Kind: kBC2, A: a, B: uint64(uint32(m.mPartnerCid)) + 1, Bits: 3 + m.idb})
		}

	case off == l.x2a:
		var a uint64
		if m.isHigh {
			a |= 1
		}
		if m.hasM {
			a |= 2
		}
		out.Broadcast(sim.Msg{Kind: kStatus, A: a, Bits: 2})

	case off == l.x2b:
		if m.isHigh {
			for _, e := range m.inEdges {
				// A high cluster removes its own outgoing edge from H, so
				// in-edges whose source is itself high (or M-matched) are
				// gone and must not be accepted.
				if m.nbrStatusOf(e.nbr)&3 == 0 {
					out.Send(e.nbr, sim.Msg{Kind: kEHAccept, Bits: 1})
				}
			}
		}

	default:
		m.composeLate(off, out)
	}
}

// composeLate handles the CV, class-loop, role, and merge stages.
func (m *Machine) composeLate(off int, out *sim.Outbox) {
	l := &m.tt.layout
	d := int(m.tree.Depth)

	// Color-reduction blocks: X, CC, BC per round.
	if off >= l.cvBase && off < l.clBase {
		rel := off - l.cvBase
		blockLen := 2*l.d + 1
		if rel == m.tt.LR*blockLen { // final color exchange round
			m.sendColorToSources(out)
			return
		}
		r := rel / blockLen
		o := rel % blockLen
		if r >= m.tt.LR {
			return
		}
		switch {
		case o == 0: // X: v sends cluster color to participant in-edge sources
			m.sendColorToSources(out)
		case o >= 1 && o < 1+l.d: // CC: out-target color up
			if o-1 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
				out.Send(m.tree.Parent, sim.Msg{Kind: kCVcc, A: uint64(m.cvUp), Bits: m.idb})
			}
		default: // BC: new color down
			if o-1-l.d == cluster.BroadcastSendRound(d) {
				if m.tree.IsRoot() {
					parent := int64(m.cvUp) - 1
					m.color = cvStep(m.color, int32(parent), m.tt.Palette[r])
					m.cvUp = 0
				}
				out.Broadcast(sim.Msg{Kind: kCVbc, A: uint64(uint32(m.color)), Bits: m.idb})
			}
		}
		return
	}

	// Class loop.
	if off >= l.clBase && off < l.cc3 {
		rel := off - l.clBase
		blockLen := 2*l.d + 2
		c := rel / blockLen
		o := rel % blockLen
		switch {
		case o == 0: // Xa: availability proposals toward color-c targets
			if m.amOutB && m.participant() && !m.targetHigh && !m.targetM &&
				int(m.targetColor) == c && !m.clusterMatched && !m.mlLeaf && !m.ehLeaf {
				out.Send(m.outNbr, sim.Msg{Kind: kAvail, Bits: 1})
			}
		case o >= 1 && o < 1+l.d: // CCa (clusters of color c)
			if int(m.color) == c && m.participant() &&
				o-1 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
				b := uint64(0)
				if m.ccaMatched || m.mlLeaf {
					b = 1
				}
				out.Send(m.tree.Parent, sim.Msg{Kind: kCCa, A: m.ccaEdge, B: b, Bits: 2*m.idb + 1})
			}
		case o >= 1+l.d && o < 1+2*l.d: // BCa
			if int(m.color) == c && m.participant() &&
				o-1-l.d == cluster.BroadcastSendRound(d) {
				if m.tree.IsRoot() {
					matched := m.ccaMatched || m.mlLeaf
					chosen := noEdge
					if !matched && m.ccaEdge != noEdge {
						chosen = m.ccaEdge
						matched = true
					}
					m.acceptEdge = chosen
					m.clusterMatched = matched
				}
				b := uint64(0)
				if m.clusterMatched {
					b = 1
				}
				out.Broadcast(sim.Msg{Kind: kBCa, A: m.acceptEdge, B: b, Bits: 2*m.idb + 1})
			}
		default: // Xb: accept the chosen proposal
			if int(m.color) == c && m.acceptEdge != noEdge {
				a, b := edgeEnds(m.acceptEdge)
				self := int32(m.env.Node)
				if a == self || b == self {
					to := a
					if a == self {
						to = b
					}
					m.mlAccepted = append(m.mlAccepted, to)
					out.Send(to, sim.Msg{Kind: kAccept, Bits: 1})
				}
			}
		}
		return
	}

	// CC3: leaf-role bits up.
	if off >= l.cc3 && off < l.cc3+l.d {
		if off-l.cc3 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
			var a uint64
			if m.ehLeaf {
				a |= 1
			}
			if m.mlLeaf {
				a |= 2
			}
			out.Send(m.tree.Parent, sim.Msg{Kind: kCC3, A: a | m.cc3Agg, Bits: 2})
		}
		return
	}

	// BC3: cluster role down.
	if off >= l.bc3 && off < l.bc3+l.d {
		if off-l.bc3 == cluster.BroadcastSendRound(d) {
			if m.tree.IsRoot() {
				m.decideRole()
			}
			a := uint64(m.leafStage)
			if m.hasMerge {
				a |= 1 << 3
			}
			out.Broadcast(sim.Msg{Kind: kBC3, A: a, Bits: 4})
		}
		return
	}

	if off == l.xr {
		a := uint64(0)
		if m.hasMerge {
			a = 1
		}
		out.Broadcast(sim.Msg{Kind: kXR, A: a, Bits: 1})
		return
	}

	if off == l.xr2 {
		if m.leafStage == 3 && m.amOutB && m.targetMerge {
			out.Send(m.outNbr, sim.Msg{Kind: kRAttach, Bits: 1})
		}
		return
	}

	// Merge sub-stages.
	if off >= l.mgBase && off < l.length {
		rel := off - l.mgBase
		blockLen := 2*l.d + 1
		s := rel / blockLen
		o := rel % blockLen
		switch {
		case o == 0: // Xm: center-side depth handshake
			for _, nbr := range m.centerPeers(s) {
				out.Send(nbr, sim.Msg{
					Kind: kXm,
					A:    uint64(m.tree.Depth),
					B:    uint64(uint32(m.tree.CID)),
					Bits: 2 * m.idb,
				})
			}
		case o >= 1 && o < 1+l.d: // CCm in leaf clusters of sub-stage s
			if m.leafStage == s && o-1 == cluster.ConvergecastSendRound(d, m.tt.D) && !m.tree.IsRoot() {
				var a uint64
				if m.hasV {
					a = 1 | uint64(uint32(m.vDepth))<<1 | uint64(uint32(m.reBase))<<21
				}
				out.Send(m.tree.Parent, sim.Msg{Kind: kCCm, A: a, B: uint64(uint32(m.reCid)), Bits: 3*m.idb + 1})
			}
		default: // BCm: re-root broadcast
			if m.leafStage == s && o-1-l.d == cluster.BroadcastSendRound(d) {
				m.composeBCm(out)
			}
		}
	}
}

// cvStep is one Cole–Vishkin reduction step on an oriented forest.
func cvStep(own, parent int32, palette int) int32 {
	if parent < 0 { // forest root: pretend a differing parent color
		if own == 0 {
			parent = 1
		} else {
			parent = 0
		}
	}
	if own == parent {
		// Cannot happen on a proper input; keep the color to stay safe.
		return own
	}
	x := uint32(own) ^ uint32(parent)
	pos := int32(0)
	for x&1 == 0 {
		x >>= 1
		pos++
	}
	return 2*pos + (own>>uint(pos))&1
}

// sendColorToSources sends the cluster's current color to every in-edge
// source that participates in the coloring.
func (m *Machine) sendColorToSources(out *sim.Outbox) {
	if !m.participant() {
		return
	}
	for _, e := range m.inEdges {
		st := m.nbrStatusOf(e.nbr)
		if st&3 == 0 { // source is low and M-free: a coloring participant
			out.Send(e.nbr, sim.Msg{Kind: kCVx, A: uint64(uint32(m.color)), Bits: m.idb})
		}
	}
}

// centerPeers lists the neighbors this node serves as merge center in
// sub-stage s.
func (m *Machine) centerPeers(s int) []int32 {
	switch s {
	case 0: // M: the smaller-cid side is the center
		if m.mPartner >= 0 && m.tree.CID < m.mPartnerCid {
			return []int32{m.mPartner}
		}
	case 1: // EH: high clusters accept all in-edges
		if m.isHigh {
			peers := make([]int32, 0, len(m.inEdges))
			for _, e := range m.inEdges {
				peers = append(peers, e.nbr)
			}
			return peers
		}
	case 2: // ML: we accepted these proposals
		return m.mlAccepted
	case 3: // R
		return m.rIn
	}
	return nil
}

// composeBCm emits the re-rooting broadcast message and stages this node's
// own tree update.
func (m *Machine) composeBCm(out *sim.Outbox) {
	if m.tree.IsRoot() {
		if !m.hasV {
			return // no attachment reached the root: nothing to re-root
		}
	} else if !m.bcmGot {
		return // the re-rooting broadcast never arrived: do not forward
	}
	var dist int32
	if m.hasV {
		dist = m.vDepth - m.tree.Depth // ancestor of v
	} else {
		dist = m.bcmDist // parent's dist + 1, learned at listen round
	}
	if dist < 0 || m.vDepth < 0 || m.reBase < 0 {
		// Protocol invariant violated (should be unreachable): abort this
		// re-root instead of propagating garbage; the component will be
		// reported broken and retried.
		m.anomalies++
		return
	}
	out.Broadcast(sim.Msg{
		Kind: kBCm,
		A:    uint64(uint32(m.vDepth)) | uint64(uint32(dist))<<16 | uint64(uint32(m.reBase))<<32,
		B:    uint64(uint32(m.reCid)),
		Bits: 4 * m.idb,
	})
	// Stage our own update.
	m.pendDepth = m.reBase + dist
	m.pendCid = m.reCid
	switch {
	case m.vIsSelf:
		m.pendPar = m.reParent // the center-side boundary node
	case m.hasV:
		m.pendPar = m.vChild
	default:
		m.pendPar = m.tree.Parent
	}
	m.pendSet = true
}
