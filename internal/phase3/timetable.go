package phase3

import (
	"math"
)

// Mode selects the color-reduction depth, the knob that distinguishes the
// Phase III of Algorithm 1 from that of Algorithm 2 (Section 3.2).
type Mode int

// Modes.
const (
	// ModeAlg1 runs two color-reduction rounds, leaving O(log log n)
	// color classes (Algorithm 1 / Lemma 2.8).
	ModeAlg1 Mode = iota + 1
	// ModeAlg2 runs O(log* n) reduction rounds to a constant palette
	// (Algorithm 2 / [BM21a, Theorem 5.2] trade-off).
	ModeAlg2
)

// Params configures Phase III.
type Params struct {
	Mode Mode
	// IndegreeThresh is the high-indegree cutoff; the paper uses 10.
	IndegreeThresh int
	// GhaffariC scales the finisher's logical round count:
	// GRounds = ceil(GhaffariC * log2(maxComp+2)) + GhaffariFloor.
	GhaffariC     float64
	GhaffariFloor int
	// K is the number of packed parallel executions (0 = 2*ceil(log2 n),
	// clamped to [8, 128]).
	K int
	// Attempts bounds finisher retries per component.
	Attempts int
	// DepthCap overrides the tree-depth bound D (0 = maxComp+1). The
	// paper's analysis uses O(log n) here.
	DepthCap int
}

// DefaultParams returns paper-faithful constants for the given mode.
func DefaultParams(mode Mode) Params {
	return Params{
		Mode:           mode,
		IndegreeThresh: 10,
		GhaffariC:      2.5,
		GhaffariFloor:  8,
		Attempts:       3,
	}
}

// iterLayout holds round offsets of every stage within one iteration.
// Windows of tree operations are D rounds long; exchanges are 1 round.
type iterLayout struct {
	d       int
	x0      int
	cc1     int
	bc1     int
	x1      int
	cc2     int
	bc2     int
	x2a     int
	x2b     int
	cvBase  int // LR blocks of length (2D+1): BC, X, CC
	lr      int
	clBase  int // C blocks of length (2D+2): Xa, CCa, BCa, Xb
	classes int
	cc3     int
	bc3     int
	xr      int
	xr2     int
	mgBase  int // 4 blocks of length (2D+1): Xm, CCm, BCm
	length  int
}

func makeIterLayout(d, lr, classes int) iterLayout {
	l := iterLayout{d: d, lr: lr, classes: classes}
	off := 0
	next := func(n int) int { v := off; off += n; return v }
	l.x0 = next(1)
	l.cc1 = next(d)
	l.bc1 = next(d)
	l.x1 = next(1)
	l.cc2 = next(d)
	l.bc2 = next(d)
	l.x2a = next(1)
	l.x2b = next(1)
	l.cvBase = next(lr * (2*d + 1))
	l.clBase = next(classes * (2*d + 2))
	l.cc3 = next(d)
	l.bc3 = next(d)
	l.xr = next(1)
	l.xr2 = next(1)
	l.mgBase = next(4 * (2*d + 1))
	l.length = off
	return l
}

// cvBlock returns the stage offsets of color-reduction round r.
func (l iterLayout) cvBlock(r int) (bc, x, cc int) {
	base := l.cvBase + r*(2*l.d+1)
	return base, base + l.d, base + l.d + 1
}

// clBlock returns the stage offsets of class c's window.
func (l iterLayout) clBlock(c int) (xa, cca, bca, xb int) {
	base := l.clBase + c*(2*l.d+2)
	return base, base + 1, base + 1 + l.d, base + 1 + 2*l.d
}

// mgBlock returns the stage offsets of merge sub-stage s (0=M, 1=EH,
// 2=ML, 3=R).
func (l iterLayout) mgBlock(s int) (xm, ccm, bcm int) {
	base := l.mgBase + s*(2*l.d+1)
	return base, base + 1, base + 1 + l.d
}

// Timetable is the full static schedule of a Phase III run.
type Timetable struct {
	N       int   // nodes in the phase graph
	D       int   // tree-depth bound per window
	Iters   int   // merge iterations
	LR      int   // color-reduction rounds
	Classes int   // palette size after reduction
	Palette []int // palette sizes before each reduction round (len LR+1)

	GRounds  int // finisher logical rounds per attempt
	K        int // packed executions
	Attempts int

	layout   iterLayout
	finCheck int // round: cluster-ID check exchange
	finCCb   int // window: broken-flag convergecast
	finBCb   int // window: broken-flag broadcast
	finBase  int // first round of attempt 0
	attLen   int // rounds per attempt: 2*GRounds + 2D
	TotalLen int
}

// cvNext is one Cole–Vishkin step on an oriented forest: a k-coloring
// becomes a 2*ceil(log2 k)-coloring.
func cvNext(k int) int {
	if k <= 2 {
		return 2
	}
	b := int(math.Ceil(math.Log2(float64(k))))
	n := 2 * b
	if n >= k {
		return k
	}
	return n
}

// NewTimetable computes the schedule for an n-node phase graph whose
// largest connected component has maxComp nodes.
func NewTimetable(n, maxComp int, p Params) *Timetable {
	if maxComp < 1 {
		maxComp = 1
	}
	d := maxComp + 1
	if p.DepthCap > 0 && p.DepthCap < d {
		d = p.DepthCap
	}
	if d < 2 {
		d = 2
	}
	// Each cluster merges with at least one other per iteration, halving
	// the cluster count; +2 covers the rare iteration in which a high
	// cluster's in-edges all came from other high clusters.
	iters := int(math.Ceil(math.Log2(float64(maxComp+1)))) + 2
	if iters < 1 {
		iters = 1
	}

	// Color palette chain, starting from cluster IDs in [0, n).
	k0 := n
	if k0 < 2 {
		k0 = 2
	}
	palette := []int{k0}
	lr := 0
	switch p.Mode {
	case ModeAlg2:
		for lr < 12 {
			nk := cvNext(palette[lr])
			if nk >= palette[lr] {
				break
			}
			palette = append(palette, nk)
			lr++
		}
	default: // ModeAlg1: exactly two reduction rounds
		for lr < 2 {
			palette = append(palette, cvNext(palette[lr]))
			lr++
		}
	}
	classes := palette[lr]

	k := p.K
	if k <= 0 {
		k = 2 * int(math.Ceil(math.Log2(float64(n+2))))
		if k < 8 {
			k = 8
		}
	}
	if k > 128 {
		k = 128
	}
	gr := int(math.Ceil(p.GhaffariC*math.Log2(float64(maxComp+2)))) + p.GhaffariFloor
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}

	tt := &Timetable{
		N: n, D: d, Iters: iters, LR: lr, Classes: classes, Palette: palette,
		GRounds: gr, K: k, Attempts: attempts,
		layout: makeIterLayout(d, lr, classes),
	}
	tt.finCheck = iters * tt.layout.length
	tt.finCCb = tt.finCheck + 1
	tt.finBCb = tt.finCCb + d
	tt.finBase = tt.finBCb + d
	tt.attLen = 2*gr + 2*d
	tt.TotalLen = tt.finBase + attempts*tt.attLen
	return tt
}

// iterBase returns the first round of iteration i.
func (tt *Timetable) iterBase(i int) int { return i * tt.layout.length }

// attBase returns the first round of finisher attempt a.
func (tt *Timetable) attBase(a int) int { return tt.finBase + a*tt.attLen }

// attStages returns the offsets of attempt a's stages: the ghaffari block
// [g0, g0+2*GRounds), the success convergecast window, and the result
// broadcast window.
func (tt *Timetable) attStages(a int) (g0, cc, bc int) {
	b := tt.attBase(a)
	return b, b + 2*tt.GRounds, b + 2*tt.GRounds + tt.D
}
