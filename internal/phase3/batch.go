package phase3

import (
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/sim"
)

// Batch drives the Phase III automata on the batch runtime as one flat
// value array: all machines live in a single contiguous slice (no per-node
// heap object, no interface dispatch — Compose/Deliver are direct method
// calls), per-node outboxes are pooled scratch drained into the shared
// BatchOutbox, and inboxes are served from the engine's pooled buffer.
//
// Unlike the simpler protocols (luby, phase1, ghaffari, degreduce), the
// Phase III automaton is not split into struct-of-arrays form: its state is
// dozens of interdependent per-node fields (tree position, iteration
// scratch, merge roles, finisher vectors) touched a few at a time along
// deeply branching stage logic, so an SoA split would trade a large
// correctness risk for little locality gain. The flat-array driver already
// removes the per-node engine's dispatch and allocation overhead, which is
// what the batch runtime exists to avoid. State transitions are the
// per-node Machine's own code, so runs are byte-identical to the legacy
// path by construction (still enforced by TestBatchMatchesLegacy).
type Batch struct {
	tt     *Timetable
	thresh int

	nodes []Machine
	envs  []sim.Env
	rands []rng.Stream // per-node streams in one arena, aliased by envs
	outs  []sim.Outbox // per-node scratch: ComposeAll chunks may run concurrently
}

var _ sim.BatchMachine = (*Batch)(nil)

// NewBatch builds the batch driver for one Phase III run over g.
func NewBatch(g *graph.Graph, tt *Timetable, thresh int) *Batch {
	n := g.N()
	b := &Batch{tt: tt, thresh: thresh}
	b.nodes = make([]Machine, n)
	b.envs = make([]sim.Env, n)
	b.rands = make([]rng.Stream, n)
	b.outs = make([]sim.Outbox, n)
	return b
}

// InitAll implements sim.BatchMachine.
func (b *Batch) InitAll(env *sim.BatchEnv) []int {
	first := make([]int, env.N)
	for v := 0; v < env.N; v++ {
		b.rands[v] = rng.ForNode(env.Seed, v)
		b.envs[v] = sim.Env{
			Node:      v,
			N:         env.N,
			Degree:    env.G.Degree(v),
			Neighbors: env.G.Neighbors(v),
			B:         env.B,
			Rand:      &b.rands[v],
		}
		b.nodes[v] = Machine{tt: b.tt, threshVal: b.thresh}
		first[v] = b.nodes[v].Init(&b.envs[v])
	}
	return first
}

// ComposeAll implements sim.BatchMachine.
func (b *Batch) ComposeAll(round int, awake []int32, out *sim.BatchOutbox) {
	for _, v := range awake {
		ob := &b.outs[v]
		ob.ResetFor(v, b.envs[v].Neighbors)
		b.nodes[v].Compose(round, ob)
		ob.DrainTo(out)
	}
}

// DeliverAll implements sim.BatchMachine.
func (b *Batch) DeliverAll(round int, awake []int32, in sim.Inboxes, next []int) {
	for i, v := range awake {
		next[i] = b.nodes[v].Deliver(round, in.At(i))
	}
}

// Node returns the v-th automaton for outcome extraction after a run.
func (b *Batch) Node(v int) *Machine { return &b.nodes[v] }
