package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	energymis "github.com/energymis/energymis"
)

// The throughput executor models the scenario-sweep workload the ROADMAP
// targets — many users running many independent simulations — as a gated
// benchmark: M runs of the same (graph, algorithm) with seeds 1..M execute
// concurrently over a worker pool. Each worker owns one pooled sim.Mem, so
// engine buffers are allocated once per worker and reused for every run it
// picks up, and all workers share one prebuilt graph (the graph cache keeps
// construction out of the measurement). Aggregate counters are sums over
// the fixed seed set, so they are deterministic and order-independent —
// the report's ns/awake-node-round stays comparable across hosts, and
// runs/sec plus allocs/run land in BENCH_MIS.json next to it.

// ThroughputOptions configures one multi-run case.
type ThroughputOptions struct {
	Runs    int // number of independent simulations (seeds 1..Runs)
	Workers int // worker-pool width; 0 = GOMAXPROCS
}

// RunThroughput executes opts.Runs independent simulations of algo on g
// across the worker pool and returns the summed deterministic counters.
func RunThroughput(g *energymis.Graph, algo energymis.Algorithm, opts ThroughputOptions) (Metrics, error) {
	if opts.Runs < 1 {
		return Metrics{}, fmt.Errorf("bench: throughput needs Runs >= 1, got %d", opts.Runs)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	var next atomic.Int64
	partial := make([]Metrics, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mem := energymis.NewMem() // pooled engine buffers, one per worker
			acc := &partial[w]
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Runs) {
					return
				}
				res, err := energymis.Run(g, algo, energymis.Options{
					Seed: uint64(i) + 1,
					Mem:  mem,
				})
				if err != nil {
					errs[w] = fmt.Errorf("bench: throughput run %d: %w", i, err)
					return
				}
				m := FromResult(res)
				acc.Rounds += m.Rounds
				acc.AwakeTotal += m.AwakeTotal
				acc.Messages += m.Messages
				acc.MessagesDropped += m.MessagesDropped
				acc.BitsTotal += m.BitsTotal
				acc.MISSize += m.MISSize
				if m.AwakeMax > acc.AwakeMax {
					acc.AwakeMax = m.AwakeMax
				}
				if m.BitsMax > acc.BitsMax {
					acc.BitsMax = m.BitsMax
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Metrics{}, err
		}
	}

	var total Metrics
	for w := range partial {
		p := &partial[w]
		total.Rounds += p.Rounds
		total.AwakeTotal += p.AwakeTotal
		total.Messages += p.Messages
		total.MessagesDropped += p.MessagesDropped
		total.BitsTotal += p.BitsTotal
		total.MISSize += p.MISSize
		if p.AwakeMax > total.AwakeMax {
			total.AwakeMax = p.AwakeMax
		}
		if p.BitsMax > total.BitsMax {
			total.BitsMax = p.BitsMax
		}
	}
	if total.AwakeTotal > 0 {
		total.AwakeAvg = float64(total.AwakeTotal) / float64(int64(g.N())*int64(opts.Runs))
	}
	total.Extra = map[string]float64{
		"runs":    float64(opts.Runs),
		"workers": float64(workers),
	}
	return total, nil
}

// graphCache shares prebuilt graphs across suite cases and reps, keyed by a
// family/size/seed string: the harness times simulations, never generators,
// and cases over the same topology (static vs throughput) reuse one
// instance.
var graphCache sync.Map // string -> *energymis.Graph

func cachedGraph(key string, gen func() *energymis.Graph) func() *energymis.Graph {
	return func() *energymis.Graph {
		if g, ok := graphCache.Load(key); ok {
			return g.(*energymis.Graph)
		}
		g, _ := graphCache.LoadOrStore(key, gen())
		return g.(*energymis.Graph)
	}
}

func throughputSpec(name string, quick bool, g func() *energymis.Graph, algo energymis.Algorithm, runs int) Spec {
	return Spec{
		Suite: SuiteThroughput,
		Name:  name,
		Quick: quick,
		Run: func() (Metrics, error) {
			return RunThroughput(g(), algo, ThroughputOptions{Runs: runs})
		},
	}
}
