package bench

import (
	"fmt"
	"sync"

	energymis "github.com/energymis/energymis"
)

// The named suites. Quick mode (the CI perf gate) runs the subset of each
// suite flagged Quick — the *same cases with the same sizes and seeds* as
// the full run, so quick reports compare cleanly against a full baseline.
const (
	SuiteStatic        = "static"             // static MIS runs: graph families × sizes × algorithms
	SuiteDynamic       = "dynamic"            // churn workloads through the dynamic repair engine
	SuiteScaling       = "scaling"            // parallel-executor scaling, 1 → N workers
	SuiteThroughput    = "throughput"         // M independent runs across a worker pool (runs/sec)
	SuiteDynThroughput = "dynamic-throughput" // sustained update streams through ApplyBatch (updates/sec)
)

// SuiteNames lists every suite in canonical order.
func SuiteNames() []string {
	return []string{SuiteStatic, SuiteDynamic, SuiteScaling, SuiteThroughput, SuiteDynThroughput}
}

// The benchmark topologies, each defined exactly once so every suite that
// names the same (family, n) measures the same instance via the shared
// graph cache.

func gnpGraph(n int) func() *energymis.Graph {
	return cachedGraph(fmt.Sprintf("gnp/n=%d/avgdeg=10/seed=%d", n, n),
		func() *energymis.Graph { return energymis.GNP(n, 10.0/float64(n), uint64(n)) })
}

func rggGraph(n int) func() *energymis.Graph {
	return cachedGraph(fmt.Sprintf("rgg/n=%d/avgdeg=10/seed=%d", n, n),
		func() *energymis.Graph { return energymis.RGG(n, 10.0, uint64(n)) })
}

// udgGraph uses a fixed 0.025 communication radius: degree grows with
// density (≈8 at n=4096, ≈32 at n=16384) — the sensor-field scenario.
func udgGraph(n int) func() *energymis.Graph {
	return cachedGraph(fmt.Sprintf("udg/n=%d/r=0.025/seed=%d", n, n),
		func() *energymis.Graph { return energymis.RandomGeometric(n, 0.025, uint64(n)) })
}

func baGraph(n int) func() *energymis.Graph {
	return cachedGraph(fmt.Sprintf("ba/n=%d/m=5/seed=%d", n, n),
		func() *energymis.Graph { return energymis.BarabasiAlbert(n, 5, uint64(n)) })
}

// FromResult converts a static run's Result into harness metrics. It is
// shared with the `go test -bench` benchmarks, which report the same
// quantities through testing.B.
func FromResult(res *energymis.Result) Metrics {
	return Metrics{
		Rounds:          int64(res.Rounds),
		AwakeMax:        int64(res.MaxAwake),
		AwakeAvg:        res.AvgAwake,
		AwakeTotal:      res.AwakeTotal,
		Messages:        res.Messages,
		MessagesDropped: res.MessagesDropped,
		BitsTotal:       res.BitsTotal,
		BitsMax:         int64(res.BitsMax),
		MISSize:         int64(res.MISSize()),
	}
}

// FromDynamicStats converts a dynamic engine lifetime into harness
// metrics; the awake totals include the bootstrap (wall time does too)
// and awakePerNode (DynamicMIS.AwakePerNode) yields the max/avg energy.
func FromDynamicStats(st energymis.DynamicStats, misSize int, awakePerNode []int64) Metrics {
	var awakeMax int64
	for _, a := range awakePerNode {
		if a > awakeMax {
			awakeMax = a
		}
	}
	var awakeAvg float64
	if len(awakePerNode) > 0 {
		awakeAvg = float64(st.AwakeTotal+st.BootstrapAwake) / float64(len(awakePerNode))
	}
	return Metrics{
		Rounds:     st.Rounds + int64(st.BootstrapRounds),
		AwakeMax:   awakeMax,
		AwakeAvg:   awakeAvg,
		AwakeTotal: st.AwakeTotal + st.BootstrapAwake,
		Messages:   st.Messages + st.BootstrapMessages,
		MISSize:    int64(misSize),
		Extra: map[string]float64{
			"updates":      float64(st.Updates),
			"woken_total":  float64(st.WokenTotal),
			"max_region":   float64(st.MaxRegion),
			"evictions":    float64(st.Evictions),
			"awake_update": float64(st.AwakeTotal) / float64(max64(st.Updates, 1)),
		},
	}
}

func staticSpec(family string, g func() *energymis.Graph, n int, algo energymis.Algorithm, workers int, quick bool) Spec {
	name := fmt.Sprintf("%s/n=%d/%s", family, n, algo)
	suite := SuiteStatic
	if workers > 1 || family == "scaling" {
		suite = SuiteScaling
		name = fmt.Sprintf("%s/n=%d/workers=%d", algo, n, workers)
	}
	// One pooled Mem per case: the warm-up run allocates the engine
	// buffers once, every timed repetition then executes the whole batch
	// pipeline — all phases — against the warm pool (case runs are
	// sequential, so the Mem is never shared concurrently). Simulated work
	// and all deterministic counters are unaffected (see
	// pipeline.TestSharedMemIdentical).
	mem := energymis.NewMem()
	return Spec{
		Suite: suite,
		Name:  name,
		Quick: quick,
		Run: func() (Metrics, error) {
			res, err := energymis.Run(g(), algo, energymis.Options{Seed: 1, Workers: workers, Mem: mem})
			if err != nil {
				return Metrics{}, err
			}
			return FromResult(res), nil
		},
	}
}

func dynamicSpec(name string, quick bool, setup func() (*energymis.Graph, [][]energymis.Update, energymis.DynamicOptions)) Spec {
	var once sync.Once
	var g *energymis.Graph
	var trace [][]energymis.Update
	var opts energymis.DynamicOptions
	return Spec{
		Suite: SuiteDynamic,
		Name:  name,
		Quick: quick,
		Run: func() (Metrics, error) {
			once.Do(func() { g, trace, opts = setup() })
			d, err := energymis.NewDynamic(g, energymis.Luby, opts)
			if err != nil {
				return Metrics{}, err
			}
			for _, batch := range trace {
				if _, err := d.Apply(batch); err != nil {
					return Metrics{}, err
				}
			}
			return FromDynamicStats(d.Stats(), d.MISSize(), d.AwakePerNode()), nil
		},
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Specs returns the runnable case definitions of the requested suites (nil
// or empty = all), restricted to the Quick subset when quick is set.
func Specs(suites []string, quick bool) ([]Spec, error) {
	want := map[string]bool{}
	if len(suites) == 0 {
		suites = SuiteNames()
	}
	known := map[string]bool{SuiteStatic: true, SuiteDynamic: true, SuiteScaling: true, SuiteThroughput: true, SuiteDynThroughput: true}
	for _, s := range suites {
		if !known[s] {
			return nil, fmt.Errorf("bench: unknown suite %q (have %v)", s, SuiteNames())
		}
		want[s] = true
	}

	var specs []Spec

	// --- static: graph families × sizes × algorithms ---
	families := []struct {
		name string
		gen  func(n int) func() *energymis.Graph
	}{
		{"gnp", gnpGraph},
		{"rgg", rggGraph},
		{"udg", udgGraph},
		{"ba", baGraph},
	}
	for _, fam := range families {
		for _, n := range []int{4096, 16384} {
			g := fam.gen(n)
			for _, algo := range []energymis.Algorithm{energymis.Luby, energymis.Algorithm1} {
				// Quick subset: the gnp family at both sizes (same keys as
				// the full run, so -quick -compare matches the baseline).
				q := fam.name == "gnp"
				specs = append(specs, staticSpec(fam.name, g, n, algo, 0, q))
			}
		}
	}

	// --- dynamic: churn workloads through the repair engine ---
	dyn := []Spec{
		dynamicSpec("churn/n=2000/repair=luby", true, func() (*energymis.Graph, [][]energymis.Update, energymis.DynamicOptions) {
			g := energymis.GNP(2000, 8.0/2000, 2000)
			return g, energymis.ChurnStream(g, 150, 1, 7), energymis.DynamicOptions{Seed: 1, Repair: energymis.RepairLuby}
		}),
		dynamicSpec("churn/n=2000/repair=ghaffari", false, func() (*energymis.Graph, [][]energymis.Update, energymis.DynamicOptions) {
			g := energymis.GNP(2000, 8.0/2000, 2000)
			return g, energymis.ChurnStream(g, 150, 1, 7), energymis.DynamicOptions{Seed: 1, Repair: energymis.RepairGhaffari}
		}),
		dynamicSpec("hub-attack/n=2000", false, func() (*energymis.Graph, [][]energymis.Update, energymis.DynamicOptions) {
			g := energymis.BarabasiAlbert(2000, 4, 3)
			return g, energymis.HubAttackStream(g, 60, 5), energymis.DynamicOptions{Seed: 1}
		}),
	}

	specs = append(specs, dyn...)

	// --- scaling: the parallel executor from 1 to N workers ---
	{
		g := gnpGraph(20000)
		for _, w := range []int{1, 2, 4, 8} {
			q := w == 1 || w == 4
			specs = append(specs, staticSpec("scaling", g, 20000, energymis.Luby, w, q))
		}
	}

	// --- throughput: many independent runs over the worker-pool executor ---
	specs = append(specs,
		throughputSpec("luby/gnp/n=4096/runs=32", true, gnpGraph(4096), energymis.Luby, 32),
		throughputSpec("algorithm1/gnp/n=4096/runs=8", true, gnpGraph(4096), energymis.Algorithm1, 8),
		throughputSpec("luby/gnp/n=16384/runs=8", false, gnpGraph(16384), energymis.Luby, 8),
		throughputSpec("luby/udg/n=4096/runs=16", false, udgGraph(4096), energymis.Luby, 16),
	)

	// --- dynamic-throughput: sustained update streams through ApplyBatch ---
	specs = append(specs, dynThroughputSpecs()...)

	var out []Spec
	for _, s := range specs {
		if want[s.Suite] && (!quick || s.Quick) {
			out = append(out, s)
		}
	}
	return out, nil
}
