package bench

import (
	"fmt"
	"sync"

	energymis "github.com/energymis/energymis"
)

// The dynamic-throughput suite makes the unit of traffic an update, not a
// run: each case replays a precomputed churn stream through
// DynamicMIS.ApplyBatch and reports sustained updates/sec and
// allocs/update into BENCH_MIS.json, where both are gated (see
// compare.go). The engine is seeded with GreedyMIS instead of a bootstrap
// run, so the measurement is repair throughput, not static-algorithm
// time; stream generation and graph construction are cached outside the
// timed region. The paired `legacy` case runs the identical workload on
// the per-node reference path — its deterministic counters must match the
// batch case exactly, and its updates/sec is the baseline the batch port
// has to beat.

// gnpDeg8Graph is the churn topology: sparse GNP with average degree 8.
func gnpDeg8Graph(n int) func() *energymis.Graph {
	return cachedGraph(fmt.Sprintf("gnp/n=%d/avgdeg=8/seed=%d", n, n),
		func() *energymis.Graph { return energymis.GNP(n, 8.0/float64(n), uint64(n)) })
}

// dynThroughputSpec measures one (graph, stream, options) workload. setup
// runs once, outside the timed reps; every rep wraps a fresh engine
// around the cached initial set and replays the whole flattened stream
// through the coalescing window.
func dynThroughputSpec(name string, quick bool, setup func() (*energymis.Graph, []energymis.Update, energymis.DynamicOptions)) Spec {
	var once sync.Once
	var g *energymis.Graph
	var inSet []bool
	var flat []energymis.Update
	var opts energymis.DynamicOptions
	return Spec{
		Suite: SuiteDynThroughput,
		Name:  name,
		Quick: quick,
		Run: func() (Metrics, error) {
			once.Do(func() {
				g, flat, opts = setup()
				inSet = energymis.GreedyMIS(g)
			})
			d, err := energymis.NewDynamicFrom(g, inSet, opts)
			if err != nil {
				return Metrics{}, err
			}
			if _, err := d.ApplyBatch(flat); err != nil {
				return Metrics{}, err
			}
			m := FromDynamicStats(d.Stats(), d.MISSize(), d.AwakePerNode())
			m.Extra["window"] = float64(opts.Window)
			m.Extra["workers"] = float64(opts.Workers)
			return m, nil
		},
	}
}

// churnWorkload is the shared setup of the paired batch/legacy cases:
// identical graph, stream, and knobs, differing only in the repair path,
// worker count (workers > 1 elects independent region components
// concurrently), and window schedule (pipeline overlaps a window's
// repair with the next window's structural apply); the counters stay
// byte-identical across all of them.
func churnWorkload(n, updates, window, workers int, legacy, pipeline bool) func() (*energymis.Graph, []energymis.Update, energymis.DynamicOptions) {
	return func() (*energymis.Graph, []energymis.Update, energymis.DynamicOptions) {
		g := gnpDeg8Graph(n)()
		flat := energymis.FlattenStream(energymis.ChurnStream(g, updates, 1, 7))
		return g, flat, energymis.DynamicOptions{Seed: 1, Window: window, Workers: workers, Legacy: legacy, Pipeline: pipeline}
	}
}

func dynThroughputSpecs() []Spec {
	return []Spec{
		// The headline pair: batch vs legacy on the identical workload.
		dynThroughputSpec("churn/n=100000/w=64", true, churnWorkload(100000, 51200, 64, 0, false, false)),
		dynThroughputSpec("churn/n=100000/w=64/legacy", true, churnWorkload(100000, 51200, 64, 0, true, false)),
		// The parallel-repair path: identical workload and counters, with
		// the window's region components elected on 8 workers.
		dynThroughputSpec("churn/n=100000/w=64/workers=8", true, churnWorkload(100000, 51200, 64, 8, false, false)),
		// The pipelined schedule on the same workload: window k+1's
		// structural apply overlaps window k's repair. Quick, so the CI
		// perf gate exercises the overlap path on every PR.
		dynThroughputSpec("churn/n=100000/w=64/workers=8/pipeline", true, churnWorkload(100000, 51200, 64, 8, false, true)),
		// Window ablation endpoints: no coalescing, and the large-graph
		// target (n=10⁶ at a wide window).
		dynThroughputSpec("churn/n=100000/w=1", false, churnWorkload(100000, 51200, 1, 0, false, false)),
		dynThroughputSpec("churn/n=1000000/w=256", false, churnWorkload(1000000, 131072, 256, 0, false, false)),
		dynThroughputSpec("churn/n=1000000/w=256/workers=8", false, churnWorkload(1000000, 131072, 256, 8, false, false)),
		// The n=10⁶ pipelined case is quick as well — the gate's large-n
		// guard against word-sweep or snapshot regressions that only show
		// at scale.
		dynThroughputSpec("churn/n=1000000/w=256/workers=8/pipeline", true, churnWorkload(1000000, 131072, 256, 8, false, true)),
		// Other stream classes: sliding-window arrivals and the
		// adversarial hub attack.
		dynThroughputSpec("window/n=50000/w=64", false, func() (*energymis.Graph, []energymis.Update, energymis.DynamicOptions) {
			g := gnpDeg8Graph(50000)()
			flat := energymis.FlattenStream(energymis.WindowStream(50000, 500, 25600, 11))
			return g, flat, energymis.DynamicOptions{Seed: 1, Window: 64}
		}),
		dynThroughputSpec("hub/n=20000/w=16", false, func() (*energymis.Graph, []energymis.Update, energymis.DynamicOptions) {
			g := cachedGraph("ba/n=20000/m=4/seed=3",
				func() *energymis.Graph { return energymis.BarabasiAlbert(20000, 4, 3) })()
			flat := energymis.FlattenStream(energymis.HubAttackStream(g, 400, 5))
			return g, flat, energymis.DynamicOptions{Seed: 1, Window: 16}
		}),
	}
}
