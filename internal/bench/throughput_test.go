package bench

import (
	"testing"

	energymis "github.com/energymis/energymis"
)

// TestThroughputDeterministicAcrossPoolWidths: the aggregate counters are
// sums over a fixed seed set, so they must not depend on worker count or
// scheduling — and a single-worker pool must agree with serial execution.
func TestThroughputDeterministicAcrossPoolWidths(t *testing.T) {
	g := energymis.GNP(500, 10.0/500, 1)
	const runs = 12

	// Serial reference: the same seeds run one by one without the pool.
	var ref Metrics
	for i := 0; i < runs; i++ {
		res, err := energymis.Run(g, energymis.Luby, energymis.Options{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		m := FromResult(res)
		ref.Rounds += m.Rounds
		ref.AwakeTotal += m.AwakeTotal
		ref.Messages += m.Messages
		ref.MessagesDropped += m.MessagesDropped
		ref.BitsTotal += m.BitsTotal
		ref.MISSize += m.MISSize
		if m.AwakeMax > ref.AwakeMax {
			ref.AwakeMax = m.AwakeMax
		}
	}

	for _, workers := range []int{1, 2, 4, 13} {
		got, err := RunThroughput(g, energymis.Luby, ThroughputOptions{Runs: runs, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Rounds != ref.Rounds || got.AwakeTotal != ref.AwakeTotal ||
			got.Messages != ref.Messages || got.MessagesDropped != ref.MessagesDropped ||
			got.BitsTotal != ref.BitsTotal || got.MISSize != ref.MISSize ||
			got.AwakeMax != ref.AwakeMax {
			t.Fatalf("workers=%d: aggregate counters differ\n serial: %+v\n pool:   %+v",
				workers, ref, got)
		}
		if got.Extra["runs"] != runs {
			t.Fatalf("workers=%d: extra runs = %v", workers, got.Extra["runs"])
		}
	}
}

func TestThroughputRejectsZeroRuns(t *testing.T) {
	g := energymis.GNP(50, 0.1, 1)
	if _, err := RunThroughput(g, energymis.Luby, ThroughputOptions{}); err == nil {
		t.Fatal("expected error for Runs = 0")
	}
}

// TestThroughputSuiteSpecsMeasure runs the quick throughput specs end to
// end through Measure and checks the derived report fields land.
func TestThroughputSuiteSpecsMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput cases are slow in -short mode")
	}
	specs, err := Specs([]string{SuiteThroughput}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no quick throughput specs")
	}
	res, err := Measure(specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.RunsPerSec <= 0 {
		t.Fatalf("RunsPerSec = %v, want > 0", res.Timing.RunsPerSec)
	}
	if res.Timing.AllocsPerRun <= 0 {
		t.Fatalf("AllocsPerRun = %v, want > 0 (Result construction allocates)", res.Timing.AllocsPerRun)
	}
	if res.Timing.AllocsPerAwakeNodeRound < 0 {
		t.Fatalf("AllocsPerAwakeNodeRound = %v", res.Timing.AllocsPerAwakeNodeRound)
	}
	if res.Metrics.AwakeTotal <= 0 {
		t.Fatalf("AwakeTotal = %v", res.Metrics.AwakeTotal)
	}
}
