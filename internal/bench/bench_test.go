package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func fakeSpec(suite, name string, awake int64, quick bool) Spec {
	return Spec{
		Suite: suite,
		Name:  name,
		Quick: quick,
		Run: func() (Metrics, error) {
			return Metrics{Rounds: 10, AwakeTotal: awake, Messages: 100}, nil
		},
	}
}

func TestMeasureAndReportRoundTrip(t *testing.T) {
	rep, err := RunSpecs([]Spec{fakeSpec("s", "a", 1000, true)}, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 1 || rep.SchemaVersion != SchemaVersion {
		t.Fatalf("bad report: %+v", rep)
	}
	cr := rep.Cases[0]
	if cr.Timing.Reps != 3 || cr.Timing.MinNS <= 0 || cr.Timing.MinNS > cr.Timing.MaxNS {
		t.Fatalf("bad timing: %+v", cr.Timing)
	}
	if cr.Timing.NSPerAwakeNodeRound <= 0 {
		t.Fatalf("NSPerAwakeNodeRound not computed: %+v", cr.Timing)
	}
	if rep.Env.GoVersion == "" || rep.Env.GOMAXPROCS < 1 {
		t.Fatalf("bad env: %+v", rep.Env)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cases[0].Key() != "s/a" || back.Cases[0].Metrics.AwakeTotal != 1000 {
		t.Fatalf("round trip lost data: %+v", back.Cases[0])
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &Report{SchemaVersion: SchemaVersion + 1}
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("expected schema-version error, got %v", err)
	}
}

func caseWithNS(suite, name string, ns float64, awake int64) CaseResult {
	return CaseResult{
		Suite:   suite,
		Name:    name,
		Metrics: Metrics{Rounds: 10, AwakeTotal: awake, Messages: 100},
		Timing:  Timing{Reps: 1, MinNS: ns, MeanNS: ns, MaxNS: ns, NSPerAwakeNodeRound: ns / float64(awake)},
	}
}

func TestCompareGatesOnNSPerAwake(t *testing.T) {
	old := &Report{SchemaVersion: SchemaVersion, Cases: []CaseResult{caseWithNS("s", "a", 1000, 10)}}
	cur := &Report{SchemaVersion: SchemaVersion, Cases: []CaseResult{caseWithNS("s", "a", 1100, 10)}}
	c, err := Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed() {
		t.Fatalf("+10%% flagged as regression at 20%% threshold: %+v", c.Regressions)
	}

	cur.Cases[0] = caseWithNS("s", "a", 1300, 10)
	c, err = Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed() || len(c.Regressions) != 1 || c.Regressions[0].Metric != GatedMetric {
		t.Fatalf("+30%% not flagged at 20%% threshold: %+v", c)
	}

	// A faster current run never regresses.
	cur.Cases[0] = caseWithNS("s", "a", 500, 10)
	if c, err = Compare(old, cur, 0.20); err != nil || c.Regressed() {
		t.Fatalf("faster run flagged: %+v err=%v", c, err)
	}
}

func TestCompareDetectsCounterDrift(t *testing.T) {
	old := &Report{Cases: []CaseResult{caseWithNS("s", "a", 1000, 10)}}
	cur := &Report{Cases: []CaseResult{caseWithNS("s", "a", 1000, 10)}}
	cur.Cases[0].Metrics.Messages = 250
	c, err := Compare(old, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.CounterDrift) != 1 || c.CounterDrift[0].Metric != "messages" {
		t.Fatalf("counter drift not detected: %+v", c.CounterDrift)
	}
}

func TestCompareIntersectionAndVacuity(t *testing.T) {
	old := &Report{Cases: []CaseResult{
		caseWithNS("s", "a", 1000, 10),
		caseWithNS("s", "b", 1000, 10),
	}}
	cur := &Report{Cases: []CaseResult{
		caseWithNS("s", "b", 1000, 10),
		caseWithNS("s", "c", 1000, 10),
	}}
	c, err := Compare(old, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Matched != 1 || len(c.OnlyOld) != 1 || len(c.OnlyNew) != 1 {
		t.Fatalf("intersection wrong: %+v", c)
	}

	disjoint := &Report{Cases: []CaseResult{caseWithNS("x", "y", 1, 1)}}
	if _, err := Compare(old, disjoint, 0); err == nil {
		t.Fatal("disjoint reports must error (vacuous gate)")
	}
}

func TestSpecsSelection(t *testing.T) {
	all, err := Specs(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	quick, err := Specs(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) == 0 || len(quick) >= len(all) {
		t.Fatalf("quick subset wrong: %d of %d", len(quick), len(all))
	}
	// Quick cases must be an exact key subset of the full run, so a quick
	// CI run compares against a full baseline.
	keys := map[string]bool{}
	suites := map[string]bool{}
	for i := range all {
		keys[all[i].Key()] = true
	}
	for i := range quick {
		if !keys[quick[i].Key()] {
			t.Fatalf("quick case %s not in full suite", quick[i].Key())
		}
		suites[quick[i].Suite] = true
	}
	for _, s := range SuiteNames() {
		if !suites[s] {
			t.Fatalf("quick mode misses suite %s", s)
		}
	}

	only, err := Specs([]string{SuiteDynamic}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range only {
		if only[i].Suite != SuiteDynamic {
			t.Fatalf("suite filter leaked %s", only[i].Key())
		}
	}
	if _, err := Specs([]string{"nope"}, false); err == nil {
		t.Fatal("unknown suite must error")
	}
}

// TestHarnessSmoke runs one real (tiny) static case end to end.
func TestHarnessSmoke(t *testing.T) {
	specs, err := Specs([]string{SuiteStatic}, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Rounds <= 0 || m.AwakeTotal <= 0 || m.Messages <= 0 || m.MISSize <= 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if res.Timing.NSPerAwakeNodeRound <= 0 {
		t.Fatalf("no throughput metric: %+v", res.Timing)
	}
}

func caseWithAllocs(ns float64, awake int64, allocsPerOp float64) CaseResult {
	c := caseWithNS("s", "a", ns, awake)
	c.Timing.AllocsPerOp = allocsPerOp
	c.Timing.AllocsPerAwakeNodeRound = allocsPerOp / float64(awake)
	return c
}

func TestCompareGatesOnAllocsPerAwakeNodeRound(t *testing.T) {
	old := &Report{SchemaVersion: SchemaVersion, Cases: []CaseResult{caseWithAllocs(1000, 1000, 1000)}}

	// +20% allocs: inside the 30% budget.
	cur := &Report{SchemaVersion: SchemaVersion, Cases: []CaseResult{caseWithAllocs(1000, 1000, 1200)}}
	c, err := Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed() {
		t.Fatalf("+20%% allocs flagged at 30%% threshold: %+v", c.Regressions)
	}

	// +50% allocs and above the absolute slack: regression.
	cur.Cases[0] = caseWithAllocs(1000, 1000, 1500)
	c, err = Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed() || c.Regressions[0].Metric != GatedAllocMetric {
		t.Fatalf("+50%% allocs not flagged: %+v", c)
	}

	// Near-zero baseline: a relative blow-up below the absolute slack must
	// not fail the gate (noise around the batch runtime's ~0 allocs).
	old.Cases[0] = caseWithAllocs(1000, 100000, 10) // 1e-4 allocs/awake-node-round
	cur.Cases[0] = caseWithAllocs(1000, 100000, 100)
	c, err = Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed() {
		t.Fatalf("sub-slack alloc noise flagged: %+v", c.Regressions)
	}

	// Baseline without the derived field: it is reconstructed from
	// allocs_per_op / awake_total, so the gate still applies.
	legacy := caseWithNS("s", "a", 1000, 1000)
	legacy.Timing.AllocsPerOp = 1000
	old.Cases[0] = legacy
	cur.Cases[0] = caseWithAllocs(1000, 1000, 2000)
	c, err = Compare(old, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed() || c.Regressions[0].Metric != GatedAllocMetric {
		t.Fatalf("legacy-baseline alloc regression not flagged: %+v", c)
	}
}
