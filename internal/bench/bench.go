package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion identifies the report layout. Bump when fields change
// incompatibly; Compare refuses to diff mismatched versions.
const SchemaVersion = 1

// Metrics are the model-level counters of one workload execution. They are
// deterministic in the spec's seed, so every repetition measures identical
// work and wall-time variance is purely environmental.
type Metrics struct {
	Rounds          int64   `json:"rounds"`
	AwakeMax        int64   `json:"awake_max"`
	AwakeAvg        float64 `json:"awake_avg"`
	AwakeTotal      int64   `json:"awake_total"`
	Messages        int64   `json:"messages"`
	MessagesDropped int64   `json:"messages_dropped"`
	BitsTotal       int64   `json:"bits_total"`
	BitsMax         int64   `json:"bits_max"`
	MISSize         int64   `json:"mis_size,omitempty"`
	// Extra carries suite-specific counters (e.g. dynamic repair regions).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Timing is the wall-clock and allocation measurement over Reps runs.
type Timing struct {
	Reps        int     `json:"reps"`
	MeanNS      float64 `json:"mean_ns"`
	MinNS       float64 `json:"min_ns"`
	MaxNS       float64 `json:"max_ns"`
	StdevNS     float64 `json:"stdev_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// NSPerAwakeNodeRound = MinNS / AwakeTotal: the gated throughput
	// metric (min over reps is the least noise-sensitive estimator).
	NSPerAwakeNodeRound float64 `json:"ns_per_awake_node_round"`
	// AllocsPerAwakeNodeRound = AllocsPerOp / AwakeTotal: the gated
	// allocation metric — heap allocations per simulated awake node-round
	// (≈ 0 in steady state on the batch runtime).
	AllocsPerAwakeNodeRound float64 `json:"allocs_per_awake_node_round"`
	// RunsPerSec and AllocsPerRun are set for throughput-suite cases
	// (metrics carry extra["runs"]): simulations completed per second of
	// wall time, and allocations per simulation.
	RunsPerSec   float64 `json:"runs_per_sec,omitempty"`
	AllocsPerRun float64 `json:"allocs_per_run,omitempty"`
	// UpdatesPerSec and AllocsPerUpdate are set for cases whose metrics
	// carry extra["updates"] (the dynamic and dynamic-throughput suites):
	// topology updates sustained per second of wall time, and heap
	// allocations per update. Both are gated for the dynamic-throughput
	// suite (see compare.go).
	UpdatesPerSec   float64 `json:"updates_per_sec,omitempty"`
	AllocsPerUpdate float64 `json:"allocs_per_update,omitempty"`
}

// CaseResult is one suite case's measurements.
type CaseResult struct {
	Suite   string  `json:"suite"`
	Name    string  `json:"name"`
	Metrics Metrics `json:"metrics"`
	Timing  Timing  `json:"timing"`
}

// Key identifies the case across reports.
func (c *CaseResult) Key() string { return c.Suite + "/" + c.Name }

// EnvInfo records where a report was produced.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
}

// Report is the versioned top-level document of BENCH_MIS.json.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Quick         bool         `json:"quick"`
	Env           EnvInfo      `json:"env"`
	Cases         []CaseResult `json:"cases"`
}

// Case finds a case by key, or nil.
func (r *Report) Case(key string) *CaseResult {
	for i := range r.Cases {
		if r.Cases[i].Key() == key {
			return &r.Cases[i]
		}
	}
	return nil
}

// Spec is a runnable case definition. Run must be deterministic: every
// invocation performs identical simulated work.
type Spec struct {
	Suite string
	Name  string
	Quick bool // included in quick (CI) mode
	Run   func() (Metrics, error)
}

// Key identifies the spec's case across reports.
func (s *Spec) Key() string { return s.Suite + "/" + s.Name }

// Env captures the current execution environment. The commit hash is
// best-effort (empty outside a git checkout).
func Env() EnvInfo {
	info := EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		info.Commit = strings.TrimSpace(string(out))
	}
	return info
}

// Measure executes one spec: a warm-up run that yields the deterministic
// Metrics, then reps timed runs for the Timing estimate.
func Measure(spec Spec, reps int) (CaseResult, error) {
	if reps < 1 {
		reps = 1
	}
	m, err := spec.Run()
	if err != nil {
		return CaseResult{}, fmt.Errorf("bench %s: %w", spec.Key(), err)
	}
	t := Timing{Reps: reps, MinNS: math.MaxFloat64}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := spec.Run(); err != nil {
			return CaseResult{}, fmt.Errorf("bench %s (rep %d): %w", spec.Key(), r, err)
		}
		ns := float64(time.Since(start).Nanoseconds())
		t.MeanNS += ns
		if ns < t.MinNS {
			t.MinNS = ns
		}
		if ns > t.MaxNS {
			t.MaxNS = ns
		}
		t.StdevNS += ns * ns
	}
	runtime.ReadMemStats(&after)
	k := float64(reps)
	t.MeanNS /= k
	t.StdevNS = math.Sqrt(math.Max(0, t.StdevNS/k-t.MeanNS*t.MeanNS))
	t.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / k
	t.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / k
	if m.AwakeTotal > 0 {
		t.NSPerAwakeNodeRound = t.MinNS / float64(m.AwakeTotal)
		t.AllocsPerAwakeNodeRound = t.AllocsPerOp / float64(m.AwakeTotal)
	}
	if runs := m.Extra["runs"]; runs > 0 {
		t.RunsPerSec = runs * 1e9 / t.MinNS
		t.AllocsPerRun = t.AllocsPerOp / runs
	}
	if upd := m.Extra["updates"]; upd > 0 {
		t.UpdatesPerSec = upd * 1e9 / t.MinNS
		t.AllocsPerUpdate = t.AllocsPerOp / upd
	}
	return CaseResult{Suite: spec.Suite, Name: spec.Name, Metrics: m, Timing: t}, nil
}

// RunSpecs measures every spec in order and assembles the report.
// progress, when non-nil, receives one line per completed case.
func RunSpecs(specs []Spec, reps int, quick bool, progress func(string)) (*Report, error) {
	rep := &Report{SchemaVersion: SchemaVersion, Quick: quick, Env: Env()}
	for _, s := range specs {
		res, err := Measure(s, reps)
		if err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, res)
		if progress != nil {
			progress(fmt.Sprintf("%-40s %10.2fms  %8.1f ns/awake-node-round",
				res.Key(), res.Timing.MinNS/1e6, res.Timing.NSPerAwakeNodeRound))
		}
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON.
func WriteFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report and validates its schema version.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this binary speaks %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
