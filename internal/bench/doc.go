// Package bench is the machine-readable benchmark harness. It runs named
// suites of simulator workloads (static MIS runs across graph families and
// sizes, dynamic churn workloads, parallel-executor scaling), collects the
// model-level counters (rounds, awake node-rounds, messages, bits) next to
// wall-time and allocation measurements, and emits a versioned JSON report
// (BENCH_MIS.json at the repo root) that `cmd/bench -compare` diffs to
// gate performance regressions in CI.
//
// The headline throughput metric is ns/awake-node-round: wall time divided
// by the total awake node-rounds the run simulates. It normalizes across
// workloads of different shapes — an engine change that makes each
// simulated awake step cheaper moves it regardless of which suite caught
// it — and is the metric the CI gate thresholds.
package bench
