package bench

import (
	"fmt"
	"io"
	"sort"
)

// GatedMetric is the primary metric the CI perf gate thresholds: a case
// regresses when its ns/awake-node-round exceeds the baseline's by more
// than the configured fraction.
const GatedMetric = "ns_per_awake_node_round"

// DefaultThreshold is the regression budget the gate applies when none is
// configured: 20% on the gated metric.
const DefaultThreshold = 0.20

// GatedAllocMetric is the second gated metric: heap allocations per
// simulated awake node-round. The batch runtime holds it near zero in
// steady state, so a relative threshold alone would trip on noise around
// tiny baselines — a case only regresses when it exceeds the baseline by
// more than AllocThreshold *and* by more than AllocSlack absolute.
const GatedAllocMetric = "allocs_per_awake_node_round"

// AllocThreshold is the relative regression budget on GatedAllocMetric.
const AllocThreshold = 0.30

// AllocSlack is the absolute allocs-per-awake-node-round a case may gain
// before the relative threshold applies.
const AllocSlack = 0.05

// GatedUpdatesMetric gates the dynamic-throughput suite: sustained
// topology updates per second through the repair engine. Higher is
// better, so a case regresses when it falls below the baseline by more
// than the configured threshold. Only cases whose baseline carries the
// metric are gated.
const GatedUpdatesMetric = "updates_per_sec"

// GatedUpdateAllocMetric is the allocation gate of the dynamic-throughput
// suite: heap allocations per applied update. Same shape as the
// awake-node-round alloc gate — relative threshold plus absolute slack.
const GatedUpdateAllocMetric = "allocs_per_update"

// UpdateAllocSlack is the absolute allocs/update a case may gain before
// AllocThreshold applies (one batch of pipeline bookkeeping spread over a
// window is O(1) allocs/update; tiny baselines would otherwise gate on
// noise).
const UpdateAllocSlack = 2.0

// Delta is one per-case, per-metric difference between two reports.
type Delta struct {
	Case   string // suite/name key
	Metric string
	Old    float64
	New    float64
	Pct    float64 // (New-Old)/Old · 100, 0 when Old == 0
	Gated  bool    // counts toward the regression verdict
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// Comparison is the outcome of diffing a current report against a
// baseline.
type Comparison struct {
	Threshold   float64
	Matched     int      // cases present in both reports
	OnlyOld     []string // baseline cases the current run did not execute
	OnlyNew     []string // current cases absent from the baseline
	Deltas      []Delta  // every compared metric, grouped by case
	Regressions []Delta  // gated metrics beyond the threshold
	// CounterDrift lists deterministic model counters (rounds, awake,
	// messages) that changed — not gated, but a changed counter means the
	// simulated work itself changed, which a reviewer should know.
	CounterDrift []Delta
}

// Regressed reports whether the gate should fail.
func (c *Comparison) Regressed() bool { return len(c.Regressions) > 0 }

// Compare diffs cur against the baseline old. Cases are matched by
// suite/name key; a quick run against a full baseline compares the
// intersection. threshold <= 0 selects DefaultThreshold. An error is
// returned when no cases match (the gate would be vacuous).
func Compare(old, cur *Report, threshold float64) (*Comparison, error) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	c := &Comparison{Threshold: threshold}
	oldByKey := map[string]*CaseResult{}
	for i := range old.Cases {
		oldByKey[old.Cases[i].Key()] = &old.Cases[i]
	}
	seen := map[string]bool{}
	for i := range cur.Cases {
		nc := &cur.Cases[i]
		key := nc.Key()
		seen[key] = true
		oc, ok := oldByKey[key]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, key)
			continue
		}
		c.Matched++

		gated := Delta{
			Case: key, Metric: GatedMetric, Gated: true,
			Old: oc.Timing.NSPerAwakeNodeRound,
			New: nc.Timing.NSPerAwakeNodeRound,
		}
		gated.Pct = pct(gated.Old, gated.New)
		c.Deltas = append(c.Deltas, gated)
		if gated.Old > 0 && gated.New > gated.Old*(1+threshold) {
			c.Regressions = append(c.Regressions, gated)
		}

		oldAllocs := oc.Timing.AllocsPerAwakeNodeRound
		if oldAllocs == 0 && oc.Metrics.AwakeTotal > 0 {
			// Baseline predates the field: derive it from the raw counters.
			oldAllocs = oc.Timing.AllocsPerOp / float64(oc.Metrics.AwakeTotal)
		}
		alloc := Delta{
			Case: key, Metric: GatedAllocMetric, Gated: true,
			Old: oldAllocs,
			New: nc.Timing.AllocsPerAwakeNodeRound,
		}
		alloc.Pct = pct(alloc.Old, alloc.New)
		c.Deltas = append(c.Deltas, alloc)
		if alloc.New > alloc.Old*(1+AllocThreshold) && alloc.New-alloc.Old > AllocSlack {
			c.Regressions = append(c.Regressions, alloc)
		}

		// The update-throughput gates apply only where the baseline has
		// the metric (cases driven by update streams).
		if oc.Timing.UpdatesPerSec > 0 {
			ups := Delta{
				Case: key, Metric: GatedUpdatesMetric, Gated: true,
				Old: oc.Timing.UpdatesPerSec,
				New: nc.Timing.UpdatesPerSec,
			}
			ups.Pct = pct(ups.Old, ups.New)
			c.Deltas = append(c.Deltas, ups)
			if ups.New < ups.Old*(1-threshold) {
				c.Regressions = append(c.Regressions, ups)
			}

			ua := Delta{
				Case: key, Metric: GatedUpdateAllocMetric, Gated: true,
				Old: oc.Timing.AllocsPerUpdate,
				New: nc.Timing.AllocsPerUpdate,
			}
			ua.Pct = pct(ua.Old, ua.New)
			c.Deltas = append(c.Deltas, ua)
			if ua.New > ua.Old*(1+AllocThreshold) && ua.New-ua.Old > UpdateAllocSlack {
				c.Regressions = append(c.Regressions, ua)
			}
		}

		info := []Delta{
			{Case: key, Metric: "min_ns", Old: oc.Timing.MinNS, New: nc.Timing.MinNS},
			{Case: key, Metric: "allocs_per_op", Old: oc.Timing.AllocsPerOp, New: nc.Timing.AllocsPerOp},
		}
		counters := []Delta{
			{Case: key, Metric: "rounds", Old: float64(oc.Metrics.Rounds), New: float64(nc.Metrics.Rounds)},
			{Case: key, Metric: "awake_total", Old: float64(oc.Metrics.AwakeTotal), New: float64(nc.Metrics.AwakeTotal)},
			{Case: key, Metric: "messages", Old: float64(oc.Metrics.Messages), New: float64(nc.Metrics.Messages)},
		}
		for i := range info {
			info[i].Pct = pct(info[i].Old, info[i].New)
		}
		c.Deltas = append(c.Deltas, info...)
		for _, d := range counters {
			d.Pct = pct(d.Old, d.New)
			c.Deltas = append(c.Deltas, d)
			if d.Old != d.New {
				c.CounterDrift = append(c.CounterDrift, d)
			}
		}
	}
	for key := range oldByKey {
		if !seen[key] {
			c.OnlyOld = append(c.OnlyOld, key)
		}
	}
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	if c.Matched == 0 {
		return nil, fmt.Errorf("bench: no cases in common between baseline (%d cases) and current run (%d cases)",
			len(old.Cases), len(cur.Cases))
	}
	return c, nil
}

// Format writes the comparison as a human-readable table: both gated
// metrics per matched case, regressions and counter drift called out.
func (c *Comparison) Format(w io.Writer) {
	regressed := map[string]bool{}
	for _, d := range c.Regressions {
		regressed[d.Case+"/"+d.Metric] = true
	}
	for _, metric := range []string{GatedMetric, GatedAllocMetric, GatedUpdatesMetric, GatedUpdateAllocMetric} {
		var rows []Delta
		for _, d := range c.Deltas {
			if d.Gated && d.Metric == metric {
				rows = append(rows, d)
			}
		}
		if len(rows) == 0 {
			continue // e.g. no update-stream cases in this run
		}
		fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "case ("+metric+")", "baseline", "current", "delta")
		for _, d := range rows {
			mark := ""
			if regressed[d.Case+"/"+d.Metric] {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "%-44s %14.2f %14.2f %+7.1f%%%s\n", d.Case, d.Old, d.New, d.Pct, mark)
		}
		fmt.Fprintln(w)
	}
	if len(c.CounterDrift) > 0 {
		fmt.Fprintf(w, "\ncounter drift (simulated work changed):\n")
		for _, d := range c.CounterDrift {
			fmt.Fprintf(w, "  %-42s %-12s %14.0f -> %-14.0f %+7.1f%%\n", d.Case, d.Metric, d.Old, d.New, d.Pct)
		}
	}
	if len(c.OnlyOld) > 0 {
		fmt.Fprintf(w, "\nbaseline-only cases (not run): %v\n", c.OnlyOld)
	}
	if len(c.OnlyNew) > 0 {
		fmt.Fprintf(w, "\nnew cases (no baseline): %v\n", c.OnlyNew)
	}
	if c.Regressed() {
		fmt.Fprintf(w, "\nFAIL: %d regression(s) beyond the budget (%.0f%% on %s/%s; %.0f%%+slack on %s/%s)\n",
			len(c.Regressions), c.Threshold*100, GatedMetric, GatedUpdatesMetric,
			AllocThreshold*100, GatedAllocMetric, GatedUpdateAllocMetric)
	} else {
		fmt.Fprintf(w, "\nOK: %d case(s) within the %.0f%% / %.0f%% budgets\n",
			c.Matched, c.Threshold*100, AllocThreshold*100)
	}
}
