package dynamic

// Pipelined-batcher contract tests. TestBatcherFlushError pins the serial
// error path; these pin the same guarantees on the overlapped path
// (NewPipelinedBatcher on a non-Legacy, non-SelfCheck engine), where the
// failing window's prefix repair runs synchronously and Discard has an
// in-flight repair to join first.

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/verify"
)

func newPipelined(t *testing.T, window int) (*Engine, *Batcher) {
	t.Helper()
	g := graph.Path(6)
	e, err := New(g, verify.GreedyMIS(g), Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := NewPipelinedBatcher(e, window)
	if !b.pipelined {
		t.Fatal("batcher degraded to the serial path; the pipelined contract is untested")
	}
	return e, b
}

// TestPipelinedBatcherFlushError mirrors TestBatcherFlushError on the
// overlapped path: the rejected update's window repairs its applied prefix
// synchronously, drops prefix + rejected update, and keeps the un-applied
// suffix pending for the next Flush.
func TestPipelinedBatcherFlushError(t *testing.T) {
	e, b := newPipelined(t, 4)
	for _, up := range []Update{DelEdge(0, 1), InsEdge(0, 2)} {
		if _, flushed, err := b.Add(up); err != nil || flushed {
			t.Fatalf("buffered Add: flushed=%v err=%v", flushed, err)
		}
	}
	// Third update invalid (self-loop), fourth fine: the window fills on
	// the fourth Add and the flush sees 2 applied, 1 rejected, 1 un-applied.
	if _, flushed, err := b.Add(InsEdge(3, 3)); err != nil || flushed {
		t.Fatalf("buffered bad Add: flushed=%v err=%v", flushed, err)
	}
	bs, flushed, err := b.Add(DelEdge(4, 5))
	if err == nil {
		t.Fatal("flush with invalid update succeeded")
	}
	if flushed {
		t.Fatal("failed flush reported flushed=true")
	}
	if bs.Updates != 2 {
		t.Fatalf("failed flush applied %d updates, want 2 (the valid prefix)", bs.Updates)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending after failed flush = %d, want the 1 un-applied suffix update", b.Pending())
	}
	if e.HasEdge(0, 1) || !e.HasEdge(0, 2) {
		t.Fatal("valid prefix not applied")
	}
	if !e.HasEdge(4, 5) {
		t.Fatal("suffix update leaked into the engine")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant after failed flush: %v", err)
	}
	// The suffix is still live: the next Flush applies and repairs it,
	// joining before returning (the explicit-Flush contract).
	bs, err = b.Flush()
	if err != nil || bs.Updates != 1 {
		t.Fatalf("follow-up flush: bs=%+v err=%v", bs, err)
	}
	if e.HasEdge(4, 5) {
		t.Fatal("suffix update not applied by follow-up flush")
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after follow-up flush = %d", b.Pending())
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant after follow-up flush: %v", err)
	}
}

// TestPipelinedBatcherDiscard pins Discard's in-flight semantics: the
// window launched by the last Add-triggered flush was already applied, so
// Discard joins its repair (it cannot be un-applied) and drops only the
// still-buffered updates.
func TestPipelinedBatcherDiscard(t *testing.T) {
	e, b := newPipelined(t, 2)
	// Fill the window: this flush launches an async repair that is still
	// in flight when Discard runs.
	if _, _, err := b.Add(DelEdge(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, flushed, err := b.Add(InsEdge(0, 2)); err != nil || !flushed {
		t.Fatalf("window-filling Add: flushed=%v err=%v", flushed, err)
	}
	// Buffer one more; it must be dropped, not applied.
	if _, flushed, err := b.Add(InsEdge(3, 5)); err != nil || flushed {
		t.Fatalf("buffered Add: flushed=%v err=%v", flushed, err)
	}
	if n := b.Discard(); n != 1 {
		t.Fatalf("Discard dropped %d, want 1", n)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after Discard = %d", b.Pending())
	}
	if e.HasEdge(3, 5) {
		t.Fatal("Discard applied the buffered update")
	}
	if e.HasEdge(0, 1) || !e.HasEdge(0, 2) {
		t.Fatal("flushed window's updates lost")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant after Discard (in-flight repair not joined?): %v", err)
	}
	// The batcher stays usable after Discard.
	if _, flushed, err := b.Add(DelEdge(4, 5)); err != nil || flushed {
		t.Fatalf("Add after Discard: flushed=%v err=%v", flushed, err)
	}
	if bs, err := b.Flush(); err != nil || bs.Updates != 1 {
		t.Fatalf("Flush after Discard: bs=%+v err=%v", bs, err)
	}
	if e.HasEdge(4, 5) {
		t.Fatal("post-Discard update not applied")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant after post-Discard flush: %v", err)
	}
}
