package dynamic

import (
	"fmt"

	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
)

// This file is the per-node reference repair path (Params.Legacy), frozen
// as it stood before the batch-engine port: map-based region tracking and
// the per-node sim engines (luby.RunLegacy / ghaffari.RunShatterLegacy).
// The batch path in repair.go must produce identical sets and identical
// deterministic counters; the differential tests in dynamic_test.go hold
// the two paths against each other.

// repairState tracks the affected region of a batch on the legacy path.
type repairState struct {
	// dirty nodes must re-check the MIS invariant (membership conflicts or
	// lost coverage); woken nodes spent energy this batch (notifications,
	// probes, elections).
	dirty map[int32]struct{}
	woken map[int32]struct{}
}

func newRepairState() *repairState {
	return &repairState{
		dirty: make(map[int32]struct{}),
		woken: make(map[int32]struct{}),
	}
}

func (st *repairState) markDirty(v int32) { st.dirty[v] = struct{}{} }
func (st *repairState) wake(v int32)      { st.woken[v] = struct{}{} }
func (st *repairState) unmark(v int32) {
	delete(st.dirty, v)
	delete(st.woken, v)
}

// repairLegacy restores the MIS invariant after a batch's structural
// changes: conflict eviction, coverage probing, then a localized
// re-election on the uncovered region.
func (e *Engine) repairLegacy(st *repairState, bs *BatchStats) error {
	if len(st.dirty) == 0 && len(st.woken) == 0 {
		return nil // nothing changed (no-op updates only)
	}
	e.resolveConflictsLegacy(st, bs)

	// Coverage probe: every dirty node broadcasts a probe; member
	// neighbors answer. Listening neighbors wake for the probe round.
	region := make([]int32, 0, len(st.dirty))
	for _, v := range sortedKeys(st.dirty) {
		if !e.alive[v] || e.inSet[v] {
			continue
		}
		bs.Messages += int64(len(e.adj[v])) // probe broadcast
		covered := false
		for _, u := range e.adj[v] {
			st.wake(u)
			if e.inSet[u] {
				covered = true
				bs.Messages++ // member's reply
			}
		}
		if !covered {
			region = append(region, v)
		}
	}
	bs.Region = len(region)

	bs.Rounds = 1 // the detection/probe round; elections add theirs
	if len(region) > 0 {
		if err := e.electLegacy(region, st, bs); err != nil {
			return err
		}
	}

	// Charge the detection/probe round last, over the final woken set, so
	// every node reported in Woken is also charged at least one awake
	// round (election awake rounds were added by accountSim).
	for _, v := range sortedKeys(st.woken) {
		e.awake[v]++
		bs.AwakeRounds++
	}
	bs.Woken = len(st.woken)
	return nil
}

// resolveConflictsLegacy evicts members until no edge has two member
// endpoints. A conflict edge can only be created by a batch edge insertion
// (the set was valid before the batch, and elections never join adjacent
// nodes), so both of its endpoints are in the original dirty set and one
// sweep over it is exhaustive; evictions only remove members and cannot
// create new conflicts. The evicted endpoint is the one whose departure
// uncovers fewer nodes: lower degree, ties toward the higher ID.
func (e *Engine) resolveConflictsLegacy(st *repairState, bs *BatchStats) {
	evict := func(m int32) {
		e.inSet[m] = false
		bs.Evictions++
		// The leaver notifies its neighborhood; everyone there must
		// re-check coverage.
		bs.Messages += int64(len(e.adj[m]))
		st.wake(m)
		st.markDirty(m)
		for _, u := range e.adj[m] {
			st.wake(u)
			st.markDirty(u)
		}
	}
	for _, v := range sortedKeys(st.dirty) {
		for e.alive[v] && e.inSet[v] {
			conflict := int32(-1)
			for _, u := range e.adj[v] {
				if e.inSet[u] {
					conflict = u
					break
				}
			}
			if conflict < 0 {
				break
			}
			loser := v
			du, dv := len(e.adj[conflict]), len(e.adj[v])
			if du < dv || (du == dv && conflict > v) {
				loser = conflict
			}
			evict(loser)
		}
	}
}

// electLegacy runs the localized re-election on the induced subgraph of
// the uncovered region and merges the winners into the set. region is
// sorted.
func (e *Engine) electLegacy(region []int32, st *repairState, bs *BatchStats) error {
	local := make(map[int32]int32, len(region))
	for i, v := range region {
		local[v] = int32(i)
	}
	b := graph.NewBuilder(len(region))
	for i, v := range region {
		for _, u := range e.adj[v] {
			if j, ok := local[u]; ok && int32(i) < j {
				b.AddEdge(i, int(j))
			}
		}
	}
	sub := b.Build()

	var inSub []bool
	var err error
	switch e.p.Repair {
	case RepairGhaffari:
		inSub, err = e.electGhaffariLegacy(sub, region, bs)
	default:
		inSub, err = e.electLubyLegacy(sub, region, bs)
	}
	if err != nil {
		return err
	}

	for i, in := range inSub {
		if !in {
			continue
		}
		v := region[i]
		e.inSet[v] = true
		bs.Joins++
		// The joiner notifies its full neighborhood.
		bs.Messages += int64(len(e.adj[v]))
		for _, u := range e.adj[v] {
			st.wake(u)
		}
	}
	return nil
}

// electLubyLegacy runs per-node Luby to completion on sub.
func (e *Engine) electLubyLegacy(sub *graph.Graph, region []int32, bs *BatchStats) ([]bool, error) {
	inSub, res, err := luby.RunLegacy(sub, e.simCfg())
	if err != nil {
		return nil, fmt.Errorf("dynamic: re-election: %w", err)
	}
	e.accountSim(res, nil, region, bs)
	return inSub, nil
}

// electGhaffariLegacy runs the per-node desire-level dynamics for
// O(log |U|) rounds, retries on stragglers, and finishes any remaining
// nodes with Luby.
func (e *Engine) electGhaffariLegacy(sub *graph.Graph, region []int32, bs *BatchStats) ([]bool, error) {
	inSub := make([]bool, sub.N())
	cur := sub
	// orig[i] maps cur's node i to sub's node index.
	orig := identity32(sub.N())
	cfg := e.simCfg()
	for attempt := 0; ; attempt++ {
		if cur.N() == 0 {
			return inSub, nil
		}
		if attempt >= e.p.MaxRetry {
			// Luby finisher: always terminates.
			inFin, res, err := luby.RunLegacy(cur, bump(cfg, uint64(attempt)))
			if err != nil {
				return nil, fmt.Errorf("dynamic: finisher: %w", err)
			}
			e.accountSim(res, orig, region, bs)
			for i, in := range inFin {
				if in {
					inSub[orig[i]] = true
				}
			}
			return inSub, nil
		}
		rounds := ghaffariRounds(cur.N())
		inG, survivors, res, err := ghaffari.RunShatterLegacy(cur, rounds, bump(cfg, uint64(attempt)))
		if err != nil {
			return nil, fmt.Errorf("dynamic: ghaffari: %w", err)
		}
		e.accountSim(res, orig, region, bs)
		for i, in := range inG {
			if in {
				inSub[orig[i]] = true
			}
		}
		if len(survivors) == 0 {
			return inSub, nil
		}
		bs.Retries++
		nextOrig := make([]int32, len(survivors))
		for i, s := range survivors {
			nextOrig[i] = orig[s]
		}
		next := graph.InducedSubgraph(cur, survivors)
		// Compose mappings: next's node i is sub's nextOrig[i].
		cur, orig = next.Graph, nextOrig
	}
}
