package dynamic

import (
	"fmt"

	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/sim"
)

// This file is the per-node reference repair path (Params.Legacy):
// map-based region tracking and the per-node sim engines (luby.RunLegacy /
// ghaffari.RunShatterLegacy), always sequential. It shares the region
// partition, per-component seed derivation, and region-ordered merge with
// the batch path (partition.go), so the two paths must produce identical
// sets and identical deterministic counters for every worker count; the
// differential tests hold them against each other.

// repairState tracks the affected region of a batch on the legacy path.
type repairState struct {
	// dirty nodes must re-check the MIS invariant (membership conflicts or
	// lost coverage); woken nodes spent energy this batch (notifications,
	// probes, elections).
	dirty map[int32]struct{}
	woken map[int32]struct{}
}

func newRepairState() *repairState {
	return &repairState{
		dirty: make(map[int32]struct{}),
		woken: make(map[int32]struct{}),
	}
}

func (st *repairState) markDirty(v int32) { st.dirty[v] = struct{}{} }
func (st *repairState) wake(v int32)      { st.woken[v] = struct{}{} }
func (st *repairState) unmark(v int32) {
	delete(st.dirty, v)
	delete(st.woken, v)
}

// repairLegacy restores the MIS invariant after a batch's structural
// changes: conflict eviction, coverage probing, then a localized
// re-election on the uncovered region.
func (e *Engine) repairLegacy(st *repairState, bs *BatchStats) error {
	if len(st.dirty) == 0 && len(st.woken) == 0 {
		return nil // nothing changed (no-op updates only)
	}
	e.resolveConflictsLegacy(st, bs)

	// Coverage probe: every dirty node broadcasts a probe; member
	// neighbors answer. Listening neighbors wake for the probe round.
	region := make([]int32, 0, len(st.dirty))
	for _, v := range sortedKeys(st.dirty) {
		if !e.alive[v] || e.inSet[v] {
			continue
		}
		bs.Messages += int64(len(e.adj[v])) // probe broadcast
		covered := false
		for _, u := range e.adj[v] {
			st.wake(u)
			if e.inSet[u] {
				covered = true
				bs.Messages++ // member's reply
			}
		}
		if !covered {
			region = append(region, v)
		}
	}
	bs.Region = len(region)

	bs.Rounds = 1 // the detection/probe round; elections add theirs
	if len(region) > 0 {
		if err := e.electLegacy(region, st, bs); err != nil {
			return err
		}
	}

	// Charge the detection/probe round last, over the final woken set, so
	// every node reported in Woken is also charged at least one awake
	// round (election awake rounds were folded by mergeComponents).
	for _, v := range sortedKeys(st.woken) {
		e.awake[v]++
		bs.AwakeRounds++
	}
	bs.Woken = len(st.woken)
	return nil
}

// resolveConflictsLegacy evicts members until no edge has two member
// endpoints. A conflict edge can only be created by a batch edge insertion
// (the set was valid before the batch, and elections never join adjacent
// nodes), so both of its endpoints are in the original dirty set and one
// sweep over it is exhaustive; evictions only remove members and cannot
// create new conflicts. The evicted endpoint is the one whose departure
// uncovers fewer nodes: lower degree, ties toward the higher ID.
func (e *Engine) resolveConflictsLegacy(st *repairState, bs *BatchStats) {
	evict := func(m int32) {
		e.clearMember(m)
		bs.Evictions++
		// The leaver notifies its neighborhood; everyone there must
		// re-check coverage.
		bs.Messages += int64(len(e.adj[m]))
		st.wake(m)
		st.markDirty(m)
		for _, u := range e.adj[m] {
			st.wake(u)
			st.markDirty(u)
		}
	}
	for _, v := range sortedKeys(st.dirty) {
		for e.alive[v] && e.inSet[v] {
			conflict := int32(-1)
			for _, u := range e.adj[v] {
				if e.inSet[u] {
					conflict = u
					break
				}
			}
			if conflict < 0 {
				break
			}
			loser := v
			du, dv := len(e.adj[conflict]), len(e.adj[v])
			if du < dv || (du == dv && conflict > v) {
				loser = conflict
			}
			evict(loser)
		}
	}
}

// electLegacy builds the uncovered region's induced subgraph with the
// legacy map idiom, then runs the shared per-component election/merge
// (sequential on this path). region is sorted ascending.
func (e *Engine) electLegacy(region []int32, st *repairState, bs *BatchStats) error {
	local := make(map[int32]int32, len(region))
	for i, v := range region {
		local[v] = int32(i)
	}
	b := graph.NewBuilder(len(region))
	for i, v := range region {
		for _, u := range e.adj[v] {
			if j, ok := local[u]; ok && int32(i) < j {
				b.AddEdge(i, int(j))
			}
		}
	}
	return e.electComponents(b.Build(), region, st, bs)
}

// electComponentLegacy elects one non-singleton component on the per-node
// engines, accumulating into its compRun exactly like the batch path.
func (e *Engine) electComponentLegacy(sub *graph.Graph, c int, base sim.Config) {
	cr := &e.comps[c]
	sg := graph.InducedSubgraph(sub, cr.ids)
	cfg := compCfg(base, uint64(c))
	switch e.p.Repair {
	case RepairGhaffari:
		cr.err = e.electGhaffariCompLegacy(sg.Graph, cfg, cr)
	default:
		cr.err = e.electLubyCompLegacy(sg.Graph, cfg, cr)
	}
}

// electLubyCompLegacy runs per-node Luby to completion on the component.
func (e *Engine) electLubyCompLegacy(g *graph.Graph, cfg sim.Config, cr *compRun) error {
	inSub, res, err := luby.RunLegacy(g, cfg)
	if err != nil {
		return fmt.Errorf("dynamic: re-election: %w", err)
	}
	cr.account(res, nil)
	cr.inSet = inSub
	return nil
}

// electGhaffariCompLegacy runs the per-node desire-level dynamics for
// O(log |C|) rounds, retries on stragglers, and finishes any remaining
// nodes with Luby.
func (e *Engine) electGhaffariCompLegacy(g *graph.Graph, cfg sim.Config, cr *compRun) error {
	inSub := make([]bool, g.N())
	cur := g
	// orig[i] maps cur's node i to the component node index.
	orig := identity32(g.N())
	for attempt := 0; ; attempt++ {
		if cur.N() == 0 {
			cr.inSet = inSub
			return nil
		}
		if attempt >= e.p.MaxRetry {
			// Luby finisher: always terminates.
			inFin, res, err := luby.RunLegacy(cur, bump(cfg, uint64(attempt)))
			if err != nil {
				return fmt.Errorf("dynamic: finisher: %w", err)
			}
			cr.account(res, orig)
			for i, in := range inFin {
				if in {
					inSub[orig[i]] = true
				}
			}
			cr.inSet = inSub
			return nil
		}
		rounds := ghaffariRounds(cur.N())
		inG, survivors, res, err := ghaffari.RunShatterLegacy(cur, rounds, bump(cfg, uint64(attempt)))
		if err != nil {
			return fmt.Errorf("dynamic: ghaffari: %w", err)
		}
		cr.account(res, orig)
		for i, in := range inG {
			if in {
				inSub[orig[i]] = true
			}
		}
		if len(survivors) == 0 {
			cr.inSet = inSub
			return nil
		}
		cr.retries++
		nextOrig := make([]int32, len(survivors))
		for i, s := range survivors {
			nextOrig[i] = orig[s]
		}
		next := graph.InducedSubgraph(cur, survivors)
		// Compose mappings: next's node i is the component's nextOrig[i].
		cur, orig = next.Graph, nextOrig
	}
}
