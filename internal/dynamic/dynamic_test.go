package dynamic

import (
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/verify"
)

func newEngine(t *testing.T, g *graph.Graph, p Params) *Engine {
	t.Helper()
	e, err := New(g, verify.GreedyMIS(g), p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsInvalidSet(t *testing.T) {
	g := graph.Path(3)
	bad := []bool{true, true, false} // edge (0,1) inside the set
	if _, err := New(g, bad, DefaultParams()); err == nil {
		t.Fatal("invalid initial set accepted")
	}
}

func TestInsertEdgeConflict(t *testing.T) {
	// Path 0-1-2: greedy MIS is {0, 2}. Inserting (0,2) creates a
	// conflict; repair must evict one endpoint and keep the set maximal.
	e := newEngine(t, graph.Path(3), Params{Seed: 1, Repair: RepairLuby, SelfCheck: true})
	bs, err := e.InsertEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", bs.Evictions)
	}
	if e.InMIS(0) && e.InMIS(2) {
		t.Fatal("conflict not resolved")
	}
	if !e.HasEdge(0, 2) || e.M() != 3 {
		t.Fatalf("edge not applied: m=%d", e.M())
	}
}

func TestRemoveEdgeUncovers(t *testing.T) {
	// Star with center 0: MIS is {0}. Removing (0,1) leaves node 1
	// isolated and uncovered; it must join.
	e := newEngine(t, graph.Star(5), Params{Seed: 1, SelfCheck: true})
	bs, err := e.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !e.InMIS(1) {
		t.Fatal("uncovered node 1 did not join")
	}
	if bs.Joins != 1 || bs.Region != 1 {
		t.Fatalf("joins=%d region=%d, want 1/1", bs.Joins, bs.Region)
	}
}

func TestInsertNode(t *testing.T) {
	e := newEngine(t, graph.Path(4), Params{Seed: 3, SelfCheck: true})
	// Greedy MIS of P4 is {0, 2}. A new node adjacent to member 0 is
	// covered and must stay out.
	id, bs, err := e.InsertNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || e.InMIS(id) || bs.Joins != 0 {
		t.Fatalf("covered insert: id=%d inMIS=%v joins=%d", id, e.InMIS(id), bs.Joins)
	}
	// A new node adjacent only to non-members is uncovered and must join.
	id2, bs2, err := e.InsertNode(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !e.InMIS(id2) || bs2.Joins != 1 {
		t.Fatalf("uncovered insert: inMIS=%v joins=%d", e.InMIS(id2), bs2.Joins)
	}
	// An isolated node always joins.
	id3, _, err := e.InsertNode()
	if err != nil {
		t.Fatal(err)
	}
	if !e.InMIS(id3) {
		t.Fatal("isolated node did not join")
	}
}

func TestRemoveNode(t *testing.T) {
	// Star: removing the member center uncovers every leaf; the leaves
	// form an independent set, so all must join.
	e := newEngine(t, graph.Star(6), Params{Seed: 2, SelfCheck: true})
	bs, err := e.RemoveNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() != 5 || e.Alive(0) {
		t.Fatalf("node 0 not removed: alive=%d", e.AliveCount())
	}
	if bs.Joins != 5 {
		t.Fatalf("joins = %d, want 5", bs.Joins)
	}
	// Operations on the dead slot must fail.
	if _, err := e.RemoveNode(0); err == nil {
		t.Fatal("double removal accepted")
	}
	if _, err := e.InsertEdge(0, 1); err == nil {
		t.Fatal("edge to dead slot accepted")
	}
}

func TestNoOpUpdatesAreFree(t *testing.T) {
	e := newEngine(t, graph.Path(4), Params{Seed: 1, SelfCheck: true})
	bs, err := e.Apply([]Update{InsEdge(0, 1), DelEdge(0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Rounds != 0 || bs.AwakeRounds != 0 || bs.Woken != 0 {
		t.Fatalf("no-op batch charged: %+v", bs)
	}
}

func TestInvalidUpdates(t *testing.T) {
	e := newEngine(t, graph.Path(4), DefaultParams())
	cases := []Update{
		InsEdge(0, 0),
		InsEdge(0, 99),
		DelEdge(-1, 2),
		DelNode(17),
		InsNode(99),
		{Op: Op(9)},
	}
	for _, up := range cases {
		if _, err := e.Apply([]Update{up}); err == nil {
			t.Fatalf("update %+v accepted", up)
		}
		// A rejected update must leave the engine fully consistent.
		if err := e.Check(); err != nil {
			t.Fatalf("after rejected %+v: %v", up, err)
		}
	}
	if e.N() != 4 {
		t.Fatalf("rejected inserts grew the slot space to %d", e.N())
	}
}

func TestInsertNodeBadNeighborLeavesNoTrace(t *testing.T) {
	// Regression: a node insert with an invalid neighbor list must not
	// create the node (or any of its edges) at all — a half-wired node
	// would never be probed and would break maximality forever.
	e := newEngine(t, graph.Path(3), DefaultParams())
	if _, err := e.Apply([]Update{InsNode(1, 99)}); err == nil {
		t.Fatal("invalid neighbor accepted")
	}
	if e.N() != 3 || e.M() != 2 {
		t.Fatalf("partial insert left state: n=%d m=%d", e.N(), e.M())
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBatchStillRepairs(t *testing.T) {
	// A batch that fails mid-way must repair its applied prefix: the
	// invariant holds even though the caller gets an error.
	e := newEngine(t, graph.Star(5), DefaultParams())
	_, err := e.Apply([]Update{DelEdge(0, 1), InsEdge(2, 2)})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if e.HasEdge(0, 1) {
		t.Fatal("valid prefix not applied")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant broken after failed batch: %v", err)
	}
	// The prefix's cost must be accounted: cumulative stats stay
	// consistent with the per-node totals.
	st := e.Stats()
	if st.Batches != 1 || st.Updates != 1 {
		t.Fatalf("failed batch not accounted: %+v", st)
	}
	var sum int64
	for _, a := range e.AwakePerNode() {
		sum += a
	}
	if sum != st.BootstrapAwake+st.AwakeTotal {
		t.Fatalf("awake totals inconsistent: %d != %d+%d", sum, st.BootstrapAwake, st.AwakeTotal)
	}
}

func TestBatchOverlappingRegions(t *testing.T) {
	// A batch touching one neighborhood runs a single election.
	g := graph.Complete(6)
	e := newEngine(t, g, Params{Seed: 5, SelfCheck: true})
	bs, err := e.Apply([]Update{DelEdge(0, 1), DelEdge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// The greedy member of K6 is node 0; removing its edges to 1 and 2
	// uncovers both, and they are still adjacent to each other: the single
	// batched election decides the pair, and exactly one joins.
	if bs.Joins != 1 {
		t.Fatalf("joins = %d, want 1", bs.Joins)
	}
	if e.Stats().Elections != 1 {
		t.Fatalf("elections = %d, want 1", e.Stats().Elections)
	}
}

func TestRandomChurnBothRepairAlgos(t *testing.T) {
	for _, repair := range []RepairAlgo{RepairLuby, RepairGhaffari} {
		t.Run(repair.String(), func(t *testing.T) {
			g := graph.GNP(200, 10.0/200, 7)
			e := newEngine(t, g, Params{Seed: 11, Repair: repair, SelfCheck: true})
			r := rng.New(99)
			for step := 0; step < 300; step++ {
				u, v := r.Intn(e.N()), r.Intn(e.N())
				if u == v || !e.Alive(u) || !e.Alive(v) {
					continue
				}
				var err error
				if e.HasEdge(u, v) {
					_, err = e.RemoveEdge(u, v)
				} else {
					_, err = e.InsertEdge(u, v)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if e.Stats().Updates == 0 {
				t.Fatal("no updates ran")
			}
		})
	}
}

func TestMixedChurnWithNodeOps(t *testing.T) {
	g := graph.GNP(120, 8.0/120, 3)
	e := newEngine(t, g, Params{Seed: 4, SelfCheck: true})
	r := rng.New(17)
	aliveIDs := func() []int {
		var out []int
		for v := 0; v < e.N(); v++ {
			if e.Alive(v) {
				out = append(out, v)
			}
		}
		return out
	}
	for step := 0; step < 200; step++ {
		ids := aliveIDs()
		switch r.Intn(4) {
		case 0:
			u, v := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			if u != v && !e.HasEdge(u, v) {
				if _, err := e.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			u := ids[r.Intn(len(ids))]
			if nbs := e.Neighbors(u); len(nbs) > 0 {
				if _, err := e.RemoveEdge(u, int(nbs[r.Intn(len(nbs))])); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			k := r.Intn(4)
			nbs := make([]int, 0, k)
			for i := 0; i < k; i++ {
				nbs = append(nbs, ids[r.Intn(len(ids))])
			}
			if _, _, err := e.InsertNode(nbs...); err != nil {
				t.Fatal(err)
			}
		case 3:
			if len(ids) > 20 {
				if _, err := e.RemoveNode(ids[r.Intn(len(ids))]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]bool, Stats) {
		g := graph.GNP(150, 9.0/150, 21)
		e := newEngine(t, g, Params{Seed: 77})
		r := rng.New(5)
		for step := 0; step < 150; step++ {
			u, v := r.Intn(150), r.Intn(150)
			if u == v {
				continue
			}
			if e.HasEdge(u, v) {
				e.RemoveEdge(u, v)
			} else {
				e.InsertEdge(u, v)
			}
		}
		return e.InSet(), e.Stats()
	}
	set1, st1 := run()
	set2, st2 := run()
	if !reflect.DeepEqual(set1, set2) {
		t.Fatal("InSet differs across identical runs")
	}
	if st1 != st2 {
		t.Fatalf("stats differ: %v vs %v", st1, st2)
	}
}

func TestLocality(t *testing.T) {
	// On a long cycle, a single update must wake only a constant-size
	// neighborhood, never the whole ring.
	g := graph.Cycle(1000)
	e := newEngine(t, g, Params{Seed: 9, SelfCheck: true})
	bs, err := e.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Woken > 10 {
		t.Fatalf("single update woke %d nodes on a cycle", bs.Woken)
	}
	bs, err = e.InsertEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Woken > 10 {
		t.Fatalf("re-insert woke %d nodes", bs.Woken)
	}
}

func TestNoteBootstrapAndStats(t *testing.T) {
	g := graph.Path(5)
	e := newEngine(t, g, DefaultParams())
	e.NoteBootstrap(BootstrapCost{Rounds: 12, AwakePerNode: []int64{3, 3, 3, 3, 3}, Messages: 40})
	st := e.Stats()
	if st.BootstrapRounds != 12 || st.BootstrapAwake != 15 || st.BootstrapMessages != 40 {
		t.Fatalf("bootstrap stats wrong: %+v", st)
	}
	awake := e.AwakePerNode()
	if awake[0] != 3 {
		t.Fatalf("bootstrap awake not credited: %v", awake)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	e := newEngine(t, graph.Path(5), Params{Seed: 1, SelfCheck: true})
	if _, err := e.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	g, orig := e.Snapshot()
	if g.N() != 4 || len(orig) != 4 {
		t.Fatalf("snapshot n=%d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(g, e.SnapshotSet(orig)); err != nil {
		t.Fatal(err)
	}
}
