// Package dynamic maintains a maximal independent set under graph churn,
// extending the paper's sleeping model to a dynamic workload: when an edge
// or node is inserted or removed, only the nodes in the 1–2 hop
// neighborhood of the update wake up and repair the set, instead of the
// whole network re-running a static algorithm.
//
// Model. The static algorithms assume nodes wake only by their own timers.
// For dynamic updates we add the standard interrupt assumption of dynamic
// distributed models (e.g. Chatterjee–Gmyr–Pandurangan, PODC 2020): the
// adversary's topology change wakes the endpoints of the update, and a
// node that changes its MIS status wakes its neighbors with a notification.
// All other nodes keep sleeping. Energy is accounted exactly as in the
// static runs — awake rounds per node — plus CONGEST messages.
//
// Repair. A batch of updates is applied structurally first; then
//
//  1. conflicts (an inserted edge with both endpoints in the set) are
//     resolved by evicting the endpoint whose departure uncovers fewer
//     nodes (lower degree, ties toward the higher ID);
//  2. the uncovered region U — nodes left without a member neighbor,
//     all within two hops of some update — is collected by local probes;
//  3. a distributed re-election (Luby, or Ghaffari's desire-level dynamics
//     with a Luby finisher) runs on the induced subgraph G[U] through the
//     same sim engine as the static phases, so rounds, awake rounds and
//     messages are measured with identical semantics.
//
// Correctness: eviction restores independence (only inserted edges can
// violate it); U nodes have no member neighbors, so electing an MIS of
// G[U] and adding it keeps independence and restores maximality. Every
// woken node is within two hops of an update endpoint.
//
// Engine paths. The default repair path runs on the SoA batch runtime:
// the affected region is tracked in epoch-stamped bitvec.Stamped sets,
// and the uncovered region is split into connected components by a
// union-find partitioner (partition.go). Each component is an independent
// election: singletons join analytically without an engine run, and the
// rest are composed as internal/pipeline runs (batch luby / batch
// ghaffari with a Luby finisher). With Params.Workers > 1 the non-trivial
// components are elected concurrently on a per-worker sim.Mem pool; a
// deterministic region-ordered merge then folds the per-component
// counters and set joins, so every worker count produces byte-identical
// results. Params.Tracer receives a phase span per election stage
// (buffered per component, replayed in component order), a
// "repair/singleton" span for the analytic joins, and a synthetic
// one-round "repair/detect" span per batch. Params.Legacy selects the
// frozen per-node reference path (repair_legacy.go), which shares the
// partition, seed derivation, and merge — identical sets and identical
// deterministic counters, proven by differential tests.
//
// Batcher coalesces a window of updates into one Apply: overlapping
// repair regions merge and are re-elected once, which is what turns the
// unit of traffic from a run into an update.
package dynamic
