// Package dynamic maintains a maximal independent set under graph churn,
// extending the paper's sleeping model to a dynamic workload: when an edge
// or node is inserted or removed, only the nodes in the 1–2 hop
// neighborhood of the update wake up and repair the set, instead of the
// whole network re-running a static algorithm.
//
// Model. The static algorithms assume nodes wake only by their own timers.
// For dynamic updates we add the standard interrupt assumption of dynamic
// distributed models (e.g. Chatterjee–Gmyr–Pandurangan, PODC 2020): the
// adversary's topology change wakes the endpoints of the update, and a
// node that changes its MIS status wakes its neighbors with a notification.
// All other nodes keep sleeping. Energy is accounted exactly as in the
// static runs — awake rounds per node — plus CONGEST messages.
//
// Repair. A batch of updates is applied structurally first; then
//
//  1. conflicts (an inserted edge with both endpoints in the set) are
//     resolved by evicting the endpoint whose departure uncovers fewer
//     nodes (lower degree, ties toward the higher ID);
//  2. the uncovered region U — nodes left without a member neighbor,
//     all within two hops of some update — is collected by local probes;
//  3. a distributed re-election (Luby, or Ghaffari's desire-level dynamics
//     with a Luby finisher) runs on the induced subgraph G[U] through the
//     same sim engine as the static phases, so rounds, awake rounds and
//     messages are measured with identical semantics.
//
// Correctness: eviction restores independence (only inserted edges can
// violate it); U nodes have no member neighbors, so electing an MIS of
// G[U] and adding it keeps independence and restores maximality. Every
// woken node is within two hops of an update endpoint.
package dynamic
