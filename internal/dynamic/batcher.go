package dynamic

// Batcher coalesces a window of churn events and repairs them in one
// Engine.Apply call. Coalescing is where the batch path's throughput comes
// from: the union of the affected 1-hop neighborhoods is repaired once —
// overlapping regions merge, opposing updates cancel — instead of paying a
// detection round and an election per update.
type Batcher struct {
	e       *Engine
	window  int
	pending []Update
}

// NewBatcher wraps e with a coalescing window of the given size. A window
// below 1 is treated as 1 (every Add flushes immediately).
func NewBatcher(e *Engine, window int) *Batcher {
	if window < 1 {
		window = 1
	}
	return &Batcher{e: e, window: window, pending: make([]Update, 0, window)}
}

// Window returns the configured window size.
func (b *Batcher) Window() int { return b.window }

// Pending returns the number of buffered, not-yet-repaired updates.
func (b *Batcher) Pending() int { return len(b.pending) }

// Add buffers one update. When the buffer reaches the window size it is
// applied as one batch; flushed reports whether that fully succeeded, and
// bs is the repair cost of the flush (zero otherwise). On a flush error,
// flushed is false and the un-applied suffix stays buffered (see Flush).
// Between flushes the engine's set is stale with respect to the buffered
// updates — call Flush before reading the set.
func (b *Batcher) Add(u Update) (bs BatchStats, flushed bool, err error) {
	b.pending = append(b.pending, u)
	if len(b.pending) < b.window {
		return BatchStats{}, false, nil
	}
	bs, err = b.Flush()
	return bs, err == nil, err
}

// Flush applies the buffered updates as one batch. A no-op (zero
// BatchStats) when nothing is pending.
//
// On error the buffer is not silently dropped: Engine.Apply applies a
// valid prefix (bs.Updates updates, already repaired) and rejects one
// update, so Flush drops exactly that applied prefix plus the rejected
// update — which can never succeed, and the returned error reports it —
// and keeps the remaining suffix buffered for the next Flush. The
// engine's set is valid either way.
func (b *Batcher) Flush() (BatchStats, error) {
	if len(b.pending) == 0 {
		return BatchStats{}, nil
	}
	bs, err := b.e.Apply(b.pending)
	if err != nil {
		drop := bs.Updates + 1
		if drop > len(b.pending) {
			drop = len(b.pending)
		}
		b.pending = b.pending[:copy(b.pending, b.pending[drop:])]
		return bs, err
	}
	b.pending = b.pending[:0]
	return bs, nil
}

// Discard drops the buffered updates without applying them, returning how
// many were dropped.
func (b *Batcher) Discard() int {
	n := len(b.pending)
	b.pending = b.pending[:0]
	return n
}
