package dynamic

// Batcher coalesces a window of churn events and repairs them in one
// Engine.Apply call. Coalescing is where the batch path's throughput comes
// from: the union of the affected 1-hop neighborhoods is repaired once —
// overlapping regions merge, opposing updates cancel — instead of paying a
// detection round and an election per update.
type Batcher struct {
	e         *Engine
	window    int
	pending   []Update
	pipelined bool
}

// NewBatcher wraps e with a coalescing window of the given size. A window
// below 1 is treated as 1 (every Add flushes immediately).
func NewBatcher(e *Engine, window int) *Batcher {
	if window < 1 {
		window = 1
	}
	return &Batcher{e: e, window: window, pending: make([]Update, 0, window)}
}

// NewPipelinedBatcher is NewBatcher with window overlap: an Add-triggered
// flush applies the window's structural changes, seals a row-pack
// snapshot, and launches the repair on its own goroutine, so the next
// window's structural apply overlaps it (overlap.go). Sets, counters,
// and canonical traces are byte-identical to the serial batcher. Because
// one repair lags in flight, Add/Flush return the stats of the most
// recently *completed* window — aggregates over a full run match the
// serial batcher exactly, but a single Add's stats arrive one flush
// late. Legacy and SelfCheck engines can't overlap (the legacy path has
// no packed sweeps; SelfCheck reads the full graph between batches), so
// they degrade to the serial batcher.
func NewPipelinedBatcher(e *Engine, window int) *Batcher {
	b := NewBatcher(e, window)
	b.pipelined = !e.p.Legacy && !e.p.SelfCheck
	return b
}

// Window returns the configured window size.
func (b *Batcher) Window() int { return b.window }

// Pending returns the number of buffered, not-yet-repaired updates.
func (b *Batcher) Pending() int { return len(b.pending) }

// Add buffers one update. When the buffer reaches the window size it is
// applied as one batch; flushed reports whether that fully succeeded, and
// bs is the repair cost of the flush (zero otherwise). On a flush error,
// flushed is false and the un-applied suffix stays buffered (see Flush).
// Between flushes the engine's set is stale with respect to the buffered
// updates — call Flush before reading the set.
func (b *Batcher) Add(u Update) (bs BatchStats, flushed bool, err error) {
	b.pending = append(b.pending, u)
	if len(b.pending) < b.window {
		return BatchStats{}, false, nil
	}
	if b.pipelined {
		bs, err = b.flushPipelined(false)
		return bs, err == nil, err
	}
	bs, err = b.Flush()
	return bs, err == nil, err
}

// Flush applies the buffered updates as one batch. A no-op (zero
// BatchStats) when nothing is pending.
//
// On error the buffer is not silently dropped: Engine.Apply applies a
// valid prefix (bs.Updates updates, already repaired) and rejects one
// update, so Flush drops exactly that applied prefix plus the rejected
// update — which can never succeed, and the returned error reports it —
// and keeps the remaining suffix buffered for the next Flush. The
// engine's set is valid either way.
func (b *Batcher) Flush() (BatchStats, error) {
	if b.pipelined {
		return b.flushPipelined(true)
	}
	if len(b.pending) == 0 {
		return BatchStats{}, nil
	}
	bs, err := b.e.Apply(b.pending)
	if err != nil {
		drop := bs.Updates + 1
		if drop > len(b.pending) {
			drop = len(b.pending)
		}
		b.pending = b.pending[:copy(b.pending, b.pending[drop:])]
		return bs, err
	}
	b.pending = b.pending[:0]
	return bs, nil
}

// flushPipelined dispatches the pending window into the overlap pipeline.
// With final set (an explicit Flush), it also joins the launched repair,
// so the engine is fully repaired and up to date on return; otherwise the
// repair stays in flight and overlaps the caller's next window.
//
// Error contract, mirroring the serial Flush: a rejected update repairs
// the applied prefix synchronously, drops the prefix plus the rejected
// update, and keeps the suffix buffered; a failed repair (engine
// undefined) drops everything and surfaces the error.
func (b *Batcher) flushPipelined(final bool) (BatchStats, error) {
	e := b.e
	var agg BatchStats
	if len(b.pending) > 0 {
		w := e.newWindow()
		e.applyWindow(w, b.pending)
		prevBS, joined, prevErr := e.joinInflight()
		if joined {
			agg.Add(prevBS)
		}
		if prevErr != nil {
			// Keep the structure and membership consistent with each other
			// before surfacing the fatal repair error.
			e.replayJournal(w)
			b.pending = b.pending[:0]
			return agg, prevErr
		}
		e.replayJournal(w)
		e.seal(w)
		if w.applyErr != nil {
			e.runWindow(w)
			bs, _, err := e.joinInflight()
			agg.Add(bs)
			if err != nil {
				b.pending = b.pending[:0]
				return agg, err
			}
			drop := w.applied + 1
			if drop > len(b.pending) {
				drop = len(b.pending)
			}
			b.pending = b.pending[:copy(b.pending, b.pending[drop:])]
			return agg, w.applyErr
		}
		e.launchWindow(w)
		b.pending = b.pending[:0]
	}
	if final {
		bs, joined, err := e.joinInflight()
		if joined {
			agg.Add(bs)
		}
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// Discard drops the buffered updates without applying them, returning how
// many were dropped. An in-flight repair is joined first — its window was
// already applied and cannot be discarded.
func (b *Batcher) Discard() int {
	if b.pipelined {
		b.e.joinInflight()
	}
	n := len(b.pending)
	b.pending = b.pending[:0]
	return n
}
