package dynamic_test

// Differential coverage for the pipelined (double-buffered) batcher: the
// overlapped path must be byte-identical to the serial batcher — final
// set, awake ledger, lifetime Stats, aggregate BatchStats, and canonical
// traces — across the benchmark stream shapes and Workers ∈ {1, 2, 8},
// including under the race detector. Lives in the external test package
// because internal/stream imports internal/dynamic.

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/stream"
	"github.com/energymis/energymis/internal/verify"
)

// feed drives every update of trace through b and returns the aggregate
// of all flushed BatchStats plus a final Flush.
func feed(t *testing.T, b *dynamic.Batcher, trace [][]dynamic.Update) dynamic.BatchStats {
	t.Helper()
	var agg dynamic.BatchStats
	for _, batch := range trace {
		for _, u := range batch {
			bs, _, err := b.Add(u)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(bs)
		}
	}
	bs, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	agg.Add(bs)
	return agg
}

func TestPipelinedBatcherMatchesSerialAcrossStreams(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		trace [][]dynamic.Update
	}{
		{name: "churn", g: graph.RGG(400, 12, 7)},
		{name: "window", g: graph.GNP(300, 0, 7)},
		{name: "hub", g: graph.BarabasiAlbert(300, 4, 7)},
	}
	cases[0].trace = stream.UniformChurn(cases[0].g, 120, 16, 17)
	cases[1].trace = stream.SlidingWindow(300, 80, 120, 17)
	cases[2].trace = stream.HubAttack(cases[2].g, 40, 17)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type runOut struct {
				agg   dynamic.BatchStats
				inSet []bool
				awake []int64
				stats dynamic.Stats
			}
			run := func(workers int, pipelined bool) runOut {
				e, err := dynamic.New(tc.g, verify.GreedyMIS(tc.g),
					dynamic.Params{Seed: 23, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var b *dynamic.Batcher
				if pipelined {
					b = dynamic.NewPipelinedBatcher(e, 16)
				} else {
					b = dynamic.NewBatcher(e, 16)
				}
				out := runOut{agg: feed(t, b, tc.trace)}
				if pipelined && e.Perf().OverlapWindows == 0 {
					t.Fatal("pipelined run never overlapped a window")
				}
				if err := e.Check(); err != nil {
					t.Fatalf("workers=%d pipelined=%v: %v", workers, pipelined, err)
				}
				out.inSet = e.InSet()
				out.awake = e.AwakePerNode()
				out.stats = e.Stats()
				return out
			}
			base := run(1, false)
			for _, workers := range []int{1, 2, 8} {
				got := run(workers, true)
				if got.agg != base.agg {
					t.Errorf("workers=%d: aggregate stats diverge:\n serial:    %+v\n pipelined: %+v",
						workers, base.agg, got.agg)
				}
				if !reflect.DeepEqual(got.inSet, base.inSet) {
					t.Errorf("workers=%d: final set differs from serial batcher", workers)
				}
				if !reflect.DeepEqual(got.awake, base.awake) {
					t.Errorf("workers=%d: awake ledger differs from serial batcher", workers)
				}
				if got.stats != base.stats {
					t.Errorf("workers=%d: Stats differ:\n serial:    %+v\n pipelined: %+v",
						workers, base.stats, got.stats)
				}
			}
		})
	}
}

// TestPipelinedTraceByteIdentical holds the overlapped batcher's canonical
// trace (wall times stripped, header dropped) byte-equal to the serial
// batcher's: the repair of window k emits its spans before window k+1's
// repair launches, so overlap must not reorder or change a single event.
func TestPipelinedTraceByteIdentical(t *testing.T) {
	g := graph.RGG(400, 12, 7)
	trace := stream.UniformChurn(g, 120, 16, 17)
	run := func(pipelined bool) []byte {
		path := filepath.Join(t.TempDir(), "trace.jsonl")
		tw, err := obs.CreateTrace(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := dynamic.New(g, verify.GreedyMIS(g),
			dynamic.Params{Seed: 23, Workers: 2, Tracer: tw})
		if err != nil {
			t.Fatal(err)
		}
		var b *dynamic.Batcher
		if pipelined {
			b = dynamic.NewPipelinedBatcher(e, 16)
		} else {
			b = dynamic.NewBatcher(e, 16)
		}
		feed(t, b, trace)
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := obs.ReadTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs := obs.Canonical(tr)[:0:0]
		for _, r := range obs.Canonical(tr) {
			if r.Type != obs.RecHeader {
				recs = append(recs, r)
			}
		}
		bts, err := obs.CanonicalBytes(recs)
		if err != nil {
			t.Fatal(err)
		}
		return bts
	}
	serial := run(false)
	pipe := run(true)
	if string(serial) != string(pipe) {
		t.Error("canonical traces differ between serial and pipelined batchers")
	}
}

// TestPipelinedBatcherFlushError pins the overlapped error contract,
// mirroring the serial TestBatcherFlushError: a rejected update repairs
// and keeps the applied prefix, drops the prefix plus the rejected
// update, and leaves the suffix buffered for the next flush.
func TestPipelinedBatcherFlushError(t *testing.T) {
	g := graph.Path(6)
	e, err := dynamic.New(g, verify.GreedyMIS(g), dynamic.Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := dynamic.NewPipelinedBatcher(e, 4)
	// Same window as the serial TestBatcherFlushError: two valid updates,
	// one rejected (self-loop), one valid suffix.
	for _, u := range []dynamic.Update{
		dynamic.DelEdge(0, 1), dynamic.InsEdge(0, 2), dynamic.InsEdge(3, 3),
	} {
		if _, flushed, err := b.Add(u); err != nil || flushed {
			t.Fatalf("buffered Add: flushed=%v err=%v", flushed, err)
		}
	}
	bs, flushed, err := b.Add(dynamic.DelEdge(4, 5))
	if err == nil {
		t.Fatal("flush with a rejected update reported success")
	}
	if flushed {
		t.Fatal("flushed=true on a failed flush")
	}
	if bs.Updates != 2 {
		t.Fatalf("failed flush repaired %d updates, want 2 (the valid prefix)", bs.Updates)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending after failed flush = %d, want 1 (suffix)", b.Pending())
	}
	if e.HasEdge(0, 1) || !e.HasEdge(0, 2) {
		t.Fatal("valid prefix not applied")
	}
	if !e.HasEdge(4, 5) {
		t.Fatal("suffix update leaked into the engine")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("engine invalid after failed flush: %v", err)
	}
	// The suffix must apply cleanly on the next flush.
	bs, err = b.Flush()
	if err != nil || bs.Updates != 1 {
		t.Fatalf("follow-up flush: bs=%+v err=%v", bs, err)
	}
	if e.HasEdge(4, 5) {
		t.Fatal("suffix update not applied by follow-up flush")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedNodeChurn exercises the journal paths — node inserts and
// removals deferred across the overlap boundary, including insert+remove
// of the same node within one window — against the serial batcher.
func TestPipelinedNodeChurn(t *testing.T) {
	g := graph.GNP(120, 0.05, 5)
	mkTrace := func() [][]dynamic.Update {
		var tr [][]dynamic.Update
		// Window-sized batches mixing node ops so journaled entries chain:
		// insert a node, remove it in the same window (its slot id is the
		// current slot count at application time), attach an edge to the
		// second fresh node, and remove long-lived nodes from disjoint
		// ranges (60.. and 80..) so no update is ever rejected.
		for i := 0; i < 12; i++ {
			base := 120 + 2*i
			tr = append(tr, []dynamic.Update{
				dynamic.InsNode(i, i+1, i+2), // slot id = base
				dynamic.DelNode(base),
				dynamic.InsNode(i + 3), // slot id = base+1
				dynamic.InsEdge(base+1, 30+i),
				dynamic.DelNode(60 + i),
				dynamic.DelNode(80 + i),
			})
		}
		return tr
	}
	type runOut struct {
		inSet []bool
		awake []int64
		stats dynamic.Stats
	}
	run := func(pipelined bool) runOut {
		e, err := dynamic.New(g, verify.GreedyMIS(g), dynamic.Params{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var b *dynamic.Batcher
		if pipelined {
			b = dynamic.NewPipelinedBatcher(e, 6)
		} else {
			b = dynamic.NewBatcher(e, 6)
		}
		feed(t, b, mkTrace())
		if err := e.Check(); err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		return runOut{inSet: e.InSet(), awake: e.AwakePerNode(), stats: e.Stats()}
	}
	base := run(false)
	got := run(true)
	if !reflect.DeepEqual(got, base) {
		t.Errorf("node-churn state diverges:\n serial:    %+v\n pipelined: %+v", base.stats, got.stats)
	}
}
