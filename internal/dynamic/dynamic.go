package dynamic

import (
	"fmt"
	"slices"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// Op identifies the kind of a topology update.
type Op uint8

// Update operations.
const (
	// OpInsertEdge inserts the undirected edge {U, V}. Inserting an
	// existing edge is a no-op.
	OpInsertEdge Op = iota + 1
	// OpRemoveEdge removes the edge {U, V}. Removing a missing edge is a
	// no-op.
	OpRemoveEdge
	// OpInsertNode creates a new node adjacent to Neighbors. The new node
	// is assigned the next free slot index (Engine.N() at application
	// time); U and V are ignored.
	OpInsertNode
	// OpRemoveNode deletes node U and all its incident edges.
	OpRemoveNode
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInsertEdge:
		return "+edge"
	case OpRemoveEdge:
		return "-edge"
	case OpInsertNode:
		return "+node"
	case OpRemoveNode:
		return "-node"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Update is one topology change.
type Update struct {
	Op   Op
	U, V int
	// Neighbors lists the initial edges of an OpInsertNode update.
	Neighbors []int
}

// InsEdge returns an edge-insertion update.
func InsEdge(u, v int) Update { return Update{Op: OpInsertEdge, U: u, V: v} }

// DelEdge returns an edge-removal update.
func DelEdge(u, v int) Update { return Update{Op: OpRemoveEdge, U: u, V: v} }

// InsNode returns a node-insertion update.
func InsNode(neighbors ...int) Update { return Update{Op: OpInsertNode, Neighbors: neighbors} }

// DelNode returns a node-removal update.
func DelNode(v int) Update { return Update{Op: OpRemoveNode, U: v} }

// RepairAlgo selects the localized re-election protocol.
type RepairAlgo int

// Repair protocols.
const (
	// RepairLuby re-elects with Luby's algorithm on the affected induced
	// subgraph (the default: simple, always terminates).
	RepairLuby RepairAlgo = iota + 1
	// RepairGhaffari runs Ghaffari's desire-level dynamics for O(log |U|)
	// rounds and finishes any stragglers with Luby — cheaper on large
	// regions, matching the paper's shattering machinery.
	RepairGhaffari
)

// String implements fmt.Stringer.
func (a RepairAlgo) String() string {
	switch a {
	case RepairLuby:
		return "luby"
	case RepairGhaffari:
		return "ghaffari"
	default:
		return fmt.Sprintf("RepairAlgo(%d)", int(a))
	}
}

// Params configures the engine. The zero value is not valid; use
// DefaultParams.
type Params struct {
	// Seed drives all repair randomness. Runs are deterministic in
	// (initial graph, initial set, update sequence, Seed).
	Seed uint64
	// Repair selects the re-election protocol.
	Repair RepairAlgo
	// B overrides the CONGEST budget in bits (0 = 4·ceil(log2 n)).
	B int
	// Workers > 1 parallelizes repair across the independent components
	// of the affected region: each connected component of the uncovered
	// region's induced subgraph elects on its own worker with its own
	// sim.Mem, and a deterministic region-ordered merge folds the results
	// (partition.go). When a batch yields fewer components than workers,
	// the spare budget goes to the election engine's parallel executor
	// instead. Counters and sets are byte-identical for every worker
	// count.
	Workers int
	// MaxRetry bounds the Ghaffari retry loop before the Luby finisher
	// takes over.
	MaxRetry int
	// SelfCheck validates the full MIS invariant after every batch
	// (O(n+m); for tests).
	SelfCheck bool
	// Legacy selects the per-node reference repair path (RepairLegacy):
	// map-based region tracking and the per-node sim engines. The default
	// batch path — epoch-stamped region scratch, pipeline-composed
	// elections on the SoA batch runtime, one pooled sim.Mem — produces
	// identical sets and identical deterministic counters (see the
	// differential tests); Legacy exists as the reference and for
	// head-to-head benchmarks.
	Legacy bool
	// Tracer, when non-nil, receives phase spans for every repair
	// (election spans from the pipeline, a synthetic "repair/singleton"
	// span aggregating the analytic singleton-component decisions, plus
	// one synthetic one-round "repair/detect" span per batch) and
	// per-round events from the election engines. Parallel component
	// elections buffer their events per component and replay them in
	// component order, so the trace is deterministic up to wall times.
	// Only the batch path is traced; Legacy ignores it.
	Tracer obs.Tracer
}

// DefaultParams returns the default engine configuration.
func DefaultParams() Params {
	return Params{Repair: RepairLuby, MaxRetry: 2}
}

// Engine maintains a maximal independent set of a mutable graph. Node
// slots are dense integers; removed slots stay dead and are never reused,
// and inserted nodes take the next slot index.
type Engine struct {
	p Params

	adj        [][]int32 // sorted adjacency per slot; nil for dead slots
	alive      []bool
	aliveCount int
	edges      int

	inSet  []bool
	inSetW []uint64 // word-packed mirror of inSet (bit v of word v>>6)
	awake  []int64  // cumulative awake rounds per slot (repair + bootstrap)

	stats   Stats
	batchNo uint64

	// Batch-path resources: per-worker pooled engine buffers (slot 0
	// doubles as the sequential path's pool), the epoch-stamped region
	// scratch, and the tracer. simMsgs counts the engine messages of the
	// current batch's elections, so the analytic detection-round messages
	// can be split out for the trace.
	memPool sim.MemPool
	scr     scratch
	tracer  obs.Tracer
	simMsgs int64

	// Component machinery shared by both repair paths: the union-find
	// region partitioner, per-component election state, and the reusable
	// work list of non-singleton component ordinals (partition.go).
	part  partitioner
	comps []compRun
	work  []int32

	// Window-pipelining state (overlap.go): amortized row-pack snapshots
	// with per-row version stamps (nil until a pipelined batcher enables
	// them — the serial path pays zero bookkeeping), the double-buffered
	// windows, and internal performance counters.
	packs    []rowPack
	rowVer   []uint32
	wins     [2]window
	flip     int
	inflight *window // window whose repair is running; nil when quiescent
	perf     Perf
}

// Perf reports engine-internal performance counters: word-sweep and
// snapshot-cache effectiveness plus how many windows ran overlapped.
// Unlike Stats these are not part of the batch-vs-legacy differential
// contract — the two paths legitimately differ here.
type Perf struct {
	// SweepWords counts dirty/woken touched words walked by repair sweeps.
	SweepWords int64
	// PackBuilds counts row-pack snapshots (re)built at window seal;
	// PackHits counts rows whose cached pack was still current.
	PackBuilds int64
	PackHits   int64
	// OverlapWindows counts windows whose repair overlapped the next
	// window's structural apply.
	OverlapWindows int64
}

// Perf returns the engine-internal performance counters.
func (e *Engine) Perf() Perf { return e.perf }

// New wraps an existing valid MIS of g in a dynamic engine. The inSet
// slice is copied. Use NoteBootstrap to credit the cost of computing the
// initial set.
func New(g *graph.Graph, inSet []bool, p Params) (*Engine, error) {
	if err := verify.Check(g, inSet); err != nil {
		return nil, fmt.Errorf("dynamic: initial set invalid: %w", err)
	}
	if p.Repair == 0 {
		p.Repair = RepairLuby
	}
	if p.MaxRetry <= 0 {
		p.MaxRetry = 2
	}
	n := g.N()
	e := &Engine{
		p:          p,
		adj:        make([][]int32, n),
		alive:      make([]bool, n),
		aliveCount: n,
		edges:      g.M(),
		inSet:      make([]bool, n),
		inSetW:     make([]uint64, (n+63)>>6),
		awake:      make([]int64, n),
	}
	if !p.Legacy {
		// Only the batch path is traced (see Params.Tracer); clearing the
		// field here lets the shared merge treat "tracer set" as "emit".
		e.tracer = p.Tracer
	}
	copy(e.inSet, inSet)
	for v, in := range e.inSet {
		if in {
			e.inSetW[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	// One arena allocation backs every initial adjacency row. Rows are
	// capped at their initial length, so an insert that outgrows a row
	// reallocates just that row and leaves its arena neighbors intact.
	arena := make([]int32, 2*g.M())
	off := 0
	for v := 0; v < n; v++ {
		e.alive[v] = true
		nb := g.Neighbors(v)
		row := arena[off : off+len(nb) : off+len(nb)]
		copy(row, nb)
		e.adj[v] = row
		off += len(nb)
	}
	return e, nil
}

// setMember and clearMember are the only writers of set membership: they
// keep the bool vector and its word-packed mirror in lockstep, so the
// repair sweeps can AND whole adjacency words against inSetW.
func (e *Engine) setMember(v int32) {
	e.inSet[v] = true
	e.inSetW[v>>6] |= 1 << (uint32(v) & 63)
}

func (e *Engine) clearMember(v int32) {
	e.inSet[v] = false
	e.inSetW[v>>6] &^= 1 << (uint32(v) & 63)
}

// growMembership extends inSet/inSetW/awake for one appended node slot.
func (e *Engine) growMembership() {
	e.inSet = append(e.inSet, false)
	e.awake = append(e.awake, 0)
	if len(e.inSet) > len(e.inSetW)<<6 {
		e.inSetW = append(e.inSetW, 0)
	}
}

// NoteBootstrap credits the cost of the static run that produced the
// initial set, so cumulative statistics cover the whole lifetime.
func (e *Engine) NoteBootstrap(c BootstrapCost) {
	e.stats.BootstrapRounds = c.Rounds
	e.stats.BootstrapMessages = c.Messages
	e.stats.BootstrapMsgsDropped = c.MsgsDropped
	e.stats.BootstrapBits = c.Bits
	e.stats.BootstrapBitsMax = c.BitsMax
	e.stats.BootstrapViolations = c.Violations
	for v, a := range c.AwakePerNode {
		if v < len(e.awake) {
			e.awake[v] += a
			e.stats.BootstrapAwake += a
		}
	}
}

// N returns the number of node slots (alive + dead).
func (e *Engine) N() int { return len(e.adj) }

// AliveCount returns the number of alive nodes.
func (e *Engine) AliveCount() int { return e.aliveCount }

// M returns the number of edges.
func (e *Engine) M() int { return e.edges }

// Alive reports whether slot v holds a live node.
func (e *Engine) Alive(v int) bool { return v >= 0 && v < len(e.alive) && e.alive[v] }

// InMIS reports whether node v is currently in the maintained set.
func (e *Engine) InMIS(v int) bool { return v >= 0 && v < len(e.inSet) && e.inSet[v] }

// InSet returns a copy of the membership vector, indexed by slot. Dead
// slots are false.
func (e *Engine) InSet() []bool {
	out := make([]bool, len(e.inSet))
	copy(out, e.inSet)
	return out
}

// Degree returns the current degree of node v (0 for dead slots).
func (e *Engine) Degree(v int) int { return len(e.adj[v]) }

// Neighbors returns a copy of v's sorted adjacency list.
func (e *Engine) Neighbors(v int) []int32 {
	return append([]int32(nil), e.adj[v]...)
}

// HasEdge reports whether {u, v} is currently an edge.
func (e *Engine) HasEdge(u, v int) bool {
	if !e.Alive(u) || !e.Alive(v) {
		return false
	}
	return containsSorted(e.adj[u], int32(v))
}

// AwakePerNode returns a copy of the cumulative per-slot awake rounds
// (bootstrap plus all repairs).
func (e *Engine) AwakePerNode() []int64 {
	out := make([]int64, len(e.awake))
	copy(out, e.awake)
	return out
}

// Stats returns the cumulative statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Snapshot builds an immutable compacted graph of the alive nodes. The
// second return maps snapshot index i to the engine slot orig[i].
func (e *Engine) Snapshot() (*graph.Graph, []int32) {
	orig := make([]int32, 0, e.aliveCount)
	local := make([]int32, len(e.adj))
	for v := range e.adj {
		if e.alive[v] {
			local[v] = int32(len(orig))
			orig = append(orig, int32(v))
		}
	}
	b := graph.NewBuilder(len(orig))
	for i, v := range orig {
		for _, u := range e.adj[v] {
			if u > v {
				b.AddEdge(i, int(local[u]))
			}
		}
	}
	return b.Build(), orig
}

// SnapshotSet returns the membership vector aligned with Snapshot's
// compacted node indexing.
func (e *Engine) SnapshotSet(orig []int32) []bool {
	out := make([]bool, len(orig))
	for i, v := range orig {
		out[i] = e.inSet[v]
	}
	return out
}

// Check validates the full maintained invariant: the current set is a
// maximal independent set of the current graph and no dead slot is a
// member. It scans the live adjacency directly — O(n+m), no allocation —
// so it is cheap enough to run after every update in tests.
func (e *Engine) Check() error {
	for v := range e.adj {
		if !e.alive[v] {
			if e.inSet[v] {
				return fmt.Errorf("dynamic: dead slot %d in set", v)
			}
			continue
		}
		if e.inSet[v] {
			for _, u := range e.adj[v] {
				if e.inSet[u] {
					return fmt.Errorf("dynamic: not independent: edge (%d,%d) inside set", v, u)
				}
			}
			continue
		}
		covered := false
		for _, u := range e.adj[v] {
			if e.inSet[u] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("dynamic: not maximal: node %d uncovered", v)
		}
	}
	return nil
}

// InsertEdge applies a single edge insertion and repairs the set.
func (e *Engine) InsertEdge(u, v int) (BatchStats, error) {
	return e.Apply([]Update{InsEdge(u, v)})
}

// RemoveEdge applies a single edge removal and repairs the set.
func (e *Engine) RemoveEdge(u, v int) (BatchStats, error) {
	return e.Apply([]Update{DelEdge(u, v)})
}

// InsertNode adds a node adjacent to neighbors, repairs the set, and
// returns the new node's slot index.
func (e *Engine) InsertNode(neighbors ...int) (int, BatchStats, error) {
	id := len(e.adj)
	bs, err := e.Apply([]Update{InsNode(neighbors...)})
	return id, bs, err
}

// RemoveNode deletes node v and repairs the set.
func (e *Engine) RemoveNode(v int) (BatchStats, error) {
	return e.Apply([]Update{DelNode(v)})
}

// regionTracker accumulates the affected region while a batch's structural
// changes are applied: the map-based legacy repairState, or the batch
// path's epoch-stamped scratch. unmark removes a node from both sets when
// its slot dies mid-batch.
type regionTracker interface {
	markDirty(v int32)
	wake(v int32)
	unmark(v int32)
}

// Apply applies a batch of updates atomically: all structural changes
// first, then a single localized repair covering every affected region.
// Batching amortizes the repair — overlapping regions are re-elected once.
func (e *Engine) Apply(batch []Update) (BatchStats, error) {
	var rt regionTracker
	if e.p.Legacy {
		rt = newRepairState()
	} else {
		rt = e.scr.begin(len(e.adj))
	}
	var bs BatchStats
	applied := 0
	var applyErr error
	for i := range batch {
		if err := e.applyStructural(&batch[i], rt, nil); err != nil {
			// Repair the applied prefix below so the invariant holds even
			// when the caller passed an invalid update.
			applyErr = applyError(i, &batch[i], err)
			break
		}
		applied++
	}
	bs.Updates = applied
	e.simMsgs = 0
	var repairErr error
	switch st := rt.(type) {
	case *repairState:
		repairErr = e.repairLegacy(st, &bs)
	case *scratch:
		repairErr = e.repairBatch(st, &bs)
	}
	if repairErr != nil {
		return bs, repairErr
	}

	e.accumulate(&bs, applied)

	if applyErr != nil {
		return bs, applyErr
	}
	if e.p.SelfCheck {
		if err := e.Check(); err != nil {
			return bs, err
		}
	}
	return bs, nil
}

func applyError(i int, up *Update, err error) error {
	return fmt.Errorf("dynamic: update %d (%s): %w", i, up.Op, err)
}

// accumulate folds one repaired batch into the lifetime stats. Runs even
// for a failed batch: the prefix's repair did run, and cumulative stats
// must stay consistent with AwakePerNode.
func (e *Engine) accumulate(bs *BatchStats, applied int) {
	e.stats.Batches++
	e.stats.Updates += int64(applied)
	e.stats.Rounds += int64(bs.Rounds)
	e.stats.AwakeTotal += bs.AwakeRounds
	e.stats.Messages += bs.Messages
	e.stats.MsgsDropped += bs.MsgsDropped
	e.stats.Bits += bs.Bits
	e.stats.Violations += bs.Violations
	e.stats.WokenTotal += int64(bs.Woken)
	e.stats.Evictions += int64(bs.Evictions)
	e.stats.Joins += int64(bs.Joins)
	if bs.BitsMax > e.stats.BitsMax {
		e.stats.BitsMax = bs.BitsMax
	}
	if bs.Region > 0 {
		e.stats.Elections++
	}
	if bs.Region > e.stats.MaxRegion {
		e.stats.MaxRegion = bs.Region
	}
	e.stats.Components += int64(bs.Components)
	if bs.Components > e.stats.MaxComponents {
		e.stats.MaxComponents = bs.Components
	}
	e.batchNo++
}

// applyStructural applies one update's structural changes, marking the
// affected region in st. With a non-nil window w (the pipelined batcher),
// every membership read/write — and the region bookkeeping that depends
// on one — is deferred to w's journal instead, because the previous
// window's repair still owns the membership arrays (see overlap.go);
// adjacency mutations additionally bump the row-pack versions.
func (e *Engine) applyStructural(up *Update, st regionTracker, w *window) error {
	switch up.Op {
	case OpInsertEdge, OpRemoveEdge:
		u, v := up.U, up.V
		if u == v {
			return fmt.Errorf("self-loop at %d", u)
		}
		if !e.Alive(u) || !e.Alive(v) {
			return fmt.Errorf("endpoint of (%d,%d) dead or out of range", u, v)
		}
		if up.Op == OpInsertEdge {
			var added bool
			e.adj[u], added = insertSorted(e.adj[u], int32(v))
			if !added {
				return nil // edge already present: nothing happened
			}
			e.adj[v], _ = insertSorted(e.adj[v], int32(u))
			e.edges++
		} else {
			var removed bool
			e.adj[u], removed = removeSorted(e.adj[u], int32(v))
			if !removed {
				return nil
			}
			e.adj[v], _ = removeSorted(e.adj[v], int32(u))
			e.edges--
		}
		e.bumpRow(int32(u))
		e.bumpRow(int32(v))
		st.wake(int32(u))
		st.wake(int32(v))
		st.markDirty(int32(u))
		st.markDirty(int32(v))
	case OpInsertNode:
		id := int32(len(e.adj))
		// Validate the whole neighbor list before mutating anything, so a
		// rejected insert leaves no partially-wired (and undirtied) node.
		for _, nb := range up.Neighbors {
			if int32(nb) == id {
				return fmt.Errorf("self-loop at new node %d", id)
			}
			if !e.Alive(nb) {
				return fmt.Errorf("neighbor %d of new node dead or out of range", nb)
			}
		}
		e.adj = append(e.adj, nil)
		e.alive = append(e.alive, true)
		if w == nil {
			e.growMembership()
		} else {
			w.journal = append(w.journal, jentry{op: OpInsertNode, v: id})
		}
		e.aliveCount++
		for _, nb := range up.Neighbors {
			var added bool
			e.adj[id], added = insertSorted(e.adj[id], int32(nb))
			if !added {
				continue // duplicate in the neighbor list
			}
			e.adj[nb], _ = insertSorted(e.adj[nb], id)
			e.edges++
			e.bumpRow(int32(nb))
			st.wake(int32(nb))
		}
		e.bumpRow(id)
		st.wake(id)
		st.markDirty(id)
	case OpRemoveNode:
		v := up.U
		if !e.Alive(v) {
			return fmt.Errorf("node %d dead or out of range", v)
		}
		row := e.adj[v]
		wasMember := w == nil && e.inSet[v]
		for _, u := range row {
			e.adj[u], _ = removeSorted(e.adj[u], int32(v))
			e.bumpRow(u)
			st.wake(u)
			if wasMember {
				// u may have lost its only member neighbor.
				st.markDirty(u)
			}
		}
		e.edges -= len(row)
		e.adj[v] = nil
		e.bumpRow(int32(v))
		e.alive[v] = false
		e.aliveCount--
		if w == nil {
			e.clearMember(int32(v))
			// The dead slot must not join the repair region even if an
			// earlier update in the batch marked it.
			st.unmark(int32(v))
		} else {
			// The saved row is stable: nothing inserts into a dead node's
			// row, and other removals edit their neighbors' rows, not this
			// detached one.
			w.journal = append(w.journal, jentry{op: OpRemoveNode, v: int32(v), nbrs: row})
		}
	default:
		return fmt.Errorf("unknown op %d", up.Op)
	}
	return nil
}

func sortedKeys(set map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// searchInt32 returns the insertion point of x in sorted s: the smallest
// index i with s[i] >= x. These lookups are the structural-apply hot path
// (one per edge endpoint per update); rows are short on the sparse churn
// workloads — average degree single digits — where a branch-predictable
// linear scan beats binary search, so only long rows binary-search.
func searchInt32(s []int32, x int32) int {
	if len(s) <= 32 {
		for i, v := range s {
			if v >= x {
				return i
			}
		}
		return len(s)
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertSorted inserts x into sorted slice s, reporting whether it was
// absent.
func insertSorted(s []int32, x int32) ([]int32, bool) {
	i := searchInt32(s, x)
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

// removeSorted removes x from sorted slice s, reporting whether it was
// present.
func removeSorted(s []int32, x int32) ([]int32, bool) {
	i := searchInt32(s, x)
	if i >= len(s) || s[i] != x {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

func containsSorted(s []int32, x int32) bool {
	i := searchInt32(s, x)
	return i < len(s) && s[i] == x
}
