package dynamic

// Window pipelining: the pipelined Batcher (NewPipelinedBatcher) overlaps
// the structural application of window k+1 with the repair of window k.
// One repair is in flight at a time, on its own goroutine, and windows
// join in order, so repairs never overlap each other and every
// deterministic quantity — sets, counters, canonical traces — is
// byte-identical to the serial batcher for any worker count.
//
// The ownership split while a repair is in flight:
//
//	repair k owns   inSet/inSetW, awake, its window's scratch, the
//	                partitioner/compRuns/memPool, simMsgs, the tracer
//	apply k+1 owns  adj, alive, aliveCount, edges, rowVer, its own
//	                window's scratch, and the journal
//
// Two mechanisms keep the sides apart. First, repair reads adjacency
// only through row packs — row snapshots sealed on the main goroutine
// after the window's structural changes and before launch. A pack is a
// plain copy of the row (the sweep kernels word-group rows on the fly,
// so a copy is as sweepable as the original and far cheaper to refresh
// than a pre-grouped encoding). Packs carry across windows with per-row
// version stamps (rowVer), so steady-state churn re-snapshots only the
// rows the window actually mutated. Repair reads rows only of dirty nodes and of dirty members'
// neighbors (the eviction fan-out; a conflict edge's endpoints are both
// dirty by the batch-insert argument in repair_legacy.go), so seal
// captures exactly that closure. Second, the structural side defers
// every membership read/write — node-removal membership clears and the
// dirty marks that depend on them, node-insert membership growth — into
// a journal replayed in update order after the previous repair joins,
// which is exactly where the serial path would have been when it applied
// those updates.

// rowPack is a snapshot copy of one adjacency row, valid while ver
// matches the engine's rowVer entry. The zero value is invalid against
// any live row (rowVer starts at 1).
type rowPack struct {
	row []int32
	ver uint32
}

// jentry is one deferred membership operation of a window's journal.
type jentry struct {
	op   Op
	v    int32
	nbrs []int32 // OpRemoveNode: the removed node's final row (aliased)
}

// window is one double-buffered pipeline slot: the region scratch its
// structural apply fills and its repair consumes, the deferred-membership
// journal, and the repair's result.
type window struct {
	scr       scratch
	journal   []jentry
	applied   int
	applyErr  error
	bs        BatchStats
	repairErr error
	done      chan struct{} // closed when an async repair finishes; nil if sync
}

// bumpRow invalidates v's row pack after an adjacency mutation. A no-op
// until a pipelined batcher has enabled the pack cache.
func (e *Engine) bumpRow(v int32) {
	if e.rowVer == nil {
		return
	}
	for int(v) >= len(e.rowVer) {
		e.rowVer = append(e.rowVer, 1)
	}
	e.rowVer[v]++
}

// ensurePipeline sizes the pack cache to the current slot count,
// allocating it on first use so serial engines never pay for it.
func (e *Engine) ensurePipeline() {
	n := len(e.adj)
	if e.rowVer == nil {
		e.rowVer = make([]uint32, n)
		for i := range e.rowVer {
			e.rowVer[i] = 1
		}
		e.packs = make([]rowPack, n)
		return
	}
	for len(e.rowVer) < n {
		e.rowVer = append(e.rowVer, 1)
	}
	if len(e.packs) < n {
		e.packs = append(e.packs, make([]rowPack, n-len(e.packs))...)
	}
}

// newWindow returns the idle pipeline slot, reset for a new batch. The
// other slot may still be repairing; the two alternate, and a slot is
// always joined before its next reuse.
func (e *Engine) newWindow() *window {
	e.ensurePipeline()
	w := &e.wins[e.flip]
	e.flip ^= 1
	w.scr.begin(len(e.adj))
	w.journal = w.journal[:0]
	w.applied = 0
	w.applyErr = nil
	w.bs = BatchStats{}
	w.repairErr = nil
	w.done = nil
	return w
}

// applyWindow applies the batch's structural changes into w, journaling
// the membership-dependent parts. Safe to run while the previous
// window's repair is in flight. On a rejected update w.applyErr is set
// and w.applied holds the valid prefix length.
func (e *Engine) applyWindow(w *window, batch []Update) {
	for i := range batch {
		if err := e.applyStructural(&batch[i], &w.scr, w); err != nil {
			w.applyErr = applyError(i, &batch[i], err)
			return
		}
		w.applied++
	}
}

// replayJournal applies w's deferred membership operations in update
// order. Must run after the previous window's repair has joined (the
// membership arrays are quiescent) and before w's own repair seals.
func (e *Engine) replayJournal(w *window) {
	st := &w.scr
	for i := range w.journal {
		j := &w.journal[i]
		switch j.op {
		case OpInsertNode:
			e.growMembership()
		case OpRemoveNode:
			if e.inSet[j.v] {
				e.clearMember(j.v)
				for _, u := range j.nbrs {
					// u may have died later in the window; its own entry
					// unmarks it again, in order, exactly like the serial
					// path.
					st.markDirty(u)
				}
			}
			st.unmark(j.v)
		}
		j.nbrs = nil // release the aliased row
	}
	w.journal = w.journal[:0]
}

// seal captures everything w's repair needs from apply-owned state: the
// slot count, the election base config (simCfg reads batchNo and the
// slot count), and the row packs of every row the repair can read. After
// seal the repair runs entirely against the scratch and the packs.
func (e *Engine) seal(w *window) {
	st := &w.scr
	st.n = len(e.adj)
	st.grow(st.n)
	st.cfg = e.simCfg()
	st.cfgSet = true
	e.capturePacks(st)
	st.packed = true
}

// capturePacks refreshes the row packs of the repair's read closure:
// every dirty node, plus the neighbors of dirty members (eviction
// fan-out rows; the probe then reads those neighbors' own rows, and they
// are dirty by then — but their packs must exist up front, so the
// closure is taken here over the sealed membership).
func (e *Engine) capturePacks(st *scratch) {
	e.ensurePipeline()
	st.dirtySnap = st.dirty.AppendAscending(st.dirtySnap[:0])
	for _, v := range st.dirtySnap {
		e.ensurePack(v)
	}
	st.dirtySnap = st.dirty.AndInto(e.inSetW, st.dirtySnap[:0])
	for _, v := range st.dirtySnap {
		for _, u := range e.adj[v] {
			e.ensurePack(u)
		}
	}
}

// ensurePack rebuilds v's row pack unless the cached one is current.
func (e *Engine) ensurePack(v int32) {
	p := &e.packs[v]
	if p.ver == e.rowVer[v] {
		e.perf.PackHits++
		return
	}
	p.row = append(p.row[:0], e.adj[v]...)
	p.ver = e.rowVer[v]
	e.perf.PackBuilds++
}

// launchWindow starts w's sealed repair on its own goroutine.
func (e *Engine) launchWindow(w *window) {
	w.done = make(chan struct{})
	e.inflight = w
	e.perf.OverlapWindows++
	go func() {
		w.repairErr = e.repairWindow(w)
		close(w.done)
	}()
}

// runWindow repairs w synchronously (the rejected-update edge path,
// where the caller needs the result before deciding what to drop).
func (e *Engine) runWindow(w *window) {
	w.done = nil
	e.inflight = w
	w.repairErr = e.repairWindow(w)
}

func (e *Engine) repairWindow(w *window) error {
	w.bs = BatchStats{Updates: w.applied}
	e.simMsgs = 0
	return e.repairBatch(&w.scr, &w.bs)
}

// joinInflight waits for the in-flight repair (if any), folds its stats
// into the engine totals, and returns them. A failed repair leaves the
// engine undefined — the same contract as Engine.Apply returning a
// repair error — and its stats unaccumulated, mirroring the serial path.
func (e *Engine) joinInflight() (BatchStats, bool, error) {
	w := e.inflight
	if w == nil {
		return BatchStats{}, false, nil
	}
	if w.done != nil {
		<-w.done
	}
	e.inflight = nil
	if w.repairErr != nil {
		return w.bs, true, w.repairErr
	}
	e.accumulate(&w.bs, w.applied)
	return w.bs, true, nil
}
