package dynamic

import (
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/verify"
)

// mixedBatch derives a deterministic update batch from the current state
// of e (both engines under test evolve identically, so querying either
// gives the same batch).
func mixedBatch(e *Engine, r *rng.Stream, size int) []Update {
	var ids []int
	for v := 0; v < e.N(); v++ {
		if e.Alive(v) {
			ids = append(ids, v)
		}
	}
	batch := make([]Update, 0, size)
	inserted := 0
	for len(batch) < size {
		switch r.Intn(6) {
		case 0, 1, 2: // edge toggle
			u, v := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			if u == v {
				continue
			}
			if e.HasEdge(u, v) {
				batch = append(batch, DelEdge(u, v))
			} else {
				batch = append(batch, InsEdge(u, v))
			}
		case 3: // node insert (neighbors among current ids)
			k := r.Intn(4)
			nbs := make([]int, 0, k)
			for i := 0; i < k; i++ {
				nbs = append(nbs, ids[r.Intn(len(ids))])
			}
			batch = append(batch, InsNode(nbs...))
			inserted++
		case 4: // node removal (keep the graph from draining)
			if len(ids) > 40 {
				v := ids[r.Intn(len(ids))]
				batch = append(batch, DelNode(v))
				// Drop v so a later update in this batch cannot target it.
				for i, id := range ids {
					if id == v {
						ids = append(ids[:i], ids[i+1:]...)
						break
					}
				}
			}
		case 5: // duplicate/no-op pressure
			u, v := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			if u != v && !e.HasEdge(u, v) {
				batch = append(batch, InsEdge(u, v), DelEdge(u, v))
			}
		}
	}
	return batch
}

// TestBatchVsLegacyDifferential drives the batch and legacy repair paths
// through identical mixed churn and requires identical sets, identical
// per-batch counters, and identical per-node awake ledgers — for both
// repair protocols and Workers ∈ {1, 2, 8}.
func TestBatchVsLegacyDifferential(t *testing.T) {
	for _, repair := range []RepairAlgo{RepairLuby, RepairGhaffari} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(repair.String()+"/w"+string(rune('0'+workers)), func(t *testing.T) {
				g := graph.GNP(300, 12.0/300, 42)
				inSet := verify.GreedyMIS(g)
				p := Params{Seed: 1234, Repair: repair, Workers: workers, MaxRetry: 2}
				pLegacy := p
				pLegacy.Legacy = true
				eb, err := New(g, inSet, p)
				if err != nil {
					t.Fatal(err)
				}
				el, err := New(g, inSet, pLegacy)
				if err != nil {
					t.Fatal(err)
				}
				r := rng.New(7)
				for step := 0; step < 40; step++ {
					batch := mixedBatch(eb, r, 1+r.Intn(12))
					bsB, errB := eb.Apply(batch)
					bsL, errL := el.Apply(batch)
					if (errB == nil) != (errL == nil) {
						t.Fatalf("step %d: error mismatch: batch=%v legacy=%v", step, errB, errL)
					}
					if bsB != bsL {
						t.Fatalf("step %d: BatchStats diverge:\nbatch : %+v\nlegacy: %+v", step, bsB, bsL)
					}
					if err := eb.Check(); err != nil {
						t.Fatalf("step %d: batch path invariant: %v", step, err)
					}
				}
				if !reflect.DeepEqual(eb.InSet(), el.InSet()) {
					t.Fatal("InSet diverges between batch and legacy paths")
				}
				if !reflect.DeepEqual(eb.AwakePerNode(), el.AwakePerNode()) {
					t.Fatal("per-node awake ledgers diverge")
				}
				if sb, sl := eb.Stats(), el.Stats(); sb != sl {
					t.Fatalf("Stats diverge:\nbatch : %+v\nlegacy: %+v", sb, sl)
				}
			})
		}
	}
}

// TestBatchWorkersDeterminism holds the batch path to its own output
// across worker counts (the parallel executor must be byte-identical).
func TestBatchWorkersDeterminism(t *testing.T) {
	run := func(workers int) ([]bool, Stats) {
		g := graph.GNP(250, 10.0/250, 9)
		e, err := New(g, verify.GreedyMIS(g), Params{Seed: 5, Repair: RepairGhaffari, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(11)
		for step := 0; step < 30; step++ {
			if _, err := e.Apply(mixedBatch(e, r, 1+r.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		return e.InSet(), e.Stats()
	}
	set1, st1 := run(1)
	set8, st8 := run(8)
	if !reflect.DeepEqual(set1, set8) {
		t.Fatal("InSet differs between Workers=1 and Workers=8")
	}
	if st1 != st8 {
		t.Fatalf("stats differ across worker counts: %v vs %v", st1, st8)
	}
}

// TestBatcherFlushError injects a failing update mid-window and pins the
// error-path contract: the flush reports flushed=false, the applied
// prefix and the rejected update leave the buffer, the un-applied suffix
// stays pending, and a follow-up Flush applies it cleanly.
func TestBatcherFlushError(t *testing.T) {
	g := graph.Path(6)
	e, err := New(g, verify.GreedyMIS(g), Params{Seed: 3, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, 4)
	for _, up := range []Update{DelEdge(0, 1), InsEdge(0, 2)} {
		if _, flushed, err := b.Add(up); err != nil || flushed {
			t.Fatalf("buffered Add: flushed=%v err=%v", flushed, err)
		}
	}
	// The third update is invalid (self-loop); the fourth is fine. The
	// window fills on the fourth Add, so the flush sees: 2 applied, 1
	// rejected, 1 un-applied.
	if _, flushed, err := b.Add(InsEdge(3, 3)); err != nil || flushed {
		t.Fatalf("buffered bad Add: flushed=%v err=%v", flushed, err)
	}
	bs, flushed, err := b.Add(DelEdge(4, 5))
	if err == nil {
		t.Fatal("flush with invalid update succeeded")
	}
	if flushed {
		t.Fatal("failed flush reported flushed=true")
	}
	if bs.Updates != 2 {
		t.Fatalf("failed flush applied %d updates, want 2 (the valid prefix)", bs.Updates)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending after failed flush = %d, want the 1 un-applied suffix update", b.Pending())
	}
	if e.HasEdge(0, 1) || !e.HasEdge(0, 2) {
		t.Fatal("valid prefix not applied")
	}
	if !e.HasEdge(4, 5) {
		t.Fatal("suffix update leaked into the engine")
	}
	if err := e.Check(); err != nil {
		t.Fatalf("invariant after failed flush: %v", err)
	}
	// The suffix is still live: the next Flush applies it.
	bs, err = b.Flush()
	if err != nil || bs.Updates != 1 {
		t.Fatalf("follow-up flush: bs=%+v err=%v", bs, err)
	}
	if e.HasEdge(4, 5) {
		t.Fatal("suffix update not applied by follow-up flush")
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after follow-up flush = %d", b.Pending())
	}
	// Discard drops without applying.
	if _, _, err := b.Add(InsEdge(1, 3)); err != nil {
		t.Fatal(err)
	}
	if n := b.Discard(); n != 1 {
		t.Fatalf("Discard dropped %d, want 1", n)
	}
	if b.Pending() != 0 || e.HasEdge(1, 3) {
		t.Fatal("Discard applied or kept the update")
	}
}

func TestBatcher(t *testing.T) {
	g := graph.GNP(120, 8.0/120, 3)
	e, err := New(g, verify.GreedyMIS(g), Params{Seed: 2, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(e, 4)
	if b.Window() != 4 {
		t.Fatalf("window = %d", b.Window())
	}
	r := rng.New(13)
	flushes, updates := 0, 0
	for i := 0; i < 21; i++ {
		u, v := r.Intn(120), r.Intn(120)
		if u == v {
			continue
		}
		up := InsEdge(u, v)
		if e.HasEdge(u, v) {
			up = DelEdge(u, v)
		}
		bs, flushed, err := b.Add(up)
		if err != nil {
			t.Fatal(err)
		}
		updates++
		if flushed {
			flushes++
			if bs.Updates != 4 {
				t.Fatalf("flush applied %d updates, want 4", bs.Updates)
			}
			if b.Pending() != 0 {
				t.Fatalf("pending after flush = %d", b.Pending())
			}
		}
	}
	if flushes != updates/4 {
		t.Fatalf("flushes = %d over %d updates (window 4)", flushes, updates)
	}
	if b.Pending() != updates%4 {
		t.Fatalf("pending = %d, want %d", b.Pending(), updates%4)
	}
	if bs, err := b.Flush(); err != nil || bs.Updates != updates%4 {
		t.Fatalf("final flush: bs=%+v err=%v", bs, err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	// Empty flush is free.
	if bs, err := b.Flush(); err != nil || bs != (BatchStats{}) {
		t.Fatalf("empty flush charged: %+v err=%v", bs, err)
	}
	// Window < 1 degrades to per-update application.
	b1 := NewBatcher(e, 0)
	if b1.Window() != 1 {
		t.Fatalf("window 0 not clamped: %d", b1.Window())
	}
	if _, flushed, err := b1.Add(DelEdge(0, 1)); err == nil && !flushed {
		t.Fatal("window-1 Add did not flush")
	}
}
