package dynamic

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/energymis/energymis/internal/bitvec"
	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/pipeline"
	"github.com/energymis/energymis/internal/sim"
)

// This file is the default batch-engine repair path: the affected region
// of a coalesced update window is tracked in epoch-stamped bit vectors
// (zero steady-state allocation, word-op detection sweeps), and the
// re-election runs per independent region component as internal/pipeline
// compositions on the SoA batch runtime — concurrently across components
// when Params.Workers > 1 (see partition.go). Counters are deterministic
// and identical to repair_legacy.go — same analytic charges, same seed
// derivations, the same partition and merge, and the batch election
// engines are counter-identical to the per-node ones (proven by their own
// differential tests).

// scratch is the batch path's reusable region tracker. The dirty and
// woken sets live in epoch-stamped bit vectors: begin bumps the epochs,
// which empties both sets in O(1), and membership, insertion, and sorted
// enumeration are word operations over the words the batch touched.
type scratch struct {
	dirty bitvec.Stamped
	woken bitvec.Stamped

	// Election scratch: region membership + local index for the region
	// subgraph build, the region buffer, one snapshot buffer for the
	// sweep AND/ANDNOT enumerations, and the region subgraph's reusable
	// CSR arrays.
	local     bitvec.Stamped
	localIdx  []int32
	dirtySnap []int32
	region    []int32
	subOffs   []int32
	subAdj    []int32

	// Sealed batch state, captured on the main goroutine so an overlapped
	// repair never reads engine fields the next window's structural apply
	// owns: the slot count, the election base config, and whether row
	// reads must go through the engine's row packs instead of e.adj.
	n      int
	cfg    sim.Config
	cfgSet bool
	packed bool
}

// begin opens a new batch over n node slots and returns the tracker.
func (s *scratch) begin(n int) *scratch {
	s.dirty.Reset()
	s.woken.Reset()
	s.grow(n)
	s.n = 0
	s.cfgSet = false
	s.packed = false
	return s
}

// grow extends the trackers to cover n slots (node inserts mid-batch
// extend the slot space past what begin saw). Missing runs are appended
// in one allocation per array.
func (s *scratch) grow(n int) {
	if len(s.localIdx) < n {
		s.localIdx = append(s.localIdx, make([]int32, n-len(s.localIdx))...)
	}
	s.dirty.Grow(n)
	s.woken.Grow(n)
	s.local.Grow(n)
}

func (s *scratch) markDirty(v int32) {
	s.grow(int(v) + 1)
	s.dirty.Set(v)
}

func (s *scratch) wake(v int32) {
	s.grow(int(v) + 1)
	s.woken.Set(v)
}

// unmark removes v from both sets (its slot died mid-batch). Dead slots
// are never re-marked.
func (s *scratch) unmark(v int32) {
	s.dirty.Clear(v)
	s.woken.Clear(v)
}

func (s *scratch) empty() bool {
	return !s.dirty.Any() && !s.woken.Any()
}

// repairBatch restores the MIS invariant after a batch's structural
// changes: conflict eviction, coverage probing, then per-component
// re-elections over the uncovered region. The sweeps are word-packed:
// dirty/woken frontiers AND/ANDNOT against the engine's membership words
// and OR whole adjacency rows, instead of testing one neighbor at a time.
func (e *Engine) repairBatch(st *scratch, bs *BatchStats) error {
	if st.empty() {
		return nil // nothing changed (no-op updates only)
	}
	if !st.packed {
		// Serial repair runs after the whole batch has applied; under
		// window overlap, seal() captured the slot count before launch.
		st.n = len(e.adj)
	}
	st.grow(st.n)
	e.resolveConflictsBatch(st, bs)

	// Coverage probe: every dirty non-member broadcasts a probe; member
	// neighbors answer, and the whole neighborhood wakes — one row-wide
	// OR into the woken set plus one membership AND per row word. Dirty
	// nodes are always alive (markDirty only sees live slots and a dying
	// slot is unmarked), so the sweep needs no alive filter.
	st.region = st.region[:0]
	st.dirtySnap = st.dirty.AndNotInto(e.inSetW, st.dirtySnap[:0])
	for _, v := range st.dirtySnap {
		deg, replies := e.probeRow(v, st)
		bs.Messages += int64(deg + replies) // probe broadcast + member replies
		if replies == 0 {
			st.region = append(st.region, v)
		}
	}
	bs.Region = len(st.region)

	bs.Rounds = 1 // the detection/probe round; elections add theirs
	if len(st.region) > 0 {
		if err := e.electBatch(st.region, st, bs); err != nil {
			return err
		}
	}

	// Charge the detection/probe round last, over the final woken set, so
	// every node reported in Woken is also charged at least one awake
	// round (election awake rounds were folded by mergeComponents). The
	// fold is an order-insensitive sum, so it walks the touched words
	// directly — no snapshot, no sort.
	woken := 0
	tw := st.woken.TouchedWords()
	for _, w := range tw {
		x := st.woken.Word(w)
		woken += bits.OnesCount64(x)
		base := w << 6
		for x != 0 {
			e.awake[base+int32(bits.TrailingZeros64(x))]++
			x &= x - 1
		}
	}
	bs.AwakeRounds += int64(woken)
	bs.Woken = woken
	e.perf.SweepWords += int64(len(st.dirty.TouchedWords()) + len(tw))

	// The detection/probe round as a synthetic one-round span, carrying
	// the analytic messages (notifications, probes, replies — everything
	// not sent through an election engine), so trace round/phase sums
	// reproduce the engine totals exactly.
	if e.tracer != nil {
		msgs := bs.Messages - e.simMsgs
		e.tracer.PhaseStart("repair/detect")
		e.tracer.Round(obs.RoundStats{Round: 0, Awake: bs.Woken, MsgsSent: msgs})
		e.tracer.PhaseEnd(obs.PhaseStats{
			Name: "repair/detect", Rounds: 1,
			Awake: int64(bs.Woken), MsgsSent: msgs,
		})
	}
	return nil
}

// resolveConflictsBatch evicts members until no edge has two member
// endpoints; same visit order and tie-breaks as the legacy path (see the
// exhaustiveness argument there). The sweep enumerates dirty ∧ members
// in one word-AND pass: dirty nodes that were not members at sweep start
// get zero inner iterations on the legacy path too, and eviction only
// removes members, so skipping them up front changes nothing.
func (e *Engine) resolveConflictsBatch(st *scratch, bs *BatchStats) {
	st.dirtySnap = st.dirty.AndInto(e.inSetW, st.dirtySnap[:0])
	for _, v := range st.dirtySnap {
		for e.inSet[v] {
			conflict := e.firstMemberNbr(v, st)
			if conflict < 0 {
				break
			}
			loser := v
			du, dv := e.rowDeg(conflict, st), e.rowDeg(v, st)
			if du < dv || (du == dv && conflict > v) {
				loser = conflict
			}
			// Evict: the leaver notifies its neighborhood; everyone there
			// must re-check coverage.
			e.clearMember(loser)
			bs.Evictions++
			bs.Messages += int64(e.wakeDirtyRow(loser, st))
			st.wake(loser)
			st.markDirty(loser)
		}
	}
}

// Row accessors for the repair sweeps. Under packed repair (window
// overlap) the engine's adjacency is being mutated by the next window's
// structural apply on the main goroutine, so every row read goes through
// the row-pack snapshots sealed before launch; serial repair reads e.adj
// directly. A pack is a copy of the row, so the two modes are bit-for-bit
// interchangeable.

// row returns v's adjacency as of the repair's sealed view.
func (e *Engine) row(v int32, st *scratch) []int32 {
	if st.packed {
		return e.packs[v].row
	}
	return e.adj[v]
}

func (e *Engine) rowDeg(v int32, st *scratch) int {
	return len(e.row(v, st))
}

// firstMemberNbr returns v's smallest member neighbor, or -1.
func (e *Engine) firstMemberNbr(v int32, st *scratch) int32 {
	return bitvec.FirstAndRow(e.inSetW, e.row(v, st))
}

// probeRow wakes v's whole neighborhood and returns (degree, member
// replies) — the coverage probe of one dirty non-member, as one fused
// word-grouped pass over the row.
func (e *Engine) probeRow(v int32, st *scratch) (deg, replies int) {
	row := e.row(v, st)
	return len(row), st.woken.OrRowCount(row, e.inSetW)
}

// wakeRow wakes v's neighborhood and returns its degree (the join/leave
// notification fan-out).
func (e *Engine) wakeRow(v int32, st *scratch) int {
	row := e.row(v, st)
	st.woken.OrRow(row)
	return len(row)
}

// wakeDirtyRow wakes and dirties v's neighborhood (the eviction fan-out).
func (e *Engine) wakeDirtyRow(v int32, st *scratch) int {
	row := e.row(v, st)
	st.woken.OrRow(row)
	st.dirty.OrRow(row)
	return len(row)
}

// electBatch builds the uncovered region's induced subgraph straight
// into reusable CSR buffers (region membership tested word-at-a-time
// against the local bit vector) and hands it to the component
// partition/election/merge machinery. region is sorted ascending, so the
// emitted local rows are ascending too and FromCSR can trust them.
func (e *Engine) electBatch(region []int32, st *scratch, bs *BatchStats) error {
	st.local.Reset()
	for i, v := range region {
		st.local.Set(v)
		st.localIdx[v] = int32(i)
	}
	st.subOffs = st.subOffs[:0]
	st.subAdj = st.subAdj[:0]
	for _, v := range region {
		st.subOffs = append(st.subOffs, int32(len(st.subAdj)))
		st.subAdj = e.appendRegionNbrs(v, st, st.subAdj)
	}
	st.subOffs = append(st.subOffs, int32(len(st.subAdj)))
	return e.electComponents(graph.FromCSR(st.subOffs, st.subAdj), region, st, bs)
}

// appendRegionNbrs appends the region-local indices of v's in-region
// neighbors to dst, ascending: each row word ANDs against the region
// membership word and surviving bits map through localIdx.
func (e *Engine) appendRegionNbrs(v int32, st *scratch, dst []int32) []int32 {
	row := e.row(v, st)
	for i := 0; i < len(row); {
		w := row[i] >> 6
		var m uint64
		for ; i < len(row) && row[i]>>6 == w; i++ {
			m |= 1 << (uint32(row[i]) & 63)
		}
		x := m & st.local.Word(w)
		base := w << 6
		for x != 0 {
			dst = append(dst, st.localIdx[base+int32(bits.TrailingZeros64(x))])
			x &= x - 1
		}
	}
	return dst
}

// electComponent elects one non-singleton component on the batch engines:
// an internal/pipeline composition over the component's induced subgraph,
// with the given Mem and inner worker count. Results land in the
// component's compRun only; with a tracer attached, phase spans and round
// events buffer in the component's Recorder for ordered replay at merge.
func (e *Engine) electComponent(sub *graph.Graph, c int, base sim.Config, mem *sim.Mem, workers int) {
	cr := &e.comps[c]
	sg := cr.subgraph(sub, e.part.rank)
	cfg := compCfg(base, uint64(c))
	cfg.Mem = mem
	cfg.Workers = workers
	if cr.rec != nil {
		cfg.Tracer = cr.rec
	}
	pl := pipeline.New(sg, cfg)
	var err error
	switch e.p.Repair {
	case RepairGhaffari:
		err = e.electGhaffariComp(pl, cfg, cr)
	default:
		err = e.electLubyComp(pl, cfg, cr)
	}
	if err != nil {
		cr.err = err
		return
	}
	cr.inSet = pl.InSet()
}

// electLubyComp runs batch Luby to completion on the component subgraph.
func (e *Engine) electLubyComp(pl *pipeline.Pipeline, cfg sim.Config, cr *compRun) error {
	pl.Begin("repair/luby")
	inSub, res, err := luby.Run(pl.Graph(), cfg)
	if err != nil {
		return fmt.Errorf("dynamic: re-election: %w", err)
	}
	cr.account(res, nil)
	pl.Join(inSub, nil)
	pl.SetResidual(nil, nil)
	pl.Record("repair/luby", res, nil)
	return nil
}

// electGhaffariComp runs the batch desire-level dynamics for O(log |C|)
// rounds, retries on stragglers, and finishes any remaining nodes with
// batch Luby. Residual composition between attempts goes through the
// pipeline (equivalent to the legacy orig-chain: induced subgraphs of
// induced subgraphs compose, and survivor lists are ascending).
func (e *Engine) electGhaffariComp(pl *pipeline.Pipeline, cfg sim.Config, cr *compRun) error {
	cur := pl.Graph()
	var orig []int32 // cur's node i is component node orig[i]; nil = identity
	for attempt := 0; ; attempt++ {
		if cur.N() == 0 {
			return nil
		}
		if attempt >= e.p.MaxRetry {
			// Luby finisher: always terminates.
			pl.Begin("repair/finisher")
			inFin, res, err := luby.Run(cur, bump(cfg, uint64(attempt)))
			if err != nil {
				return fmt.Errorf("dynamic: finisher: %w", err)
			}
			cr.account(res, orig)
			pl.Join(inFin, orig)
			pl.SetResidual(nil, nil)
			pl.Record("repair/finisher", res, orig)
			return nil
		}
		rounds := ghaffariRounds(cur.N())
		pl.Begin("repair/ghaffari")
		inG, survivors, res, err := ghaffari.RunShatter(cur, rounds, bump(cfg, uint64(attempt)))
		if err != nil {
			return fmt.Errorf("dynamic: ghaffari: %w", err)
		}
		cr.account(res, orig)
		pl.Join(inG, orig)
		pl.SetResidual(survivors, orig)
		pl.Record("repair/ghaffari", res, orig)
		if len(survivors) == 0 {
			return nil
		}
		cr.retries++
		sg := pl.Subgraph()
		cur, orig = sg.Graph, sg.Orig
	}
}

// simCfg returns the base engine configuration of this batch's elections.
// Each batch gets a fresh deterministic seed; compCfg then splits it per
// component, and bump per retry attempt. Shared by both repair paths; the
// batch path adds Mem, Workers, and Tracer per component on top.
func (e *Engine) simCfg() sim.Config {
	b := e.p.B
	if b == 0 {
		n := len(e.adj)
		if n < 2 {
			n = 2
		}
		b = sim.DefaultB(n)
	}
	seed := e.p.Seed ^ (e.batchNo+1)*0x9e3779b97f4a7c15
	return sim.Config{Seed: seed, B: b}
}

func ghaffariRounds(n int) int {
	r := 4 * (int(math.Log2(float64(n)+1)) + 1)
	if r < 8 {
		r = 8
	}
	return r
}

func bump(cfg sim.Config, k uint64) sim.Config {
	cfg.Seed ^= (k + 1) * 0xd1342543de82ef95
	return cfg
}

func identity32(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
