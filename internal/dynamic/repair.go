package dynamic

import (
	"fmt"
	"math"

	"github.com/energymis/energymis/internal/bitvec"
	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/pipeline"
	"github.com/energymis/energymis/internal/sim"
)

// This file is the default batch-engine repair path: the affected region
// of a coalesced update window is tracked in epoch-stamped bit vectors
// (zero steady-state allocation, word-op detection sweeps), and the
// re-election runs per independent region component as internal/pipeline
// compositions on the SoA batch runtime — concurrently across components
// when Params.Workers > 1 (see partition.go). Counters are deterministic
// and identical to repair_legacy.go — same analytic charges, same seed
// derivations, the same partition and merge, and the batch election
// engines are counter-identical to the per-node ones (proven by their own
// differential tests).

// scratch is the batch path's reusable region tracker. The dirty and
// woken sets live in epoch-stamped bit vectors: begin bumps the epochs,
// which empties both sets in O(1), and membership, insertion, and sorted
// enumeration are word operations over the words the batch touched.
type scratch struct {
	dirty bitvec.Stamped
	woken bitvec.Stamped

	// Election scratch: region membership + local index for the region
	// subgraph build, the region buffer, and one snapshot buffer per
	// sweep — sortedDirty and sortedWoken each own theirs, so a call to
	// one never invalidates the other's return.
	local     bitvec.Stamped
	localIdx  []int32
	dirtySnap []int32
	wokenSnap []int32
	region    []int32
}

// begin opens a new batch over n node slots and returns the tracker.
func (s *scratch) begin(n int) *scratch {
	s.dirty.Reset()
	s.woken.Reset()
	s.grow(n)
	return s
}

// grow extends the trackers to cover n slots (node inserts mid-batch
// extend the slot space past what begin saw). Missing runs are appended
// in one allocation per array.
func (s *scratch) grow(n int) {
	if len(s.localIdx) < n {
		s.localIdx = append(s.localIdx, make([]int32, n-len(s.localIdx))...)
	}
	s.dirty.Grow(n)
	s.woken.Grow(n)
	s.local.Grow(n)
}

func (s *scratch) markDirty(v int32) {
	s.grow(int(v) + 1)
	s.dirty.Set(v)
}

func (s *scratch) wake(v int32) {
	s.grow(int(v) + 1)
	s.woken.Set(v)
}

// unmark removes v from both sets (its slot died mid-batch). Dead slots
// are never re-marked.
func (s *scratch) unmark(v int32) {
	s.dirty.Clear(v)
	s.woken.Clear(v)
}

func (s *scratch) empty() bool {
	return !s.dirty.Any() && !s.woken.Any()
}

// sortedDirty snapshots the dirty set, ascending, into its own reusable
// buffer (valid until the next sortedDirty call).
func (s *scratch) sortedDirty() []int32 {
	s.dirtySnap = s.dirty.AppendAscending(s.dirtySnap[:0])
	return s.dirtySnap
}

// sortedWoken snapshots the woken set, ascending, into its own reusable
// buffer (valid until the next sortedWoken call).
func (s *scratch) sortedWoken() []int32 {
	s.wokenSnap = s.woken.AppendAscending(s.wokenSnap[:0])
	return s.wokenSnap
}

// repairBatch restores the MIS invariant after a batch's structural
// changes: conflict eviction, coverage probing, then per-component
// re-elections over the uncovered region.
func (e *Engine) repairBatch(st *scratch, bs *BatchStats) error {
	if st.empty() {
		return nil // nothing changed (no-op updates only)
	}
	e.resolveConflictsBatch(st, bs)

	// Coverage probe: every dirty node broadcasts a probe; member
	// neighbors answer. Listening neighbors wake for the probe round.
	st.region = st.region[:0]
	for _, v := range st.sortedDirty() {
		if !e.alive[v] || e.inSet[v] {
			continue
		}
		bs.Messages += int64(len(e.adj[v])) // probe broadcast
		covered := false
		for _, u := range e.adj[v] {
			st.wake(u)
			if e.inSet[u] {
				covered = true
				bs.Messages++ // member's reply
			}
		}
		if !covered {
			st.region = append(st.region, v)
		}
	}
	bs.Region = len(st.region)

	bs.Rounds = 1 // the detection/probe round; elections add theirs
	if len(st.region) > 0 {
		if err := e.electBatch(st.region, st, bs); err != nil {
			return err
		}
	}

	// Charge the detection/probe round last, over the final woken set, so
	// every node reported in Woken is also charged at least one awake
	// round (election awake rounds were folded by mergeComponents).
	woken := st.sortedWoken()
	for _, v := range woken {
		e.awake[v]++
		bs.AwakeRounds++
	}
	bs.Woken = len(woken)

	// The detection/probe round as a synthetic one-round span, carrying
	// the analytic messages (notifications, probes, replies — everything
	// not sent through an election engine), so trace round/phase sums
	// reproduce the engine totals exactly.
	if e.tracer != nil {
		msgs := bs.Messages - e.simMsgs
		e.tracer.PhaseStart("repair/detect")
		e.tracer.Round(obs.RoundStats{Round: 0, Awake: bs.Woken, MsgsSent: msgs})
		e.tracer.PhaseEnd(obs.PhaseStats{
			Name: "repair/detect", Rounds: 1,
			Awake: int64(bs.Woken), MsgsSent: msgs,
		})
	}
	return nil
}

// resolveConflictsBatch evicts members until no edge has two member
// endpoints; same sweep and tie-breaks as the legacy path (see the
// exhaustiveness argument there). The sweep iterates a snapshot while
// evictions mark more nodes dirty — safe, since each sweep owns its
// snapshot buffer.
func (e *Engine) resolveConflictsBatch(st *scratch, bs *BatchStats) {
	evict := func(m int32) {
		e.inSet[m] = false
		bs.Evictions++
		// The leaver notifies its neighborhood; everyone there must
		// re-check coverage.
		bs.Messages += int64(len(e.adj[m]))
		st.wake(m)
		st.markDirty(m)
		for _, u := range e.adj[m] {
			st.wake(u)
			st.markDirty(u)
		}
	}
	for _, v := range st.sortedDirty() {
		for e.alive[v] && e.inSet[v] {
			conflict := int32(-1)
			for _, u := range e.adj[v] {
				if e.inSet[u] {
					conflict = u
					break
				}
			}
			if conflict < 0 {
				break
			}
			loser := v
			du, dv := len(e.adj[conflict]), len(e.adj[v])
			if du < dv || (du == dv && conflict > v) {
				loser = conflict
			}
			evict(loser)
		}
	}
}

// electBatch builds the uncovered region's induced subgraph (region
// membership tested by bit vector) and hands it to the component
// partition/election/merge machinery. region is sorted ascending.
func (e *Engine) electBatch(region []int32, st *scratch, bs *BatchStats) error {
	st.grow(len(e.adj))
	st.local.Reset()
	for i, v := range region {
		st.local.Set(v)
		st.localIdx[v] = int32(i)
	}
	b := graph.NewBuilder(len(region))
	for i, v := range region {
		for _, u := range e.adj[v] {
			if st.local.Has(u) && int32(i) < st.localIdx[u] {
				b.AddEdge(i, int(st.localIdx[u]))
			}
		}
	}
	return e.electComponents(b.Build(), region, st, bs)
}

// electComponent elects one non-singleton component on the batch engines:
// an internal/pipeline composition over the component's induced subgraph,
// with the given Mem and inner worker count. Results land in the
// component's compRun only; with a tracer attached, phase spans and round
// events buffer in the component's Recorder for ordered replay at merge.
func (e *Engine) electComponent(sub *graph.Graph, c int, base sim.Config, mem *sim.Mem, workers int) {
	cr := &e.comps[c]
	sg := graph.InducedSubgraph(sub, cr.ids)
	cfg := compCfg(base, uint64(c))
	cfg.Mem = mem
	cfg.Workers = workers
	if cr.rec != nil {
		cfg.Tracer = cr.rec
	}
	pl := pipeline.New(sg.Graph, cfg)
	var err error
	switch e.p.Repair {
	case RepairGhaffari:
		err = e.electGhaffariComp(pl, cfg, cr)
	default:
		err = e.electLubyComp(pl, cfg, cr)
	}
	if err != nil {
		cr.err = err
		return
	}
	cr.inSet = pl.InSet()
}

// electLubyComp runs batch Luby to completion on the component subgraph.
func (e *Engine) electLubyComp(pl *pipeline.Pipeline, cfg sim.Config, cr *compRun) error {
	pl.Begin("repair/luby")
	inSub, res, err := luby.Run(pl.Graph(), cfg)
	if err != nil {
		return fmt.Errorf("dynamic: re-election: %w", err)
	}
	cr.account(res, nil)
	pl.Join(inSub, nil)
	pl.SetResidual(nil, nil)
	pl.Record("repair/luby", res, nil)
	return nil
}

// electGhaffariComp runs the batch desire-level dynamics for O(log |C|)
// rounds, retries on stragglers, and finishes any remaining nodes with
// batch Luby. Residual composition between attempts goes through the
// pipeline (equivalent to the legacy orig-chain: induced subgraphs of
// induced subgraphs compose, and survivor lists are ascending).
func (e *Engine) electGhaffariComp(pl *pipeline.Pipeline, cfg sim.Config, cr *compRun) error {
	cur := pl.Graph()
	var orig []int32 // cur's node i is component node orig[i]; nil = identity
	for attempt := 0; ; attempt++ {
		if cur.N() == 0 {
			return nil
		}
		if attempt >= e.p.MaxRetry {
			// Luby finisher: always terminates.
			pl.Begin("repair/finisher")
			inFin, res, err := luby.Run(cur, bump(cfg, uint64(attempt)))
			if err != nil {
				return fmt.Errorf("dynamic: finisher: %w", err)
			}
			cr.account(res, orig)
			pl.Join(inFin, orig)
			pl.SetResidual(nil, nil)
			pl.Record("repair/finisher", res, orig)
			return nil
		}
		rounds := ghaffariRounds(cur.N())
		pl.Begin("repair/ghaffari")
		inG, survivors, res, err := ghaffari.RunShatter(cur, rounds, bump(cfg, uint64(attempt)))
		if err != nil {
			return fmt.Errorf("dynamic: ghaffari: %w", err)
		}
		cr.account(res, orig)
		pl.Join(inG, orig)
		pl.SetResidual(survivors, orig)
		pl.Record("repair/ghaffari", res, orig)
		if len(survivors) == 0 {
			return nil
		}
		cr.retries++
		sg := pl.Subgraph()
		cur, orig = sg.Graph, sg.Orig
	}
}

// simCfg returns the base engine configuration of this batch's elections.
// Each batch gets a fresh deterministic seed; compCfg then splits it per
// component, and bump per retry attempt. Shared by both repair paths; the
// batch path adds Mem, Workers, and Tracer per component on top.
func (e *Engine) simCfg() sim.Config {
	b := e.p.B
	if b == 0 {
		n := len(e.adj)
		if n < 2 {
			n = 2
		}
		b = sim.DefaultB(n)
	}
	seed := e.p.Seed ^ (e.batchNo+1)*0x9e3779b97f4a7c15
	return sim.Config{Seed: seed, B: b}
}

func ghaffariRounds(n int) int {
	r := 4 * (int(math.Log2(float64(n)+1)) + 1)
	if r < 8 {
		r = 8
	}
	return r
}

func bump(cfg sim.Config, k uint64) sim.Config {
	cfg.Seed ^= (k + 1) * 0xd1342543de82ef95
	return cfg
}

func identity32(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
