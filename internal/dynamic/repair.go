package dynamic

import (
	"fmt"
	"math"
	"sort"

	"github.com/energymis/energymis/internal/ghaffari"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/pipeline"
	"github.com/energymis/energymis/internal/sim"
)

// This file is the default batch-engine repair path: the affected region
// of a coalesced update window is tracked in epoch-stamped arrays (zero
// steady-state allocation, unlike the legacy maps), and the re-election
// runs as an internal/pipeline composition on the SoA batch runtime with
// the engine's single pooled sim.Mem. Counters are deterministic and
// identical to repair_legacy.go — same analytic charges, same seed
// derivation, and the batch election engines are counter-identical to the
// per-node ones (proven by their own differential tests).

// scratch is the batch path's reusable region tracker. A node is in the
// dirty (resp. woken) set iff its stamp equals the current epoch; begin
// bumps the epoch, which empties both sets in O(1). The insertion-ordered
// id lists exist only so snapshots need not scan all n stamps.
type scratch struct {
	epoch      uint64
	dirtyStamp []uint64
	wokenStamp []uint64
	dirty      []int32 // stamped-insertion order, may contain unmarked ids
	woken      []int32

	// Election scratch: region membership stamps + local index for the
	// subgraph build (replacing the legacy map), and reusable snapshot
	// buffers for the sorted sweeps.
	localStamp []uint64
	localIdx   []int32
	snap       []int32
	region     []int32
}

// begin opens a new batch over n node slots and returns the tracker.
func (s *scratch) begin(n int) *scratch {
	s.epoch++
	s.grow(n)
	s.dirty = s.dirty[:0]
	s.woken = s.woken[:0]
	return s
}

// grow extends the stamp arrays to cover n slots (node inserts mid-batch
// extend the slot space past what begin saw).
func (s *scratch) grow(n int) {
	for len(s.dirtyStamp) < n {
		s.dirtyStamp = append(s.dirtyStamp, 0)
		s.wokenStamp = append(s.wokenStamp, 0)
		s.localStamp = append(s.localStamp, 0)
		s.localIdx = append(s.localIdx, 0)
	}
}

func (s *scratch) markDirty(v int32) {
	s.grow(int(v) + 1)
	if s.dirtyStamp[v] != s.epoch {
		s.dirtyStamp[v] = s.epoch
		s.dirty = append(s.dirty, v)
	}
}

func (s *scratch) wake(v int32) {
	s.grow(int(v) + 1)
	if s.wokenStamp[v] != s.epoch {
		s.wokenStamp[v] = s.epoch
		s.woken = append(s.woken, v)
	}
}

// unmark removes v from both sets (its slot died mid-batch). Dead slots
// are never re-marked, so the stale entry left in the id lists stays
// filtered out by its cleared stamp.
func (s *scratch) unmark(v int32) {
	if int(v) < len(s.dirtyStamp) {
		s.dirtyStamp[v] = 0
		s.wokenStamp[v] = 0
	}
}

func (s *scratch) empty() bool {
	for _, v := range s.dirty {
		if s.dirtyStamp[v] == s.epoch {
			return false
		}
	}
	for _, v := range s.woken {
		if s.wokenStamp[v] == s.epoch {
			return false
		}
	}
	return true
}

// sortedDirty returns the currently-marked dirty set, ascending, in the
// reusable snapshot buffer (valid until the next sorted* call).
func (s *scratch) sortedDirty() []int32 {
	s.snap = s.snap[:0]
	for _, v := range s.dirty {
		if s.dirtyStamp[v] == s.epoch {
			s.snap = append(s.snap, v)
		}
	}
	sort.Slice(s.snap, func(i, j int) bool { return s.snap[i] < s.snap[j] })
	return s.snap
}

// sortedWoken is sortedDirty for the woken set.
func (s *scratch) sortedWoken() []int32 {
	s.snap = s.snap[:0]
	for _, v := range s.woken {
		if s.wokenStamp[v] == s.epoch {
			s.snap = append(s.snap, v)
		}
	}
	sort.Slice(s.snap, func(i, j int) bool { return s.snap[i] < s.snap[j] })
	return s.snap
}

// repairBatch restores the MIS invariant after a batch's structural
// changes: conflict eviction, coverage probing, then one pipeline-composed
// re-election on the union of the uncovered regions.
func (e *Engine) repairBatch(st *scratch, bs *BatchStats) error {
	if st.empty() {
		return nil // nothing changed (no-op updates only)
	}
	e.resolveConflictsBatch(st, bs)

	// Coverage probe: every dirty node broadcasts a probe; member
	// neighbors answer. Listening neighbors wake for the probe round.
	st.region = st.region[:0]
	for _, v := range st.sortedDirty() {
		if !e.alive[v] || e.inSet[v] {
			continue
		}
		bs.Messages += int64(len(e.adj[v])) // probe broadcast
		covered := false
		for _, u := range e.adj[v] {
			st.wake(u)
			if e.inSet[u] {
				covered = true
				bs.Messages++ // member's reply
			}
		}
		if !covered {
			st.region = append(st.region, v)
		}
	}
	bs.Region = len(st.region)

	bs.Rounds = 1 // the detection/probe round; elections add theirs
	if len(st.region) > 0 {
		if err := e.electBatch(st.region, st, bs); err != nil {
			return err
		}
	}

	// Charge the detection/probe round last, over the final woken set, so
	// every node reported in Woken is also charged at least one awake
	// round (election awake rounds were added by accountSim).
	woken := st.sortedWoken()
	for _, v := range woken {
		e.awake[v]++
		bs.AwakeRounds++
	}
	bs.Woken = len(woken)

	// The detection/probe round as a synthetic one-round span, carrying
	// the analytic messages (notifications, probes, replies — everything
	// not sent through an election engine), so trace round/phase sums
	// reproduce the engine totals exactly.
	if e.tracer != nil {
		msgs := bs.Messages - e.simMsgs
		e.tracer.PhaseStart("repair/detect")
		e.tracer.Round(obs.RoundStats{Round: 0, Awake: bs.Woken, MsgsSent: msgs})
		e.tracer.PhaseEnd(obs.PhaseStats{
			Name: "repair/detect", Rounds: 1,
			Awake: int64(bs.Woken), MsgsSent: msgs,
		})
	}
	return nil
}

// resolveConflictsBatch evicts members until no edge has two member
// endpoints; same sweep and tie-breaks as resolveConflictsLegacy (see the
// exhaustiveness argument there).
func (e *Engine) resolveConflictsBatch(st *scratch, bs *BatchStats) {
	evict := func(m int32) {
		e.inSet[m] = false
		bs.Evictions++
		// The leaver notifies its neighborhood; everyone there must
		// re-check coverage.
		bs.Messages += int64(len(e.adj[m]))
		st.wake(m)
		st.markDirty(m)
		for _, u := range e.adj[m] {
			st.wake(u)
			st.markDirty(u)
		}
	}
	// The snapshot buffer would be clobbered by nested sorted* calls; the
	// sweep below only appends to st.dirty, which is safe.
	for _, v := range st.sortedDirty() {
		for e.alive[v] && e.inSet[v] {
			conflict := int32(-1)
			for _, u := range e.adj[v] {
				if e.inSet[u] {
					conflict = u
					break
				}
			}
			if conflict < 0 {
				break
			}
			loser := v
			du, dv := len(e.adj[conflict]), len(e.adj[v])
			if du < dv || (du == dv && conflict > v) {
				loser = conflict
			}
			evict(loser)
		}
	}
}

// electBatch runs the localized re-election on the induced subgraph of the
// uncovered region as a pipeline over the batch engines, and merges the
// winners into the set. region is sorted and must not alias st.snap.
func (e *Engine) electBatch(region []int32, st *scratch, bs *BatchStats) error {
	st.grow(len(e.adj))
	for i, v := range region {
		st.localIdx[v] = int32(i)
		st.localStamp[v] = st.epoch
	}
	b := graph.NewBuilder(len(region))
	for i, v := range region {
		for _, u := range e.adj[v] {
			if st.localStamp[u] == st.epoch && int32(i) < st.localIdx[u] {
				b.AddEdge(i, int(st.localIdx[u]))
			}
		}
	}
	sub := b.Build()

	// One pipeline per batch: shared pooled Mem across every election
	// stage, residual tracking between Ghaffari attempts, phase spans for
	// the tracer. Seeds come from simCfg/bump — the legacy derivation —
	// not Pipeline.Cfg, to keep the two paths counter-identical.
	cfg := e.simCfg()
	cfg.Mem = e.mem
	cfg.Tracer = e.tracer
	pl := pipeline.New(sub, cfg)

	var err error
	switch e.p.Repair {
	case RepairGhaffari:
		err = e.electGhaffariBatch(pl, cfg, region, bs)
	default:
		err = e.electLubyBatch(pl, cfg, region, bs)
	}
	if err != nil {
		return err
	}

	for i, in := range pl.InSet() {
		if !in {
			continue
		}
		v := region[i]
		e.inSet[v] = true
		bs.Joins++
		// The joiner notifies its full neighborhood.
		bs.Messages += int64(len(e.adj[v]))
		for _, u := range e.adj[v] {
			st.wake(u)
		}
	}
	return nil
}

// electLubyBatch runs batch Luby to completion on the region subgraph.
func (e *Engine) electLubyBatch(pl *pipeline.Pipeline, cfg sim.Config, region []int32, bs *BatchStats) error {
	pl.Begin("repair/luby")
	inSub, res, err := luby.Run(pl.Graph(), cfg)
	if err != nil {
		return fmt.Errorf("dynamic: re-election: %w", err)
	}
	e.accountSim(res, nil, region, bs)
	pl.Join(inSub, nil)
	pl.SetResidual(nil, nil)
	pl.Record("repair/luby", res, nil)
	return nil
}

// electGhaffariBatch runs the batch desire-level dynamics for O(log |U|)
// rounds, retries on stragglers, and finishes any remaining nodes with
// batch Luby. Residual composition between attempts goes through the
// pipeline (equivalent to the legacy orig-chain: induced subgraphs of
// induced subgraphs compose, and survivor lists are ascending).
func (e *Engine) electGhaffariBatch(pl *pipeline.Pipeline, cfg sim.Config, region []int32, bs *BatchStats) error {
	cur := pl.Graph()
	var orig []int32 // cur's node i is region subgraph node orig[i]; nil = identity
	for attempt := 0; ; attempt++ {
		if cur.N() == 0 {
			return nil
		}
		if attempt >= e.p.MaxRetry {
			// Luby finisher: always terminates.
			pl.Begin("repair/finisher")
			inFin, res, err := luby.Run(cur, bump(cfg, uint64(attempt)))
			if err != nil {
				return fmt.Errorf("dynamic: finisher: %w", err)
			}
			e.accountSim(res, orig, region, bs)
			pl.Join(inFin, orig)
			pl.SetResidual(nil, nil)
			pl.Record("repair/finisher", res, orig)
			return nil
		}
		rounds := ghaffariRounds(cur.N())
		pl.Begin("repair/ghaffari")
		inG, survivors, res, err := ghaffari.RunShatter(cur, rounds, bump(cfg, uint64(attempt)))
		if err != nil {
			return fmt.Errorf("dynamic: ghaffari: %w", err)
		}
		e.accountSim(res, orig, region, bs)
		pl.Join(inG, orig)
		pl.SetResidual(survivors, orig)
		pl.Record("repair/ghaffari", res, orig)
		if len(survivors) == 0 {
			return nil
		}
		bs.Retries++
		sg := pl.Subgraph()
		cur, orig = sg.Graph, sg.Orig
	}
}

// simCfg returns the engine configuration of this batch's elections. Each
// batch (and, via bump, each election stage) gets a fresh deterministic
// seed. Shared by both repair paths; the batch path adds Mem and Tracer on
// top.
func (e *Engine) simCfg() sim.Config {
	b := e.p.B
	if b == 0 {
		n := len(e.adj)
		if n < 2 {
			n = 2
		}
		b = sim.DefaultB(n)
	}
	seed := e.p.Seed ^ (e.batchNo+1)*0x9e3779b97f4a7c15
	return sim.Config{Seed: seed, B: b, Workers: e.p.Workers}
}

// accountSim folds one election engine run into the batch counters and the
// per-node awake ledger. orig follows the electGhaffari convention: nil
// for runs on the full region subgraph, otherwise orig[i] maps run-local
// node i to its region index.
func (e *Engine) accountSim(res *sim.Result, orig []int32, region []int32, bs *BatchStats) {
	bs.Rounds += res.Rounds
	bs.Messages += res.MsgsSent
	bs.MsgsDropped += res.MsgsDropped
	bs.Bits += res.BitsTotal
	bs.Violations += res.Violations
	if res.BitsMax > bs.BitsMax {
		bs.BitsMax = res.BitsMax
	}
	e.simMsgs += res.MsgsSent
	for i, cnt := range res.Awake {
		v := region[i]
		if orig != nil {
			v = region[orig[i]]
		}
		e.awake[v] += int64(cnt)
		bs.AwakeRounds += int64(cnt)
	}
}

func ghaffariRounds(n int) int {
	r := 4 * (int(math.Log2(float64(n)+1)) + 1)
	if r < 8 {
		r = 8
	}
	return r
}

func bump(cfg sim.Config, k uint64) sim.Config {
	cfg.Seed ^= (k + 1) * 0xd1342543de82ef95
	return cfg
}

func identity32(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
