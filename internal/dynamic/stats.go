package dynamic

import "fmt"

// BatchStats reports the measured cost of one Apply call with the same
// semantics as a static run: rounds elapsed, awake rounds spent, CONGEST
// messages sent.
type BatchStats struct {
	Updates int // updates applied in the batch
	Woken   int // distinct nodes that woke at least once
	Region  int // size of the re-elected uncovered region
	// Components counts the connected components the uncovered region
	// split into — the independent elections of the batch (singletons
	// included), and the upper bound on repair parallelism.
	Components int
	Rounds     int // repair rounds (1 detection/probe round + election rounds)

	AwakeRounds int64 // total node-awake-rounds charged
	Messages    int64 // CONGEST messages (notifications, probes, election)
	MsgsDropped int64 // election messages whose receiver was asleep
	Bits        int64 // election message bits (notifications/probes carry none)
	Violations  int64 // election messages exceeding the CONGEST budget
	BitsMax     int   // largest single election message, in bits

	Evictions int // members evicted by conflict resolution
	Joins     int // members added by the re-election
	Retries   int // Ghaffari stages that left stragglers
}

// add accumulates other into s: counters sum, Region and BitsMax take the
// maximum over the aggregated batches. Used by window-coalescing callers
// (energymis.DynamicMIS.ApplyBatch) to report one aggregate per call.
func (s *BatchStats) Add(other BatchStats) {
	s.Updates += other.Updates
	s.Woken += other.Woken
	s.Components += other.Components
	s.Rounds += other.Rounds
	s.AwakeRounds += other.AwakeRounds
	s.Messages += other.Messages
	s.MsgsDropped += other.MsgsDropped
	s.Bits += other.Bits
	s.Violations += other.Violations
	s.Evictions += other.Evictions
	s.Joins += other.Joins
	s.Retries += other.Retries
	if other.Region > s.Region {
		s.Region = other.Region
	}
	if other.BitsMax > s.BitsMax {
		s.BitsMax = other.BitsMax
	}
}

// Stats accumulates engine-lifetime measurements.
type Stats struct {
	Batches   int64
	Updates   int64
	Elections int64 // batches that needed a re-election

	Rounds      int64 // total repair rounds
	AwakeTotal  int64 // total awake rounds across all repairs
	Messages    int64
	MsgsDropped int64 // election messages whose receiver was asleep
	Bits        int64 // election message bits
	Violations  int64 // CONGEST violations across all repairs
	BitsMax     int   // largest single repair message, in bits
	WokenTotal  int64 // sum over batches of distinct woken nodes
	Evictions   int64
	Joins       int64
	MaxRegion   int // largest re-elected region

	// Components counts independent region components across all batches
	// (the units of repair parallelism); MaxComponents is the largest
	// single-batch count.
	Components    int64
	MaxComponents int

	// Bootstrap cost of the initial static run (set via NoteBootstrap),
	// kept apart from the repair totals so repair-only accounting (e.g.
	// trace summaries) stays exact.
	BootstrapRounds      int
	BootstrapAwake       int64
	BootstrapMessages    int64
	BootstrapMsgsDropped int64
	BootstrapBits        int64
	BootstrapBitsMax     int
	BootstrapViolations  int64
}

// BootstrapCost describes the totals of the static run that produced the
// initial set, for NoteBootstrap.
type BootstrapCost struct {
	Rounds       int
	AwakePerNode []int64
	Messages     int64
	MsgsDropped  int64
	Bits         int64
	BitsMax      int
	Violations   int64
}

// String renders a compact report.
func (s Stats) String() string {
	return fmt.Sprintf(
		"batches=%d updates=%d elections=%d rounds=%d awake=%d msgs=%d woken=%d evict=%d join=%d maxRegion=%d",
		s.Batches, s.Updates, s.Elections, s.Rounds, s.AwakeTotal, s.Messages,
		s.WokenTotal, s.Evictions, s.Joins, s.MaxRegion)
}
