package dynamic

import "fmt"

// BatchStats reports the measured cost of one Apply call with the same
// semantics as a static run: rounds elapsed, awake rounds spent, CONGEST
// messages sent.
type BatchStats struct {
	Updates int // updates applied in the batch
	Woken   int // distinct nodes that woke at least once
	Region  int // size of the re-elected uncovered region
	Rounds  int // repair rounds (1 detection/probe round + election rounds)

	AwakeRounds int64 // total node-awake-rounds charged
	Messages    int64 // CONGEST messages (notifications, probes, election)

	Evictions int // members evicted by conflict resolution
	Joins     int // members added by the re-election
	Retries   int // Ghaffari stages that left stragglers
}

// Stats accumulates engine-lifetime measurements.
type Stats struct {
	Batches   int64
	Updates   int64
	Elections int64 // batches that needed a re-election

	Rounds     int64 // total repair rounds
	AwakeTotal int64 // total awake rounds across all repairs
	Messages   int64
	WokenTotal int64 // sum over batches of distinct woken nodes
	Evictions  int64
	Joins      int64
	MaxRegion  int // largest re-elected region

	// Bootstrap cost of the initial static run (set via NoteBootstrap).
	BootstrapRounds   int
	BootstrapAwake    int64
	BootstrapMessages int64
}

// String renders a compact report.
func (s Stats) String() string {
	return fmt.Sprintf(
		"batches=%d updates=%d elections=%d rounds=%d awake=%d msgs=%d woken=%d evict=%d join=%d maxRegion=%d",
		s.Batches, s.Updates, s.Elections, s.Rounds, s.AwakeTotal, s.Messages,
		s.WokenTotal, s.Evictions, s.Joins, s.MaxRegion)
}
