package dynamic

import (
	"sync"
	"sync/atomic"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/sim"
)

// This file parallelizes the re-election across the independent regions of
// one coalesced window. The uncovered region's induced subgraph splits
// into connected components that cannot observe each other (an MIS of a
// disconnected graph is the union of per-component MISes), so each
// component elects on its own engine — concurrently when Params.Workers
// allows — and a deterministic region-ordered merge folds the winners and
// counters back. Determinism does not depend on the schedule: every
// component derives its election seed from the (batch, component ordinal)
// pair alone, per-component counters accumulate in component-local state,
// and the merge always folds components in ascending ordinal order from a
// single goroutine. Workers only changes wall-clock time, never a counter
// or the elected set; both repair paths (batch and legacy) share the same
// partition and merge, which keeps them counter-identical.

// partitioner splits a region subgraph into connected components with a
// reusable union-find. Components are ordered by their smallest member
// (first occurrence in node order), and each component's node list is
// ascending — both independent of edge iteration order, so the ordinals
// are deterministic.
type partitioner struct {
	parent []int32
	ord    []int32 // root -> component ordinal
	sizes  []int32
	offs   []int32
	nodes  []int32
	cursor []int32
	rank   []int32 // subgraph-local node -> index within its component
}

// split partitions sub and returns component c's (subgraph-local) nodes
// as nodes[offs[c]:offs[c+1]], ascending within each component. The
// returned slices are the partitioner's own buffers, valid until the next
// split.
func (p *partitioner) split(sub *graph.Graph) (offs, nodes []int32) {
	n := sub.N()
	p.parent = ensureInt32(p.parent, n)
	for v := 0; v < n; v++ {
		p.parent[v] = int32(v)
	}
	for v := 0; v < n; v++ {
		for _, u := range sub.Neighbors(v) {
			if u > int32(v) {
				p.union(int32(v), u)
			}
		}
	}
	// Ordinals by first occurrence in ascending node order; sizes per
	// component.
	p.ord = ensureInt32(p.ord, n)
	p.sizes = p.sizes[:0]
	k := int32(0)
	for v := 0; v < n; v++ {
		r := p.find(int32(v))
		if int(r) == v {
			p.ord[r] = k
			k++
			p.sizes = append(p.sizes, 0)
		}
		p.sizes[p.ord[r]]++
	}
	// Prefix offsets, then bucket-fill the node lists in ascending order.
	p.offs = ensureInt32(p.offs, int(k)+1)
	p.cursor = ensureInt32(p.cursor, int(k))
	run := int32(0)
	for c := int32(0); c < k; c++ {
		p.offs[c] = run
		p.cursor[c] = run
		run += p.sizes[c]
	}
	p.offs[k] = run
	p.nodes = ensureInt32(p.nodes, n)
	p.rank = ensureInt32(p.rank, n)
	for v := 0; v < n; v++ {
		c := p.ord[p.find(int32(v))]
		p.rank[v] = p.cursor[c] - p.offs[c]
		p.nodes[p.cursor[c]] = int32(v)
		p.cursor[c]++
	}
	return p.offs, p.nodes
}

// find uses path halving; union attaches the larger root under the
// smaller, so a component's root is always its smallest member and the
// first-occurrence ordinal assignment can test root == self.
func (p *partitioner) find(x int32) int32 {
	for p.parent[x] != x {
		p.parent[x] = p.parent[p.parent[x]]
		x = p.parent[x]
	}
	return x
}

func (p *partitioner) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	switch {
	case ra == rb:
	case ra < rb:
		p.parent[rb] = ra
	default:
		p.parent[ra] = rb
	}
}

// ensureInt32 returns a slice of length n, reusing s's storage when it is
// large enough. Contents are unspecified.
func ensureInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// compRun is one non-singleton component's election state: the work list
// entry a worker consumes and the component-local result the merge folds.
// Counters and awake charges accumulate here — never on the Engine — so
// workers share nothing but the immutable region subgraph.
type compRun struct {
	ids   []int  // component nodes, region-subgraph-local, ascending (reused)
	inSet []bool // elected set, component-local indexing

	awake                     []int64 // awake rounds per component-local node
	rounds                    int
	msgs, dropped, bits, viol int64
	bitsMax                   int
	retries                   int

	// Reusable CSR buffers for the component's induced subgraph (see
	// subgraph); owned per component so concurrent elections never share.
	offs []int32
	adjb []int32

	rec *obs.Recorder // per-component trace buffer; nil when untraced
	err error
}

// subgraph builds the component's induced subgraph from the region
// subgraph's CSR rows into the compRun's reusable buffers. A connected
// component is closed under adjacency, so no membership filtering is
// needed: every neighbor maps through rank to its component-local index,
// and rows stay ascending because rank is monotone within a component.
func (cr *compRun) subgraph(sub *graph.Graph, rank []int32) *graph.Graph {
	cr.offs = cr.offs[:0]
	cr.adjb = cr.adjb[:0]
	for _, v := range cr.ids {
		cr.offs = append(cr.offs, int32(len(cr.adjb)))
		for _, u := range sub.Neighbors(v) {
			cr.adjb = append(cr.adjb, rank[u])
		}
	}
	cr.offs = append(cr.offs, int32(len(cr.adjb)))
	return graph.FromCSR(cr.offs, cr.adjb)
}

// reset prepares the state for a component of the given size.
func (cr *compRun) reset(size int, traced bool) {
	cr.ids = cr.ids[:0]
	cr.inSet = nil
	if cap(cr.awake) < size {
		cr.awake = make([]int64, size)
	} else {
		cr.awake = cr.awake[:size]
		for i := range cr.awake {
			cr.awake[i] = 0
		}
	}
	cr.rounds, cr.bitsMax, cr.retries = 0, 0, 0
	cr.msgs, cr.dropped, cr.bits, cr.viol = 0, 0, 0, 0
	cr.err = nil
	if traced {
		if cr.rec == nil {
			cr.rec = &obs.Recorder{}
		}
		cr.rec.Reset()
	} else {
		cr.rec = nil
	}
}

// account folds one engine run into the component's counters. orig maps
// run-local node i to its component-local index (nil = identity), the
// electGhaffari retry-chain convention.
func (cr *compRun) account(res *sim.Result, orig []int32) {
	cr.rounds += res.Rounds
	cr.msgs += res.MsgsSent
	cr.dropped += res.MsgsDropped
	cr.bits += res.BitsTotal
	cr.viol += res.Violations
	if res.BitsMax > cr.bitsMax {
		cr.bitsMax = res.BitsMax
	}
	for i, cnt := range res.Awake {
		j := i
		if orig != nil {
			j = int(orig[i])
		}
		cr.awake[j] += int64(cnt)
	}
}

// compCfg derives component c's election config from the batch config:
// every component draws an independent randomness stream determined by
// the (batch seed, component ordinal) pair alone, regardless of which
// worker runs it or when. The multiplier is a distinct splitmix64-style
// odd constant so component streams cannot collide with the batch
// (simCfg) or retry (bump) derivations.
func compCfg(base sim.Config, c uint64) sim.Config {
	base.Seed ^= (c + 1) * 0x94d049bb133111eb
	return base
}

// electComponents partitions the region subgraph, elects every
// non-singleton component — concurrently when Params.Workers > 1 — and
// merges the winners in component order. region is the sorted engine-slot
// list the subgraph was built from; sub's node i is region[i].
func (e *Engine) electComponents(sub *graph.Graph, region []int32, st regionTracker, bs *BatchStats) error {
	offs, nodes := e.part.split(sub)
	work := e.prepComps(offs, nodes)
	var base sim.Config
	if sc, ok := st.(*scratch); ok && sc.cfgSet {
		// Overlapped repair: the election config was sealed on the main
		// goroutine before launch (simCfg reads batchNo and the slot count,
		// both owned by the structural side while a repair is in flight —
		// calling simCfg here would race with the next window's apply).
		base = sc.cfg
	} else {
		base = e.simCfg()
	}
	switch poolW := min(e.p.Workers, len(work)); {
	case e.p.Legacy:
		// The reference path elects sequentially on the per-node engines;
		// the shared partition, seeds, and merge keep it counter-identical
		// to any batch-path worker count.
		for _, c := range work {
			e.electComponentLegacy(sub, int(c), base)
		}
	case poolW > 1:
		// Component pool, shaped like bench.RunThroughput: per-worker Mem,
		// an atomic cursor for work stealing, inner elections sequential.
		// Ensure the pool up front — Get must not grow it while shared.
		e.memPool.Ensure(poolW)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < poolW; w++ {
			wg.Add(1)
			go func(mem *sim.Mem) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(work) {
						return
					}
					e.electComponent(sub, int(work[i]), base, mem, 1)
				}
			}(e.memPool.Get(w))
		}
		wg.Wait()
	default:
		// Zero or one component pool slot: run inline and give the inner
		// election engine the full worker budget instead.
		for _, c := range work {
			e.electComponent(sub, int(c), base, e.memPool.Get(0), e.p.Workers)
		}
	}
	return e.mergeComponents(region, offs, nodes, st, bs)
}

// prepComps sizes the per-component state for this partition and returns
// the work list: the ordinals of the non-singleton components (the only
// ones that need an engine election).
func (e *Engine) prepComps(offs, nodes []int32) []int32 {
	k := len(offs) - 1
	if len(e.comps) < k {
		e.comps = append(e.comps, make([]compRun, k-len(e.comps))...)
	}
	e.work = e.work[:0]
	for c := 0; c < k; c++ {
		lo, hi := offs[c], offs[c+1]
		if hi-lo <= 1 {
			continue
		}
		cr := &e.comps[c]
		cr.reset(int(hi-lo), e.tracer != nil)
		for _, i := range nodes[lo:hi] {
			cr.ids = append(cr.ids, int(i))
		}
		e.work = append(e.work, int32(c))
	}
	return e.work
}

// mergeComponents is the region-ordered reduce: from a single goroutine,
// fold every component back into the engine in ascending ordinal order —
// singletons analytically, elected components from their compRun. All
// folded quantities are order-insensitive sums (or maxes), and the order
// is fixed anyway, so the outcome is byte-identical for any worker count.
func (e *Engine) mergeComponents(region []int32, offs, nodes []int32, st regionTracker, bs *BatchStats) error {
	k := len(offs) - 1
	bs.Components = k
	// Surface the first failed election before mutating anything, keeping a
	// failed Apply's partial state no worse than the sequential path's.
	for _, c := range e.work {
		if err := e.comps[c].err; err != nil {
			return err
		}
	}
	singles := 0
	for c := 0; c < k; c++ {
		comp := nodes[offs[c]:offs[c+1]]
		if len(comp) == 1 {
			// Singleton fast path: an uncovered node with no uncovered
			// neighbor joins deterministically — one awake round to decide,
			// no messages, no randomness. The analytic charge replaces the
			// engine run; the join notification is charged below like any
			// other joiner's.
			bs.Rounds++
			v := region[comp[0]]
			e.awake[v]++
			bs.AwakeRounds++
			singles++
			e.joinMIS(v, st, bs)
			continue
		}
		cr := &e.comps[c]
		bs.Rounds += cr.rounds
		bs.Messages += cr.msgs
		bs.MsgsDropped += cr.dropped
		bs.Bits += cr.bits
		bs.Violations += cr.viol
		if cr.bitsMax > bs.BitsMax {
			bs.BitsMax = cr.bitsMax
		}
		bs.Retries += cr.retries
		e.simMsgs += cr.msgs
		for i, a := range cr.awake {
			e.awake[region[comp[i]]] += a
			bs.AwakeRounds += a
		}
		if cr.rec != nil && e.tracer != nil {
			cr.rec.Replay(e.tracer)
		}
		for i, in := range cr.inSet {
			if in {
				e.joinMIS(region[comp[i]], st, bs)
			}
		}
	}
	// One synthetic span for all singleton decisions of the batch, so the
	// trace's phase and round sums still reproduce the engine totals
	// (singletons charge awake rounds but send nothing).
	if singles > 0 && e.tracer != nil {
		e.tracer.PhaseStart("repair/singleton")
		e.tracer.Round(obs.RoundStats{Round: 0, Awake: singles})
		e.tracer.PhaseEnd(obs.PhaseStats{
			Name: "repair/singleton", Rounds: singles, Awake: int64(singles),
		})
	}
	return nil
}

// joinMIS adds v to the maintained set: the joiner notifies its full
// neighborhood, which wakes for the notification. On the batch path the
// wake is a word-op row OR (and under packed repair it reads the sealed
// row snapshot, never e.adj).
func (e *Engine) joinMIS(v int32, st regionTracker, bs *BatchStats) {
	e.setMember(v)
	bs.Joins++
	if sc, ok := st.(*scratch); ok {
		bs.Messages += int64(e.wakeRow(v, sc))
		return
	}
	bs.Messages += int64(len(e.adj[v]))
	for _, u := range e.adj[v] {
		st.wake(u)
	}
}
