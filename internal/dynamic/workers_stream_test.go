package dynamic_test

// Worker-count determinism over the benchmark stream shapes. This lives in
// an external test package because internal/stream imports
// internal/dynamic. The churn and hub workloads run on clustered graphs
// (RGG, Barabási–Albert) where uncovered regions reliably split into
// multi-node components, so Workers 8 genuinely exercises the parallel
// component executor — including under the race detector.

import (
	"reflect"
	"testing"

	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/stream"
	"github.com/energymis/energymis/internal/verify"
)

// TestWorkersDeterministicAcrossStreams drives the batch path through the
// three benchmark stream shapes at Workers ∈ {1, 2, 8} and requires
// byte-identical per-batch BatchStats, final sets, awake ledgers, and
// lifetime Stats across worker counts.
func TestWorkersDeterministicAcrossStreams(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		trace [][]dynamic.Update
	}{
		{
			name: "churn",
			g:    graph.RGG(400, 12, 7),
		},
		{
			name: "window",
			g:    graph.GNP(300, 0, 7), // edgeless universe; the stream adds edges
		},
		{
			name: "hub",
			g:    graph.BarabasiAlbert(300, 4, 7),
		},
	}
	cases[0].trace = stream.UniformChurn(cases[0].g, 50, 16, 17)
	cases[1].trace = stream.SlidingWindow(300, 40, 120, 17)
	cases[2].trace = stream.HubAttack(cases[2].g, 30, 17)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type runOut struct {
				perBatch []dynamic.BatchStats
				inSet    []bool
				awake    []int64
				stats    dynamic.Stats
			}
			run := func(workers int) runOut {
				e, err := dynamic.New(tc.g, verify.GreedyMIS(tc.g),
					dynamic.Params{Seed: 23, Workers: workers, SelfCheck: true})
				if err != nil {
					t.Fatal(err)
				}
				var out runOut
				for i, batch := range tc.trace {
					bs, err := e.Apply(batch)
					if err != nil {
						t.Fatalf("workers=%d batch %d: %v", workers, i, err)
					}
					out.perBatch = append(out.perBatch, bs)
				}
				out.inSet = e.InSet()
				out.awake = e.AwakePerNode()
				out.stats = e.Stats()
				return out
			}
			base := run(1)
			if tc.name != "window" && base.stats.MaxComponents < 2 {
				t.Fatalf("workload never split a region into components (max %d); "+
					"the parallel path is not exercised", base.stats.MaxComponents)
			}
			for _, workers := range []int{2, 8} {
				got := run(workers)
				if !reflect.DeepEqual(got.perBatch, base.perBatch) {
					for i := range base.perBatch {
						if got.perBatch[i] != base.perBatch[i] {
							t.Fatalf("workers=%d batch %d diverges:\n w1: %+v\n w%d: %+v",
								workers, i, base.perBatch[i], workers, got.perBatch[i])
						}
					}
				}
				if !reflect.DeepEqual(got.inSet, base.inSet) {
					t.Errorf("workers=%d: final set differs from Workers=1", workers)
				}
				if !reflect.DeepEqual(got.awake, base.awake) {
					t.Errorf("workers=%d: per-node awake ledger differs from Workers=1", workers)
				}
				if got.stats != base.stats {
					t.Errorf("workers=%d: Stats differ:\n w1: %+v\n w%d: %+v",
						workers, base.stats, workers, got.stats)
				}
			}
		})
	}
}
