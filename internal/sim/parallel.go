package sim

import (
	"fmt"
	"sort"
	"sync"
)

// The parallel executor splits every round into two barrier-separated
// passes over the awake set:
//
//  1. compose+scatter: each awake sender runs Compose and finalizes its
//     outbox into port-grouped form (final/off), counting traffic into a
//     per-worker accumulator. Every outbox is owned by exactly one worker,
//     so the pass is lock-free.
//  2. gather+deliver: each awake receiver walks its incident ports in
//     sorted order, and for every awake neighbor uses the CSR port map
//     (graph.Mates) to locate, in O(1), its own segment of that sender's
//     finalized outbox. Concatenating segments in port order reproduces
//     exactly the sender-sorted inbox the sequential executor builds, so
//     results are byte-identical for any worker count.
//
// Routing work that the sequential executor performs as a third, serial
// phase is folded into these two parallel passes.

// routeStats is one worker's traffic accounting, merged after the compose
// pass (deterministically: sums and maxes are order-independent).
type routeStats struct {
	msgs, drops, bits, viol int64
	bitsMax                 int32
}

// roundWorkers bounds the configured worker count by the awake-set size:
// chunks stay balanced (floor or ceil of k/w items each) and worker counts
// exceeding k degrade to k single-item chunks rather than degenerate empty
// ones.
func (e *engine) roundWorkers(k int) (workers int) {
	workers = e.cfg.Workers
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runChunks executes chunk(w, lo, hi) for the balanced w-th range of k
// items on each worker. A single worker runs inline (no goroutine); panics
// inside workers are captured and re-raised on the caller's goroutine so a
// misbehaving machine fails the run the same way it does sequentially.
func runChunks(workers, k int, chunk func(w, lo, hi int)) {
	if workers <= 1 {
		chunk(0, 0, k)
		return
	}
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*k/workers, (w+1)*k/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			chunk(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

func (e *engine) composeParallel(awake []int32, round int) {
	if len(awake) == 0 {
		return
	}
	workers := e.roundWorkers(len(awake))
	stamp := e.curStamp
	for w := 0; w < workers; w++ {
		e.acctBuf[w] = routeStats{}
	}
	runChunks(workers, len(awake), func(w, lo, hi int) {
		rs := &e.acctBuf[w]
		for _, v := range awake[lo:hi] {
			ob := &e.outboxes[v]
			ob.reset(v, e.g.Neighbors(int(v)))
			e.machines[v].Compose(round, ob)
			ob.finalize(e.awakeStamp, stamp, e.cfg.B, rs)
		}
	})
	var merged routeStats
	for w := 0; w < workers; w++ {
		rs := e.acctBuf[w]
		merged.msgs += rs.msgs
		merged.drops += rs.drops
		merged.bits += rs.bits
		merged.viol += rs.viol
		if rs.bitsMax > merged.bitsMax {
			merged.bitsMax = rs.bitsMax
		}
	}
	e.res.MsgsSent += merged.msgs
	e.res.MsgsDropped += merged.drops
	e.res.BitsTotal += merged.bits
	e.res.Violations += merged.viol
	if int(merged.bitsMax) > e.res.BitsMax {
		e.res.BitsMax = int(merged.bitsMax)
	}
	if merged.viol > 0 && e.cfg.Strict {
		panic(fmt.Sprintf("sim: %d messages exceed CONGEST budget %d", merged.viol, e.cfg.B))
	}
}

// finalize groups this round's queued messages by destination port:
// final[off[p]:off[p+1]] holds port p's messages, broadcasts first then
// unicasts, each in call order — the order the sequential router delivers
// them in. Traffic is accounted into rs; messages whose receiver is asleep
// this round are counted as dropped (they stay in the buffer but no asleep
// node gathers).
func (ob *Outbox) finalize(awakeStamp []int64, stamp int64, budget int, rs *routeStats) {
	d := len(ob.neighbors)
	nb := len(ob.bcast)
	nu := len(ob.msgs)
	total := nb*d + nu
	if cap(ob.off) < d+1 {
		ob.off = make([]int32, d+1)
		ob.cur = make([]int32, d+1)
	}
	ob.off = ob.off[:d+1]
	ob.cur = ob.cur[:d+1]
	if total == 0 {
		for i := range ob.off {
			ob.off[i] = 0
		}
		return
	}

	// Account broadcasts: one CONGEST message per incident edge each.
	for i := range ob.bcast {
		m := &ob.bcast[i]
		rs.msgs += int64(d)
		rs.bits += int64(d) * int64(m.Bits)
		if m.Bits > rs.bitsMax {
			rs.bitsMax = m.Bits
		}
		if int(m.Bits) > budget {
			rs.viol += int64(d)
		}
	}

	// Per-port counts (cur doubles as the counting buffer); the resolved
	// ports are kept for the placement pass so each unicast pays one
	// binary search.
	cnt := ob.cur
	for p := 0; p <= d; p++ {
		cnt[p] = 0
	}
	ob.uports = ob.uports[:0]
	for i := range ob.msgs {
		am := &ob.msgs[i]
		p := portOf(ob.neighbors, am.to)
		if p < 0 {
			panic(fmt.Sprintf("sim: node %d unicast to non-neighbor %d", ob.node, am.to))
		}
		ob.uports = append(ob.uports, int32(p))
		cnt[p]++
		m := &am.msg
		rs.msgs++
		rs.bits += int64(m.Bits)
		if m.Bits > rs.bitsMax {
			rs.bitsMax = m.Bits
		}
		if int(m.Bits) > budget {
			rs.viol++
		}
	}

	// Offsets, then write cursors positioned after each broadcast block.
	off := ob.off
	run := int32(0)
	for p := 0; p < d; p++ {
		c := cnt[p] + int32(nb)
		off[p] = run
		cnt[p] = run + int32(nb)
		run += c
	}
	off[d] = run

	if cap(ob.final) < total {
		ob.final = make([]Msg, total)
	}
	final := ob.final[:total]
	for bi := range ob.bcast {
		m := ob.bcast[bi]
		for p := 0; p < d; p++ {
			final[off[p]+int32(bi)] = m
		}
	}
	for i := range ob.msgs {
		p := ob.uports[i]
		final[cnt[p]] = ob.msgs[i].msg
		cnt[p]++
	}
	ob.final = final

	// Drops: every message on a port whose receiver sleeps this round.
	for p := 0; p < d; p++ {
		if awakeStamp[ob.neighbors[p]] != stamp {
			rs.drops += int64(off[p+1] - off[p])
		}
	}
}

// portOf returns the index of u in the sorted neighbor list, or -1.
func portOf(neighbors []int32, u int32) int {
	i := sort.Search(len(neighbors), func(i int) bool { return neighbors[i] >= u })
	if i < len(neighbors) && neighbors[i] == u {
		return i
	}
	return -1
}

// deliverParallel gathers each awake receiver's inbox from the finalized
// outboxes via the port map, runs Deliver over the worker pool, and then
// applies scheduling decisions sequentially (the wake buckets are shared
// state).
func (e *engine) deliverParallel(awake []int32, round int) error {
	if len(awake) == 0 {
		return nil
	}
	workers := e.roundWorkers(len(awake))
	stamp := e.curStamp
	if cap(e.nextBuf) < len(awake) {
		e.nextBuf = make([]int, len(awake))
	}
	next := e.nextBuf[:len(awake)]
	runChunks(workers, len(awake), func(w, lo, hi int) {
		inbox := e.scratch[w]
		for i := lo; i < hi; i++ {
			u := awake[i]
			inbox = e.gather(inbox[:0], u, stamp, awake)
			next[i] = e.machines[u].Deliver(round, inbox)
		}
		e.scratch[w] = inbox
	})
	for i, v := range awake {
		if next[i] != Never && next[i] <= round {
			return fmt.Errorf("sim: node %d returned wake round %d <= current %d", v, next[i], round)
		}
		if err := e.schedule(v, next[i]); err != nil {
			return err
		}
	}
	return nil
}

// gather appends the round's messages for receiver u to inbox, in the
// sequential executor's delivery order: ascending sender, with each
// sender's broadcasts before its unicasts in call order. When the awake
// set is much smaller than u's degree it iterates awake senders with a
// port lookup instead of scanning every incident port.
func (e *engine) gather(inbox []Msg, u int32, stamp int64, awake []int32) []Msg {
	nbrs := e.g.Neighbors(int(u))
	base := e.g.ArcBase(int(u))
	if len(awake)*8 < len(nbrs) {
		// Sparse round: intersect the (sorted) awake set with the
		// adjacency list from the sender side.
		for _, v := range awake {
			if v == u {
				continue
			}
			p := e.g.Port(int(u), v)
			if p < 0 {
				continue
			}
			inbox = e.gatherPort(inbox, base, int32(p), v)
		}
		return inbox
	}
	for p, v := range nbrs {
		if e.awakeStamp[v] != stamp {
			continue
		}
		inbox = e.gatherPort(inbox, base, int32(p), v)
	}
	return inbox
}

// gatherPort appends the messages sender v queued on the edge arriving at
// the receiver's arc base+p. The port map turns the receiver-side arc into
// the sender-side port in O(1).
func (e *engine) gatherPort(inbox []Msg, base, p, v int32) []Msg {
	q := e.mates[base+p] - e.g.ArcBase(int(v))
	ob := &e.outboxes[v]
	if int(q)+1 >= len(ob.off) {
		return inbox // sender composed nothing this round
	}
	return append(inbox, ob.final[ob.off[q]:ob.off[q+1]]...)
}
