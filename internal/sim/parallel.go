package sim

import (
	"fmt"
	"sync"
)

// composeParallel runs the Compose phase of one round over a worker pool.
// Machines touch only their own state, and each outbox belongs to exactly
// one node, so no synchronization beyond the WaitGroup barrier is needed.
func (e *engine) composeParallel(awake []int32, round int) {
	workers := e.cfg.Workers
	if workers > len(awake) {
		workers = len(awake)
	}
	var wg sync.WaitGroup
	chunk := (len(awake) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(awake) {
			hi = len(awake)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			for _, v := range part {
				ob := &e.outboxes[v]
				ob.reset(v, e.g.Neighbors(int(v)))
				e.machines[v].Compose(round, ob)
			}
		}(awake[lo:hi])
	}
	wg.Wait()
}

// deliverParallel runs the Deliver phase of one round over a worker pool
// and then applies scheduling decisions sequentially (the wake buckets are
// shared state). Inboxes were filled in sender order by the sequential
// routing phase, so per-node delivery order matches the sequential
// executor exactly.
func (e *engine) deliverParallel(awake []int32, round int) error {
	workers := e.cfg.Workers
	if workers > len(awake) {
		workers = len(awake)
	}
	next := make([]int, len(awake))
	var wg sync.WaitGroup
	chunk := (len(awake) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(awake) {
			hi = len(awake)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				v := awake[i]
				next[i] = e.machines[v].Deliver(round, e.inboxes[v])
				e.inboxes[v] = e.inboxes[v][:0]
			}
		}(lo, hi)
	}
	wg.Wait()
	for i, v := range awake {
		if next[i] != Never && next[i] <= round {
			return fmt.Errorf("sim: node %d returned wake round %d <= current %d", v, next[i], round)
		}
		if err := e.schedule(v, next[i]); err != nil {
			return err
		}
	}
	return nil
}
