package sim

// MemPool hands out per-worker engine buffer pools. A Mem must never be
// shared by concurrent runs (see Mem), so a caller that fans work out to
// k workers needs k distinct Mems; MemPool owns that set for the caller's
// lifetime, growing it on demand while keeping every warm Mem's buffers
// across batches.
//
// The zero value is ready to use. Ensure and Get grow the pool and are
// not safe to call concurrently; once Ensure(k) has returned, concurrent
// callers may each use the Mem a prior Get(i) (i < k) handed them, since
// handed-out Mems are never moved or replaced.
type MemPool struct {
	mems []*Mem
}

// Ensure grows the pool to at least k Mems.
func (p *MemPool) Ensure(k int) {
	for len(p.mems) < k {
		p.mems = append(p.mems, NewMem())
	}
}

// Get returns worker slot i's Mem, growing the pool as needed. The same
// slot always returns the same Mem.
func (p *MemPool) Get(i int) *Mem {
	p.Ensure(i + 1)
	return p.mems[i]
}

// Len returns the number of Mems the pool currently holds.
func (p *MemPool) Len() int { return len(p.mems) }
