package sim

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
)

// chatterMachine exercises every routing feature the batch runtime must
// reproduce: broadcasts and unicasts in the same round, random sleep
// schedules (messages to sleepers must drop), and an order-sensitive digest
// of the inbox so any deviation in delivery order changes the final state.
type chatterMachine struct {
	env    *Env
	rounds int
	digest uint64
	awake  int
}

func (m *chatterMachine) Init(env *Env) int {
	m.env = env
	return env.Node % 3 // staggered first wake
}

func (m *chatterMachine) Compose(round int, out *Outbox) {
	r := m.env.Rand
	if r.Bernoulli(0.6) {
		out.Broadcast(Msg{Kind: 1, A: uint64(round), Bits: 8})
	}
	for _, u := range m.env.Neighbors {
		if r.Bernoulli(0.3) {
			out.Send(u, Msg{Kind: 2, A: uint64(u), Bits: 12})
		}
	}
}

func (m *chatterMachine) Deliver(round int, inbox []Msg) int {
	for _, msg := range inbox {
		// Order-sensitive rolling hash over the full inbox sequence.
		m.digest = m.digest*0x9e3779b97f4a7c15 + uint64(msg.From)<<16 + uint64(msg.Kind)<<8 + msg.A
	}
	m.awake++
	if m.awake >= m.rounds {
		return Never
	}
	// Random sleep gap: some neighbors' messages must be dropped.
	return round + 1 + m.env.Rand.Intn(3)
}

func runChatter(t *testing.T, g *graph.Graph, batch bool, workers int) ([]uint64, *Result) {
	t.Helper()
	n := g.N()
	machines := make([]Machine, n)
	nodes := make([]chatterMachine, n)
	for v := range machines {
		nodes[v].rounds = 6
		machines[v] = &nodes[v]
	}
	cfg := Config{Seed: 42, Workers: workers}
	var res *Result
	var err error
	if batch {
		res, err = RunBatch(g, Adapt(machines), cfg)
	} else {
		res, err = Run(g, machines, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]uint64, n)
	for v := range nodes {
		digests[v] = nodes[v].digest
	}
	return digests, res
}

// TestBatchAdapterMatchesPerNodeEngine runs the same per-node machines on
// both engines (and on the batch engine across worker counts) and requires
// byte-identical inbox sequences and counters.
func TestBatchAdapterMatchesPerNodeEngine(t *testing.T) {
	graphs := []*graph.Graph{
		graph.GNP(200, 0.05, 9),
		graph.Cycle(31),
		graph.Star(40),
		graph.FromEdges(6, [][2]int{{0, 1}}), // isolated nodes
	}
	for gi, g := range graphs {
		refDig, refRes := runChatter(t, g, false, 1)
		for _, workers := range []int{1, 2, 7} {
			dig, res := runChatter(t, g, true, workers)
			for v := range refDig {
				if dig[v] != refDig[v] {
					t.Fatalf("graph %d workers=%d: node %d inbox digest %x, per-node engine %x",
						gi, workers, v, dig[v], refDig[v])
				}
			}
			if res.Rounds != refRes.Rounds || res.MsgsSent != refRes.MsgsSent ||
				res.MsgsDropped != refRes.MsgsDropped || res.BitsTotal != refRes.BitsTotal ||
				res.BitsMax != refRes.BitsMax {
				t.Fatalf("graph %d workers=%d: counters differ\n per-node: %+v\n batch:    %+v",
					gi, workers, refRes, res)
			}
			for v := range res.Awake {
				if res.Awake[v] != refRes.Awake[v] {
					t.Fatalf("graph %d workers=%d: Awake[%d] = %d, per-node %d",
						gi, workers, v, res.Awake[v], refRes.Awake[v])
				}
			}
		}
	}
}

// badWakeBatch schedules a non-increasing wake round, which must error the
// run exactly like the per-node engine does.
type badWakeBatch struct{}

func (badWakeBatch) InitAll(env *BatchEnv) []int {
	first := make([]int, env.N)
	return first // everyone wakes at round 0
}
func (badWakeBatch) ComposeAll(round int, awake []int32, out *BatchOutbox) {}
func (badWakeBatch) DeliverAll(round int, awake []int32, in Inboxes, next []int) {
	for i := range next {
		next[i] = round // not > round: protocol error
	}
}

func TestBatchRejectsNonIncreasingWake(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := RunBatch(g, badWakeBatch{}, Config{}); err == nil {
		t.Fatal("expected error for non-increasing wake round")
	}
}

func TestBatchEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	res, err := RunBatch(g, badWakeBatch{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.MsgsSent != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

// pingBatch is a minimal native batch machine: every node broadcasts for a
// fixed number of rounds. Its state arrays are sized once and reused across
// runs, so a warm run through a pooled Mem measures the engine's own
// steady-state allocation behavior.
type pingBatch struct {
	g      *graph.Graph
	rounds int
	left   []int32
	first  []int
}

func (p *pingBatch) InitAll(env *BatchEnv) []int {
	if p.left == nil {
		p.left = make([]int32, env.N)
		p.first = make([]int, env.N)
	}
	for v := range p.left {
		p.left[v] = int32(p.rounds)
		p.first[v] = 0
	}
	return p.first
}

func (p *pingBatch) ComposeAll(round int, awake []int32, out *BatchOutbox) {
	for _, v := range awake {
		out.Broadcast(v, Msg{Kind: 1, A: uint64(v), Bits: 8})
	}
}

func (p *pingBatch) DeliverAll(round int, awake []int32, in Inboxes, next []int) {
	for i, v := range awake {
		p.left[v]--
		if p.left[v] <= 0 {
			next[i] = Never
		} else {
			next[i] = round + 1
		}
	}
}

// TestBatchSteadyStateAllocs asserts the headline property of the batch
// runtime: with a native BatchMachine and a warm Mem pool, a whole run
// performs only O(1) allocations (the escaping Result), independent of
// nodes, rounds, and traffic.
func TestBatchSteadyStateAllocs(t *testing.T) {
	g := graph.GNP(400, 10.0/400, 3)
	mem := NewMem()
	pb := &pingBatch{g: g, rounds: 5}
	run := func() {
		if _, err := RunBatch(g, pb, Config{Seed: 7, Mem: mem}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool
	allocs := testing.AllocsPerRun(5, run)
	// Result.Awake escapes (1 alloc) plus a handful of runtime incidentals;
	// anything growing with n or traffic is a pooling regression.
	if allocs > 8 {
		t.Fatalf("warm native batch run allocated %.0f times, want O(1)", allocs)
	}
}

// TestBatchAdapterAllocsBounded bounds the adapter path: it pays per-node
// init allocations (envs, rng streams, outbox growth) but nothing per
// round beyond them.
func TestBatchAdapterAllocsBounded(t *testing.T) {
	g := graph.GNP(400, 10.0/400, 3)
	n := g.N()
	machines := make([]Machine, n)
	nodes := make([]chatterMachine, n)
	mem := NewMem()
	run := func() {
		for v := range nodes {
			nodes[v] = chatterMachine{rounds: 4}
			machines[v] = &nodes[v]
		}
		if _, err := RunBatch(g, Adapt(machines), Config{Seed: 7, Mem: mem}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(3, run)
	if allocs > float64(n)*8 {
		t.Fatalf("warm adapter run allocated %.0f times (n=%d)", allocs, n)
	}
}

// TestBatchMemReuseAfterError: a run that errors mid-flight (MaxRounds
// here) must leave a pooled Mem clean — no phantom scheduled nodes, no
// stale awake stamps — so a subsequent run on a different (smaller) graph
// behaves exactly like one on fresh buffers.
func TestBatchMemReuseAfterError(t *testing.T) {
	mem := NewMem()
	big := graph.GNP(300, 0.05, 1)
	if _, err := RunBatch(big, &pingBatch{g: big, rounds: 50}, Config{Mem: mem, MaxRounds: 5}); err == nil {
		t.Fatal("expected MaxRounds error")
	}
	small := graph.Cycle(10)
	pooled, err := RunBatch(small, &pingBatch{g: small, rounds: 3}, Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunBatch(small, &pingBatch{g: small, rounds: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Rounds != fresh.Rounds || pooled.MsgsSent != fresh.MsgsSent ||
		pooled.MsgsDropped != fresh.MsgsDropped || pooled.BitsTotal != fresh.BitsTotal {
		t.Fatalf("post-error pooled run differs\n fresh:  %+v\n pooled: %+v", fresh, pooled)
	}
	for v := range pooled.Awake {
		if pooled.Awake[v] != fresh.Awake[v] {
			t.Fatalf("post-error pooled Awake[%d] = %d, fresh %d", v, pooled.Awake[v], fresh.Awake[v])
		}
	}
}
