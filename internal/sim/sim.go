package sim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/rng"
)

// Never is returned from Init or Deliver by a node that does not want to
// wake again.
const Never = -1

// Msg is one CONGEST message. Protocols encode their payload into Kind/A/B
// and declare its exact size in Bits; the engine verifies Bits against the
// model budget but does not interpret the payload.
type Msg struct {
	From int32  // sender node index (filled by the engine)
	Kind uint8  // protocol-defined tag
	A, B uint64 // protocol-defined payload words
	Bits int32  // declared payload size in bits (excluding From, which models the port number)
}

// Env gives a machine its static view of the network: everything a node is
// allowed to know initially (its own neighborhood and global parameter
// bounds), plus its private randomness.
type Env struct {
	Node      int // this node's index
	N         int // number of nodes (a polynomial bound on n is standard knowledge)
	Degree    int // this node's degree
	Neighbors []int32
	B         int // CONGEST message budget in bits
	Rand      *rng.Stream
}

// Machine is the per-node protocol automaton.
//
// The engine calls Init once before round 0; the return value is the first
// round in which the node is awake (Never to sleep forever). In each awake
// round r the engine calls Compose(r, out) to collect outgoing messages and
// then Deliver(r, inbox) with all messages received in r; Deliver returns
// the next awake round, which must be > r (or Never).
type Machine interface {
	Init(env *Env) int
	Compose(round int, out *Outbox)
	Deliver(round int, inbox []Msg) int
}

// Outbox collects the messages a node sends in one round. At most one
// message per neighbor per round is allowed (the CONGEST discipline);
// Broadcast counts as one message on every incident edge. Unicasts must
// address a neighbor of the sending node (the parallel executor enforces
// this; it is a model violation either way).
type Outbox struct {
	node      int32
	neighbors []int32
	msgs      []addressed
	bcast     []Msg

	// Port-grouped finalized form, used by the parallel routing phase:
	// final holds this round's messages grouped by destination port, with
	// port p's segment at final[off[p]:off[p+1]] (broadcasts first, then
	// unicasts, each in call order). All buffers are reused across rounds.
	final  []Msg
	off    []int32
	cur    []int32
	uports []int32 // resolved unicast ports, one per entry of msgs
}

type addressed struct {
	to  int32
	msg Msg
}

// Send queues a unicast message to neighbor `to`.
func (o *Outbox) Send(to int32, m Msg) {
	m.From = o.node
	o.msgs = append(o.msgs, addressed{to: to, msg: m})
}

// Broadcast queues m on every incident edge.
func (o *Outbox) Broadcast(m Msg) {
	m.From = o.node
	o.bcast = append(o.bcast, m)
}

func (o *Outbox) reset(node int32, neighbors []int32) {
	o.node = node
	o.neighbors = neighbors
	o.msgs = o.msgs[:0]
	o.bcast = o.bcast[:0]
}

// ResetFor prepares o to collect node `node`'s messages for one round.
// It exists for batch drivers outside this package (see BatchMachine) that
// execute per-node Compose logic against a scratch Outbox and then move the
// messages into a BatchOutbox with DrainTo; the engine's own paths call the
// unexported reset directly.
func (o *Outbox) ResetFor(node int32, neighbors []int32) { o.reset(node, neighbors) }

// DrainTo appends o's queued messages to a batch outbox under o's node as
// the sender, broadcasts first and unicasts second, each in call order —
// exactly the per-sender order the per-node engine's router uses, so a
// batch driver built on per-node Compose logic stays byte-identical to the
// per-node engine.
func (o *Outbox) DrainTo(out *BatchOutbox) {
	for _, m := range o.bcast {
		out.Broadcast(o.node, m)
	}
	for _, am := range o.msgs {
		out.Send(o.node, am.to, am.msg)
	}
}

// Result reports the measured complexity of one engine run.
type Result struct {
	Rounds      int     // total rounds executed (time complexity)
	Awake       []int32 // awake rounds per node (energy complexity is max)
	MsgsSent    int64   // messages put on edges by awake senders
	MsgsDropped int64   // messages whose receiver was asleep
	BitsTotal   int64   // sum of declared message sizes
	BitsMax     int     // largest single message
	Violations  int64   // messages exceeding the CONGEST budget B
}

// MaxAwake returns the energy complexity (max awake rounds over nodes).
func (r *Result) MaxAwake() int {
	m := int32(0)
	for _, a := range r.Awake {
		if a > m {
			m = a
		}
	}
	return int(m)
}

// AvgAwake returns the node-averaged awake rounds.
func (r *Result) AvgAwake() float64 {
	if len(r.Awake) == 0 {
		return 0
	}
	var s int64
	for _, a := range r.Awake {
		s += int64(a)
	}
	return float64(s) / float64(len(r.Awake))
}

// Config controls an engine run.
type Config struct {
	Seed      uint64
	MaxRounds int  // safety cap; 0 means a generous default
	B         int  // CONGEST budget in bits; 0 means 4*ceil(log2 N) (min 16)
	Workers   int  // >1 enables the parallel executor with that many workers
	Strict    bool // panic on CONGEST violations instead of counting them
	// Mem supplies pooled engine buffers reused across runs (see Mem). Used
	// by the batch runtime (RunBatch); nil allocates fresh buffers.
	Mem *Mem
	// Tracer, when non-nil, receives one obs.RoundStats callback at the
	// end of every executed round, carrying that round's counter deltas
	// and wall time. Nil disables tracing at the cost of a single branch
	// per round — the hot path is otherwise untouched.
	Tracer obs.Tracer
}

// ForPhase derives the engine configuration of phase `phase` of a composed
// run: an independent seed from the root seed, everything else (workers,
// budget, Mem pool) shared. This is the single definition of the per-phase
// seed derivation used by core and pipeline.
func (c Config) ForPhase(phase uint64) Config {
	c.Seed ^= phase * 0x9e3779b97f4a7c15
	return c
}

// DefaultB returns the default CONGEST budget for an n-node network.
func DefaultB(n int) int {
	b := 4 * log2Ceil(n)
	if b < 16 {
		b = 16
	}
	return b
}

func log2Ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Run executes machines on g until no node is scheduled to wake, and
// returns the measured Result. machines[v] is node v's automaton; len must
// equal g.N(). An error is returned only if the MaxRounds cap is hit or a
// machine misbehaves (returns a non-increasing wake round).
//
// The Config is normalized once here: Workers < 1 is treated as 1
// (sequential), Workers is capped at the node count, and the zero values
// of B and MaxRounds get their documented defaults.
func Run(g *graph.Graph, machines []Machine, cfg Config) (*Result, error) {
	n := g.N()
	if len(machines) != n {
		return nil, fmt.Errorf("sim: %d machines for %d nodes", len(machines), n)
	}
	if cfg.B == 0 {
		cfg.B = DefaultB(n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 22
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > n && n > 0 {
		cfg.Workers = n
	}
	e := &engine{g: g, machines: machines, cfg: cfg}
	return e.run()
}

type engine struct {
	g        *graph.Graph
	machines []Machine
	cfg      Config

	// Wake schedule: a bucket of nodes per pending round, a min-heap of
	// the pending rounds, and a free list so bucket slices are reused
	// across rounds instead of reallocated.
	buckets    map[int][]int32
	roundHeap  []int
	bucketPool [][]int32

	awakeStamp []int64 // node -> last round awake (+1), 0 = never
	inboxes    [][]Msg
	outboxes   []Outbox
	res        Result

	// Parallel executor state (allocated only when Workers > 1).
	mates    []int32 // CSR port map (graph.Mates)
	scratch  [][]Msg // per-worker inbox gather buffers
	nextBuf  []int   // per-round wake decisions, reused
	acctBuf  []routeStats
	curStamp int64
}

func (e *engine) schedule(v int32, round int) error {
	if round == Never {
		return nil
	}
	if round < 0 {
		return fmt.Errorf("sim: node %d scheduled invalid round %d", v, round)
	}
	b, ok := e.buckets[round]
	if !ok {
		// New pending round: register it in the heap and take a pooled
		// slice for its bucket.
		heapPush(&e.roundHeap, round)
		if k := len(e.bucketPool); k > 0 {
			b = e.bucketPool[k-1][:0]
			e.bucketPool = e.bucketPool[:k-1]
		}
	}
	e.buckets[round] = append(b, v)
	return nil
}

func (e *engine) run() (*Result, error) {
	n := e.g.N()
	e.buckets = make(map[int][]int32)
	e.awakeStamp = make([]int64, n)
	e.inboxes = make([][]Msg, n)
	e.outboxes = make([]Outbox, n)
	e.res.Awake = make([]int32, n)
	parallel := e.cfg.Workers > 1
	if parallel {
		e.mates = e.g.Mates()
		e.scratch = make([][]Msg, e.cfg.Workers)
		e.acctBuf = make([]routeStats, e.cfg.Workers)
	}

	envs := make([]Env, n)
	for v := 0; v < n; v++ {
		envs[v] = Env{
			Node:      v,
			N:         n,
			Degree:    e.g.Degree(v),
			Neighbors: e.g.Neighbors(v),
			B:         e.cfg.B,
			Rand:      rng.NewForNode(e.cfg.Seed, v),
		}
		first := e.machines[v].Init(&envs[v])
		if err := e.schedule(int32(v), first); err != nil {
			return nil, err
		}
	}

	tr := e.cfg.Tracer
	for len(e.roundHeap) > 0 {
		// Every scheduled round exceeds every processed round, so the
		// heap minimum is always the next round with awake nodes; rounds
		// in between elapse on the wall clock with everyone asleep.
		round := heapPop(&e.roundHeap)
		awake := e.buckets[round]
		delete(e.buckets, round)
		if round >= e.cfg.MaxRounds {
			return nil, fmt.Errorf("sim: exceeded MaxRounds=%d", e.cfg.MaxRounds)
		}
		slices.Sort(awake)
		// Deduplicate: a node must not be double-scheduled, but be tolerant
		// of identical entries.
		awake = dedupSorted(awake)

		var roundStart time.Time
		var snap Result
		if tr != nil {
			roundStart = time.Now()
			snap = e.res // counter snapshot; the round's deltas are diffs against it
		}

		stamp := int64(round) + 1
		for _, v := range awake {
			e.awakeStamp[v] = stamp
			e.res.Awake[v]++
		}

		if parallel {
			// Compose+route scatter and gather+deliver, both over the
			// worker pool (see parallel.go).
			e.curStamp = stamp
			e.composeParallel(awake, round)
			if err := e.deliverParallel(awake, round); err != nil {
				return nil, err
			}
		} else {
			// Phase 1: compose.
			for _, v := range awake {
				ob := &e.outboxes[v]
				ob.reset(v, e.g.Neighbors(int(v)))
				e.machines[v].Compose(round, ob)
			}

			// Phase 2: route (in sender order, so inboxes are sorted by
			// sender and runs are deterministic).
			for _, v := range awake {
				ob := &e.outboxes[v]
				for _, m := range ob.bcast {
					// A broadcast occupies every incident edge: one CONGEST
					// message per neighbor; account the whole fan-out at
					// once instead of per copy.
					e.accountFanout(m, len(ob.neighbors))
					for _, u := range ob.neighbors {
						e.deliverTo(u, m, stamp)
					}
				}
				for _, am := range ob.msgs {
					e.accountMsg(am.msg)
					e.deliverTo(am.to, am.msg, stamp)
				}
			}

			// Phase 3: deliver and reschedule.
			for _, v := range awake {
				next := e.machines[v].Deliver(round, e.inboxes[v])
				e.inboxes[v] = e.inboxes[v][:0]
				if next != Never && next <= round {
					return nil, fmt.Errorf("sim: node %d returned wake round %d <= current %d", v, next, round)
				}
				if err := e.schedule(v, next); err != nil {
					return nil, err
				}
			}
		}
		if tr != nil {
			tr.Round(obs.RoundStats{
				Round:       round,
				Awake:       len(awake),
				MsgsSent:    e.res.MsgsSent - snap.MsgsSent,
				MsgsDropped: e.res.MsgsDropped - snap.MsgsDropped,
				Bits:        e.res.BitsTotal - snap.BitsTotal,
				Violations:  e.res.Violations - snap.Violations,
				WallNS:      time.Since(roundStart).Nanoseconds(),
			})
		}
		e.bucketPool = append(e.bucketPool, awake)
		e.res.Rounds = round + 1
	}
	return &e.res, nil
}

// heapPush / heapPop implement a plain int min-heap (no interface
// indirection; the schedule is on the engine's hot path).
func heapPush(h *[]int, x int) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func heapPop(h *[]int) int {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l] < s[min] {
			min = l
		}
		if r < len(s) && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

func (e *engine) accountFanout(m Msg, copies int) {
	if copies == 0 {
		return
	}
	e.res.MsgsSent += int64(copies)
	e.res.BitsTotal += int64(copies) * int64(m.Bits)
	if int(m.Bits) > e.res.BitsMax {
		e.res.BitsMax = int(m.Bits)
	}
	if int(m.Bits) > e.cfg.B {
		if e.cfg.Strict {
			panic(fmt.Sprintf("sim: message of %d bits exceeds CONGEST budget %d", m.Bits, e.cfg.B))
		}
		e.res.Violations += int64(copies)
	}
}

func (e *engine) accountMsg(m Msg) {
	e.res.MsgsSent++
	e.res.BitsTotal += int64(m.Bits)
	if int(m.Bits) > e.res.BitsMax {
		e.res.BitsMax = int(m.Bits)
	}
	if int(m.Bits) > e.cfg.B {
		if e.cfg.Strict {
			panic(fmt.Sprintf("sim: message of %d bits exceeds CONGEST budget %d", m.Bits, e.cfg.B))
		}
		e.res.Violations++
	}
}

func (e *engine) deliverTo(u int32, m Msg, stamp int64) {
	if e.awakeStamp[u] == stamp {
		e.inboxes[u] = append(e.inboxes[u], m)
	} else {
		e.res.MsgsDropped++
	}
}

func dedupSorted(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
