// This file is the batch-machine runtime: the allocation-free execution
// path of the engine. See the package documentation in doc.go for how it
// relates to the per-node path in sim.go.

package sim

import (
	"fmt"
	"slices"
	"time"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/rng"
)

// BatchEnv is the static view a BatchMachine receives once, before round 0:
// the full topology (a simulated node may of course only *use* its own
// neighborhood), the model parameters, and the seed from which per-node
// randomness must be derived via rng.ForNode(Seed, v) — the same streams
// the per-node engine hands each Machine.
type BatchEnv struct {
	G    *graph.Graph
	N    int // number of nodes
	B    int // CONGEST message budget in bits
	Seed uint64
}

// BatchMachine is a whole-protocol automaton over flat per-node state.
//
// InitAll is called once; it returns each node's first awake round (Never
// to sleep forever), exactly like Machine.Init per node.
//
// In every round with a non-empty awake set, the engine calls ComposeAll
// and then DeliverAll with the sorted awake set. ComposeAll must emit
// messages grouped by sender, in the order senders appear in `awake` (the
// natural shape of a `for _, v := range awake` loop). DeliverAll reads each
// awake node's inbox via in.At(i) — i indexes into the `awake` slice it was
// given — and writes the node's next wake round (must be > round, or Never)
// into next[i].
//
// When the engine runs with Workers > 1, ComposeAll and DeliverAll are
// invoked concurrently on disjoint contiguous sub-slices of the round's
// awake set. An implementation must therefore only touch per-node state of
// the nodes in the slice it was handed — which the struct-of-arrays layout
// gives for free when the loop body stays per-node, as in the per-node
// engine's contract.
type BatchMachine interface {
	InitAll(env *BatchEnv) []int
	ComposeAll(round int, awake []int32, out *BatchOutbox)
	DeliverAll(round int, awake []int32, in Inboxes, next []int)
}

// BatchOutbox collects the messages of one ComposeAll call: broadcasts and
// unicasts in two flat arrays, each grouped by sender in awake order (the
// engine's router relies on that grouping to reproduce the per-node
// engine's delivery order without sorting). Buffers are pooled and reused
// across rounds.
type BatchOutbox struct {
	bcast []Msg   // broadcasts; Msg.From is the sender
	uni   []Msg   // unicasts; Msg.From is the sender
	uto   []int32 // unicast destinations, parallel to uni
}

// Broadcast queues m on every incident edge of node from.
func (o *BatchOutbox) Broadcast(from int32, m Msg) {
	m.From = from
	o.bcast = append(o.bcast, m)
}

// Send queues a unicast from node from to its neighbor to.
func (o *BatchOutbox) Send(from, to int32, m Msg) {
	m.From = from
	o.uni = append(o.uni, m)
	o.uto = append(o.uto, to)
}

func (o *BatchOutbox) reset() {
	o.bcast = o.bcast[:0]
	o.uni = o.uni[:0]
	o.uto = o.uto[:0]
}

// Inboxes serves every awake node's inbox as a segment of one pooled
// buffer: node awake[i]'s messages are At(i), in the same order the
// per-node engine would deliver them (ascending sender; per sender,
// broadcasts before unicasts, each in call order). The view may cover a
// sub-slice of the round's awake set (the parallel executor hands each
// worker its chunk); At indexes relative to that sub-slice.
type Inboxes struct {
	buf  []Msg
	off  []int32 // len = full awake set + 1
	base int32   // rank of this view's first node in the full awake set
}

// At returns the inbox of the i-th node of the awake slice this view was
// delivered with. The returned slice aliases the round's shared buffer and
// must not be retained across rounds.
func (in Inboxes) At(i int) []Msg {
	o := in.base + int32(i)
	return in.buf[in.off[o]:in.off[o+1]]
}

// Mem holds the engine's reusable buffers, so a caller executing many runs
// (the throughput executor in internal/bench) can amortize all engine
// allocations across runs instead of paying them per run. A Mem may be
// reused across runs of different sizes (buffers grow to the maximum) but
// must not be shared by concurrent runs. The zero value is ready to use.
type Mem struct {
	stamp      []int64 // node -> stampBase + round awake + 1
	stampBase  int64   // epoch offset, bumped per run so stamp needs no clearing
	rank       []int32 // node -> index in this round's awake set
	next       []int
	inbuf      []Msg
	inoff      []int32
	cnt        []int32
	routed     []Msg
	rdst       []int32
	roundHeap  []int
	buckets    map[int][]int32
	bucketPool [][]int32
	outs       []BatchOutbox
}

// NewMem returns an empty buffer pool.
func NewMem() *Mem { return &Mem{} }

func (m *Mem) grow(n, workers int) {
	if cap(m.stamp) < n {
		m.stamp = make([]int64, n)
		m.stampBase = 0
	}
	m.stamp = m.stamp[:n]
	if cap(m.rank) < n {
		m.rank = make([]int32, n)
	}
	m.rank = m.rank[:n]
	if m.buckets == nil {
		m.buckets = make(map[int][]int32)
	}
	for len(m.outs) < workers {
		m.outs = append(m.outs, BatchOutbox{})
	}
}

// RunBatch executes bm on g until no node is scheduled to wake, and returns
// the measured Result — the batch-runtime counterpart of Run, with
// identical Config normalization, scheduling, routing order, and
// accounting. cfg.Mem, when non-nil, supplies pooled buffers reused across
// runs.
func RunBatch(g *graph.Graph, bm BatchMachine, cfg Config) (*Result, error) {
	n := g.N()
	if cfg.B == 0 {
		cfg.B = DefaultB(n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 22
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > n && n > 0 {
		cfg.Workers = n
	}
	mem := cfg.Mem
	if mem == nil {
		mem = NewMem()
	}
	e := &batchEngine{g: g, bm: bm, cfg: cfg, mem: mem}
	return e.run()
}

type batchEngine struct {
	g   *graph.Graph
	bm  BatchMachine
	cfg Config
	mem *Mem
	res Result

	// Current-round state read by the hoisted worker closures (allocated
	// once per run, not once per round).
	curRound int
	curAwake []int32
	curNext  []int
}

func (e *batchEngine) schedule(v int32, round int) error {
	if round == Never {
		return nil
	}
	if round < 0 {
		return fmt.Errorf("sim: node %d scheduled invalid round %d", v, round)
	}
	m := e.mem
	b, ok := m.buckets[round]
	if !ok {
		heapPush(&m.roundHeap, round)
		if k := len(m.bucketPool); k > 0 {
			b = m.bucketPool[k-1][:0]
			m.bucketPool = m.bucketPool[:k-1]
		}
	}
	m.buckets[round] = append(b, v)
	return nil
}

func (e *batchEngine) run() (*Result, error) {
	n := e.g.N()
	m := e.mem
	m.grow(n, e.cfg.Workers)
	e.res.Awake = make([]int32, n) // escapes into the Result; never pooled

	// Leave the Mem reusable on every exit, including error paths: drain
	// pending wake buckets (a retry on the same pool must not see phantom
	// scheduled nodes, possibly from a different graph) and advance the
	// stamp epoch past every stamp this run may have written, so the next
	// run needs no O(n) clear and stale stamps can never match.
	defer func() {
		for r, b := range m.buckets {
			m.bucketPool = append(m.bucketPool, b)
			delete(m.buckets, r)
		}
		m.roundHeap = m.roundHeap[:0]
		m.stampBase += int64(e.curRound) + 2
	}()

	env := BatchEnv{G: e.g, N: n, B: e.cfg.B, Seed: e.cfg.Seed}
	first := e.bm.InitAll(&env)
	if len(first) != n {
		return nil, fmt.Errorf("sim: InitAll returned %d first rounds for %d nodes", len(first), n)
	}
	for v, r := range first {
		if err := e.schedule(int32(v), r); err != nil {
			return nil, err
		}
	}

	composeChunk := func(w, lo, hi int) {
		ob := &m.outs[w]
		ob.reset()
		e.bm.ComposeAll(e.curRound, e.curAwake[lo:hi], ob)
	}
	deliverChunk := func(w, lo, hi int) {
		view := Inboxes{buf: m.inbuf, off: m.inoff, base: int32(lo)}
		e.bm.DeliverAll(e.curRound, e.curAwake[lo:hi], view, e.curNext[lo:hi])
	}

	tr := e.cfg.Tracer
	for len(m.roundHeap) > 0 {
		round := heapPop(&m.roundHeap)
		awake := m.buckets[round]
		delete(m.buckets, round)
		if round >= e.cfg.MaxRounds {
			return nil, fmt.Errorf("sim: exceeded MaxRounds=%d", e.cfg.MaxRounds)
		}
		slices.Sort(awake)
		awake = dedupSorted(awake)

		var roundStart time.Time
		var snap Result
		if tr != nil {
			roundStart = time.Now()
			snap = e.res // counter snapshot; the round's deltas are diffs against it
		}

		stamp := m.stampBase + int64(round) + 1
		for i, v := range awake {
			m.stamp[v] = stamp
			m.rank[v] = int32(i)
			e.res.Awake[v]++
		}

		workers := e.cfg.Workers
		if workers > len(awake) {
			workers = len(awake)
		}
		if workers < 1 {
			workers = 1
		}

		// Phase 1: compose, one BatchOutbox per worker chunk.
		e.curRound, e.curAwake = round, awake
		runChunks(workers, len(awake), composeChunk)

		// Phase 2: route sequentially — merge the worker outboxes (chunks
		// partition the sorted awake set, so visiting them in order walks
		// senders ascending) into one receiver-grouped inbox buffer.
		if err := e.route(awake, workers, stamp); err != nil {
			return nil, err
		}

		// Phase 3: deliver over the same chunks, then apply scheduling
		// decisions sequentially (the wake buckets are shared state).
		if cap(m.next) < len(awake) {
			m.next = make([]int, len(awake))
		}
		next := m.next[:len(awake)]
		e.curNext = next
		runChunks(workers, len(awake), deliverChunk)
		for i, v := range awake {
			if next[i] != Never && next[i] <= round {
				return nil, fmt.Errorf("sim: node %d returned wake round %d <= current %d", v, next[i], round)
			}
			if err := e.schedule(v, next[i]); err != nil {
				return nil, err
			}
		}
		if tr != nil {
			tr.Round(obs.RoundStats{
				Round:       round,
				Awake:       len(awake),
				MsgsSent:    e.res.MsgsSent - snap.MsgsSent,
				MsgsDropped: e.res.MsgsDropped - snap.MsgsDropped,
				Bits:        e.res.BitsTotal - snap.BitsTotal,
				Violations:  e.res.Violations - snap.Violations,
				WallNS:      time.Since(roundStart).Nanoseconds(),
			})
		}
		m.bucketPool = append(m.bucketPool, awake)
		e.res.Rounds = round + 1
	}
	return &e.res, nil
}

// route merges the worker outboxes into the round's inbox buffer. Two
// passes: the first walks every message in the per-node engine's routing
// order (ascending sender; per sender broadcasts then unicasts), accounts
// traffic, drops messages to sleeping receivers, and stages the survivors
// with their destination rank; the second computes per-receiver offsets and
// scatters. Staging preserves arrival order, so each receiver's segment is
// byte-identical to the per-node engine's inbox.
func (e *batchEngine) route(awake []int32, workers int, stamp int64) error {
	m := e.mem
	k := len(awake)
	if cap(m.cnt) < k+1 {
		m.cnt = make([]int32, k+1)
	}
	cnt := m.cnt[:k+1]
	for i := range cnt {
		cnt[i] = 0
	}
	routed := m.routed[:0]
	rdst := m.rdst[:0]

	for w := 0; w < workers; w++ {
		ob := &m.outs[w]
		bi, ui := 0, 0
		for bi < len(ob.bcast) || ui < len(ob.uni) {
			// Next sender: the smaller head; its broadcasts drain before
			// its unicasts, matching the per-node engine's router.
			var s int32
			if bi < len(ob.bcast) && (ui >= len(ob.uni) || ob.bcast[bi].From <= ob.uni[ui].From) {
				s = ob.bcast[bi].From
			} else {
				s = ob.uni[ui].From
			}
			nbrs := e.g.Neighbors(int(s))
			d := len(nbrs)
			for bi < len(ob.bcast) && ob.bcast[bi].From == s {
				mm := ob.bcast[bi]
				bi++
				if d == 0 {
					continue // no incident edges: nothing sent, nothing accounted
				}
				e.accountFanoutBatch(mm, d)
				for _, u := range nbrs {
					if m.stamp[u] == stamp {
						routed = append(routed, mm)
						rdst = append(rdst, m.rank[u])
						cnt[m.rank[u]]++
					} else {
						e.res.MsgsDropped++
					}
				}
			}
			for ui < len(ob.uni) && ob.uni[ui].From == s {
				mm := ob.uni[ui]
				to := ob.uto[ui]
				ui++
				e.accountFanoutBatch(mm, 1)
				if m.stamp[to] == stamp {
					routed = append(routed, mm)
					rdst = append(rdst, m.rank[to])
					cnt[m.rank[to]]++
				} else {
					e.res.MsgsDropped++
				}
			}
		}
	}
	m.routed = routed
	m.rdst = rdst

	// Offsets, then scatter in staging order (stable per receiver).
	if cap(m.inoff) < k+1 {
		m.inoff = make([]int32, k+1)
	}
	off := m.inoff[:k+1]
	run := int32(0)
	for i := 0; i < k; i++ {
		off[i] = run
		run += cnt[i]
		cnt[i] = off[i] // reuse as write cursor
	}
	off[k] = run
	if cap(m.inbuf) < int(run) {
		m.inbuf = make([]Msg, run)
	}
	buf := m.inbuf[:run]
	for i, mm := range routed {
		r := rdst[i]
		buf[cnt[r]] = mm
		cnt[r]++
	}
	m.inbuf = buf
	m.inoff = off
	return nil
}

func (e *batchEngine) accountFanoutBatch(m Msg, copies int) {
	e.res.MsgsSent += int64(copies)
	e.res.BitsTotal += int64(copies) * int64(m.Bits)
	if int(m.Bits) > e.res.BitsMax {
		e.res.BitsMax = int(m.Bits)
	}
	if int(m.Bits) > e.cfg.B {
		if e.cfg.Strict {
			panic(fmt.Sprintf("sim: message of %d bits exceeds CONGEST budget %d", m.Bits, e.cfg.B))
		}
		e.res.Violations += int64(copies)
	}
}

// Adapt wraps per-node machines as a BatchMachine, so any legacy protocol
// can execute on the batch runtime (and be differentially tested against
// the per-node engine). The adapter pays the per-node dispatch the batch
// runtime exists to avoid — protocols on the hot path should implement
// BatchMachine natively.
func Adapt(machines []Machine) BatchMachine {
	return &machineAdapter{machines: machines}
}

type machineAdapter struct {
	machines []Machine
	envs     []Env
	outs     []Outbox // per-node scratch: ComposeAll chunks may run concurrently
}

func (a *machineAdapter) InitAll(env *BatchEnv) []int {
	n := len(a.machines)
	a.envs = make([]Env, n)
	a.outs = make([]Outbox, n)
	first := make([]int, n)
	for v := 0; v < n; v++ {
		a.envs[v] = Env{
			Node:      v,
			N:         env.N,
			Degree:    env.G.Degree(v),
			Neighbors: env.G.Neighbors(v),
			B:         env.B,
			Rand:      rng.NewForNode(env.Seed, v),
		}
		first[v] = a.machines[v].Init(&a.envs[v])
	}
	return first
}

func (a *machineAdapter) ComposeAll(round int, awake []int32, out *BatchOutbox) {
	for _, v := range awake {
		ob := &a.outs[v]
		ob.reset(v, a.envs[v].Neighbors)
		a.machines[v].Compose(round, ob)
		ob.DrainTo(out)
	}
}

func (a *machineAdapter) DeliverAll(round int, awake []int32, in Inboxes, next []int) {
	for i, v := range awake {
		next[i] = a.machines[v].Deliver(round, in.At(i))
	}
}
