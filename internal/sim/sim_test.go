package sim

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
)

// floodMachine broadcasts its ID in round 0 and records what it hears; it
// then stays awake for `extra` more rounds doing nothing.
type floodMachine struct {
	env   *Env
	heard []int32
	extra int
}

func (m *floodMachine) Init(env *Env) int { m.env = env; return 0 }

func (m *floodMachine) Compose(round int, out *Outbox) {
	if round == 0 {
		out.Broadcast(Msg{Kind: 1, A: uint64(m.env.Node), Bits: 16})
	}
}

func (m *floodMachine) Deliver(round int, inbox []Msg) int {
	for _, msg := range inbox {
		m.heard = append(m.heard, msg.From)
	}
	if round < m.extra {
		return round + 1
	}
	return Never
}

func TestBroadcastReachesAwakeNeighbors(t *testing.T) {
	g := graph.Cycle(5)
	machines := make([]Machine, 5)
	for v := range machines {
		machines[v] = &floodMachine{}
	}
	res, err := Run(g, machines, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	for v, m := range machines {
		fm := m.(*floodMachine)
		if len(fm.heard) != 2 {
			t.Fatalf("node %d heard %d messages, want 2", v, len(fm.heard))
		}
	}
	if res.MsgsSent != 10 { // each node broadcasts on 2 edges
		t.Fatalf("MsgsSent = %d", res.MsgsSent)
	}
	if res.MsgsDropped != 0 {
		t.Fatalf("MsgsDropped = %d", res.MsgsDropped)
	}
	if res.MaxAwake() != 1 {
		t.Fatalf("MaxAwake = %d", res.MaxAwake())
	}
}

// sleeperMachine: node 0 broadcasts every round it is awake (rounds 0..2);
// node 1 sleeps in round 1 and must not receive that round's message.
type sleeperMachine struct {
	env      *Env
	schedule []int // rounds to be awake, consumed in order
	received []int // rounds in which a message arrived
}

func (m *sleeperMachine) Init(env *Env) int {
	m.env = env
	if len(m.schedule) == 0 {
		return Never
	}
	return m.schedule[0]
}

func (m *sleeperMachine) Compose(round int, out *Outbox) {
	if m.env.Node == 0 {
		out.Broadcast(Msg{Kind: 2, Bits: 1})
	}
}

func (m *sleeperMachine) Deliver(round int, inbox []Msg) int {
	if len(inbox) > 0 {
		m.received = append(m.received, round)
	}
	for i, r := range m.schedule {
		if r == round && i+1 < len(m.schedule) {
			return m.schedule[i+1]
		}
	}
	return Never
}

func TestSleepingNodeReceivesNothing(t *testing.T) {
	g := graph.Path(2)
	sender := &sleeperMachine{schedule: []int{0, 1, 2}}
	receiver := &sleeperMachine{schedule: []int{0, 2}}
	res, err := Run(g, []Machine{sender, receiver}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := receiver.received; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("receiver got messages in rounds %v, want [0 2]", got)
	}
	if res.MsgsDropped != 1 {
		t.Fatalf("MsgsDropped = %d, want 1 (round-1 message)", res.MsgsDropped)
	}
	if res.Awake[0] != 3 || res.Awake[1] != 2 {
		t.Fatalf("awake counts = %v", res.Awake)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestNeverWakingNodeCostsNothing(t *testing.T) {
	g := graph.Star(4)
	machines := []Machine{
		&sleeperMachine{schedule: []int{0}},
		&sleeperMachine{}, // never wakes
		&sleeperMachine{schedule: []int{0}},
		&sleeperMachine{schedule: []int{0}},
	}
	res, err := Run(g, machines, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Awake[1] != 0 {
		t.Fatalf("sleeping node awake %d rounds", res.Awake[1])
	}
	// Center broadcast to 3 leaves; leaf 1 asleep.
	if res.MsgsDropped != 1 {
		t.Fatalf("MsgsDropped = %d", res.MsgsDropped)
	}
}

// unicastMachine sends its ID to its lowest neighbor only.
type unicastMachine struct {
	env   *Env
	heard []int32
}

func (m *unicastMachine) Init(env *Env) int { m.env = env; return 0 }
func (m *unicastMachine) Compose(round int, out *Outbox) {
	if len(m.env.Neighbors) > 0 {
		out.Send(m.env.Neighbors[0], Msg{Kind: 3, A: uint64(m.env.Node), Bits: 8})
	}
}
func (m *unicastMachine) Deliver(round int, inbox []Msg) int {
	for _, msg := range inbox {
		m.heard = append(m.heard, msg.From)
	}
	return Never
}

func TestUnicast(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	ms := []Machine{&unicastMachine{}, &unicastMachine{}, &unicastMachine{}}
	if _, err := Run(g, ms, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// 0 sends to 1; 1 sends to 0; 2 sends to 1.
	if h := ms[0].(*unicastMachine).heard; len(h) != 1 || h[0] != 1 {
		t.Fatalf("node 0 heard %v", h)
	}
	if h := ms[1].(*unicastMachine).heard; len(h) != 2 || h[0] != 0 || h[1] != 2 {
		t.Fatalf("node 1 heard %v (inbox must be sender-sorted)", h)
	}
	if h := ms[2].(*unicastMachine).heard; len(h) != 0 {
		t.Fatalf("node 2 heard %v", h)
	}
}

func TestCongestAccounting(t *testing.T) {
	g := graph.Path(2)
	big := &fixedBitsMachine{bits: 10_000}
	small := &fixedBitsMachine{bits: 4}
	res, err := Run(g, []Machine{big, small}, Config{Seed: 1, B: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 1 {
		t.Fatalf("Violations = %d, want 1", res.Violations)
	}
	if res.BitsMax != 10_000 {
		t.Fatalf("BitsMax = %d", res.BitsMax)
	}
	if res.BitsTotal != 10_004 {
		t.Fatalf("BitsTotal = %d", res.BitsTotal)
	}
}

type fixedBitsMachine struct{ bits int32 }

func (m *fixedBitsMachine) Init(env *Env) int { return 0 }
func (m *fixedBitsMachine) Compose(round int, out *Outbox) {
	out.Broadcast(Msg{Bits: m.bits})
}
func (m *fixedBitsMachine) Deliver(round int, inbox []Msg) int { return Never }

func TestMachineCountMismatch(t *testing.T) {
	if _, err := Run(graph.Path(3), []Machine{&floodMachine{}}, Config{}); err == nil {
		t.Fatal("expected error for machine count mismatch")
	}
}

// badMachine returns a non-increasing wake round.
type badMachine struct{}

func (m *badMachine) Init(env *Env) int                  { return 0 }
func (m *badMachine) Compose(round int, out *Outbox)     {}
func (m *badMachine) Deliver(round int, inbox []Msg) int { return 0 }

func TestNonIncreasingWakeRejected(t *testing.T) {
	if _, err := Run(graph.Path(1), []Machine{&badMachine{}}, Config{}); err == nil {
		t.Fatal("expected error for non-increasing wake round")
	}
}

// loopMachine never stops.
type loopMachine struct{}

func (m *loopMachine) Init(env *Env) int                  { return 0 }
func (m *loopMachine) Compose(round int, out *Outbox)     {}
func (m *loopMachine) Deliver(round int, inbox []Msg) int { return round + 1 }

func TestMaxRoundsCap(t *testing.T) {
	if _, err := Run(graph.Path(1), []Machine{&loopMachine{}}, Config{MaxRounds: 10}); err == nil {
		t.Fatal("expected MaxRounds error")
	}
}

func TestRoundSkipping(t *testing.T) {
	// A node sleeping until round 100 costs 1 awake round but the run
	// lasts 101 rounds of wall-clock time.
	g := graph.Path(1)
	m := &sleeperMachine{schedule: []int{100}}
	res, err := Run(g, []Machine{m}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 101 {
		t.Fatalf("Rounds = %d, want 101", res.Rounds)
	}
	if res.Awake[0] != 1 {
		t.Fatalf("Awake = %d, want 1", res.Awake[0])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.GNP(200, 0.05, 3)
	run := func() []int32 {
		machines := make([]Machine, g.N())
		for v := range machines {
			machines[v] = &randomTalker{rounds: 20}
		}
		res, err := Run(g, machines, Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]int32, g.N())
		for v, m := range machines {
			sums[v] = m.(*randomTalker).checksum
		}
		_ = res
		return sums
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d checksum differs across identical runs", v)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.GNP(300, 0.03, 5)
	run := func(workers int) ([]int32, *Result) {
		machines := make([]Machine, g.N())
		for v := range machines {
			machines[v] = &randomTalker{rounds: 15}
		}
		res, err := Run(g, machines, Config{Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]int32, g.N())
		for v, m := range machines {
			sums[v] = m.(*randomTalker).checksum
		}
		return sums, res
	}
	seq, seqRes := run(1)
	par, parRes := run(8)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d differs between sequential and parallel executors", v)
		}
	}
	if seqRes.Rounds != parRes.Rounds || seqRes.MsgsSent != parRes.MsgsSent {
		t.Fatalf("stats differ: seq %+v par %+v", seqRes, parRes)
	}
}

// TestWorkersNormalization: Workers ≤ 0 and worker counts exceeding the
// node/awake count must behave exactly like the sequential executor (the
// config is normalized once in Run; chunking never degenerates).
func TestWorkersNormalization(t *testing.T) {
	g := graph.GNP(60, 0.1, 2)
	run := func(workers int) ([]int32, *Result) {
		machines := make([]Machine, g.N())
		for v := range machines {
			machines[v] = &randomTalker{rounds: 10}
		}
		res, err := Run(g, machines, Config{Seed: 4, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sums := make([]int32, g.N())
		for v, m := range machines {
			sums[v] = m.(*randomTalker).checksum
		}
		return sums, res
	}
	refSums, refRes := run(1)
	for _, w := range []int{-5, 0, 2, 61, 4096} {
		sums, res := run(w)
		for v := range sums {
			if sums[v] != refSums[v] {
				t.Fatalf("workers=%d: node %d diverged", w, v)
			}
		}
		if res.MsgsSent != refRes.MsgsSent || res.MsgsDropped != refRes.MsgsDropped ||
			res.BitsTotal != refRes.BitsTotal || res.Rounds != refRes.Rounds {
			t.Fatalf("workers=%d: counters differ: %+v vs %+v", w, res, refRes)
		}
	}
}

func TestParallelTinyGraphs(t *testing.T) {
	// Worker counts far beyond the awake set on degenerate topologies.
	for _, g := range []*graph.Graph{graph.Path(1), graph.Path(2), graph.Star(3)} {
		machines := make([]Machine, g.N())
		for v := range machines {
			machines[v] = &floodMachine{}
		}
		if _, err := Run(g, machines, Config{Seed: 1, Workers: 64}); err != nil {
			t.Fatalf("n=%d: %v", g.N(), err)
		}
	}
}

// chattyMachine sends two broadcasts plus two unicasts to the same
// neighbor in one round — multiple messages per edge per round, the
// hardest case for port-grouped routing order.
type chattyMachine struct {
	env   *Env
	log   []int64
	awake []int // personal wake schedule
}

func (m *chattyMachine) Init(env *Env) int {
	m.env = env
	if len(m.awake) == 0 {
		return Never
	}
	return m.awake[0]
}

func (m *chattyMachine) Compose(round int, out *Outbox) {
	out.Broadcast(Msg{Kind: 1, A: uint64(m.env.Node)<<8 | uint64(round), Bits: 16})
	out.Broadcast(Msg{Kind: 2, A: uint64(m.env.Node), Bits: 8})
	for _, u := range m.env.Neighbors {
		out.Send(u, Msg{Kind: 3, A: uint64(u), Bits: 4})
		out.Send(u, Msg{Kind: 4, A: uint64(round), Bits: 4})
	}
}

func (m *chattyMachine) Deliver(round int, inbox []Msg) int {
	for _, msg := range inbox {
		m.log = append(m.log, int64(msg.From)<<32|int64(msg.Kind)<<16|int64(msg.A&0xFFFF))
	}
	for i, r := range m.awake {
		if r == round && i+1 < len(m.awake) {
			return m.awake[i+1]
		}
	}
	return Never
}

func TestParallelPreservesMultiMessageOrder(t *testing.T) {
	g := graph.GNP(40, 0.2, 9)
	// Staggered schedules so some rounds mix awake and asleep receivers.
	mk := func() []Machine {
		machines := make([]Machine, g.N())
		for v := range machines {
			sched := []int{0, 1, 3}
			if v%3 == 1 {
				sched = []int{0, 2, 3}
			}
			machines[v] = &chattyMachine{awake: sched}
		}
		return machines
	}
	seqM := mk()
	seqRes, err := Run(g, seqM, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7} {
		parM := mk()
		parRes, err := Run(g, parM, Config{Seed: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for v := range seqM {
			a := seqM[v].(*chattyMachine).log
			b := parM[v].(*chattyMachine).log
			if len(a) != len(b) {
				t.Fatalf("workers=%d node %d: inbox length %d vs %d", w, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d node %d: delivery order diverges at %d", w, v, i)
				}
			}
		}
		if seqRes.MsgsSent != parRes.MsgsSent || seqRes.MsgsDropped != parRes.MsgsDropped ||
			seqRes.BitsTotal != parRes.BitsTotal || seqRes.BitsMax != parRes.BitsMax {
			t.Fatalf("workers=%d: accounting differs: %+v vs %+v", w, seqRes, parRes)
		}
	}
}

// nonNeighborSender violates the model by unicasting outside its edges.
type nonNeighborSender struct{ env *Env }

func (m *nonNeighborSender) Init(env *Env) int { m.env = env; return 0 }
func (m *nonNeighborSender) Compose(round int, out *Outbox) {
	if m.env.Node == 0 {
		out.Send(2, Msg{Bits: 1}) // 0-1-2 path: 2 is not a neighbor of 0
	}
}
func (m *nonNeighborSender) Deliver(round int, inbox []Msg) int { return Never }

func TestParallelRejectsNonNeighborUnicast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-neighbor unicast under the parallel executor")
		}
	}()
	g := graph.Path(3)
	Run(g, []Machine{&nonNeighborSender{}, &nonNeighborSender{}, &nonNeighborSender{}},
		Config{Seed: 1, Workers: 2})
}

// randomTalker sends random payloads to random neighbors for a fixed
// number of rounds, sleeping on odd personal coin flips; it folds all
// received payloads into a checksum. Exercises scheduling + determinism.
type randomTalker struct {
	env      *Env
	rounds   int
	checksum int32
}

func (m *randomTalker) Init(env *Env) int {
	m.env = env
	return int(env.Rand.Uint64() % 3)
}

func (m *randomTalker) Compose(round int, out *Outbox) {
	if m.env.Degree == 0 {
		return
	}
	if m.env.Rand.Bernoulli(0.7) {
		to := m.env.Neighbors[m.env.Rand.Intn(m.env.Degree)]
		out.Send(to, Msg{Kind: 9, A: m.env.Rand.Uint64() & 0xFFFF, Bits: 16})
	} else {
		out.Broadcast(Msg{Kind: 10, A: uint64(round), Bits: 16})
	}
}

func (m *randomTalker) Deliver(round int, inbox []Msg) int {
	for _, msg := range inbox {
		m.checksum = m.checksum*31 + int32(msg.A) + msg.From
	}
	if round >= m.rounds {
		return Never
	}
	return round + 1 + int(m.env.Rand.Uint64()%2)
}

func TestEnvContents(t *testing.T) {
	g := graph.Star(4)
	probe := &envProbe{}
	ms := []Machine{probe, &envProbe{}, &envProbe{}, &envProbe{}}
	if _, err := Run(g, ms, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if probe.env.N != 4 || probe.env.Degree != 3 || probe.env.Node != 0 {
		t.Fatalf("env wrong: %+v", probe.env)
	}
	if probe.env.B != DefaultB(4) {
		t.Fatalf("B = %d", probe.env.B)
	}
	if probe.env.Rand == nil {
		t.Fatal("nil Rand")
	}
}

type envProbe struct{ env *Env }

func (m *envProbe) Init(env *Env) int                  { m.env = env; return Never }
func (m *envProbe) Compose(round int, out *Outbox)     {}
func (m *envProbe) Deliver(round int, inbox []Msg) int { return Never }

func TestDefaultB(t *testing.T) {
	if DefaultB(1) != 16 {
		t.Fatalf("DefaultB(1) = %d", DefaultB(1))
	}
	if DefaultB(1024) != 40 {
		t.Fatalf("DefaultB(1024) = %d", DefaultB(1024))
	}
	if DefaultB(1025) != 44 {
		t.Fatalf("DefaultB(1025) = %d", DefaultB(1025))
	}
}
