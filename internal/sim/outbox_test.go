package sim

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
)

// Unit tests for Outbox.finalize, the sender-side port-grouping step of the
// parallel router: layout (final/off) and accounting (routeStats) on the
// edge cases the protocols can produce.

// finalizeOn builds an outbox for node 0 of g, applies queue, and finalizes
// with every neighbor awake (or asleep when awakeAll is false).
func finalizeOn(g *graph.Graph, node int32, queue func(*Outbox), awakeAll bool) (*Outbox, routeStats) {
	ob := &Outbox{}
	ob.reset(node, g.Neighbors(int(node)))
	queue(ob)
	stamp := int64(1)
	awake := make([]int64, g.N())
	if awakeAll {
		for i := range awake {
			awake[i] = stamp
		}
	}
	var rs routeStats
	ob.finalize(awake, stamp, 16, &rs)
	return ob, rs
}

func segment(ob *Outbox, port int) []Msg {
	return ob.final[ob.off[port]:ob.off[port+1]]
}

func TestFinalizeDuplicateUnicastSamePort(t *testing.T) {
	g := graph.Path(3) // node 1 has ports {0:->0, 1:->2}
	ob, rs := finalizeOn(g, 1, func(o *Outbox) {
		o.Send(0, Msg{Kind: 1, A: 10, Bits: 4})
		o.Send(0, Msg{Kind: 2, A: 20, Bits: 4}) // same port again
		o.Send(2, Msg{Kind: 3, A: 30, Bits: 4})
	}, true)
	p0 := segment(ob, 0)
	if len(p0) != 2 || p0[0].Kind != 1 || p0[1].Kind != 2 {
		t.Fatalf("port 0 segment = %+v, want kinds [1 2] in call order", p0)
	}
	if p1 := segment(ob, 1); len(p1) != 1 || p1[0].Kind != 3 {
		t.Fatalf("port 1 segment = %+v, want kind [3]", p1)
	}
	if rs.msgs != 3 || rs.bits != 12 || rs.drops != 0 {
		t.Fatalf("stats = %+v, want 3 msgs / 12 bits / 0 drops", rs)
	}
}

func TestFinalizeBroadcastPlusUnicastSameRound(t *testing.T) {
	g := graph.Star(4) // center 0 with leaves 1..3
	ob, rs := finalizeOn(g, 0, func(o *Outbox) {
		o.Broadcast(Msg{Kind: 9, Bits: 2})
		o.Send(2, Msg{Kind: 5, Bits: 4})
		o.Broadcast(Msg{Kind: 8, Bits: 2})
	}, true)
	// Every port gets both broadcasts (call order) first; port of node 2
	// additionally gets the unicast after them.
	for p := 0; p < 3; p++ {
		seg := segment(ob, p)
		wantLen := 2
		if ob.neighbors[p] == 2 {
			wantLen = 3
		}
		if len(seg) != wantLen || seg[0].Kind != 9 || seg[1].Kind != 8 {
			t.Fatalf("port %d segment = %+v, want broadcasts [9 8] first (len %d)", p, seg, wantLen)
		}
		if wantLen == 3 && seg[2].Kind != 5 {
			t.Fatalf("port %d: unicast not after broadcasts: %+v", p, seg)
		}
	}
	// 2 broadcasts × 3 edges + 1 unicast = 7 messages, 2·3·2 + 4 = 16 bits.
	if rs.msgs != 7 || rs.bits != 16 {
		t.Fatalf("stats = %+v, want 7 msgs / 16 bits", rs)
	}
}

func TestFinalizeZeroDegreeNode(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{1, 2}}) // node 0 isolated
	ob, rs := finalizeOn(g, 0, func(o *Outbox) {
		o.Broadcast(Msg{Kind: 7, Bits: 2}) // no incident edges: goes nowhere
	}, true)
	if len(ob.off) != 1 || ob.off[0] != 0 {
		t.Fatalf("zero-degree off = %v, want [0]", ob.off)
	}
	if rs.msgs != 0 || rs.bits != 0 || rs.bitsMax != 0 || rs.drops != 0 {
		t.Fatalf("zero-degree broadcast accounted traffic: %+v", rs)
	}
}

func TestFinalizeDropsToSleepingReceivers(t *testing.T) {
	g := graph.Star(3) // center 0, leaves 1..2
	_, rs := finalizeOn(g, 0, func(o *Outbox) {
		o.Broadcast(Msg{Kind: 1, Bits: 2})
		o.Send(1, Msg{Kind: 2, Bits: 4})
	}, false) // everyone asleep
	// Sent counters unchanged by receiver state; every message dropped.
	if rs.msgs != 3 || rs.drops != 3 {
		t.Fatalf("stats = %+v, want 3 msgs all dropped", rs)
	}
}

func TestFinalizeEmptyRoundResetsOffsets(t *testing.T) {
	g := graph.Path(2)
	ob := &Outbox{}
	ob.reset(0, g.Neighbors(0))
	ob.Send(1, Msg{Kind: 1, Bits: 2})
	awake := []int64{1, 1}
	var rs routeStats
	ob.finalize(awake, 1, 16, &rs)
	if got := segment(ob, 0); len(got) != 1 {
		t.Fatalf("round 1 segment = %+v", got)
	}
	// Next round: nothing queued; stale offsets must be cleared so the
	// receiver-side gather sees an empty segment, not last round's.
	ob.reset(0, g.Neighbors(0))
	ob.finalize(awake, 2, 16, &rs)
	if got := segment(ob, 0); len(got) != 0 {
		t.Fatalf("empty round segment = %+v, want empty", got)
	}
}
