// Package sim implements the synchronous CONGEST message-passing model
// with sleeping (energy) semantics, as defined in Section 1.1 of Ghaffari &
// Portmann (PODC 2023).
//
// The network is an undirected graph; computation proceeds in synchronous
// rounds. In every round each *awake* node first composes at most one
// message per incident edge, then receives the messages sent to it in the
// same round by awake neighbors, and finally decides the next round in
// which it will be awake. A sleeping node performs no computation, sends
// nothing, receives nothing (messages addressed to it are dropped), and can
// only wake by its own pre-arranged timer — never by a neighbor.
//
// The engine measures time complexity (total rounds) and energy complexity
// (per-node awake-round counts), and accounts message sizes in bits against
// the CONGEST budget B = O(log n).
//
// # Two execution paths
//
// The model has two interchangeable runtimes with identical semantics:
//
//   - The per-node path (Run): one Machine automaton per node, driven with
//     Init/Compose/Deliver calls. Easiest to write and read, but costs two
//     virtual calls and one inbox slice per awake node per round.
//   - The batch path (RunBatch): one BatchMachine automaton per protocol,
//     driven with whole awake-sets per call over flat struct-of-arrays
//     state. The engine makes O(1) interface calls per round regardless of
//     how many nodes are awake, routes every message through one pooled
//     buffer, and — with a warm Mem pool — reaches zero steady-state
//     allocations per round. Every protocol package on the hot path (luby,
//     phase1, ghaffari, degreduce, shatter, phase3) executes this way;
//     Adapt runs any legacy []Machine on the batch engine.
//
// Execution semantics, delivery order, and all measured counters are
// identical between the two paths: for any protocol expressed both ways,
// Run and RunBatch produce byte-identical Results (enforced by the
// differential tests in the protocol packages and by determinism_test.go
// at the repo root). Both paths support the deterministic parallel
// executor (Config.Workers > 1), again with byte-identical results.
package sim
