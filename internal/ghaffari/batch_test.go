package ghaffari

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// runLegacyK executes K packed executions with the per-node Machine on the
// per-node engine and extracts the per-execution decisions.
func runLegacyK(t *testing.T, g *graph.Graph, k, rounds int, cfg sim.Config) ([]*Proto, *sim.Result) {
	t.Helper()
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = NewMachine(k, rounds)
		machines[v] = nodes[v]
	}
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	protos := make([]*Proto, g.N())
	for v, nm := range nodes {
		protos[v] = nm.Proto()
	}
	return protos, res
}

func sameCounters(t *testing.T, ctx string, ref, got *sim.Result) {
	t.Helper()
	if got.Rounds != ref.Rounds || got.MsgsSent != ref.MsgsSent ||
		got.MsgsDropped != ref.MsgsDropped || got.BitsTotal != ref.BitsTotal ||
		got.BitsMax != ref.BitsMax || got.Violations != ref.Violations {
		t.Fatalf("%s: counters differ\n legacy: %+v\n batch:  %+v", ctx, ref, got)
	}
	for v := range got.Awake {
		if got.Awake[v] != ref.Awake[v] {
			t.Fatalf("%s: Awake[%d] = %d, legacy %d", ctx, v, got.Awake[v], ref.Awake[v])
		}
	}
}

// TestBatchMatchesLegacy is the differential gate of the batch port: for
// every graph shape, K, seed, and worker count, the struct-of-arrays batch
// automaton must produce byte-identical per-execution decisions and
// identical complexity counters to the per-node reference.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(400, 10.0/400, 3)},
		{"clique", graph.Complete(40)},
		{"path", graph.Path(60)},
		{"star", graph.Star(50)},
		{"isolated", graph.FromEdges(8, [][2]int{{0, 1}})},
		{"empty", graph.FromEdges(0, nil)},
	}
	for _, tc := range cases {
		for _, k := range []int{1, 5, 64, 100} {
			rounds := 12
			for seed := uint64(1); seed <= 2; seed++ {
				refProtos, refRes := runLegacyK(t, tc.g, k, rounds, sim.Config{Seed: seed})
				for _, w := range []int{1, 2, 8} {
					b := NewBatch(tc.g, k, rounds)
					res, err := sim.RunBatch(tc.g, b, sim.Config{Seed: seed, Workers: w})
					if err != nil {
						t.Fatalf("%s k=%d seed=%d workers=%d: %v", tc.name, k, seed, w, err)
					}
					ctx := tc.name
					sameCounters(t, ctx, refRes, res)
					for e := 0; e < k; e++ {
						in := b.InMISExec(e)
						und := map[int]bool{}
						for _, v := range b.UndecidedExec(e) {
							und[v] = true
						}
						for v := 0; v < tc.g.N(); v++ {
							if in[v] != refProtos[v].InMIS[e] {
								t.Fatalf("%s k=%d seed=%d workers=%d: InMIS[%d][exec %d] = %v, legacy %v",
									tc.name, k, seed, w, v, e, in[v], refProtos[v].InMIS[e])
							}
							if und[v] != refProtos[v].Undecided(e) {
								t.Fatalf("%s k=%d seed=%d workers=%d: Undecided[%d][exec %d] = %v, legacy %v",
									tc.name, k, seed, w, v, e, und[v], refProtos[v].Undecided(e))
							}
						}
					}
				}
			}
		}
	}
}

// TestRunShatterMatchesLegacy checks the shattering entry point end to end:
// same set, same survivors, same counters, for every worker count.
func TestRunShatterMatchesLegacy(t *testing.T) {
	g := graph.GNP(500, 12.0/500, 7)
	for _, rounds := range []int{0, 1, 9} {
		for seed := uint64(1); seed <= 3; seed++ {
			refSet, refSurv, refRes, err := RunShatterLegacy(g, rounds, sim.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 8} {
				set, surv, res, err := RunShatter(g, rounds, sim.Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				for v := range refSet {
					if set[v] != refSet[v] {
						t.Fatalf("rounds=%d seed=%d workers=%d: InSet[%d] differs", rounds, seed, w, v)
					}
				}
				if len(surv) != len(refSurv) {
					t.Fatalf("rounds=%d seed=%d workers=%d: %d survivors, legacy %d",
						rounds, seed, w, len(surv), len(refSurv))
				}
				for i := range surv {
					if surv[i] != refSurv[i] {
						t.Fatalf("rounds=%d seed=%d workers=%d: survivor[%d] = %d, legacy %d",
							rounds, seed, w, i, surv[i], refSurv[i])
					}
				}
				sameCounters(t, "shatter", refRes, res)
			}
		}
	}
}
