// Package ghaffari implements the desire-level MIS dynamics of Ghaffari
// [Gha16], in the 1-bit-message form of [Gha19] that the paper invokes in
// Lemma 2.6 (shattering) and Lemma 2.7 (parallel executions on small
// components).
//
// Every undecided node keeps a desire level p(v), initially 1/2. Per
// logical round, v marks itself with probability p(v) and announces the
// mark with a single bit; v joins the MIS when it is marked and no
// neighbor is marked. The desire level halves when some neighbor was
// marked this round and otherwise doubles (capped at 1/2) — the 1-bit
// feedback variant of the effective-degree rule, so that a full execution
// costs one bit per round per edge and K independent executions can be
// packed into K-bit CONGEST messages (used by Lemma 2.7).
//
// The guarantee used by the paper: after O(log deg + log 1/eps) rounds a
// node is undecided with probability at most eps; running Θ(log Δ) rounds
// on the whole graph therefore shatters it into small components, and
// running Θ(log log n) rounds with K = Θ(log n) executions on a
// poly(log n)-size component leaves at least one execution that decided
// every node, with high probability.
package ghaffari
