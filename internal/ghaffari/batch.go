package ghaffari

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/sim"
)

// Batch is the struct-of-arrays form of the desire-level dynamics: K packed
// executions per node with all state in flat arrays, driven whole-awake-sets
// at a time by the batch runtime. Every per-node K-bit vector (marks, joins,
// in/out decisions) is held as two uint64 words — the same two payload words
// a CONGEST message carries, so K <= 128 exactly as in the per-node path.
// Random draws, desire-level updates, and wake decisions replicate the
// per-node Machine bit for bit, so runs are byte-identical to the legacy
// path (enforced by TestBatchMatchesLegacy).
type Batch struct {
	g      *graph.Graph
	n      int
	k      int
	rounds int

	rands []rng.Stream
	p     []float64 // desire levels, node-major with stride k
	// Packed per-node K-bit vectors, two words each.
	misA, misB   []uint64 // joined in execution e
	outA, outB   []uint64 // a neighbor joined in execution e
	markA, markB []uint64 // this round's own marks
	joinA, joinB []uint64 // joins announced next sub-round
}

var _ sim.BatchMachine = (*Batch)(nil)

// NewBatch builds the batch automaton running k packed executions for
// `rounds` logical rounds (2 engine rounds each) on g. k must be <= 128.
func NewBatch(g *graph.Graph, k, rounds int) *Batch {
	if k > 128 {
		panic(fmt.Sprintf("ghaffari: K=%d exceeds 128 packed bits", k))
	}
	return &Batch{g: g, n: g.N(), k: k, rounds: rounds}
}

// maskPair returns the two-word mask covering k bits.
func maskPair(k int) (uint64, uint64) {
	if k >= 128 {
		return ^uint64(0), ^uint64(0)
	}
	if k > 64 {
		return ^uint64(0), (uint64(1) << (uint(k) - 64)) - 1
	}
	if k == 64 {
		return ^uint64(0), 0
	}
	return (uint64(1) << uint(k)) - 1, 0
}

func bitOf(a, b uint64, e int) bool {
	if e < 64 {
		return a&(1<<uint(e)) != 0
	}
	return b&(1<<(uint(e)-64)) != 0
}

func setBit(a, b *uint64, e int) {
	if e < 64 {
		*a |= 1 << uint(e)
	} else {
		*b |= 1 << (uint(e) - 64)
	}
}

// InitAll implements sim.BatchMachine.
func (b *Batch) InitAll(env *sim.BatchEnv) []int {
	n := b.n
	b.rands = make([]rng.Stream, n)
	b.p = make([]float64, n*b.k)
	b.misA = make([]uint64, n)
	b.misB = make([]uint64, n)
	b.outA = make([]uint64, n)
	b.outB = make([]uint64, n)
	b.markA = make([]uint64, n)
	b.markB = make([]uint64, n)
	b.joinA = make([]uint64, n)
	b.joinB = make([]uint64, n)
	first := make([]int, n)
	for v := 0; v < n; v++ {
		b.rands[v] = rng.ForNode(env.Seed, v)
		for e := 0; e < b.k; e++ {
			b.p[v*b.k+e] = pMax
		}
		first[v] = 0
	}
	return first
}

// ComposeAll implements sim.BatchMachine. Even engine rounds announce this
// round's marks (always sent, like the per-node machine); odd rounds
// announce joins when there are any.
func (b *Batch) ComposeAll(round int, awake []int32, out *sim.BatchOutbox) {
	if round/2 >= b.rounds {
		return
	}
	bits := int32(b.k)
	if round%2 == 0 {
		for _, v := range awake {
			var ma, mb uint64
			decA, decB := b.misA[v]|b.outA[v], b.misB[v]|b.outB[v]
			base := int(v) * b.k
			r := &b.rands[v]
			for e := 0; e < b.k; e++ {
				if bitOf(decA, decB, e) {
					continue
				}
				if r.Bernoulli(b.p[base+e]) {
					setBit(&ma, &mb, e)
				}
			}
			b.markA[v], b.markB[v] = ma, mb
			out.Broadcast(v, sim.Msg{Kind: kindMarks, A: ma, B: mb, Bits: bits})
		}
	} else {
		for _, v := range awake {
			if b.joinA[v]|b.joinB[v] != 0 {
				out.Broadcast(v, sim.Msg{Kind: kindJoins, A: b.joinA[v], B: b.joinB[v], Bits: bits})
			}
		}
	}
}

// DeliverAll implements sim.BatchMachine.
func (b *Batch) DeliverAll(round int, awake []int32, in sim.Inboxes, next []int) {
	maskA, maskB := maskPair(b.k)
	if round%2 == 0 {
		for i, v := range awake {
			var na, nb uint64
			for _, msg := range in.At(i) {
				na |= msg.A
				nb |= msg.B
			}
			var ja, jb uint64
			decA, decB := b.misA[v]|b.outA[v], b.misB[v]|b.outB[v]
			base := int(v) * b.k
			for e := 0; e < b.k; e++ {
				if bitOf(decA, decB, e) {
					continue
				}
				nbrMarked := bitOf(na, nb, e)
				if !nbrMarked && bitOf(b.markA[v], b.markB[v], e) {
					setBit(&b.misA[v], &b.misB[v], e)
					setBit(&ja, &jb, e)
				}
				if nbrMarked {
					b.p[base+e] /= 2
					if b.p[base+e] < pMin {
						b.p[base+e] = pMin
					}
				} else {
					b.p[base+e] *= 2
					if b.p[base+e] > pMax {
						b.p[base+e] = pMax
					}
				}
			}
			b.joinA[v], b.joinB[v] = ja, jb
			next[i] = b.nextRound(round)
		}
	} else {
		for i, v := range awake {
			var na, nb uint64
			for _, msg := range in.At(i) {
				na |= msg.A
				nb |= msg.B
			}
			b.outA[v] |= na &^ b.misA[v]
			b.outB[v] |= nb &^ b.misB[v]
			// A node decided in every execution sleeps out the remaining
			// rounds, exactly like the per-node machine.
			if (b.misA[v]|b.outA[v])&maskA == maskA && (b.misB[v]|b.outB[v])&maskB == maskB {
				next[i] = sim.Never
				continue
			}
			next[i] = b.nextRound(round)
		}
	}
}

func (b *Batch) nextRound(round int) int {
	if round+1 >= 2*b.rounds {
		return sim.Never
	}
	return round + 1
}

// InMISExec returns MIS membership in execution e after a run.
func (b *Batch) InMISExec(e int) []bool {
	out := make([]bool, b.n)
	for v := range out {
		out[v] = bitOf(b.misA[v], b.misB[v], e)
	}
	return out
}

// UndecidedExec returns the nodes undecided in execution e after a run.
func (b *Batch) UndecidedExec(e int) []int {
	var out []int
	for v := 0; v < b.n; v++ {
		if !bitOf(b.misA[v]|b.outA[v], b.misB[v]|b.outB[v], e) {
			out = append(out, v)
		}
	}
	return out
}
