package ghaffari

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestProtoJoinsAreIndependent(t *testing.T) {
	// Two adjacent nodes both marked in the same execution: neither joins.
	a := NewProto(1, rng.New(1))
	b := NewProto(1, rng.New(2))
	// Force both marked by setting p = 1 via repeated attempts.
	a.p[0], b.p[0] = 1, 1
	am := append([]uint64(nil), a.ComposeMarks()...)
	bm := append([]uint64(nil), b.ComposeMarks()...)
	if am[0]&1 == 0 || bm[0]&1 == 0 {
		t.Fatal("p=1 nodes did not mark")
	}
	aj := a.AbsorbMarks([][]uint64{bm})
	bj := b.AbsorbMarks([][]uint64{am})
	if aj[0]&1 != 0 || bj[0]&1 != 0 {
		t.Fatal("both-marked neighbors joined")
	}
	if a.InMIS[0] || b.InMIS[0] {
		t.Fatal("InMIS set despite conflict")
	}
}

func TestProtoLoneMarkJoins(t *testing.T) {
	a := NewProto(1, rng.New(1))
	a.p[0] = 1
	a.ComposeMarks()
	joins := a.AbsorbMarks(nil)
	if joins[0]&1 == 0 || !a.InMIS[0] {
		t.Fatal("lone marked node did not join")
	}
}

func TestDesireLevelDynamics(t *testing.T) {
	a := NewProto(1, rng.New(1))
	start := a.p[0]
	// A marked neighbor halves p.
	a.ComposeMarks()
	a.AbsorbMarks([][]uint64{{1}})
	if a.p[0] != start/2 {
		t.Fatalf("p = %v after marked neighbor, want %v", a.p[0], start/2)
	}
	// No marked neighbor doubles p (capped at 1/2).
	a.ComposeMarks()
	if a.InMIS[0] {
		// The node may have joined; restart with a fresh proto and a seed
		// that does not mark.
		a = NewProto(1, rng.New(3))
		a.p[0] = start / 2
		a.markedNow[0] = 0
	}
	a.markedNow[0] = 0 // treat as unmarked this round
	a.AbsorbMarks(nil)
	if a.p[0] != start {
		t.Fatalf("p = %v after quiet round, want %v", a.p[0], start)
	}
	a.markedNow[0] = 0
	a.AbsorbMarks(nil)
	if a.p[0] != pMax {
		t.Fatalf("p = %v exceeded cap", a.p[0])
	}
}

func TestAbsorbJoinsKnocksOut(t *testing.T) {
	a := NewProto(2, rng.New(1))
	a.AbsorbJoins([][]uint64{{0b10}}) // neighbor joined execution 1
	if a.Out[0] || !a.Out[1] {
		t.Fatalf("Out = %v", a.Out)
	}
	if a.Undecided(1) || !a.Undecided(0) {
		t.Fatal("Undecided wrong")
	}
	sv := a.SuccessVector()
	if sv[0] != 0b10 {
		t.Fatalf("SuccessVector = %b", sv[0])
	}
}

func TestShatterProducesIndependentSet(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GNP(400, 0.02, 1),
		graph.Complete(30),
		graph.Cycle(100),
		graph.BarabasiAlbert(300, 3, 2),
	} {
		inSet, survivors, _, err := RunShatter(g, 25, sim.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if ok, u, v := verify.IsIndependent(g, inSet); !ok {
			t.Fatalf("not independent: (%d,%d)", u, v)
		}
		// Survivors must be exactly the nodes not in the set and not
		// dominated by it.
		rest := verify.Residual(g, inSet)
		if len(rest) != len(survivors) {
			t.Fatalf("survivors %d != residual %d", len(survivors), len(rest))
		}
	}
}

func TestShatterDecidesMostNodes(t *testing.T) {
	// With Θ(log Δ) + slack rounds, the undecided fraction should be tiny.
	g := graph.GNP(3000, 8.0/3000, 3)
	_, survivors, _, err := RunShatter(g, 30, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) > g.N()/20 {
		t.Fatalf("%d/%d survivors after shattering", len(survivors), g.N())
	}
}

func TestShatterComponentsSmall(t *testing.T) {
	g := graph.NearRegular(4000, 10, 7)
	inSet, survivors, _, err := RunShatter(g, 40, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = inSet
	if len(survivors) == 0 {
		return // fully decided is fine
	}
	sub := graph.InducedSubgraph(g, survivors)
	for _, comp := range graph.Components(sub.Graph) {
		if len(comp) > 200 {
			t.Fatalf("survivor component of size %d; shattering failed", len(comp))
		}
	}
}

func TestParallelExecutionsDecideComponent(t *testing.T) {
	// On a small component, K = 24 executions of Θ(log n) rounds should
	// contain at least one execution that decided every node.
	g := graph.GNP(60, 0.1, 9)
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = NewMachine(24, 30)
		machines[v] = nodes[v]
	}
	if _, err := sim.Run(g, machines, sim.Config{Seed: 3, B: 64}); err != nil {
		t.Fatal(err)
	}
	// AND the success vectors.
	and := ^uint64(0)
	for _, nm := range nodes {
		and &= nm.Proto().SuccessVector()[0]
	}
	if and == 0 {
		t.Fatal("no execution decided every node")
	}
	// The winning execution is a valid MIS.
	e := 0
	for and&(1<<uint(e)) == 0 {
		e++
	}
	inSet := make([]bool, g.N())
	for v, nm := range nodes {
		inSet[v] = nm.Proto().InMIS[e]
	}
	if err := verify.Check(g, inSet); err != nil {
		t.Fatal(err)
	}
}

func TestMessageSizes(t *testing.T) {
	g := graph.GNP(200, 0.05, 4)
	machines := make([]sim.Machine, g.N())
	for v := range machines {
		machines[v] = NewMachine(32, 20)
	}
	res, err := sim.Run(g, machines, sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsMax > 32 {
		t.Fatalf("BitsMax = %d, want <= K = 32", res.BitsMax)
	}
	if res.Violations != 0 {
		t.Fatalf("violations: %d", res.Violations)
	}
}

func TestEnergyIsBounded(t *testing.T) {
	g := graph.GNP(500, 0.02, 6)
	machines := make([]sim.Machine, g.N())
	for v := range machines {
		machines[v] = NewMachine(1, 15)
	}
	res, err := sim.Run(g, machines, sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAwake() > 30 {
		t.Fatalf("MaxAwake = %d, want <= 2*rounds = 30", res.MaxAwake())
	}
}
