package ghaffari

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/sim"
)

const (
	pMax = 0.5
	pMin = 1.0 / (1 << 20)
)

// Proto is the per-node state of K packed executions. It is embedded in
// larger machines (the Phase III finisher) and driven by Step/Absorb pairs;
// the standalone Machine below adapts it to the engine directly.
type Proto struct {
	K    int
	rand *rng.Stream

	p         []float64 // desire level per execution
	InMIS     []bool    // joined in execution e
	Out       []bool    // a neighbor joined in execution e
	markedNow []uint64  // scratch: this round's own marks, packed
}

// NewProto returns a fresh protocol state for k executions.
func NewProto(k int, rand *rng.Stream) *Proto {
	p := &Proto{
		K:         k,
		rand:      rand,
		p:         make([]float64, k),
		InMIS:     make([]bool, k),
		Out:       make([]bool, k),
		markedNow: make([]uint64, (k+63)/64),
	}
	for i := range p.p {
		p.p[i] = pMax
	}
	return p
}

// Words returns the number of 64-bit words a K-bit vector occupies.
func (p *Proto) Words() int { return (p.K + 63) / 64 }

// Bits returns the message size of one packed vector.
func (p *Proto) Bits() int32 { return int32(p.K) }

// ComposeMarks draws this round's marks and returns them packed. A node
// that is decided (in or out) in execution e never marks in e.
func (p *Proto) ComposeMarks() []uint64 {
	for i := range p.markedNow {
		p.markedNow[i] = 0
	}
	for e := 0; e < p.K; e++ {
		if p.InMIS[e] || p.Out[e] {
			continue
		}
		if p.rand.Bernoulli(p.p[e]) {
			p.markedNow[e>>6] |= 1 << (uint(e) & 63)
		}
	}
	return p.markedNow
}

// AbsorbMarks processes the packed mark vectors received from neighbors:
// it decides joins (marked with no marked neighbor) and updates desire
// levels (halve on >=1 marked neighbor, else double, capped). It returns
// the packed join vector to announce.
func (p *Proto) AbsorbMarks(neighborMarks [][]uint64) []uint64 {
	nbrAny := make([]uint64, p.Words())
	for _, v := range neighborMarks {
		for i := range nbrAny {
			if i < len(v) {
				nbrAny[i] |= v[i]
			}
		}
	}
	joins := make([]uint64, p.Words())
	for e := 0; e < p.K; e++ {
		if p.InMIS[e] || p.Out[e] {
			continue
		}
		w, b := e>>6, uint64(1)<<(uint(e)&63)
		nbrMarked := nbrAny[w]&b != 0
		selfMarked := p.markedNow[w]&b != 0
		if selfMarked && !nbrMarked {
			p.InMIS[e] = true
			joins[w] |= b
		}
		if nbrMarked {
			p.p[e] /= 2
			if p.p[e] < pMin {
				p.p[e] = pMin
			}
		} else {
			p.p[e] *= 2
			if p.p[e] > pMax {
				p.p[e] = pMax
			}
		}
	}
	return joins
}

// AbsorbJoins processes neighbors' packed join vectors: any join in
// execution e knocks this node out of e (unless it joined itself, which
// cannot coincide with a neighbor join in a correct run).
func (p *Proto) AbsorbJoins(neighborJoins [][]uint64) {
	for _, v := range neighborJoins {
		for e := 0; e < p.K; e++ {
			if e>>6 < len(v) && v[e>>6]&(1<<(uint(e)&63)) != 0 && !p.InMIS[e] {
				p.Out[e] = true
			}
		}
	}
}

// Undecided reports whether the node is undecided in execution e.
func (p *Proto) Undecided(e int) bool { return !p.InMIS[e] && !p.Out[e] }

// AllDecided reports whether the node is decided in every execution.
func (p *Proto) AllDecided() bool {
	for e := 0; e < p.K; e++ {
		if p.Undecided(e) {
			return false
		}
	}
	return true
}

// SuccessVector returns the packed per-execution success bits for this
// node: success in e means the node is decided in e.
func (p *Proto) SuccessVector() []uint64 {
	out := make([]uint64, p.Words())
	for e := 0; e < p.K; e++ {
		if !p.Undecided(e) {
			out[e>>6] |= 1 << (uint(e) & 63)
		}
	}
	return out
}

// Message kinds for the standalone machine.
const (
	kindMarks = 11
	kindJoins = 12
)

// Machine runs K packed executions for a fixed number of logical rounds,
// with every node awake throughout (the regime of Lemma 2.6: the input
// degree is poly(log n), so the whole run costs O(log Δ) awake rounds).
type Machine struct {
	env    *sim.Env
	proto  *Proto
	rounds int
	k      int

	inbox        [][]uint64 // scratch for this round's vectors
	pendingJoins []uint64   // join vector carried from mark to join sub-round
}

var _ sim.Machine = (*Machine)(nil)

// NewMachine returns a machine running k executions for `rounds` logical
// rounds (2 engine rounds each).
func NewMachine(k, rounds int) *Machine {
	return &Machine{k: k, rounds: rounds}
}

// Proto exposes the underlying execution state after a run.
func (m *Machine) Proto() *Proto { return m.proto }

// Init implements sim.Machine.
func (m *Machine) Init(env *sim.Env) int {
	m.env = env
	m.proto = NewProto(m.k, env.Rand)
	return 0
}

// Compose implements sim.Machine.
func (m *Machine) Compose(round int, out *sim.Outbox) {
	if round/2 >= m.rounds {
		return
	}
	if round%2 == 0 {
		marks := m.proto.ComposeMarks()
		out.Broadcast(packMsg(kindMarks, marks, m.proto.Bits()))
	} else {
		joins := m.pendingJoins
		if anySet(joins) {
			out.Broadcast(packMsg(kindJoins, joins, m.proto.Bits()))
		}
	}
}

// Deliver implements sim.Machine.
func (m *Machine) Deliver(round int, inbox []sim.Msg) int {
	m.inbox = m.inbox[:0]
	for _, msg := range inbox {
		m.inbox = append(m.inbox, unpackMsg(msg))
	}
	if round%2 == 0 {
		m.pendingJoins = m.proto.AbsorbMarks(m.inbox)
	} else {
		m.proto.AbsorbJoins(m.inbox)
		// A node decided in every execution has nothing left to send or
		// learn; it sleeps out the remaining rounds. (The paper keeps all
		// nodes awake in Phase II as an upper bound; sleeping decided
		// nodes is model-legal and only lowers energy.)
		if m.proto.AllDecided() {
			return sim.Never
		}
	}
	if round+1 >= 2*m.rounds {
		return sim.Never
	}
	return round + 1
}

// packMsg packs up to 128 bits of vector into a Msg (the engine payload
// carries two words; K <= 128 covers every feasible configuration since
// K = Θ(log n)).
func packMsg(kind uint8, words []uint64, bits int32) sim.Msg {
	msg := sim.Msg{Kind: kind, Bits: bits}
	if len(words) > 0 {
		msg.A = words[0]
	}
	if len(words) > 1 {
		msg.B = words[1]
	}
	if len(words) > 2 {
		panic(fmt.Sprintf("ghaffari: K=%d exceeds 128 packed bits", bits))
	}
	return msg
}

func unpackMsg(m sim.Msg) []uint64 { return []uint64{m.A, m.B} }

func anySet(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

// RunShatter executes one (K=1) run of the dynamics for `rounds` logical
// rounds on g and returns the independent set found, the undecided
// survivors, and the engine result. It runs the struct-of-arrays automaton
// on the batch runtime; results are byte-identical to RunShatterLegacy
// (the per-node reference).
func RunShatter(g *graph.Graph, rounds int, cfg sim.Config) (inSet []bool, survivors []int, res *sim.Result, err error) {
	b := NewBatch(g, 1, rounds)
	res, err = sim.RunBatch(g, b, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("ghaffari: %w", err)
	}
	return b.InMISExec(0), b.UndecidedExec(0), res, nil
}

// RunShatterLegacy executes the per-node Machine implementation on the
// per-node engine: the reference the batch path is differentially tested
// against.
func RunShatterLegacy(g *graph.Graph, rounds int, cfg sim.Config) (inSet []bool, survivors []int, res *sim.Result, err error) {
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = NewMachine(1, rounds)
		machines[v] = nodes[v]
	}
	res, err = sim.Run(g, machines, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("ghaffari: %w", err)
	}
	inSet = make([]bool, g.N())
	for v, nm := range nodes {
		inSet[v] = nm.proto.InMIS[0]
		if nm.proto.Undecided(0) {
			survivors = append(survivors, v)
		}
	}
	return inSet, survivors, res, nil
}
