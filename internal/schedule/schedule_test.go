package schedule

import (
	"testing"
	"testing/quick"
)

// checkIntersection verifies the Lemma 2.5 property for all pairs i <= j,
// including the strengthened form: for i < j the common round l satisfies
// i <= l < j.
func checkIntersection(t *testing.T, T int) {
	t.Helper()
	sets := All(T)
	member := make([]map[int]bool, T)
	for k, s := range sets {
		member[k] = make(map[int]bool, len(s))
		for _, l := range s {
			member[k][l] = true
		}
	}
	for i := 0; i < T; i++ {
		for j := i; j < T; j++ {
			found := false
			for _, l := range sets[i] {
				if l >= i && l <= j && member[j][l] {
					if i < j && l == j {
						continue // strengthened form requires l < j
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("T=%d: no common round for i=%d j=%d (S_i=%v S_j=%v)", T, i, j, sets[i], sets[j])
			}
		}
	}
}

func TestIntersectionSmall(t *testing.T) {
	for _, T := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 32, 33, 64, 100, 127, 128, 129} {
		checkIntersection(t, T)
	}
}

func TestSizeBound(t *testing.T) {
	for _, T := range []int{1, 2, 3, 10, 100, 1000, 1 << 14, 1<<14 + 1} {
		bound := MaxSize(T)
		for k := 0; k < T; k += 1 + T/257 {
			if got := len(Set(T, k)); got > bound {
				t.Fatalf("T=%d k=%d |S_k|=%d exceeds bound %d", T, k, got, bound)
			}
		}
	}
}

func TestSelfMembership(t *testing.T) {
	// k is always the final midpoint of its own path, so k ∈ S_k.
	for _, T := range []int{1, 5, 64, 1000} {
		for k := 0; k < T; k += 1 + T/101 {
			found := false
			for _, l := range Set(T, k) {
				if l == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("T=%d: k=%d not in own set", T, k)
			}
		}
	}
}

func TestSetSorted(t *testing.T) {
	// Midpoints along the search path are not necessarily monotone, but
	// every element must be a valid round.
	for _, T := range []int{1, 2, 37, 512} {
		for k := 0; k < T; k++ {
			for _, l := range Set(T, k) {
				if l < 0 || l >= T {
					t.Fatalf("T=%d k=%d element %d out of range", T, k, l)
				}
			}
		}
	}
}

func TestContainsAgreesWithSet(t *testing.T) {
	f := func(tRaw uint16, kRaw uint16, lRaw uint16) bool {
		T := int(tRaw%500) + 1
		k := int(kRaw) % T
		l := int(lRaw) % T
		inSet := false
		for _, x := range Set(T, k) {
			if x == l {
				inSet = true
			}
		}
		return Contains(T, k, l) == inSet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRandomPairs(t *testing.T) {
	f := func(tRaw uint16, iRaw, jRaw uint16) bool {
		T := int(tRaw%2000) + 1
		i := int(iRaw) % T
		j := int(jRaw) % T
		if i > j {
			i, j = j, i
		}
		si := Set(T, i)
		for _, l := range si {
			if l >= i && l <= j && Contains(T, j, l) {
				if i < j && l == j {
					continue
				}
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, k := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Set(10, %d) did not panic", k)
				}
			}()
			Set(10, k)
		}()
	}
}

func TestMaxSizeValues(t *testing.T) {
	cases := []struct{ t, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {8, 4}, {9, 5}, {1024, 11},
	}
	for _, c := range cases {
		if got := MaxSize(c.t); got != c.want {
			t.Errorf("MaxSize(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Set(1<<20, i%(1<<20))
	}
}
