// Package schedule implements the awake-schedule construction of
// Lemma 2.5 (Ghaffari & Portmann, PODC 2023), sometimes called a "virtual
// binary tree" [BM21a, AMP22].
//
// Given T rounds numbered 0..T-1, it assigns every round k a set S_k of
// rounds with |S_k| = O(log T) such that for any two rounds i <= j there is
// a round l with i <= l <= j and l ∈ S_i ∩ S_j. A node sampled at round r_v
// wakes exactly at the rounds of S_{r_v}; the intersection property
// guarantees that for every neighbor u with r_u <= r_v there is a common
// awake round in [r_u, r_v] where u can report whether it joined the MIS.
//
// Construction (divide and conquer, as in the paper's proof): the midpoint
// M of the current interval [L, H] is added to S_k for every k in [L, H],
// then both halves recurse. S_k is therefore the set of midpoints of the
// recursion intervals containing k, i.e. the binary-search path to k —
// which is computable for a single k in O(log T) without materializing the
// whole family.
//
// A strictly stronger property holds and is relied on for correctness of
// the MIS phases: for i < j the separating midpoint l satisfies
// i <= l < j, so a node acting at round j learns the outcome of any node
// that acted strictly earlier *before* its own action round.
package schedule

// Set returns S_k for a schedule over T rounds (0-based). It panics if
// k is outside [0, T).
func Set(t, k int) []int {
	if k < 0 || k >= t {
		panic("schedule: round out of range")
	}
	// The binary-search path from [0, T-1] to k, recording midpoints.
	set := make([]int, 0, 2+log2(t))
	lo, hi := 0, t-1
	for {
		mid := lo + (hi-lo)/2
		set = append(set, mid)
		if lo == hi {
			return set
		}
		if k <= mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// All materializes S_k for every k in [0, T). Intended for tests and
// small T; nodes in the simulator use Set for their own round only.
func All(t int) [][]int {
	out := make([][]int, t)
	for k := 0; k < t; k++ {
		out[k] = Set(t, k)
	}
	return out
}

// MaxSize returns the worst-case |S_k| for a schedule over T rounds:
// ceil(log2 T) + 1.
func MaxSize(t int) int {
	if t <= 0 {
		return 0
	}
	return log2(t) + 1
}

func log2(t int) int {
	l := 0
	for p := 1; p < t; p <<= 1 {
		l++
	}
	return l
}

// Contains reports whether round l belongs to S_k without materializing
// the set: l is on the binary-search path to k.
func Contains(t, k, l int) bool {
	lo, hi := 0, t-1
	for {
		mid := lo + (hi-lo)/2
		if mid == l {
			return true
		}
		if lo == hi {
			return false
		}
		if k <= mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}
