package schedule

// Set returns S_k for a schedule over T rounds (0-based). It panics if
// k is outside [0, T).
func Set(t, k int) []int {
	if k < 0 || k >= t {
		panic("schedule: round out of range")
	}
	// The binary-search path from [0, T-1] to k, recording midpoints.
	set := make([]int, 0, 2+log2(t))
	lo, hi := 0, t-1
	for {
		mid := lo + (hi-lo)/2
		set = append(set, mid)
		if lo == hi {
			return set
		}
		if k <= mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// All materializes S_k for every k in [0, T). Intended for tests and
// small T; nodes in the simulator use Set for their own round only.
func All(t int) [][]int {
	out := make([][]int, t)
	for k := 0; k < t; k++ {
		out[k] = Set(t, k)
	}
	return out
}

// MaxSize returns the worst-case |S_k| for a schedule over T rounds:
// ceil(log2 T) + 1.
func MaxSize(t int) int {
	if t <= 0 {
		return 0
	}
	return log2(t) + 1
}

func log2(t int) int {
	l := 0
	for p := 1; p < t; p <<= 1 {
		l++
	}
	return l
}

// Contains reports whether round l belongs to S_k without materializing
// the set: l is on the binary-search path to k.
func Contains(t, k, l int) bool {
	lo, hi := 0, t-1
	for {
		mid := lo + (hi-lo)/2
		if mid == l {
			return true
		}
		if lo == hi {
			return false
		}
		if k <= mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}
