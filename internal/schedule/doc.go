// Package schedule implements the awake-schedule construction of
// Lemma 2.5 (Ghaffari & Portmann, PODC 2023), sometimes called a "virtual
// binary tree" [BM21a, AMP22].
//
// Given T rounds numbered 0..T-1, it assigns every round k a set S_k of
// rounds with |S_k| = O(log T) such that for any two rounds i <= j there is
// a round l with i <= l <= j and l ∈ S_i ∩ S_j. A node sampled at round r_v
// wakes exactly at the rounds of S_{r_v}; the intersection property
// guarantees that for every neighbor u with r_u <= r_v there is a common
// awake round in [r_u, r_v] where u can report whether it joined the MIS.
//
// Construction (divide and conquer, as in the paper's proof): the midpoint
// M of the current interval [L, H] is added to S_k for every k in [L, H],
// then both halves recurse. S_k is therefore the set of midpoints of the
// recursion intervals containing k, i.e. the binary-search path to k —
// which is computable for a single k in O(log T) without materializing the
// whole family.
//
// A strictly stronger property holds and is relied on for correctness of
// the MIS phases: for i < j the separating midpoint l satisfies
// i <= l < j, so a node acting at round j learns the outcome of any node
// that acted strictly earlier *before* its own action round.
package schedule
