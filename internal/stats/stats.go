package stats

import (
	"fmt"
	"sort"
	"strings"

	"github.com/energymis/energymis/internal/sim"
)

// Phase is the recorded contribution of one engine run.
type Phase struct {
	Name        string
	Rounds      int
	MaxAwake    int
	AvgAwake    float64 // averaged over the *original* node count
	MsgsSent    int64
	MsgsDropped int64
	BitsTotal   int64
	BitsMax     int
	Violations  int64
	Retries     int // times the phase had to re-run a failing stage
}

// Accumulator sums phase results over a fixed original node set.
type Accumulator struct {
	n      int
	awake  []int64
	phases []Phase
}

// NewAccumulator returns an accumulator for an n-node network.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{n: n, awake: make([]int64, n)}
}

// AddPhase records one engine result. origIDs[i] is the original node index
// of the phase-local node i; pass nil when the phase ran on the full graph
// with identity IDs.
func (a *Accumulator) AddPhase(name string, res *sim.Result, origIDs []int32) {
	var sum int64
	for local, cnt := range res.Awake {
		orig := local
		if origIDs != nil {
			orig = int(origIDs[local])
		}
		a.awake[orig] += int64(cnt)
		sum += int64(cnt)
	}
	a.phases = append(a.phases, Phase{
		Name:        name,
		Rounds:      res.Rounds,
		MaxAwake:    res.MaxAwake(),
		AvgAwake:    float64(sum) / float64(a.n),
		MsgsSent:    res.MsgsSent,
		MsgsDropped: res.MsgsDropped,
		BitsTotal:   res.BitsTotal,
		BitsMax:     res.BitsMax,
		Violations:  res.Violations,
	})
}

// AddFlat charges a fixed number of awake rounds to an explicit node set,
// used for phase-boundary synchronization rounds that are not part of any
// engine run (e.g. "all surviving nodes wake once to learn their status").
func (a *Accumulator) AddFlat(name string, rounds int, nodes []int32) {
	for _, v := range nodes {
		a.awake[v] += int64(rounds)
	}
	a.phases = append(a.phases, Phase{
		Name:     name,
		Rounds:   rounds,
		MaxAwake: rounds,
		AvgAwake: float64(rounds) * float64(len(nodes)) / float64(a.n),
	})
}

// NoteRetries annotates the most recent phase with a retry count.
func (a *Accumulator) NoteRetries(k int) {
	if len(a.phases) > 0 {
		a.phases[len(a.phases)-1].Retries += k
	}
}

// Phases returns the recorded phases in order.
func (a *Accumulator) Phases() []Phase { return a.phases }

// Summary holds the composed complexity measures.
type Summary struct {
	N           int
	Rounds      int     // time complexity: sum of phase rounds
	MaxAwake    int     // energy complexity: max over nodes of total awake rounds
	AvgAwake    float64 // node-averaged energy
	P99Awake    int     // 99th-percentile awake rounds
	AwakeTotal  int64   // total awake node-rounds (the benchmark denominator)
	MsgsSent    int64
	MsgsDropped int64
	BitsTotal   int64
	BitsMax     int
	Violations  int64
	Retries     int
	Phases      []Phase
}

// Summarize computes the composed summary.
func (a *Accumulator) Summarize() Summary {
	s := Summary{N: a.n, Phases: a.phases}
	var sum int64
	sorted := make([]int64, a.n)
	copy(sorted, a.awake)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range a.awake {
		sum += c
	}
	s.AwakeTotal = sum
	if a.n > 0 {
		s.MaxAwake = int(sorted[a.n-1])
		s.AvgAwake = float64(sum) / float64(a.n)
		s.P99Awake = int(sorted[(a.n-1)*99/100])
	}
	for _, p := range a.phases {
		s.Rounds += p.Rounds
		s.MsgsSent += p.MsgsSent
		s.MsgsDropped += p.MsgsDropped
		s.BitsTotal += p.BitsTotal
		s.Violations += p.Violations
		s.Retries += p.Retries
		if p.BitsMax > s.BitsMax {
			s.BitsMax = p.BitsMax
		}
	}
	return s
}

// AwakePerNode returns a copy of the per-node composed awake counts.
func (a *Accumulator) AwakePerNode() []int64 {
	out := make([]int64, a.n)
	copy(out, a.awake)
	return out
}

// String renders a compact human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d rounds=%d maxAwake=%d avgAwake=%.2f p99Awake=%d msgs=%d bitsMax=%d",
		s.N, s.Rounds, s.MaxAwake, s.AvgAwake, s.P99Awake, s.MsgsSent, s.BitsMax)
	if s.Violations > 0 {
		fmt.Fprintf(&b, " CONGEST-VIOLATIONS=%d", s.Violations)
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", s.Retries)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "\n  %-14s rounds=%-7d maxAwake=%-5d avgAwake=%-8.2f msgs=%d",
			p.Name, p.Rounds, p.MaxAwake, p.AvgAwake, p.MsgsSent)
	}
	return b.String()
}
