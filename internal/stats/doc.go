// Package stats aggregates complexity measurements across the phases of a
// composed algorithm.
//
// The paper's algorithms are compositions: Phase I runs on the input graph,
// later phases on shrinking residual subgraphs. Each phase is a separate
// engine invocation whose Result is indexed by *local* node IDs; the
// Accumulator maps those back to original IDs and adds rounds, awake
// counts, and message totals so the composed run reports exactly the
// quantities defined in Section 1.1: time complexity (total rounds) and
// energy complexity (maximum per-node awake rounds).
package stats
