package stats

import (
	"strings"
	"testing"

	"github.com/energymis/energymis/internal/sim"
)

func TestAccumulatorComposesPhases(t *testing.T) {
	a := NewAccumulator(4)
	a.AddPhase("p1", &sim.Result{
		Rounds:   10,
		Awake:    []int32{3, 0, 2, 1},
		MsgsSent: 7,
		BitsMax:  8,
	}, nil)
	// Phase 2 ran on a subgraph of nodes {0, 2} with local IDs {0, 1}.
	a.AddPhase("p2", &sim.Result{
		Rounds:   5,
		Awake:    []int32{4, 1},
		MsgsSent: 3,
		BitsMax:  16,
	}, []int32{0, 2})

	s := a.Summarize()
	if s.Rounds != 15 {
		t.Fatalf("Rounds = %d, want 15", s.Rounds)
	}
	if s.MaxAwake != 7 { // node 0: 3+4
		t.Fatalf("MaxAwake = %d, want 7", s.MaxAwake)
	}
	wantAvg := float64(3+4+0+2+1+1) / 4
	if s.AvgAwake != wantAvg {
		t.Fatalf("AvgAwake = %v, want %v", s.AvgAwake, wantAvg)
	}
	if s.MsgsSent != 10 || s.BitsMax != 16 {
		t.Fatalf("msgs=%d bitsMax=%d", s.MsgsSent, s.BitsMax)
	}
	per := a.AwakePerNode()
	if per[0] != 7 || per[1] != 0 || per[2] != 3 || per[3] != 1 {
		t.Fatalf("per-node = %v", per)
	}
}

func TestAddFlat(t *testing.T) {
	a := NewAccumulator(10)
	a.AddFlat("sync", 2, []int32{1, 5})
	s := a.Summarize()
	if s.Rounds != 2 || s.MaxAwake != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if got := a.AwakePerNode()[5]; got != 2 {
		t.Fatalf("node 5 awake = %d", got)
	}
	if got := a.AwakePerNode()[0]; got != 0 {
		t.Fatalf("node 0 awake = %d", got)
	}
}

func TestNoteRetries(t *testing.T) {
	a := NewAccumulator(1)
	a.AddPhase("p", &sim.Result{Rounds: 1, Awake: []int32{1}}, nil)
	a.NoteRetries(3)
	if got := a.Summarize().Retries; got != 3 {
		t.Fatalf("Retries = %d", got)
	}
}

func TestP99(t *testing.T) {
	a := NewAccumulator(100)
	awake := make([]int32, 100)
	for i := range awake {
		awake[i] = int32(i)
	}
	a.AddPhase("p", &sim.Result{Rounds: 1, Awake: awake}, nil)
	s := a.Summarize()
	if s.P99Awake != 98 {
		t.Fatalf("P99Awake = %d", s.P99Awake)
	}
	if s.MaxAwake != 99 {
		t.Fatalf("MaxAwake = %d", s.MaxAwake)
	}
}

func TestSummaryString(t *testing.T) {
	a := NewAccumulator(2)
	a.AddPhase("phase-i", &sim.Result{Rounds: 3, Awake: []int32{1, 2}, Violations: 1}, nil)
	str := a.Summarize().String()
	for _, want := range []string{"n=2", "rounds=3", "phase-i", "CONGEST-VIOLATIONS=1"} {
		if !strings.Contains(str, want) {
			t.Fatalf("summary %q missing %q", str, want)
		}
	}
}

func TestEmptyAccumulator(t *testing.T) {
	s := NewAccumulator(0).Summarize()
	if s.Rounds != 0 || s.MaxAwake != 0 || s.AvgAwake != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
