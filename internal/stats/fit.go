package stats

import (
	"errors"
	"fmt"
	"math"
)

// Fitting primitives for the analytical twin (internal/twin): least-squares
// estimation of the constant in y ≈ c·φ(n) and goodness-of-fit measures.
// Degenerate inputs return explicit errors instead of NaN/Inf, so callers
// can distinguish "the model does not apply" from "the fit is poor".
var (
	// ErrTooFewPoints is returned when a fit needs at least two
	// observations and got fewer.
	ErrTooFewPoints = errors.New("stats: need at least 2 points")
	// ErrConstantSeries is returned when a quality measure (R²) is
	// undefined because the observed series has zero variance.
	ErrConstantSeries = errors.New("stats: series is constant (zero variance)")
	// ErrDegenerateBasis is returned when the basis vector is identically
	// zero, so no constant can be identified.
	ErrDegenerateBasis = errors.New("stats: basis is identically zero")
	// ErrBadValue is returned when an input contains NaN or Inf.
	ErrBadValue = errors.New("stats: NaN or Inf in input")
)

func checkFinite(xs ...[]float64) error {
	for _, s := range xs {
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w (index %d)", ErrBadValue, i)
			}
		}
	}
	return nil
}

// FitProportional estimates c in the one-basis model y ≈ c·φ by least
// squares through the origin: c = Σφᵢyᵢ / Σφᵢ². The inputs must have equal
// length ≥ 2 and be finite; a zero basis yields ErrDegenerateBasis.
func FitProportional(phi, y []float64) (float64, error) {
	if len(phi) != len(y) {
		return 0, fmt.Errorf("stats: basis has %d points, series has %d", len(phi), len(y))
	}
	if len(y) < 2 {
		return 0, fmt.Errorf("%w (got %d)", ErrTooFewPoints, len(y))
	}
	if err := checkFinite(phi, y); err != nil {
		return 0, err
	}
	var sxy, sxx float64
	for i := range phi {
		sxy += phi[i] * y[i]
		sxx += phi[i] * phi[i]
	}
	if sxx == 0 {
		return 0, ErrDegenerateBasis
	}
	return sxy / sxx, nil
}

// RSquared is the coefficient of determination of pred against the
// observed y: 1 − SSres/SStot. It is undefined (ErrConstantSeries) when y
// has zero variance — for constant-shape models use MaxRelResidual
// instead. Negative values are valid: the model fits worse than the mean.
func RSquared(y, pred []float64) (float64, error) {
	if len(y) != len(pred) {
		return 0, fmt.Errorf("stats: series has %d points, prediction has %d", len(y), len(pred))
	}
	if len(y) < 2 {
		return 0, fmt.Errorf("%w (got %d)", ErrTooFewPoints, len(y))
	}
	if err := checkFinite(y, pred); err != nil {
		return 0, err
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssTot, ssRes float64
	for i := range y {
		dt := y[i] - mean
		dr := y[i] - pred[i]
		ssTot += dt * dt
		ssRes += dr * dr
	}
	if ssTot == 0 {
		return 0, ErrConstantSeries
	}
	return 1 - ssRes/ssTot, nil
}

// MaxRelResidual is the largest relative deviation of the observations
// from their predictions: max |yᵢ−predᵢ| / |predᵢ|. It requires at least
// one point and nonzero predictions (a model predicting zero cannot be
// deviated from relatively).
func MaxRelResidual(y, pred []float64) (float64, error) {
	if len(y) != len(pred) {
		return 0, fmt.Errorf("stats: series has %d points, prediction has %d", len(y), len(pred))
	}
	if len(y) == 0 {
		return 0, fmt.Errorf("%w (got 0)", ErrTooFewPoints)
	}
	if err := checkFinite(y, pred); err != nil {
		return 0, err
	}
	var worst float64
	for i := range y {
		if pred[i] == 0 {
			return 0, fmt.Errorf("%w (prediction %d is zero)", ErrDegenerateBasis, i)
		}
		if r := math.Abs(y[i]-pred[i]) / math.Abs(pred[i]); r > worst {
			worst = r
		}
	}
	return worst, nil
}
