package stats

import (
	"errors"
	"math"
	"testing"
)

func TestFitProportionalRecoversConstant(t *testing.T) {
	phi := []float64{1, 2, 3, 4}
	y := []float64{3, 6, 9, 12}
	c, err := FitProportional(phi, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-3) > 1e-12 {
		t.Fatalf("c = %v, want 3", c)
	}
	// Noisy series: least squares, not interpolation.
	c, err = FitProportional(phi, []float64{3.1, 5.9, 9.2, 11.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-3) > 0.05 {
		t.Fatalf("noisy c = %v, want ≈3", c)
	}
}

func TestFitProportionalEdgeCases(t *testing.T) {
	// n < 2 is an explicit error, not a NaN.
	if _, err := FitProportional([]float64{1}, []float64{2}); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("single point: err = %v, want ErrTooFewPoints", err)
	}
	if _, err := FitProportional(nil, nil); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("empty: err = %v, want ErrTooFewPoints", err)
	}
	// Mismatched lengths.
	if _, err := FitProportional([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths: want error")
	}
	// All-zero basis cannot identify a constant.
	if _, err := FitProportional([]float64{0, 0}, []float64{1, 2}); !errors.Is(err, ErrDegenerateBasis) {
		t.Fatalf("zero basis: err = %v, want ErrDegenerateBasis", err)
	}
	// NaN/Inf inputs are rejected, never propagated.
	if _, err := FitProportional([]float64{1, math.NaN()}, []float64{1, 2}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("NaN basis: err = %v, want ErrBadValue", err)
	}
	if _, err := FitProportional([]float64{1, 2}, []float64{1, math.Inf(1)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Inf series: err = %v, want ErrBadValue", err)
	}
	// A constant-shape fit (φ ≡ 1) is fine: it is the mean.
	c, err := FitProportional([]float64{1, 1, 1}, []float64{4, 5, 6})
	if err != nil || math.Abs(c-5) > 1e-12 {
		t.Fatalf("mean fit: c=%v err=%v, want 5", c, err)
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{3, 6, 9, 12}
	r2, err := RSquared(y, y)
	if err != nil || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("perfect fit: r2=%v err=%v", r2, err)
	}
	// Predicting the mean gives exactly 0.
	r2, err = RSquared(y, []float64{7.5, 7.5, 7.5, 7.5})
	if err != nil || math.Abs(r2) > 1e-12 {
		t.Fatalf("mean prediction: r2=%v err=%v, want 0", r2, err)
	}
	// A fit worse than the mean is negative, not clamped.
	r2, err = RSquared(y, []float64{12, 9, 6, 3})
	if err != nil || r2 >= 0 {
		t.Fatalf("anti-fit: r2=%v err=%v, want negative", r2, err)
	}
}

func TestRSquaredEdgeCases(t *testing.T) {
	// A constant observed series has zero variance: R² is undefined and
	// must be an explicit error, not a NaN or ±Inf.
	if _, err := RSquared([]float64{5, 5, 5}, []float64{5, 5, 5}); !errors.Is(err, ErrConstantSeries) {
		t.Fatalf("constant series: err = %v, want ErrConstantSeries", err)
	}
	if _, err := RSquared([]float64{5}, []float64{5}); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("single point: err = %v, want ErrTooFewPoints", err)
	}
	if _, err := RSquared([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths: want error")
	}
	if _, err := RSquared([]float64{1, math.NaN()}, []float64{1, 2}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("NaN input: err = %v, want ErrBadValue", err)
	}
}

func TestMaxRelResidual(t *testing.T) {
	got, err := MaxRelResidual([]float64{10, 22}, []float64{10, 20})
	if err != nil || math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("resid=%v err=%v, want 0.1", got, err)
	}
	if _, err := MaxRelResidual(nil, nil); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("empty: err = %v, want ErrTooFewPoints", err)
	}
	if _, err := MaxRelResidual([]float64{1}, []float64{0}); !errors.Is(err, ErrDegenerateBasis) {
		t.Fatalf("zero prediction: err = %v, want ErrDegenerateBasis", err)
	}
}
