package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	offsets []int32 // len = n+1
	adj     []int32 // concatenated sorted adjacency lists

	matesOnce sync.Once
	mates     []int32 // arc-reversal permutation, computed lazily
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Arcs returns the number of directed arcs (2·M). Arc i is the i-th slot
// of the CSR adjacency array: the arcs of node v occupy
// [ArcBase(v), ArcBase(v+1)) and point at Neighbors(v) in sorted order.
func (g *Graph) Arcs() int { return len(g.adj) }

// ArcBase returns the index of v's first arc in arc-indexed arrays. Port p
// of node v (its p-th incident edge, in sorted neighbor order) is arc
// ArcBase(v)+p.
func (g *Graph) ArcBase(v int) int32 { return g.offsets[v] }

// Mates returns the arc-reversal permutation: if arc i is the directed edge
// (v, u) then Mates()[i] is the arc (u, v). This is the CSR port map used
// by the simulator's routing phase — a sender that knows its port for a
// neighbor learns, in O(1), which of the receiver's ports the message
// arrives on. Computed once on first use (O(arcs)) and cached; safe for
// concurrent use. The returned slice must not be modified.
func (g *Graph) Mates() []int32 {
	g.matesOnce.Do(g.computeMates)
	return g.mates
}

func (g *Graph) computeMates() {
	mates := make([]int32, len(g.adj))
	// Sweeping v in increasing order, the arcs pointing *at* a fixed node u
	// are visited in increasing sender order — exactly the order of u's own
	// sorted adjacency list — so a per-node cursor pairs arcs in O(arcs).
	cur := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		for i := g.offsets[v]; i < g.offsets[v+1]; i++ {
			u := g.adj[i]
			mates[i] = g.offsets[u] + cur[u]
			cur[u]++
		}
	}
	g.mates = mates
}

// Port returns the index of u in v's sorted adjacency list, or -1 when
// {v, u} is not an edge. It runs in O(log deg(v)).
func (g *Graph) Port(v int, u int32) int {
	nb := g.Neighbors(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= u })
	if i < len(nb) && nb[i] == u {
		return i
	}
	return -1
}

// HasEdge reports whether {u, v} is an edge. It runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are discarded. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v int32 }

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if an endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge endpoint out of range: (%d,%d) with n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, edge{int32(u), int32(v)})
}

// Build finalizes the graph. The builder may be reused afterward (its edge
// set is retained).
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq

	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e.u]++
		deg[e.v]++
	}
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Each per-node list was filled in globally sorted edge order for the u
	// side but not the v side; sort each list to restore the invariant.
	for v := 0; v < b.n; v++ {
		nb := g.adj[offsets[v]:offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// FromCSR wraps prebuilt CSR arrays as a Graph without copying or
// validating: offsets must have length n+1 with offsets[0] == 0, rows
// must be sorted ascending with no self-loops or duplicates, and the
// arc list must be symmetric (so M() == len(adj)/2 holds). The slices
// are aliased — the caller must not mutate them while the graph is in
// use. This is the zero-allocation constructor for callers that already
// maintain CSR invariants themselves (the dynamic repair scratch).
func FromCSR(offsets, adj []int32) *Graph {
	return &Graph{offsets: offsets, adj: adj}
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Subgraph is a graph induced on a subset of another graph's nodes,
// together with the mapping back to the parent graph's node indices.
type Subgraph struct {
	*Graph
	// Orig maps the subgraph's node index to the parent node index.
	Orig []int32
}

// InducedSubgraph extracts the subgraph induced by the given nodes of g.
// keep lists parent node indices; duplicates are not allowed.
func InducedSubgraph(g *Graph, keep []int) *Subgraph {
	local := make(map[int32]int32, len(keep))
	orig := make([]int32, len(keep))
	for i, v := range keep {
		if _, dup := local[int32(v)]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d in InducedSubgraph", v))
		}
		local[int32(v)] = int32(i)
		orig[i] = int32(v)
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, u := range g.Neighbors(v) {
			if j, ok := local[u]; ok && int32(i) < j {
				b.AddEdge(i, int(j))
			}
		}
	}
	return &Subgraph{Graph: b.Build(), Orig: orig}
}

// Components returns the connected components of g, each as a slice of node
// indices in increasing order. Components are ordered by smallest member.
func Components(g *Graph) [][]int {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
					members = append(members, int(u))
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// BFS computes hop distances from src. Unreachable nodes get -1.
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src.
func Eccentricity(g *Graph, src int) int {
	max := int32(0)
	for _, d := range BFS(g, src) {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// DiameterLowerBound estimates the diameter of the component containing
// node 0 by a double-sweep BFS (exact on trees, a lower bound in general).
// It returns 0 for the empty graph.
func DiameterLowerBound(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	d0 := BFS(g, 0)
	far, fd := 0, int32(0)
	for v, d := range d0 {
		if d > fd {
			far, fd = v, d
		}
	}
	return Eccentricity(g, far)
}

// DegreeHistogram returns counts indexed by degree, length MaxDegree()+1.
func DegreeHistogram(g *Graph) []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Validate checks internal invariants (sorted adjacency, symmetry, no
// loops) and returns an error describing the first violation.
func (g *Graph) Validate() error {
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if int(u) == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if u < 0 || int(u) >= g.N() {
				return fmt.Errorf("neighbor %d of %d out of range", u, v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}
