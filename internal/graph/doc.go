// Package graph provides the static network substrate for the simulator:
// compact immutable undirected graphs, a builder, induced subgraphs,
// connected components, and breadth-first utilities.
//
// Graphs are stored in compressed-sparse-row (CSR) form: all adjacency
// lists concatenated in one slice with per-node offsets. Node identifiers
// are dense integers [0, N). Protocol-level identifiers (the distributed
// algorithms assume unique O(log n)-bit IDs) default to the node index but
// can be remapped when extracting subgraphs so that a node keeps its
// original identity across phases.
package graph
