package graph

import (
	"math"
	"sort"

	"github.com/energymis/energymis/internal/rng"
)

// Gen bundles the named generators so callers (CLI, benchmarks) can select
// a family by string.
type Gen struct {
	Name string
	// Make builds an instance with ~n nodes using the given seed.
	Make func(n int, seed uint64) *Graph
}

// Families returns the standard generator catalog used by experiments.
// avgDeg parameterizes the families that have a density knob.
func Families(avgDeg float64) []Gen {
	return []Gen{
		{"gnp", func(n int, seed uint64) *Graph { return GNP(n, avgDeg/float64(max(n-1, 1)), seed) }},
		{"rgg", func(n int, seed uint64) *Graph { return RGG(n, avgDeg, seed) }},
		{"ba", func(n int, seed uint64) *Graph { return BarabasiAlbert(n, int(avgDeg/2)+1, seed) }},
		{"grid", func(n int, _ uint64) *Graph { return Grid2D(intSqrt(n), intSqrt(n)) }},
		{"rtree", func(n int, seed uint64) *Graph { return RandomTree(n, seed) }},
		{"reg", func(n int, seed uint64) *Graph { return NearRegular(n, int(avgDeg), seed) }},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func contains32(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	if r < 1 {
		r = 1
	}
	return r
}

// GNP samples an Erdős–Rényi G(n, p) graph. It uses geometric edge
// skipping, so it runs in O(n + m) expected time.
func GNP(n int, p float64, seed uint64) *Graph {
	b := NewBuilder(n)
	if p > 0 && n > 1 {
		if p >= 1 {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					b.AddEdge(u, v)
				}
			}
			return b.Build()
		}
		// Batagelj–Brandes geometric skipping over pairs (v, w), w < v.
		r := rng.New(seed)
		logQ := math.Log(1 - p)
		v, w := 1, -1
		for v < n {
			w += 1 + int(math.Log(1-r.Float64())/logQ)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// RGG samples a random geometric graph: n points uniform in the unit
// square, connected when within radius r chosen so that the expected
// average degree is avgDeg. This models the sensor/wireless networks that
// motivate the energy measure.
func RGG(n int, avgDeg float64, seed uint64) *Graph {
	return RandomGeometric(n, RadiusForAvgDegree(n, avgDeg), seed)
}

// RadiusForAvgDegree returns the connection radius at which a unit-square
// geometric graph on n points has expected average degree avgDeg:
// E[deg] = (n-1)·π·r²  ⇒  r = sqrt(avgDeg / ((n-1)·π)).
func RadiusForAvgDegree(n int, avgDeg float64) float64 {
	if n <= 1 {
		return 0
	}
	return math.Sqrt(avgDeg / (float64(n-1) * math.Pi))
}

// RandomGeometric samples a unit-disk graph with an explicit communication
// radius: n points uniform in the unit square, connected when within
// radius. Unlike RGG, which rescales the radius to hold the expected
// degree constant, a fixed radius models sensor hardware with a fixed
// transmission range — node density (and so degree, contention, and the
// value of low-energy MIS) grows with the deployment size.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	rad := radius
	if rad < 0 {
		rad = 0
	}
	// Grid-bucket the points for near-linear neighbor search.
	cell := rad
	if cell <= 0 {
		cell = 1
	}
	cols := int(1/cell) + 1
	buckets := make(map[[2]int][]int32)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], int32(i))
	}
	b := NewBuilder(n)
	rad2 := rad * rad
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				kk := [2]int{k[0] + dx, k[1] + dy}
				if kk[0] < 0 || kk[1] < 0 || kk[0] > cols || kk[1] > cols {
					continue
				}
				for _, j := range buckets[kk] {
					if int(j) <= i {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy <= rad2 {
						b.AddEdge(i, int(j))
					}
				}
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: each new node
// attaches to m existing nodes chosen proportionally to degree. Produces
// heavy-tailed degree distributions (the "social graph" family).
func BarabasiAlbert(n, m int, seed uint64) *Graph {
	if m < 1 {
		m = 1
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	if n == 0 {
		return b.Build()
	}
	// Repeated-endpoint list: picking a uniform element is degree-biased.
	targets := make([]int32, 0, 2*m*n)
	core := m + 1
	if core > n {
		core = n
	}
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, m)
	for v := core; v < n; v++ {
		// Draw distinct targets into a slice (not a map: map iteration
		// order would leak into the targets list and make the graph differ
		// between processes despite the fixed seed).
		chosen = chosen[:0]
		for len(chosen) < m {
			var t int32
			if len(targets) == 0 {
				t = int32(r.Intn(v))
			} else {
				t = targets[r.Intn(len(targets))]
			}
			if !contains32(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			b.AddEdge(v, int(t))
			targets = append(targets, int32(v), t)
		}
	}
	return b.Build()
}

// Grid2D builds a rows×cols grid graph.
func Grid2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus2D builds a rows×cols torus (grid with wraparound).
func Torus2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if rows > 1 {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Cycle builds the n-cycle (or a single edge / empty graph for n < 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	if n >= 2 {
		for v := 0; v < n-1; v++ {
			b.AddEdge(v, v+1)
		}
		if n >= 3 {
			b.AddEdge(n-1, 0)
		}
	}
	return b.Build()
}

// Path builds the n-node path.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Star builds a star with one center (node 0) and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Complete builds the clique K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite builds K_{a,b}: nodes [0,a) on one side, [a,a+b) on
// the other.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(u, a+v)
		}
	}
	return bl.Build()
}

// RandomTree samples a uniform labeled tree via a random Prüfer-like
// attachment: node v > 0 attaches to a uniform node in [0, v).
func RandomTree(n int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, r.Intn(v))
	}
	return b.Build()
}

// NearRegular builds a random graph where every node has degree close to
// d, by sampling d/2 random perfect-matching-style permutation rounds.
// Duplicate and self edges are dropped, so degrees may be slightly below d.
func NearRegular(n, d int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	if n < 2 || d < 1 {
		return b.Build()
	}
	rounds := (d + 1) / 2
	for k := 0; k < rounds; k++ {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, perm[i])
		}
	}
	return b.Build()
}

// Caterpillar builds a path of length spineLen where each spine node has
// legs pendant leaves — a family with many low-degree nodes and moderate
// diameter, useful for schedule tests.
func Caterpillar(spineLen, legs int) *Graph {
	n := spineLen * (1 + legs)
	b := NewBuilder(n)
	for s := 0; s < spineLen; s++ {
		if s+1 < spineLen {
			b.AddEdge(s, s+1)
		}
		for l := 0; l < legs; l++ {
			b.AddEdge(s, spineLen+s*legs+l)
		}
	}
	return b.Build()
}

// CliqueChain builds k cliques of size s connected in a chain by single
// bridge edges — an adversarial family for shattering (dense local
// structure, global sparseness).
func CliqueChain(k, s int) *Graph {
	b := NewBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		if c+1 < k {
			b.AddEdge(base, base+s) // bridge to next clique's first node
		}
	}
	return b.Build()
}

// Degrees returns the sorted degree sequence (descending).
func Degrees(g *Graph) []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}
