package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate (reversed)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(3, 1)
	g := b.Build()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edges present")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestDegrees(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Fatalf("star center degree = %d", g.Degree(0))
	}
	for v := 1; v < 5; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree = %d", v, g.Degree(v))
		}
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); math.Abs(got-8.0/5) > 1e-9 {
		t.Fatalf("AvgDegree = %v", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
	if len(Components(g)) != 0 {
		t.Fatal("empty graph has components")
	}
	if DiameterLowerBound(g) != 0 {
		t.Fatal("empty graph diameter != 0")
	}
}

func TestComponents(t *testing.T) {
	// Two triangles and an isolated node.
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component wrong: %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 6 {
		t.Fatalf("isolated node component wrong: %v", comps[2])
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(10)
	d := BFS(g, 0)
	for v := 0; v < 10; v++ {
		if int(d[v]) != v {
			t.Fatalf("BFS dist to %d = %d", v, d[v])
		}
	}
	if got := DiameterLowerBound(g); got != 9 {
		t.Fatalf("path diameter = %d, want 9", got)
	}
	if got := Eccentricity(g, 5); got != 5 {
		t.Fatalf("ecc(5) = %d, want 5", got)
	}
	// Disconnected: unreachable nodes report -1.
	g2 := FromEdges(3, [][2]int{{0, 1}})
	if BFS(g2, 0)[2] != -1 {
		t.Fatal("unreachable distance not -1")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub := InducedSubgraph(g, []int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub N = %d", sub.N())
	}
	// Edges kept: (0,1), (1,2). Node 4 is isolated in the subgraph.
	if sub.M() != 2 {
		t.Fatalf("sub M = %d, want 2", sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.Degree(3) != 0 {
		t.Fatal("subgraph structure wrong")
	}
	for i, want := range []int32{0, 1, 2, 4} {
		if sub.Orig[i] != want {
			t.Fatalf("Orig[%d] = %d, want %d", i, sub.Orig[i], want)
		}
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate keep node did not panic")
		}
	}()
	InducedSubgraph(Path(3), []int{0, 0})
}

func TestGeneratorsValidate(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"gnp", GNP(500, 0.02, 1)},
		{"gnp-empty", GNP(100, 0, 1)},
		{"gnp-full", GNP(20, 1, 1)},
		{"rgg", RGG(500, 8, 2)},
		{"ba", BarabasiAlbert(300, 3, 3)},
		{"grid", Grid2D(11, 13)},
		{"torus", Torus2D(8, 9)},
		{"cycle", Cycle(50)},
		{"path", Path(50)},
		{"star", Star(50)},
		{"complete", Complete(20)},
		{"bipartite", CompleteBipartite(5, 7)},
		{"rtree", RandomTree(200, 4)},
		{"nearreg", NearRegular(200, 6, 5)},
		{"caterpillar", Caterpillar(10, 3)},
		{"cliquechain", CliqueChain(5, 6)},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestGNPDensity(t *testing.T) {
	n, p := 2000, 0.01
	g := GNP(n, p, 7)
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.M())
	if math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("GNP edges = %v, want ~%v", got, want)
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(300, 0.05, 99)
	b := GNP(300, 0.05, 99)
	if a.M() != b.M() {
		t.Fatal("GNP not deterministic")
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("GNP adjacency differs")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("GNP adjacency differs")
			}
		}
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(10)
	if g.M() != 45 {
		t.Fatalf("K10 edges = %d", g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 9 {
			t.Fatalf("K10 degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := RandomTree(100, seed)
		if g.M() != 99 {
			t.Fatalf("tree edges = %d", g.M())
		}
		if len(Components(g)) != 1 {
			t.Fatal("tree not connected")
		}
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(500, 3, 11)
	if g.N() != 500 {
		t.Fatalf("BA N = %d", g.N())
	}
	// Every non-core node attaches with m distinct edges.
	if g.M() < 3*(500-4) {
		t.Fatalf("BA M = %d too small", g.M())
	}
	// Heavy tail: max degree should well exceed the mean.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("BA max degree %d not heavy-tailed vs avg %v", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid N = %d", g.N())
	}
	if g.M() != 3*3+2*4 {
		t.Fatalf("grid M = %d", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid max degree = %d", g.MaxDegree())
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus2D(5, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	if len(Components(g)) != 1 {
		t.Fatal("clique chain not connected")
	}
	// A middle clique's first node has 3 clique neighbors plus a bridge to
	// each adjacent clique.
	if g.MaxDegree() != 5 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

func TestNearRegularDegrees(t *testing.T) {
	g := NearRegular(400, 8, 3)
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > 8 {
			t.Fatalf("NearRegular degree(%d) = %d > 8", v, d)
		}
	}
	if g.AvgDegree() < 6 {
		t.Fatalf("NearRegular avg degree %v too low", g.AvgDegree())
	}
}

func TestFamiliesCatalog(t *testing.T) {
	for _, fam := range Families(8) {
		g := fam.Make(200, 1)
		if err := g.Validate(); err != nil {
			t.Errorf("family %s: %v", fam.Name, err)
		}
		if g.N() == 0 {
			t.Errorf("family %s produced empty graph", fam.Name)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5)
	h := DegreeHistogram(g)
	if len(h) != 5 {
		t.Fatalf("hist len = %d", len(h))
	}
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("hist = %v", h)
	}
}

// Property: build from random edge list always yields a valid graph whose
// HasEdge agrees with the input set.
func TestBuildProperty(t *testing.T) {
	f := func(nRaw uint8, pairs [][2]uint8) bool {
		n := int(nRaw%50) + 2
		b := NewBuilder(n)
		want := map[[2]int]bool{}
		for _, p := range pairs {
			u, v := int(p[0])%n, int(p[1])%n
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[[2]int{u, v}] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if g.M() != len(want) {
			return false
		}
		for e := range want {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesSorted(t *testing.T) {
	ds := Degrees(BarabasiAlbert(100, 2, 1))
	for i := 1; i < len(ds); i++ {
		if ds[i] > ds[i-1] {
			t.Fatal("Degrees not descending")
		}
	}
}

func TestMatesInvolution(t *testing.T) {
	for _, g := range []*Graph{GNP(300, 0.05, 7), BarabasiAlbert(200, 3, 1), Star(5), Cycle(9)} {
		mates := g.Mates()
		if len(mates) != g.Arcs() {
			t.Fatalf("Mates length %d, want %d arcs", len(mates), g.Arcs())
		}
		for v := 0; v < g.N(); v++ {
			base := g.ArcBase(v)
			for p, u := range g.Neighbors(v) {
				i := base + int32(p)
				j := mates[i]
				// Arc j must live in u's range and point back at v.
				if j < g.ArcBase(int(u)) || j >= g.ArcBase(int(u))+int32(g.Degree(int(u))) {
					t.Fatalf("mate of arc %d outside node %d's range", i, u)
				}
				if g.Neighbors(int(u))[j-g.ArcBase(int(u))] != int32(v) {
					t.Fatalf("mate of (%d,%d) does not point back", v, u)
				}
				if mates[j] != i {
					t.Fatalf("Mates not an involution at arc %d", i)
				}
			}
		}
	}
}

func TestPort(t *testing.T) {
	g := Star(4) // center 0, leaves 1..3
	if p := g.Port(0, 2); p != 1 {
		t.Fatalf("Port(0,2) = %d, want 1", p)
	}
	if p := g.Port(1, 0); p != 0 {
		t.Fatalf("Port(1,0) = %d, want 0", p)
	}
	if p := g.Port(1, 2); p != -1 {
		t.Fatalf("Port(1,2) = %d, want -1 (no edge)", p)
	}
}

func TestRandomGeometricDeterministicAndValid(t *testing.T) {
	a := RandomGeometric(500, 0.05, 9)
	b := RandomGeometric(500, 0.05, 9)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("same seed differs: %d/%d edges", a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d adjacency differs at %d", v, i)
			}
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := RandomGeometric(500, 0.05, 10); c.M() == a.M() {
		t.Logf("different seeds gave equal edge counts (possible, suspicious): %d", a.M())
	}
}

func TestRandomGeometricDensityScalesWithN(t *testing.T) {
	// Fixed radius: expected degree is (n-1)·π·r², so doubling n roughly
	// doubles the average degree — the sensor-field scenario RGG hides.
	const rad = 0.04
	small := RandomGeometric(2000, rad, 3)
	large := RandomGeometric(4000, rad, 3)
	want := func(n int) float64 { return float64(n-1) * math.Pi * rad * rad }
	if d := small.AvgDegree(); d < 0.7*want(2000) || d > 1.3*want(2000) {
		t.Fatalf("n=2000 avg degree %.2f, expected ≈%.2f", d, want(2000))
	}
	if d := large.AvgDegree(); d < 0.7*want(4000) || d > 1.3*want(4000) {
		t.Fatalf("n=4000 avg degree %.2f, expected ≈%.2f", d, want(4000))
	}
	if large.AvgDegree() < 1.5*small.AvgDegree() {
		t.Fatalf("density did not scale: %.2f -> %.2f", small.AvgDegree(), large.AvgDegree())
	}
}

func TestRandomGeometricEdgeCases(t *testing.T) {
	if g := RandomGeometric(100, 0, 1); g.M() != 0 {
		t.Fatalf("radius 0 produced %d edges", g.M())
	}
	if g := RandomGeometric(100, -1, 1); g.M() != 0 {
		t.Fatalf("negative radius produced %d edges", g.M())
	}
	if g := RandomGeometric(0, 0.1, 1); g.N() != 0 {
		t.Fatalf("n=0 produced %d nodes", g.N())
	}
	if g := RandomGeometric(50, 2, 1); g.M() != 50*49/2 {
		t.Fatalf("radius covering the square should give a clique, got %d edges", g.M())
	}
}

func TestRGGMatchesRandomGeometricAtDerivedRadius(t *testing.T) {
	n, avg := 800, 9.0
	a := RGG(n, avg, 4)
	b := RandomGeometric(n, RadiusForAvgDegree(n, avg), 4)
	if a.M() != b.M() {
		t.Fatalf("RGG and RandomGeometric at derived radius differ: %d vs %d edges", a.M(), b.M())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	// Regression test: the target list used for preferential attachment
	// once depended on map iteration order, so two builds with the same
	// seed produced different graphs (and the bench counter-drift report
	// flagged phantom changes on every run).
	a := BarabasiAlbert(2000, 4, 3)
	b := BarabasiAlbert(2000, 4, 3)
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d adjacency differs at position %d", v, i)
			}
		}
	}
}
