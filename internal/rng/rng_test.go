package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewForNode(42, 7)
	b := NewForNode(42, 7)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNodeStreamsDiffer(t *testing.T) {
	a := NewForNode(42, 0)
	b := NewForNode(42, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent node streams collided %d/64 times", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := NewForNode(1, 5)
	b := NewForNode(2, 5)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical stream prefix")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(123)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(55)
	const buckets, draws = 8, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(31)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate %v", p, rate)
	}
}

func TestFirstSuccess(t *testing.T) {
	s := New(17)
	if got := s.FirstSuccess(0, 100); got != -1 {
		t.Fatalf("FirstSuccess(0) = %d, want -1", got)
	}
	if got := s.FirstSuccess(0.5, 0); got != -1 {
		t.Fatalf("FirstSuccess with 0 rounds = %d, want -1", got)
	}
	if got := s.FirstSuccess(1, 10); got != 0 {
		t.Fatalf("FirstSuccess(1) = %d, want 0", got)
	}
	// Distribution sanity: with p=0.5 the mean first success index is ~1.
	sum, n := 0.0, 20000
	for i := 0; i < n; i++ {
		v := s.FirstSuccess(0.5, 64)
		if v < 0 {
			v = 64
		}
		sum += float64(v)
	}
	mean := sum / float64(n)
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("FirstSuccess(0.5) mean index %v, want ~1.0", mean)
	}
}

func TestFirstSuccessInRange(t *testing.T) {
	f := func(seed uint64, rounds uint8) bool {
		s := New(seed)
		r := int(rounds%32) + 1
		v := s.FirstSuccess(0.2, r)
		return v >= -1 && v < r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerm(t *testing.T) {
	s := New(77)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(5)
	a := s.Fork(1)
	b := s.Fork(2)
	c := s.Fork(1)
	if a.Uint64() != c.Uint64() {
		t.Fatal("Fork with same tag not deterministic")
	}
	aNext, bNext := a.Uint64(), b.Uint64()
	if aNext == bNext {
		t.Fatal("Fork with different tags produced identical values")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkBernoulli(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Bernoulli(0.1)
	}
}
