package rng

import "math/bits"

// Stream is a single pseudo-random stream. The zero value is not valid; use
// New or NewForNode.
type Stream struct {
	s [4]uint64
}

// splitMix64 advances x by the SplitMix64 sequence and returns the output.
// It is used only to expand seeds into full generator state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	st := fromSeed(seed)
	return &st
}

func fromSeed(seed uint64) Stream {
	var st Stream
	x := seed
	for i := range st.s {
		st.s[i] = splitMix64(&x)
	}
	// xoshiro256++ requires a nonzero state; SplitMix64 of any seed cannot
	// produce all-zero output words, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// NewForNode derives the stream for node id under the given global seed.
// Distinct (seed, id) pairs yield statistically independent streams.
func NewForNode(seed uint64, id int) *Stream {
	s := ForNode(seed, id)
	return &s
}

// ForNode is NewForNode returning the stream by value, so callers that keep
// one stream per node (struct-of-arrays protocol state) can store them in a
// flat slice instead of allocating each stream on the heap. The derived
// state is identical to NewForNode's.
func ForNode(seed uint64, id int) Stream {
	x := seed
	mix := splitMix64(&x)
	y := mix ^ (uint64(id)+1)*0xd1342543de82ef95
	return fromSeed(splitMix64(&y) ^ uint64(id))
}

// Fork derives a new independent stream from s, labeled by tag. Forking the
// same stream state with different tags gives independent streams; s itself
// is not advanced.
func (s *Stream) Fork(tag uint64) *Stream {
	x := s.s[0] ^ bits.RotateLeft64(s.s[2], 17) ^ (tag+1)*0x2545f4914f6cdd1d
	return New(splitMix64(&x))
}

// Uint64 returns the next value of the stream.
func (s *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[0]+s.s[3], 23) + s.s[0]
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Bernoulli returns true with probability p. Values p <= 0 always return
// false and p >= 1 always return true.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// FirstSuccess returns the index of the first success in rounds trials of a
// Bernoulli(p) experiment, or -1 if all trials fail. Indices are 0-based.
//
// It is equivalent to running s.Bernoulli(p) rounds times and reporting the
// first true, and consumes exactly one variate per simulated trial up to the
// success, so interleaving with other draws is stable.
func (s *Stream) FirstSuccess(p float64, rounds int) int {
	if p <= 0 || rounds <= 0 {
		return -1
	}
	for i := 0; i < rounds; i++ {
		if s.Bernoulli(p) {
			return i
		}
	}
	return -1
}

// Perm returns a uniform permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
