// Package rng provides deterministic, splittable pseudo-random number
// generation for distributed-algorithm simulation.
//
// Every node of a simulated network owns an independent stream derived from
// a global seed and the node's identifier. Runs are reproducible: the same
// (seed, nodeID) pair always yields the same stream, independent of
// scheduling order or executor parallelism. The generator is a SplitMix64
// seeded xoshiro256++, both public-domain constructions; the standard
// library's math/rand is avoided so that stream derivation is explicit and
// stable across Go releases.
package rng
