package core

import (
	"math"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/verify"
)

func run(t *testing.T, g *graph.Graph, algo Algorithm, seed uint64) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.Seed = seed
	res, err := RunVerified(g, algo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllAlgorithmsOnFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp-sparse": graph.GNP(1200, 6.0/1200, 1),
		"gnp-dense":  graph.GNP(600, 0.3, 2),
		"rgg":        graph.RGG(800, 10, 3),
		"ba":         graph.BarabasiAlbert(800, 4, 4),
		"grid":       graph.Grid2D(25, 25),
		"tree":       graph.RandomTree(700, 5),
		"clique":     graph.Complete(150),
		"edgeless":   graph.NewBuilder(60).Build(),
		"cliquechn":  graph.CliqueChain(12, 9),
	}
	for name, g := range graphs {
		for _, algo := range []Algorithm{Luby, Algorithm1, Algorithm2} {
			t.Run(name+"/"+algo.String(), func(t *testing.T) {
				res := run(t, g, algo, 7)
				if got := verify.Count(res.InSet); got == 0 && g.N() > 0 {
					t.Fatal("empty MIS on nonempty graph")
				}
			})
		}
	}
}

func TestManySeeds(t *testing.T) {
	g := graph.GNP(500, 0.02, 11)
	for seed := uint64(0); seed < 6; seed++ {
		run(t, g, Algorithm1, seed)
		run(t, g, Algorithm2, seed)
	}
}

func TestEnergySeparation(t *testing.T) {
	// The paper's headline is asymptotic: Luby's worst-case energy is
	// Θ(log n) while Algorithm 1's is O(log log n). The robustly
	// measurable form at feasible scale: in Luby every node's energy is
	// its decision time, so the awake count grows with log n across a
	// 64x size range, while Algorithm 1's 99th-percentile awake count
	// stays essentially flat (only the largest shattered component pays
	// the Phase III constants).
	gSmall := graph.GNP(1000, 12.0/1000, 13)
	gBig := graph.GNP(64000, 12.0/64000, 14)
	luS := run(t, gSmall, Luby, 1)
	luB := run(t, gBig, Luby, 1)
	a1S := run(t, gSmall, Algorithm1, 1)
	a1B := run(t, gBig, Algorithm1, 1)
	lubyGrowth := luB.Summary.MaxAwake - luS.Summary.MaxAwake
	alg1P99Growth := a1B.Summary.P99Awake - a1S.Summary.P99Awake
	t.Logf("luby maxAwake %d->%d; alg1 p99 %d->%d maxAwake %d->%d",
		luS.Summary.MaxAwake, luB.Summary.MaxAwake,
		a1S.Summary.P99Awake, a1B.Summary.P99Awake,
		a1S.Summary.MaxAwake, a1B.Summary.MaxAwake)
	if lubyGrowth < 3 {
		t.Fatalf("Luby energy growth %d across 64x; expected Θ(log n) growth", lubyGrowth)
	}
	if alg1P99Growth >= lubyGrowth {
		t.Fatalf("Algorithm1 p99 energy growth %d not below Luby growth %d", alg1P99Growth, lubyGrowth)
	}
}

func TestEnergyScalesPolyLogLog(t *testing.T) {
	// All but the unluckiest component sleep nearly always: the average
	// and 99th-percentile awake counts stay flat across a 16x size range.
	small := run(t, graph.GNP(500, 10.0/500, 1), Algorithm1, 3)
	big := run(t, graph.GNP(8000, 10.0/8000, 2), Algorithm1, 3)
	if big.Summary.P99Awake > small.Summary.P99Awake+6 {
		t.Fatalf("p99 energy grew %d -> %d across 16x size", small.Summary.P99Awake, big.Summary.P99Awake)
	}
	if big.Summary.AvgAwake > 2*small.Summary.AvgAwake+4 {
		t.Fatalf("avg energy grew %v -> %v", small.Summary.AvgAwake, big.Summary.AvgAwake)
	}
}

func TestCongestComplianceEndToEnd(t *testing.T) {
	for _, algo := range []Algorithm{Luby, Algorithm1, Algorithm2} {
		g := graph.GNP(1500, 0.01, 17)
		res := run(t, g, algo, 19)
		if res.Summary.Violations != 0 {
			t.Fatalf("%s: %d CONGEST violations (bitsMax=%d)", algo, res.Summary.Violations, res.Summary.BitsMax)
		}
	}
}

func TestDiagnosticsPopulated(t *testing.T) {
	g := graph.GNP(1500, 0.3, 23)
	res := run(t, g, Algorithm1, 29)
	d := res.Diag
	if d.InputMaxDegree == 0 || d.ResidualNodes == 0 {
		t.Fatalf("diag = %+v", d)
	}
	if d.ResidualMaxDegree >= d.InputMaxDegree {
		t.Fatalf("phase I did not reduce degree: %d -> %d", d.InputMaxDegree, d.ResidualMaxDegree)
	}
	log2n := math.Log2(float64(g.N()))
	if float64(d.ResidualMaxDegree) > 4*log2n*log2n {
		t.Fatalf("residual degree %d above O(log² n)", d.ResidualMaxDegree)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	g := graph.GNP(600, 0.02, 31)
	for _, algo := range []Algorithm{Algorithm1, Algorithm2} {
		a := run(t, g, algo, 42)
		b := run(t, g, algo, 42)
		for v := range a.InSet {
			if a.InSet[v] != b.InSet[v] {
				t.Fatalf("%s: node %d differs across identical runs", algo, v)
			}
		}
	}
}

func TestParallelExecutorEndToEnd(t *testing.T) {
	g := graph.GNP(800, 0.02, 37)
	opts := DefaultOptions()
	opts.Seed = 5
	seq, err := RunVerified(g, Algorithm1, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := RunVerified(g, Algorithm1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.InSet {
		if seq.InSet[v] != par.InSet[v] {
			t.Fatalf("node %d differs between executors", v)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Run(graph.Path(2), Algorithm(99), DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Luby.String() != "luby" || Algorithm1.String() != "algorithm1" || Algorithm2.String() != "algorithm2" {
		t.Fatal("String values wrong")
	}
	if Algorithm(0).String() != "Algorithm(0)" {
		t.Fatal("unknown String wrong")
	}
}

func TestAverageEnergyVariants(t *testing.T) {
	g := graph.NearRegular(4000, 24, 41)
	for _, algo := range []Algorithm{Algorithm1Avg, Algorithm2Avg} {
		res := run(t, g, algo, 43)
		base := run(t, g, Algorithm1, 43)
		t.Logf("%s: avg=%.2f max=%d (base avg=%.2f max=%d) failed=%d",
			algo, res.Summary.AvgAwake, res.Summary.MaxAwake,
			base.Summary.AvgAwake, base.Summary.MaxAwake, res.Diag.FailedNodes)
		if res.Summary.AvgAwake > base.Summary.AvgAwake+2 {
			t.Fatalf("%s average energy %v above base %v", algo, res.Summary.AvgAwake, base.Summary.AvgAwake)
		}
	}
}
