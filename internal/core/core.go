package core

import (
	"fmt"
	"time"

	"github.com/energymis/energymis/internal/avgenergy"
	"github.com/energymis/energymis/internal/degreduce"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/phase1"
	"github.com/energymis/energymis/internal/phase3"
	"github.com/energymis/energymis/internal/pipeline"
	"github.com/energymis/energymis/internal/shatter"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/stats"
	"github.com/energymis/energymis/internal/verify"
)

// Algorithm selects which MIS algorithm to run.
type Algorithm int

// Algorithms.
const (
	// Luby is the classic O(log n)-time, O(log n)-energy baseline.
	Luby Algorithm = iota + 1
	// Algorithm1 is Theorem 1.1: O(log² n) time, O(log log n) energy.
	Algorithm1
	// Algorithm2 is Theorem 1.2: O(log n·log log n·log* n) time,
	// O(log² log n) energy.
	Algorithm2
	// Algorithm1Avg is Algorithm 1 with the Section 4 extension: O(1)
	// node-averaged energy, same worst-case bounds.
	Algorithm1Avg
	// Algorithm2Avg is Algorithm 2 with the Section 4 extension.
	Algorithm2Avg
	// RegularizedLuby is the slowed-down Luby of Section 2.1 run to
	// completion without the one-shot restriction: O(log Δ·log n) time
	// and energy (the second baseline, used by ablation A1).
	RegularizedLuby
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Luby:
		return "luby"
	case Algorithm1:
		return "algorithm1"
	case Algorithm2:
		return "algorithm2"
	case Algorithm1Avg:
		return "algorithm1-avg"
	case Algorithm2Avg:
		return "algorithm2-avg"
	case RegularizedLuby:
		return "regularized-luby"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a run. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	Seed    uint64
	Workers int // parallel executor width (0/1 = sequential)
	B       int // CONGEST budget override (0 = 4·ceil(log2 n))
	// Mem supplies pooled engine buffers reused across phases and runs
	// (see sim.Mem). A Mem must not be shared by concurrent runs; nil
	// allocates per run. Used by the throughput executor to make repeated
	// simulations allocation-free in steady state.
	Mem *sim.Mem
	// Tracer, when non-nil, observes the run: per-round counter deltas
	// from the engine and phase spans from the composition layer (see
	// internal/obs). Nil disables tracing with no measurable hot-path
	// cost. A Tracer must not be shared by concurrent runs.
	Tracer obs.Tracer

	Phase1   phase1.Params
	DegRed   degreduce.Params
	Shatter  shatter.Params
	Phase3   phase3.Params // Mode is forced per algorithm
	AvgEn    avgenergy.Params
	MaxRetry int // outer retries for undecided Phase III leftovers
}

// DefaultOptions returns the paper-faithful defaults.
func DefaultOptions() Options {
	return Options{
		Phase1:   phase1.DefaultParams(),
		DegRed:   degreduce.DefaultParams(),
		Shatter:  shatter.DefaultParams(),
		Phase3:   phase3.DefaultParams(phase3.ModeAlg1),
		AvgEn:    avgenergy.DefaultParams(),
		MaxRetry: 3,
	}
}

// PhaseDiag carries structural diagnostics of a composed run.
type PhaseDiag struct {
	InputMaxDegree     int
	Phase1Iterations   int // Alg1: regularized-Luby iterations; Alg2: reduction iterations
	ResidualMaxDegree  int // after Phase I
	ResidualNodes      int
	SurvivorNodes      int // after Phase II
	SurvivorComponents int
	MaxComponent       int
	TreeDepth          int // deepest Phase III spanning-tree node
	FinisherAttempts   int
	Phase3Retries      int
	FailedNodes        int // Section 4 stage-A failed set |F|
}

// Result of a composed run.
type Result struct {
	Algorithm Algorithm
	InSet     []bool
	Summary   stats.Summary
	// AwakePerNode is each node's total awake rounds across all phases.
	AwakePerNode []int64
	Diag         PhaseDiag
}

// Run executes the selected algorithm on g.
func Run(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	switch algo {
	case Luby:
		return runLuby(g, opts)
	case RegularizedLuby:
		return runRegularizedLuby(g, opts)
	case Algorithm1, Algorithm2, Algorithm1Avg, Algorithm2Avg:
		return runComposed(g, algo, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", algo)
	}
}

// tracePhase closes the single phase span of a one-engine-run baseline
// (Luby, RegularizedLuby), mirroring what pipeline.Record emits for each
// phase of a composed run. The baselines decide every node, so the
// residual is always 0.
func tracePhase(tr obs.Tracer, name string, start time.Time, res *sim.Result) {
	if tr == nil {
		return
	}
	var awake int64
	for _, a := range res.Awake {
		awake += int64(a)
	}
	tr.PhaseEnd(obs.PhaseStats{
		Name: name, Rounds: res.Rounds, Awake: awake,
		MsgsSent: res.MsgsSent, MsgsDropped: res.MsgsDropped,
		Bits: res.BitsTotal, Violations: res.Violations,
		WallNS: time.Since(start).Nanoseconds(),
	})
}

func runRegularizedLuby(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Tracer != nil {
		opts.Tracer.PhaseStart("reg-luby")
	}
	start := time.Now()
	inSet, res, err := luby.RunRegularized(g, luby.DefaultRegularizedParams(), opts.simCfg(1))
	if err != nil {
		return nil, err
	}
	tracePhase(opts.Tracer, "reg-luby", start, res)
	acc := stats.NewAccumulator(g.N())
	acc.AddPhase("reg-luby", res, nil)
	return &Result{
		Algorithm:    RegularizedLuby,
		InSet:        inSet,
		Summary:      acc.Summarize(),
		AwakePerNode: acc.AwakePerNode(),
		Diag:         PhaseDiag{InputMaxDegree: g.MaxDegree()},
	}, nil
}

// baseCfg is the root-seed engine configuration of a run; per-phase
// configs derive from it via sim.Config.ForPhase.
func (o Options) baseCfg() sim.Config {
	return sim.Config{Seed: o.Seed, Workers: o.Workers, B: o.B, Mem: o.Mem, Tracer: o.Tracer}
}

func (o Options) simCfg(phase uint64) sim.Config {
	return o.baseCfg().ForPhase(phase)
}

func runLuby(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Tracer != nil {
		opts.Tracer.PhaseStart("luby")
	}
	start := time.Now()
	inSet, res, err := luby.Run(g, opts.simCfg(1))
	if err != nil {
		return nil, err
	}
	tracePhase(opts.Tracer, "luby", start, res)
	acc := stats.NewAccumulator(g.N())
	acc.AddPhase("luby", res, nil)
	return &Result{
		Algorithm:    Luby,
		InSet:        inSet,
		Summary:      acc.Summarize(),
		AwakePerNode: acc.AwakePerNode(),
		Diag:         PhaseDiag{InputMaxDegree: g.MaxDegree()},
	}, nil
}

func runComposed(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	// All phases execute on the batch runtime and share one engine buffer
	// pool through the pipeline, so crossing a phase boundary costs zero
	// steady-state engine allocations; callers running many simulations
	// (the bench throughput executor) pass their own per-worker Mem.
	pl := pipeline.New(g, opts.baseCfg())
	diag := PhaseDiag{InputMaxDegree: g.MaxDegree()}

	// --- Phase I: degree reduction ---
	// Each phase block runs the same shape: Begin opens the trace span,
	// the phase executes (per-round events flow to the tracer from inside
	// the engine), then Join/SetResidual update the composed state before
	// Record closes the span — so the span reports the post-phase residual.
	if algo == Algorithm1 || algo == Algorithm1Avg {
		pl.Begin("phase-i")
		out, err := phase1.Run(g, opts.Phase1, pl.Cfg(1))
		if err != nil {
			return nil, err
		}
		pl.Join(out.InSet, nil)
		pl.SetResidual(out.Residual, nil)
		pl.Record("phase-i", out.Res, nil)
		diag.Phase1Iterations = out.Plan.Iterations
	} else {
		pl.Begin("phase-i")
		out, err := degreduce.Run(g, opts.DegRed, pl.Cfg(1))
		if err != nil {
			return nil, err
		}
		pl.Join(out.InSet, nil)
		pl.SetResidual(out.Residual, nil)
		for i, it := range out.Iters {
			pl.Record(fmt.Sprintf("phase-i.%d", i), it.Res, it.Orig)
		}
		diag.Phase1Iterations = len(out.Iters)
	}
	diag.ResidualNodes = len(pl.Residual())

	// Phase boundary: surviving nodes wake once to learn their status.
	pl.Sync("sync-i/ii")

	// --- Phase I-II (Section 4, average-energy variants only) ---
	if algo == Algorithm1Avg || algo == Algorithm2Avg {
		subA := pl.Subgraph()
		pl.Begin("phase-i/ii")
		ae, err := avgenergy.Run(subA.Graph, opts.AvgEn, pl.Cfg(7))
		if err != nil {
			return nil, err
		}
		pl.Join(ae.InSet, subA.Orig)
		pl.SetResidual(ae.Remaining, subA.Orig)
		if ae.StageARes != nil {
			pl.Record("phase-i/ii.a", ae.StageARes, subA.Orig)
		}
		if ae.StageBRes != nil {
			// Stage B ran on a nested subgraph; compose the ID mapping.
			borig := make([]int32, len(ae.StageBOrig))
			for i, v := range ae.StageBOrig {
				borig[i] = subA.Orig[v]
			}
			pl.Record("phase-i/ii.b", ae.StageBRes, borig)
		}
		diag.FailedNodes = ae.Failed
		pl.Sync("sync-i/ii-2")
	}

	// --- Phase II: shattering ---
	sub := pl.Subgraph()
	diag.ResidualMaxDegree = sub.MaxDegree()
	pl.Begin("phase-ii")
	sh, err := shatter.Run(sub.Graph, opts.Shatter, pl.Cfg(2))
	if err != nil {
		return nil, err
	}
	pl.Join(sh.InSet, sub.Orig)
	pl.SetResidual(sh.Survivors, sub.Orig)
	pl.Record("phase-ii", sh.Res, sub.Orig)
	diag.SurvivorNodes = len(sh.Survivors)
	diag.SurvivorComponents = len(sh.Components)
	diag.MaxComponent = sh.MaxComponent

	// --- Phase III: merge + finisher on the shattered survivors ---
	p3params := opts.Phase3
	if algo == Algorithm2 || algo == Algorithm2Avg {
		p3params.Mode = phase3.ModeAlg2
	} else {
		p3params.Mode = phase3.ModeAlg1
	}
	for attempt := 0; len(pl.Residual()) > 0; attempt++ {
		if attempt > opts.MaxRetry {
			return nil, fmt.Errorf("core: %d nodes undecided after %d Phase III retries", len(pl.Residual()), opts.MaxRetry)
		}
		name := "phase-iii"
		if attempt > 0 {
			name = fmt.Sprintf("phase-iii.retry%d", attempt)
			diag.Phase3Retries++
		}
		sub3 := pl.Subgraph()
		pl.Begin(name)
		p3, err := phase3.Run(sub3.Graph, p3params, pl.Cfg(3+uint64(attempt)))
		if err != nil {
			return nil, err
		}
		pl.Join(p3.InSet, sub3.Orig)
		pl.SetResidual(p3.Undecided, sub3.Orig)
		pl.Record(name, p3.Res, sub3.Orig)
		if p3.MaxDepth > diag.TreeDepth {
			diag.TreeDepth = p3.MaxDepth
		}
		if p3.MaxAttempts > diag.FinisherAttempts {
			diag.FinisherAttempts = p3.MaxAttempts
		}
	}

	return &Result{
		Algorithm:    algo,
		InSet:        pl.InSet(),
		Summary:      pl.Summary(),
		AwakePerNode: pl.AwakePerNode(),
		Diag:         diag,
	}, nil
}

// RunVerified runs the algorithm and checks the output is a maximal
// independent set, returning an error otherwise.
func RunVerified(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	res, err := Run(g, algo, opts)
	if err != nil {
		return nil, err
	}
	if err := verify.Check(g, res.InSet); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid output: %w", algo, err)
	}
	return res, nil
}
