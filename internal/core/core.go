// Package core composes the phase implementations into the paper's
// algorithms:
//
//   - Algorithm 1 (Theorem 1.1): Phase I regularized Luby (phase1) →
//     Phase II shattering (shatter) → Phase III merging + finisher
//     (phase3, ModeAlg1). Time O(log² n), energy O(log log n).
//   - Algorithm 2 (Theorem 1.2): Phase I degree estimation (degreduce) →
//     Phase II → Phase III (phase3, ModeAlg2). Time
//     O(log n·log log n·log* n), energy O(log² log n).
//   - Luby's algorithm (the baseline the paper compares against).
//
// Each phase runs as its own engine invocation on the residual subgraph
// left by the previous one; the accumulator maps per-phase energy back to
// original node IDs, and a one-round all-awake synchronization is charged
// at each phase boundary (the paper's Phase II starts with every node
// awake, which plays the same role).
package core

import (
	"fmt"

	"github.com/energymis/energymis/internal/avgenergy"
	"github.com/energymis/energymis/internal/degreduce"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/phase1"
	"github.com/energymis/energymis/internal/phase3"
	"github.com/energymis/energymis/internal/shatter"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/stats"
	"github.com/energymis/energymis/internal/verify"
)

// Algorithm selects which MIS algorithm to run.
type Algorithm int

// Algorithms.
const (
	// Luby is the classic O(log n)-time, O(log n)-energy baseline.
	Luby Algorithm = iota + 1
	// Algorithm1 is Theorem 1.1: O(log² n) time, O(log log n) energy.
	Algorithm1
	// Algorithm2 is Theorem 1.2: O(log n·log log n·log* n) time,
	// O(log² log n) energy.
	Algorithm2
	// Algorithm1Avg is Algorithm 1 with the Section 4 extension: O(1)
	// node-averaged energy, same worst-case bounds.
	Algorithm1Avg
	// Algorithm2Avg is Algorithm 2 with the Section 4 extension.
	Algorithm2Avg
	// RegularizedLuby is the slowed-down Luby of Section 2.1 run to
	// completion without the one-shot restriction: O(log Δ·log n) time
	// and energy (the second baseline, used by ablation A1).
	RegularizedLuby
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Luby:
		return "luby"
	case Algorithm1:
		return "algorithm1"
	case Algorithm2:
		return "algorithm2"
	case Algorithm1Avg:
		return "algorithm1-avg"
	case Algorithm2Avg:
		return "algorithm2-avg"
	case RegularizedLuby:
		return "regularized-luby"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a run. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	Seed    uint64
	Workers int // parallel executor width (0/1 = sequential)
	B       int // CONGEST budget override (0 = 4·ceil(log2 n))
	// Mem supplies pooled engine buffers reused across phases and runs
	// (see sim.Mem). A Mem must not be shared by concurrent runs; nil
	// allocates per run. Used by the throughput executor to make repeated
	// simulations allocation-free in steady state.
	Mem *sim.Mem

	Phase1   phase1.Params
	DegRed   degreduce.Params
	Shatter  shatter.Params
	Phase3   phase3.Params // Mode is forced per algorithm
	AvgEn    avgenergy.Params
	MaxRetry int // outer retries for undecided Phase III leftovers
}

// DefaultOptions returns the paper-faithful defaults.
func DefaultOptions() Options {
	return Options{
		Phase1:   phase1.DefaultParams(),
		DegRed:   degreduce.DefaultParams(),
		Shatter:  shatter.DefaultParams(),
		Phase3:   phase3.DefaultParams(phase3.ModeAlg1),
		AvgEn:    avgenergy.DefaultParams(),
		MaxRetry: 3,
	}
}

// PhaseDiag carries structural diagnostics of a composed run.
type PhaseDiag struct {
	InputMaxDegree     int
	Phase1Iterations   int // Alg1: regularized-Luby iterations; Alg2: reduction iterations
	ResidualMaxDegree  int // after Phase I
	ResidualNodes      int
	SurvivorNodes      int // after Phase II
	SurvivorComponents int
	MaxComponent       int
	TreeDepth          int // deepest Phase III spanning-tree node
	FinisherAttempts   int
	Phase3Retries      int
	FailedNodes        int // Section 4 stage-A failed set |F|
}

// Result of a composed run.
type Result struct {
	Algorithm Algorithm
	InSet     []bool
	Summary   stats.Summary
	// AwakePerNode is each node's total awake rounds across all phases.
	AwakePerNode []int64
	Diag         PhaseDiag
}

// Run executes the selected algorithm on g.
func Run(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	switch algo {
	case Luby:
		return runLuby(g, opts)
	case RegularizedLuby:
		return runRegularizedLuby(g, opts)
	case Algorithm1, Algorithm2, Algorithm1Avg, Algorithm2Avg:
		return runComposed(g, algo, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", algo)
	}
}

func runRegularizedLuby(g *graph.Graph, opts Options) (*Result, error) {
	inSet, res, err := luby.RunRegularized(g, luby.DefaultRegularizedParams(), opts.simCfg(1))
	if err != nil {
		return nil, err
	}
	acc := stats.NewAccumulator(g.N())
	acc.AddPhase("reg-luby", res, nil)
	return &Result{
		Algorithm:    RegularizedLuby,
		InSet:        inSet,
		Summary:      acc.Summarize(),
		AwakePerNode: acc.AwakePerNode(),
		Diag:         PhaseDiag{InputMaxDegree: g.MaxDegree()},
	}, nil
}

func (o Options) simCfg(phase uint64) sim.Config {
	return sim.Config{
		Seed:    o.Seed ^ (phase * 0x9e3779b97f4a7c15),
		Workers: o.Workers,
		B:       o.B,
		Mem:     o.Mem,
	}
}

func runLuby(g *graph.Graph, opts Options) (*Result, error) {
	inSet, res, err := luby.Run(g, opts.simCfg(1))
	if err != nil {
		return nil, err
	}
	acc := stats.NewAccumulator(g.N())
	acc.AddPhase("luby", res, nil)
	return &Result{
		Algorithm:    Luby,
		InSet:        inSet,
		Summary:      acc.Summarize(),
		AwakePerNode: acc.AwakePerNode(),
		Diag:         PhaseDiag{InputMaxDegree: g.MaxDegree()},
	}, nil
}

func runComposed(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	n := g.N()
	acc := stats.NewAccumulator(n)
	inSet := make([]bool, n)
	diag := PhaseDiag{InputMaxDegree: g.MaxDegree()}

	// --- Phase I: degree reduction ---
	var residual []int
	if algo == Algorithm1 || algo == Algorithm1Avg {
		out, err := phase1.Run(g, opts.Phase1, opts.simCfg(1))
		if err != nil {
			return nil, err
		}
		acc.AddPhase("phase-i", out.Res, nil)
		for v, in := range out.InSet {
			inSet[v] = inSet[v] || in
		}
		residual = out.Residual
		diag.Phase1Iterations = out.Plan.Iterations
	} else {
		out, err := degreduce.Run(g, opts.DegRed, opts.simCfg(1))
		if err != nil {
			return nil, err
		}
		for i, it := range out.Iters {
			acc.AddPhase(fmt.Sprintf("phase-i.%d", i), it.Res, it.Orig)
		}
		for v, in := range out.InSet {
			inSet[v] = inSet[v] || in
		}
		residual = out.Residual
		diag.Phase1Iterations = len(out.Iters)
	}
	diag.ResidualNodes = len(residual)

	// Phase boundary: surviving nodes wake once to learn their status.
	acc.AddFlat("sync-i/ii", 1, toInt32(residual))

	// --- Phase I-II (Section 4, average-energy variants only) ---
	if algo == Algorithm1Avg || algo == Algorithm2Avg {
		subA := graph.InducedSubgraph(g, residual)
		ae, err := avgenergy.Run(subA.Graph, opts.AvgEn, opts.simCfg(7))
		if err != nil {
			return nil, err
		}
		if ae.StageARes != nil {
			acc.AddPhase("phase-i/ii.a", ae.StageARes, subA.Orig)
		}
		if ae.StageBRes != nil {
			// Stage B ran on a nested subgraph; compose the ID mapping.
			borig := make([]int32, len(ae.StageBOrig))
			for i, v := range ae.StageBOrig {
				borig[i] = subA.Orig[v]
			}
			acc.AddPhase("phase-i/ii.b", ae.StageBRes, borig)
		}
		for v, in := range ae.InSet {
			if in {
				inSet[subA.Orig[v]] = true
			}
		}
		next := make([]int, len(ae.Remaining))
		for i, v := range ae.Remaining {
			next[i] = int(subA.Orig[v])
		}
		residual = next
		diag.FailedNodes = ae.Failed
		acc.AddFlat("sync-i/ii-2", 1, toInt32(residual))
	}

	// --- Phase II: shattering ---
	sub := graph.InducedSubgraph(g, residual)
	diag.ResidualMaxDegree = sub.MaxDegree()
	sh, err := shatter.Run(sub.Graph, opts.Shatter, opts.simCfg(2))
	if err != nil {
		return nil, err
	}
	acc.AddPhase("phase-ii", sh.Res, sub.Orig)
	for v, in := range sh.InSet {
		if in {
			inSet[sub.Orig[v]] = true
		}
	}
	diag.SurvivorNodes = len(sh.Survivors)
	diag.SurvivorComponents = len(sh.Components)
	diag.MaxComponent = sh.MaxComponent

	// --- Phase III: merge + finisher on the shattered survivors ---
	p3params := opts.Phase3
	if algo == Algorithm2 || algo == Algorithm2Avg {
		p3params.Mode = phase3.ModeAlg2
	} else {
		p3params.Mode = phase3.ModeAlg1
	}
	pending := make([]int, 0, len(sh.Survivors))
	for _, v := range sh.Survivors {
		pending = append(pending, int(sub.Orig[v]))
	}
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt > opts.MaxRetry {
			return nil, fmt.Errorf("core: %d nodes undecided after %d Phase III retries", len(pending), opts.MaxRetry)
		}
		sub3 := graph.InducedSubgraph(g, pending)
		p3, err := phase3.Run(sub3.Graph, p3params, opts.simCfg(3+uint64(attempt)))
		if err != nil {
			return nil, err
		}
		name := "phase-iii"
		if attempt > 0 {
			name = fmt.Sprintf("phase-iii.retry%d", attempt)
			diag.Phase3Retries++
		}
		acc.AddPhase(name, p3.Res, sub3.Orig)
		for v, in := range p3.InSet {
			if in {
				inSet[sub3.Orig[v]] = true
			}
		}
		if p3.MaxDepth > diag.TreeDepth {
			diag.TreeDepth = p3.MaxDepth
		}
		if p3.MaxAttempts > diag.FinisherAttempts {
			diag.FinisherAttempts = p3.MaxAttempts
		}
		next := make([]int, 0, len(p3.Undecided))
		for _, v := range p3.Undecided {
			next = append(next, int(sub3.Orig[v]))
		}
		pending = next
	}

	return &Result{
		Algorithm:    algo,
		InSet:        inSet,
		Summary:      acc.Summarize(),
		AwakePerNode: acc.AwakePerNode(),
		Diag:         diag,
	}, nil
}

// RunVerified runs the algorithm and checks the output is a maximal
// independent set, returning an error otherwise.
func RunVerified(g *graph.Graph, algo Algorithm, opts Options) (*Result, error) {
	res, err := Run(g, algo, opts)
	if err != nil {
		return nil, err
	}
	if err := verify.Check(g, res.InSet); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid output: %w", algo, err)
	}
	return res, nil
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}
