// Package core composes the phase implementations into the paper's
// algorithms:
//
//   - Algorithm 1 (Theorem 1.1): Phase I regularized Luby (phase1) →
//     Phase II shattering (shatter) → Phase III merging + finisher
//     (phase3, ModeAlg1). Time O(log² n), energy O(log log n).
//   - Algorithm 2 (Theorem 1.2): Phase I degree estimation (degreduce) →
//     Phase II → Phase III (phase3, ModeAlg2). Time
//     O(log n·log log n·log* n), energy O(log² log n).
//   - Luby's algorithm (the baseline the paper compares against).
//
// Each phase runs as its own engine invocation on the residual subgraph
// left by the previous one; the accumulator maps per-phase energy back to
// original node IDs, and a one-round all-awake synchronization is charged
// at each phase boundary (the paper's Phase II starts with every node
// awake, which plays the same role).
package core
