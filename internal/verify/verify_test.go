package verify

import (
	"testing"
	"testing/quick"

	"github.com/energymis/energymis/internal/graph"
)

func TestIndependent(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	ok, _, _ := IsIndependent(g, []bool{true, false, true, false})
	if !ok {
		t.Fatal("alternating set on path should be independent")
	}
	ok, u, v := IsIndependent(g, []bool{true, true, false, false})
	if ok {
		t.Fatal("adjacent pair reported independent")
	}
	if (u != 0 || v != 1) && (u != 1 || v != 0) {
		t.Fatalf("wrong witness (%d,%d)", u, v)
	}
}

func TestMaximal(t *testing.T) {
	g := graph.Path(4)
	if ok, _ := IsMaximal(g, []bool{true, false, true, false}); !ok {
		t.Fatal("{0,2} should be maximal on P4")
	}
	ok, w := IsMaximal(g, []bool{true, false, false, false})
	if ok {
		t.Fatal("{0} reported maximal on P4")
	}
	if w != 2 && w != 3 {
		t.Fatalf("wrong uncovered witness %d", w)
	}
}

func TestCheck(t *testing.T) {
	g := graph.Cycle(5)
	if err := Check(g, []bool{true, false, true, false, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := Check(g, []bool{true, true, false, false, false}); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := Check(g, []bool{true, false, false, false, false}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	if err := Check(g, []bool{true}); err == nil {
		t.Fatal("wrong-length set accepted")
	}
}

func TestResidual(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	rest := Residual(g, []bool{true, false, false, false, false})
	// 0 in set, 1 removed as neighbor; 2,3,4 remain.
	if len(rest) != 3 || rest[0] != 2 || rest[2] != 4 {
		t.Fatalf("residual = %v", rest)
	}
	sub := ResidualSubgraph(g, []bool{true, false, false, false, false})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("residual subgraph n=%d m=%d", sub.N(), sub.M())
	}
}

func TestResidualEmptyForMIS(t *testing.T) {
	g := graph.GNP(200, 0.05, 1)
	mis := GreedyMIS(g)
	if rest := Residual(g, mis); len(rest) != 0 {
		t.Fatalf("MIS left residual %v", rest)
	}
}

func TestGreedyMISIsValid(t *testing.T) {
	gens := []*graph.Graph{
		graph.GNP(300, 0.02, 2),
		graph.Complete(30),
		graph.Star(50),
		graph.Cycle(101),
		graph.RandomTree(200, 3),
		graph.NewBuilder(10).Build(), // edgeless: everyone joins
	}
	for i, g := range gens {
		if err := Check(g, GreedyMIS(g)); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
	if got := Count(GreedyMIS(graph.NewBuilder(10).Build())); got != 10 {
		t.Fatalf("edgeless MIS size = %d", got)
	}
	if got := Count(GreedyMIS(graph.Complete(30))); got != 1 {
		t.Fatalf("clique MIS size = %d", got)
	}
}

// Property: greedy MIS on random graphs is always maximal independent,
// and residual of any independent set never contains a set member.
func TestGreedyProperty(t *testing.T) {
	f := func(nRaw uint8, seed uint64) bool {
		n := int(nRaw%100) + 1
		g := graph.GNP(n, 0.1, seed)
		mis := GreedyMIS(g)
		return Check(g, mis) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	u := Union([]bool{true, false, false}, []bool{false, false, true})
	if !u[0] || u[1] || !u[2] {
		t.Fatalf("union = %v", u)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Union([]bool{true}, []bool{})
}
