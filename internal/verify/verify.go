package verify

import (
	"fmt"

	"github.com/energymis/energymis/internal/graph"
)

// IsIndependent reports whether inSet (indexed by node) is an independent
// set of g, returning a witness edge when it is not.
func IsIndependent(g *graph.Graph, inSet []bool) (ok bool, u, v int) {
	for x := 0; x < g.N(); x++ {
		if !inSet[x] {
			continue
		}
		for _, y := range g.Neighbors(x) {
			if inSet[y] {
				return false, x, int(y)
			}
		}
	}
	return true, -1, -1
}

// IsMaximal reports whether inSet is maximal in g (every non-member has a
// member neighbor), returning a witness uncovered node when it is not.
// It does not check independence; use Check for both.
func IsMaximal(g *graph.Graph, inSet []bool) (ok bool, uncovered int) {
	for x := 0; x < g.N(); x++ {
		if inSet[x] {
			continue
		}
		covered := false
		for _, y := range g.Neighbors(x) {
			if inSet[y] {
				covered = true
				break
			}
		}
		if !covered {
			return false, x
		}
	}
	return true, -1
}

// Check validates that inSet is a maximal independent set of g.
func Check(g *graph.Graph, inSet []bool) error {
	if len(inSet) != g.N() {
		return fmt.Errorf("verify: set length %d != n %d", len(inSet), g.N())
	}
	if ok, u, v := IsIndependent(g, inSet); !ok {
		return fmt.Errorf("verify: not independent: edge (%d,%d) inside set", u, v)
	}
	if ok, u := IsMaximal(g, inSet); !ok {
		return fmt.Errorf("verify: not maximal: node %d uncovered", u)
	}
	return nil
}

// Residual returns the nodes of g that are neither in inSet nor adjacent
// to a member — the nodes later phases must still decide.
func Residual(g *graph.Graph, inSet []bool) []int {
	removed := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			removed[v] = true
			for _, u := range g.Neighbors(v) {
				removed[u] = true
			}
		}
	}
	var rest []int
	for v := 0; v < g.N(); v++ {
		if !removed[v] {
			rest = append(rest, v)
		}
	}
	return rest
}

// ResidualSubgraph extracts the induced residual subgraph after removing
// inSet and its neighborhood.
func ResidualSubgraph(g *graph.Graph, inSet []bool) *graph.Subgraph {
	return graph.InducedSubgraph(g, Residual(g, inSet))
}

// GreedyMIS computes a maximal independent set sequentially (by increasing
// node index). It is the reference oracle for tests and the sequential
// baseline for benchmarks.
func GreedyMIS(g *graph.Graph) []bool {
	inSet := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inSet
}

// Count returns the number of set members.
func Count(inSet []bool) int {
	c := 0
	for _, b := range inSet {
		if b {
			c++
		}
	}
	return c
}

// Union returns a new set that is the union of the two (equal-length) sets.
func Union(a, b []bool) []bool {
	if len(a) != len(b) {
		panic("verify: Union length mismatch")
	}
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] || b[i]
	}
	return out
}
