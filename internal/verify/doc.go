// Package verify checks the outputs of MIS algorithms and extracts
// residual graphs between phases.
//
// An independent set is a node set with no internal edges; it is maximal
// when every node outside the set has a neighbor inside. The phase
// composition of the paper also needs the *residual* graph: the subgraph
// induced by nodes that are neither in the computed set nor adjacent to it.
package verify
