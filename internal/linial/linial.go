package linial

import (
	"fmt"
	"sort"
)

// Step describes one reduction round's parameters.
type Step struct {
	Q int // field size (prime)
	D int // polynomial degree bound
	K int // input palette size
}

// NewPalette returns the output palette size q².
func (s Step) NewPalette() int { return s.Q * s.Q }

// PlanStep chooses (q, d) for reducing a k-coloring on a graph of maximum
// degree maxDeg. It returns an error only for invalid inputs.
func PlanStep(k, maxDeg int) (Step, error) {
	if k < 1 {
		return Step{}, fmt.Errorf("linial: palette %d < 1", k)
	}
	if maxDeg < 0 {
		return Step{}, fmt.Errorf("linial: negative degree")
	}
	if maxDeg == 0 {
		maxDeg = 1
	}
	// Scan primes q; for each, the smallest usable degree d satisfies
	// q^(d+1) >= k, and q must exceed d*maxDeg.
	for q := 2; ; q++ {
		if !isPrime(q) {
			continue
		}
		d := 0
		pow := q
		for pow < k && d < 64 {
			pow *= q
			d++
		}
		if q > d*maxDeg {
			return Step{Q: q, D: d, K: k}, nil
		}
		if q > 4*maxDeg*64 {
			return Step{}, fmt.Errorf("linial: no (q,d) found for k=%d Δ=%d", k, maxDeg)
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return false
		}
	}
	return true
}

// polyEval evaluates the polynomial whose coefficients are the base-q
// digits of color at point i over F_q.
func (s Step) polyEval(color, i int) int {
	v, pw, c := 0, 1, color
	for t := 0; t <= s.D; t++ {
		coef := c % s.Q
		c /= s.Q
		v = (v + coef*pw) % s.Q
		pw = (pw * i) % s.Q
	}
	return v
}

// SetOf returns the cover-free set F_color as sorted point indices in
// [0, q²), where point (i, y) has index i*q + y.
func (s Step) SetOf(color int) []int {
	out := make([]int, s.Q)
	for i := 0; i < s.Q; i++ {
		out[i] = i*s.Q + s.polyEval(color, i)
	}
	sort.Ints(out)
	return out
}

// Recolor computes a node's new color from its own color and its
// neighbors' colors. The input coloring must be proper; the output is a
// proper coloring with palette q².
func (s Step) Recolor(own int, neighbors []int) (int, error) {
	covered := make(map[int]bool, len(neighbors)*s.Q)
	for _, nc := range neighbors {
		if nc == own {
			return 0, fmt.Errorf("linial: input coloring not proper (color %d repeated)", own)
		}
		for _, pt := range s.SetOf(nc) {
			covered[pt] = true
		}
	}
	for _, pt := range s.SetOf(own) {
		if !covered[pt] {
			return pt, nil
		}
	}
	return 0, fmt.Errorf("linial: no free point for color %d with %d neighbors (q=%d d=%d)",
		own, len(neighbors), s.Q, s.D)
}

// Reduce applies one reduction round to a full coloring. adj[v] lists v's
// neighbors. It returns the new coloring and its palette size.
func Reduce(colors []int, adj [][]int, maxDeg int) ([]int, int, error) {
	k := 0
	for _, c := range colors {
		if c+1 > k {
			k = c + 1
		}
	}
	step, err := PlanStep(k, maxDeg)
	if err != nil {
		return nil, 0, err
	}
	out := make([]int, len(colors))
	nbrColors := make([]int, 0, maxDeg)
	for v := range colors {
		nbrColors = nbrColors[:0]
		for _, u := range adj[v] {
			nbrColors = append(nbrColors, colors[u])
		}
		nc, err := step.Recolor(colors[v], nbrColors)
		if err != nil {
			return nil, 0, fmt.Errorf("node %d: %w", v, err)
		}
		out[v] = nc
	}
	return out, step.NewPalette(), nil
}

// ReduceToFixpoint iterates Reduce until the palette stops shrinking,
// returning the final coloring, palette, and the number of rounds — the
// "run Linial for O(log* n) rounds" regime of Section 3.2.
func ReduceToFixpoint(colors []int, adj [][]int, maxDeg, maxRounds int) ([]int, int, int, error) {
	cur := append([]int(nil), colors...)
	palette := 0
	for _, c := range cur {
		if c+1 > palette {
			palette = c + 1
		}
	}
	rounds := 0
	for rounds < maxRounds {
		next, np, err := Reduce(cur, adj, maxDeg)
		if err != nil {
			return nil, 0, 0, err
		}
		if np >= palette {
			break
		}
		cur, palette = next, np
		rounds++
	}
	return cur, palette, rounds, nil
}
