// Package linial implements Linial's one-round color reduction [Lin92,
// Theorem 5.1]: given a proper k-coloring of a graph with maximum degree
// Δ, one communication round yields a proper O(Δ² log k)-coloring.
//
// The paper's Phase III cites this reduction for coloring the
// low-indegree cluster graph H_L (Section 2.3 / 3.2). The production path
// in internal/phase3 uses the Cole–Vishkin step instead, which exploits
// H_L's out-degree-1 orientation (a documented substitution; see the
// phase3 package docs); this
// package provides the general, orientation-free construction for the A4
// ablation and for reuse.
//
// Construction: pick a prime q with q > d·Δ and q^(d+1) >= k for some
// degree bound d. Map every color x < k to the degree-<=d polynomial p_x
// over F_q whose coefficients are the base-q digits of x, and let
// F_x = {(i, p_x(i)) : i in F_q} ⊂ [q²]. Two distinct polynomials agree on
// at most d points, so the d·Δ < q points a node's neighbors can cover
// never exhaust F_x: the node picks the smallest uncovered point as its
// new color in [q²].
package linial
