package linial

import (
	"testing"
	"testing/quick"

	"github.com/energymis/energymis/internal/graph"
)

func adjOf(g *graph.Graph) [][]int {
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			adj[v] = append(adj[v], int(u))
		}
	}
	return adj
}

func properOrFatal(t *testing.T, g *graph.Graph, colors []int) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[u] {
				t.Fatalf("edge (%d,%d) monochromatic: %d", v, u, colors[v])
			}
		}
	}
}

func TestPlanStep(t *testing.T) {
	s, err := PlanStep(1<<20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Q <= s.D*10 {
		t.Fatalf("q=%d not above d*Δ=%d", s.Q, s.D*10)
	}
	// q^(d+1) >= k
	pow := 1
	for i := 0; i <= s.D; i++ {
		pow *= s.Q
	}
	if pow < 1<<20 {
		t.Fatalf("q^(d+1)=%d < k", pow)
	}
	if _, err := PlanStep(0, 5); err == nil {
		t.Fatal("PlanStep(0) accepted")
	}
}

func TestCoverFreeProperty(t *testing.T) {
	// For any color x and any Δ other colors, the union of their sets
	// must not cover F_x.
	s, err := PlanStep(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 20; x++ {
		others := []int{(x + 1) % 200, (x + 7) % 200, (x + 13) % 200, (x + 101) % 200}
		covered := map[int]bool{}
		for _, o := range others {
			for _, pt := range s.SetOf(o) {
				covered[pt] = true
			}
		}
		free := 0
		for _, pt := range s.SetOf(x) {
			if !covered[pt] {
				free++
			}
		}
		if free == 0 {
			t.Fatalf("color %d fully covered by %v", x, others)
		}
	}
}

func TestReduceOnGraphs(t *testing.T) {
	cases := []*graph.Graph{
		graph.Cycle(101),
		graph.Grid2D(13, 17),
		graph.GNP(300, 0.02, 3),
		graph.RandomTree(200, 5),
		graph.CompleteBipartite(6, 6),
	}
	for gi, g := range cases {
		adj := adjOf(g)
		colors := make([]int, g.N())
		for v := range colors {
			colors[v] = v // IDs are a proper n-coloring
		}
		next, palette, err := Reduce(colors, adj, g.MaxDegree())
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		properOrFatal(t, g, next)
		// One round reaches O(Δ² log k); for small k relative to Δ² the
		// palette may not shrink yet, but it must stay near that bound.
		dd := g.MaxDegree() * g.MaxDegree()
		if palette > 8*dd*20 && palette >= 2*g.N() {
			t.Fatalf("graph %d: palette %d far above O(Δ² log k) (Δ²=%d, n=%d)", gi, palette, dd, g.N())
		}
		for _, c := range next {
			if c < 0 || c >= palette {
				t.Fatalf("graph %d: color %d outside palette %d", gi, c, palette)
			}
		}
	}
}

func TestReduceToFixpoint(t *testing.T) {
	g := graph.NearRegular(500, 8, 7)
	adj := adjOf(g)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = v
	}
	final, palette, rounds, err := ReduceToFixpoint(colors, adj, g.MaxDegree(), 10)
	if err != nil {
		t.Fatal(err)
	}
	properOrFatal(t, g, final)
	if rounds < 2 {
		t.Fatalf("fixpoint after %d rounds; expected at least 2 from palette 500", rounds)
	}
	// Linial's bound: final palette O(Δ²·small). For Δ=8 the polynomial
	// construction bottoms out in the low hundreds.
	if palette > 2000 {
		t.Fatalf("final palette %d too large", palette)
	}
	t.Logf("palette 500 -> %d in %d rounds (Δ=%d)", palette, rounds, g.MaxDegree())
}

func TestRecolorRejectsImproper(t *testing.T) {
	s, err := PlanStep(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recolor(4, []int{4}); err == nil {
		t.Fatal("improper input accepted")
	}
}

func TestPolyDeterministic(t *testing.T) {
	f := func(colorRaw uint16, iRaw uint8) bool {
		s, err := PlanStep(1000, 6)
		if err != nil {
			return false
		}
		color := int(colorRaw) % 1000
		i := int(iRaw) % s.Q
		return s.polyEval(color, i) == s.polyEval(color, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctColorsDistinctSets(t *testing.T) {
	s, err := PlanStep(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			sa, sb := s.SetOf(a), s.SetOf(b)
			same := 0
			for i := range sa {
				if sa[i] == sb[i] {
					same++
				}
			}
			// Distinct degree-<=d polynomials agree on at most d points.
			if same > s.D {
				t.Fatalf("colors %d,%d agree on %d > d=%d points", a, b, same, s.D)
			}
		}
	}
}
