package obs

import (
	"bytes"
	"strings"
	"testing"
)

// writeSample streams a small two-phase run through a TraceWriter and
// returns the bytes. The numbers are internally consistent, so the trace
// passes CheckTrace.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, map[string]string{"algorithm": "test", "n": "8", "seed": "1"})
	w.PhaseStart("phase-a")
	w.Round(RoundStats{Round: 0, Awake: 4, MsgsSent: 8, Bits: 64, WallNS: 120})
	w.Round(RoundStats{Round: 1, Awake: 2, MsgsSent: 2, MsgsDropped: 1, Bits: 16, WallNS: 80})
	w.PhaseEnd(PhaseStats{Name: "phase-a", Rounds: 2, Awake: 6, MsgsSent: 10, MsgsDropped: 1, Bits: 80, Residual: 2, WallNS: 200})
	w.PhaseStart("phase-b")
	w.Round(RoundStats{Round: 0, Awake: 2, MsgsSent: 2, Bits: 16, WallNS: 40})
	w.PhaseEnd(PhaseStats{Name: "phase-b", Rounds: 1, Awake: 2, MsgsSent: 2, Bits: 16, WallNS: 40})
	w.Summary(SummaryStats{Rounds: 3, MaxAwake: 2, AvgAwake: 1.0, AwakeTotal: 8, MsgsSent: 12, MsgsDropped: 1, BitsTotal: 96, BitsMax: 16, MISSize: 5})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestTraceRoundTrip(t *testing.T) {
	data := writeSample(t)
	tr, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.SchemaVersion != TraceSchemaVersion {
		t.Fatalf("schema version %d, want %d", tr.Header.SchemaVersion, TraceSchemaVersion)
	}
	if tr.Header.Env == nil || tr.Header.Env.GoVersion == "" {
		t.Fatal("header env missing")
	}
	if got := tr.MetaInt("n"); got != 8 {
		t.Fatalf("MetaInt(n) = %d, want 8", got)
	}
	sum := tr.Summary()
	if sum == nil || sum.Awake != 8 || sum.MISSize != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	// 1 header + 2 phase_start + 3 round + 2 phase + 1 summary.
	if len(tr.Records) != 9 {
		t.Fatalf("got %d records, want 9", len(tr.Records))
	}
	// Round sequence numbers are global and 1-based.
	var seqs []int
	for _, r := range tr.Records {
		if r.Type == RecRound {
			seqs = append(seqs, r.Seq)
		}
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("round seq = %v", seqs)
		}
	}
	if problems := CheckTrace(tr); len(problems) != 0 {
		t.Fatalf("CheckTrace: %v", problems)
	}
}

func TestCheckTraceCatchesMismatch(t *testing.T) {
	data := writeSample(t)
	tr, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one round's message count: both the round-sum and the
	// phase-sum invariants must still hold against the summary, so only
	// the round side trips.
	for i := range tr.Records {
		if tr.Records[i].Type == RecRound {
			tr.Records[i].MsgsSent += 3
			break
		}
	}
	problems := CheckTrace(tr)
	if len(problems) == 0 {
		t.Fatal("corrupted trace passed CheckTrace")
	}
	if !strings.Contains(strings.Join(problems, "\n"), "messages sent") {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestReadTraceRejectsBadHeader(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"type":"round","seq":1}` + "\n")); err == nil {
		t.Fatal("trace without header accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"type":"header","schema_version":99}` + "\n")); err == nil {
		t.Fatal("future schema version accepted")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCanonicalStripsWallTime(t *testing.T) {
	data := writeSample(t)
	tr, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	recs := Canonical(tr)
	for _, r := range recs {
		if r.WallNS != 0 {
			t.Fatalf("wall_ns survived canonicalization: %+v", r)
		}
	}
	a, err := CanonicalBytes(recs)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(a, []byte("wall_ns")) {
		t.Fatal("canonical bytes still mention wall_ns")
	}
	// Canonicalizing twice is stable.
	b, err := CanonicalBytes(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("CanonicalBytes not deterministic")
	}
}

func TestSummarizeAndTopPhases(t *testing.T) {
	tr, err := ReadTrace(bytes.NewReader(writeSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tr)
	if s.N != 8 || s.RoundCount != 3 || s.PeakAwake != 4 {
		t.Fatalf("summary digest: n=%d rounds=%d peak=%d", s.N, s.RoundCount, s.PeakAwake)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "phase-a" {
		t.Fatalf("phases: %+v", s.Phases)
	}
	top := TopPhases(s, 1)
	if len(top) != 1 || top[0].Name != "phase-a" || top[0].Awake != 6 {
		t.Fatalf("top phases: %+v", top)
	}
	if spark := Sparkline(s, 10); spark == "" {
		t.Fatal("empty sparkline")
	}
}

func TestDiff(t *testing.T) {
	tr, err := ReadTrace(bytes.NewReader(writeSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	a := Summarize(tr)
	b := Summarize(tr)
	b.Phases = append([]PhaseAgg{}, a.Phases...)
	b.Phases[0].Rounds += 5
	b.Phases = append(b.Phases, PhaseAgg{Name: "phase-c", Rounds: 1, Awake: 1})
	d := Diff(a, b)
	if len(d.Phases) != 3 {
		t.Fatalf("diff phases: %+v", d.Phases)
	}
	if d.Phases[0].Rounds[1]-d.Phases[0].Rounds[0] != 5 {
		t.Fatalf("phase-a rounds delta: %+v", d.Phases[0])
	}
	last := d.Phases[2]
	if last.Name != "phase-c" || last.InA || !last.InB {
		t.Fatalf("b-only phase: %+v", last)
	}
}

func TestWriteCurveCSV(t *testing.T) {
	tr, err := ReadTrace(bytes.NewReader(writeSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 rounds
		t.Fatalf("csv lines: %q", lines)
	}
	if !strings.HasPrefix(lines[1], "1,phase-a,0,4,0.500000,8,") {
		t.Fatalf("csv row: %q", lines[1])
	}
}

func TestMultiTracer(t *testing.T) {
	if got := Multi(nil, nil); got != nil {
		t.Fatalf("Multi(nil, nil) = %v, want nil", got)
	}
	reg := NewRegistry()
	rt := NewRegistryTracer(reg)
	if got := Multi(nil, rt); got != Tracer(rt) {
		t.Fatal("Multi with one non-nil tracer should return it unwrapped")
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, nil)
	m := Multi(rt, w)
	m.PhaseStart("p")
	m.Round(RoundStats{Awake: 3, MsgsSent: 4})
	m.PhaseEnd(PhaseStats{Name: "p", Rounds: 1, Awake: 3, MsgsSent: 4})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("awake_node_rounds").Value() != 3 {
		t.Fatal("registry missed the fanned-out round")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"phase":"p"`)) {
		t.Fatal("writer missed the fanned-out round")
	}
}
