package obs

import (
	"expvar"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named atomic counter. Safe for concurrent
// use; the zero value is ready.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a lock-free power-of-two histogram: Observe(v) lands in
// bucket ⌈log2(v+1)⌉, so bucket b counts observations in [2^(b-1), 2^b).
// Safe for concurrent use; the zero value is ready.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "le_2^b" -> count, non-empty buckets only
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for b := range h.buckets {
		if c := h.buckets[b].Load(); c > 0 {
			if s.Buckets == nil {
				s.Buckets = map[string]int64{}
			}
			hi := int64(1) << b // bucket b holds values < 2^b
			s.Buckets[fmt.Sprintf("lt_%d", hi)] = c
		}
	}
	return s
}

// Registry is a named collection of counters and histograms — the
// in-process metrics surface that the planned misd server will expose.
// Get-or-create lookups take a mutex; the returned handles update
// atomically, so hot paths fetch a handle once and hold it.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current value. The counters map is
// plain name→value; histograms are nested snapshots. Key order is not
// meaningful (JSON marshaling sorts map keys).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	out := map[string]any{}
	if len(counters) > 0 {
		out["counters"] = counters
	}
	if len(hists) > 0 {
		out["histograms"] = hists
	}
	return out
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Publish exposes the registry on the process's expvar surface under the
// given name (e.g. "energymis"), so any HTTP server that mounts
// expvar.Handler serves it at /debug/vars — the seed of the misd metrics
// endpoint. Publishing the same name twice is an error (expvar names are
// process-global).
func (r *Registry) Publish(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}

// RegistryTracer mirrors trace events into a Registry as live metrics:
// totals (rounds, awake node-rounds, messages, bits), a per-round awake
// histogram, per-round wall-time histogram, and per-phase rounds/awake
// counters. Attach it alongside a TraceWriter via Multi, or alone when
// only live metrics are wanted.
type RegistryTracer struct {
	rounds, awake, msgs, dropped, bitsC, viol, phases *Counter
	awakeHist, wallHist                               *Histogram
	reg                                               *Registry
}

// NewRegistryTracer returns a Tracer accumulating into reg.
func NewRegistryTracer(reg *Registry) *RegistryTracer {
	return &RegistryTracer{
		rounds:    reg.Counter("rounds"),
		awake:     reg.Counter("awake_node_rounds"),
		msgs:      reg.Counter("msgs_sent"),
		dropped:   reg.Counter("msgs_dropped"),
		bitsC:     reg.Counter("bits_total"),
		viol:      reg.Counter("congest_violations"),
		phases:    reg.Counter("phases"),
		awakeHist: reg.Histogram("awake_per_round"),
		wallHist:  reg.Histogram("round_wall_ns"),
		reg:       reg,
	}
}

// PhaseStart implements Tracer.
func (t *RegistryTracer) PhaseStart(string) { t.phases.Inc() }

// Round implements Tracer.
func (t *RegistryTracer) Round(r RoundStats) {
	t.rounds.Inc()
	t.awake.Add(int64(r.Awake))
	t.msgs.Add(r.MsgsSent)
	t.dropped.Add(r.MsgsDropped)
	t.bitsC.Add(r.Bits)
	t.viol.Add(r.Violations)
	t.awakeHist.Observe(int64(r.Awake))
	t.wallHist.Observe(r.WallNS)
}

// PhaseEnd implements Tracer.
func (t *RegistryTracer) PhaseEnd(p PhaseStats) {
	t.reg.Counter("phase." + p.Name + ".rounds").Add(int64(p.Rounds))
	t.reg.Counter("phase." + p.Name + ".awake").Add(p.Awake)
}
