package obs

// RoundStats is one executed round's aggregate, as observed by the engine:
// the counter *deltas* of exactly this round, not running totals. Summing
// a run's RoundStats therefore reproduces the run's Result counters.
type RoundStats struct {
	Round       int   // engine-local round index
	Awake       int   // number of awake nodes this round
	MsgsSent    int64 // messages put on edges this round
	MsgsDropped int64 // messages whose receiver was asleep
	Bits        int64 // sum of declared message sizes
	Violations  int64 // messages exceeding the CONGEST budget
	WallNS      int64 // wall-clock time spent executing the round
}

// PhaseStats is one closed phase span of a composed run.
type PhaseStats struct {
	Name        string
	Rounds      int   // rounds the phase contributed (Result.Rounds of its engine run)
	Awake       int64 // awake node-rounds charged by the phase (the energy delta)
	MsgsSent    int64
	MsgsDropped int64
	Bits        int64
	Violations  int64
	Residual    int   // residual node count when the span closed
	WallNS      int64 // wall-clock time spent inside the span
}

// SummaryStats carries a finished run's authoritative totals (computed
// from the Result, not re-derived from the streamed events — that
// independence is what makes CheckTrace a real consistency check).
type SummaryStats struct {
	Rounds      int
	MaxAwake    int
	AvgAwake    float64
	P99Awake    int
	AwakeTotal  int64
	MsgsSent    int64
	MsgsDropped int64
	BitsTotal   int64
	BitsMax     int
	Violations  int64
	MISSize     int

	// Dynamic-run extras (zero for static runs): repair-region component
	// counts and the batch engine's sweep/pipeline counters. Reported in
	// the summary record only — they have no per-round events, so they sit
	// outside CheckTrace's conservation checks.
	Components     int64
	MaxComponents  int
	SweepWords     int64
	PackBuilds     int64
	PackHits       int64
	OverlapWindows int64
}

// Tracer receives execution events: one Round callback per executed round
// from the engine, and PhaseStart/PhaseEnd spans from the composition
// layer. All callbacks for one run are invoked from a single goroutine,
// in event order; implementations need no locking against the run itself.
//
// A nil Tracer disables tracing; the engines guard every emission with a
// nil check, so the disabled path costs one branch per round.
type Tracer interface {
	PhaseStart(name string)
	Round(r RoundStats)
	PhaseEnd(p PhaseStats)
}

// MultiTracer fans every event out to each element, in order.
type MultiTracer []Tracer

// PhaseStart implements Tracer.
func (m MultiTracer) PhaseStart(name string) {
	for _, t := range m {
		t.PhaseStart(name)
	}
}

// Round implements Tracer.
func (m MultiTracer) Round(r RoundStats) {
	for _, t := range m {
		t.Round(r)
	}
}

// PhaseEnd implements Tracer.
func (m MultiTracer) PhaseEnd(p PhaseStats) {
	for _, t := range m {
		t.PhaseEnd(p)
	}
}

// Multi combines tracers, dropping nils: it returns nil when none remain
// (preserving the engines' nil fast path) and the tracer itself when only
// one remains (no fan-out indirection for the common single-sink case).
func Multi(ts ...Tracer) Tracer {
	var out MultiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
