package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PhaseAgg is one phase record's aggregates, as read back from a trace.
type PhaseAgg struct {
	Name        string
	Rounds      int
	Awake       int64
	MsgsSent    int64
	MsgsDropped int64
	Bits        int64
	Violations  int64
	Residual    int
	WallNS      int64
}

// TraceSummary is the analyzer's digest of one trace.
type TraceSummary struct {
	Meta   map[string]string
	N      int        // node count from header metadata (0 if absent)
	Phases []PhaseAgg // phase records in file order
	Total  Record     // the summary record (zero Record when absent)

	RoundCount int      // number of round records
	PeakAwake  int64    // largest per-round awake count
	Curve      []Record // round records in file order (the awake-vs-round curve)
}

// Summarize digests a trace for reporting.
func Summarize(t *Trace) *TraceSummary {
	s := &TraceSummary{Meta: t.Header.Meta, N: t.MetaInt("n")}
	for i := range t.Records {
		rec := &t.Records[i]
		switch rec.Type {
		case RecRound:
			s.RoundCount++
			if rec.Awake > s.PeakAwake {
				s.PeakAwake = rec.Awake
			}
			s.Curve = append(s.Curve, *rec)
		case RecPhase:
			s.Phases = append(s.Phases, PhaseAgg{
				Name: rec.Name, Rounds: rec.Rounds, Awake: rec.Awake,
				MsgsSent: rec.MsgsSent, MsgsDropped: rec.MsgsDropped,
				Bits: rec.Bits, Violations: rec.Violations,
				Residual: rec.Residual, WallNS: rec.WallNS,
			})
		case RecSummary:
			s.Total = *rec
		}
	}
	return s
}

// TopPhases returns the k phases with the most awake node-rounds, ties
// broken by file order (deterministic).
func TopPhases(s *TraceSummary, k int) []PhaseAgg {
	idx := make([]int, len(s.Phases))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Phases[idx[a]].Awake > s.Phases[idx[b]].Awake })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]PhaseAgg, k)
	for i := 0; i < k; i++ {
		out[i] = s.Phases[idx[i]]
	}
	return out
}

// CheckTrace verifies a trace's internal consistency and returns one
// problem string per violation (empty means the trace checks out):
//
//   - structural: a summary record exists, every round record falls inside
//     an open phase span, round sequence numbers are contiguous from 1;
//   - conservation: the per-round counter deltas and the per-phase
//     aggregates each sum exactly to the summary totals the run's Result
//     reported (awake node-rounds, messages sent/dropped, bits,
//     violations, and phase rounds vs total rounds).
//
// Because the summary is written from the Result — not accumulated from
// the streamed events — a pass proves the engine's tracing hooks account
// every message and awake node-round exactly once.
func CheckTrace(t *Trace) []string {
	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	var (
		roundAwake, roundMsgs, roundDropped, roundBits, roundViol int64
		phaseAwake, phaseMsgs, phaseDropped, phaseBits, phaseViol int64
		phaseRounds                                               int
		inPhase                                                   bool
		seq                                                       int
		summary                                                   *Record
	)
	for i := range t.Records {
		rec := &t.Records[i]
		switch rec.Type {
		case RecPhaseStart:
			inPhase = true
		case RecRound:
			if !inPhase {
				badf("round record (seq %d) outside any phase span", rec.Seq)
			}
			seq++
			if rec.Seq != seq {
				badf("round sequence gap: got seq %d, want %d", rec.Seq, seq)
				seq = rec.Seq
			}
			roundAwake += rec.Awake
			roundMsgs += rec.MsgsSent
			roundDropped += rec.MsgsDropped
			roundBits += rec.Bits
			roundViol += rec.Violations
		case RecPhase:
			phaseRounds += rec.Rounds
			phaseAwake += rec.Awake
			phaseMsgs += rec.MsgsSent
			phaseDropped += rec.MsgsDropped
			phaseBits += rec.Bits
			phaseViol += rec.Violations
		case RecSummary:
			if summary != nil {
				badf("multiple summary records")
			}
			summary = rec
		}
	}
	if summary == nil {
		badf("no summary record (truncated trace?)")
		return problems
	}
	eq := func(what string, rounds, phases, total int64) {
		if rounds != total {
			badf("%s: round records sum to %d, summary says %d", what, rounds, total)
		}
		if phases != total {
			badf("%s: phase records sum to %d, summary says %d", what, phases, total)
		}
	}
	eq("awake node-rounds", roundAwake, phaseAwake, summary.Awake)
	eq("messages sent", roundMsgs, phaseMsgs, summary.MsgsSent)
	eq("messages dropped", roundDropped, phaseDropped, summary.MsgsDropped)
	eq("bits", roundBits, phaseBits, summary.Bits)
	eq("CONGEST violations", roundViol, phaseViol, summary.Violations)
	if phaseRounds != summary.Rounds {
		badf("rounds: phase records sum to %d, summary says %d", phaseRounds, summary.Rounds)
	}
	return problems
}

// PhaseDelta is one phase's change between two traces.
type PhaseDelta struct {
	Name     string
	InA, InB bool
	Rounds   [2]int
	Awake    [2]int64
	MsgsSent [2]int64
}

// TraceDiff is the comparison of two traces.
type TraceDiff struct {
	A, B   *TraceSummary
	Phases []PhaseDelta // union of phase names, A's order first, then B-only
}

// Diff aligns two trace summaries phase by phase. Phases recorded several
// times under one name (retries) are pre-summed per side.
func Diff(a, b *TraceSummary) *TraceDiff {
	d := &TraceDiff{A: a, B: b}
	type agg struct {
		rounds int
		awake  int64
		msgs   int64
		seen   bool
	}
	sum := func(phases []PhaseAgg) (map[string]*agg, []string) {
		m := map[string]*agg{}
		var order []string
		for _, p := range phases {
			e := m[p.Name]
			if e == nil {
				e = &agg{}
				m[p.Name] = e
				order = append(order, p.Name)
			}
			e.seen = true
			e.rounds += p.Rounds
			e.awake += p.Awake
			e.msgs += p.MsgsSent
		}
		return m, order
	}
	am, aorder := sum(a.Phases)
	bm, border := sum(b.Phases)
	names := aorder
	for _, n := range border {
		if _, ok := am[n]; !ok {
			names = append(names, n)
		}
	}
	for _, n := range names {
		pd := PhaseDelta{Name: n}
		if e, ok := am[n]; ok {
			pd.InA = true
			pd.Rounds[0], pd.Awake[0], pd.MsgsSent[0] = e.rounds, e.awake, e.msgs
		}
		if e, ok := bm[n]; ok {
			pd.InB = true
			pd.Rounds[1], pd.Awake[1], pd.MsgsSent[1] = e.rounds, e.awake, e.msgs
		}
		d.Phases = append(d.Phases, pd)
	}
	return d
}

// WriteCurveCSV emits the awake-vs-round curve as CSV: one row per round
// record, with the awake fraction computed against the header's node
// count (column empty when n is unknown).
func WriteCurveCSV(w io.Writer, t *Trace) error {
	s := Summarize(t)
	if _, err := fmt.Fprintln(w, "seq,phase,round,awake,awake_frac,msgs_sent,msgs_dropped,bits,violations,wall_ns"); err != nil {
		return err
	}
	for _, r := range s.Curve {
		frac := ""
		if s.N > 0 {
			frac = fmt.Sprintf("%.6f", float64(r.Awake)/float64(s.N))
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%s,%d,%d,%d,%d,%d\n",
			r.Seq, r.Phase, r.Round, r.Awake, frac, r.MsgsSent, r.MsgsDropped,
			r.Bits, r.Violations, r.WallNS); err != nil {
			return err
		}
	}
	return nil
}

// WriteTotalsCSV emits the trace's summary record as a one-row CSV — the
// machine-readable counterpart of `mistrace summary`'s totals line,
// including the dynamic-run columns (components, sweep words, pack and
// overlap counters), which are zero for static traces.
func WriteTotalsCSV(w io.Writer, t *Trace) error {
	s := Summarize(t)
	tot := s.Total
	if tot.Type == "" {
		return fmt.Errorf("obs: trace has no summary record")
	}
	if _, err := fmt.Fprintln(w, "rounds,awake_total,max_awake,avg_awake,p99_awake,"+
		"msgs_sent,msgs_dropped,bits,bits_max,violations,mis_size,"+
		"components,max_components,sweep_words,pack_builds,pack_hits,overlap_windows"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		tot.Rounds, tot.Awake, tot.MaxAwake, tot.AvgAwake, tot.P99Awake,
		tot.MsgsSent, tot.MsgsDropped, tot.Bits, tot.BitsMax, tot.Violations,
		tot.MISSize, tot.Components, tot.MaxComponents, tot.SweepWords,
		tot.PackBuilds, tot.PackHits, tot.OverlapWindows)
	return err
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the awake-vs-round curve as a fixed-width text
// sparkline: rounds are bucketed into at most width columns, each column
// showing the bucket's peak awake count scaled against the trace's
// overall peak. Deterministic in the trace contents.
func Sparkline(s *TraceSummary, width int) string {
	if len(s.Curve) == 0 || width <= 0 {
		return ""
	}
	if width > len(s.Curve) {
		width = len(s.Curve)
	}
	peak := s.PeakAwake
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		lo := c * len(s.Curve) / width
		hi := (c + 1) * len(s.Curve) / width
		var m int64
		for _, r := range s.Curve[lo:hi] {
			if r.Awake > m {
				m = r.Awake
			}
		}
		lvl := int(m * int64(len(sparkLevels)-1) / peak)
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}
