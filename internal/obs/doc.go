// Package obs is the observability layer of the simulation stack: tracing
// hooks, a versioned JSONL run-trace format, and an in-memory metrics
// registry.
//
// The package deliberately has no dependency on the engine or graph
// packages — sim, pipeline, and core all import obs, never the other way
// around — and costs nothing when disabled: a nil Tracer in sim.Config is
// one pointer comparison per round.
//
// Three pieces:
//
//   - Tracer (tracer.go): the hook interface. The engines (sim.Run,
//     sim.RunBatch) invoke Round once per executed round with that round's
//     counter deltas; internal/pipeline brackets each phase of a composed
//     run with PhaseStart/PhaseEnd spans carrying rounds, energy deltas,
//     and the residual size. MultiTracer fans events out to several sinks.
//
//   - TraceWriter/ReadTrace (trace.go) and the analyzers (analyze.go): a
//     versioned JSONL run-trace file — one JSON record per line, a header
//     with schema version and host environment metadata (mirroring
//     BENCH_MIS.json), then round/phase events in execution order and a
//     closing summary written from the run's authoritative Result, so
//     CheckTrace can verify that the streamed per-round counters really
//     do sum to the deterministic totals. Traces are deterministic in
//     (graph, algorithm, seed) up to wall-time fields; Canonical zeroes
//     those for byte-level comparison. cmd/mistrace is the CLI front end.
//
//   - Registry (registry.go): named atomic counters and power-of-two
//     histograms with expvar exposition, plus NewRegistryTracer which
//     mirrors trace events into live metrics — the substrate for the
//     planned misd metrics endpoint (ROADMAP item 1).
package obs
