package obs

// Recorder is a Tracer that buffers events in memory for later replay.
// Concurrent producers (for example the per-component elections of a
// parallel dynamic repair) each record into their own Recorder, and the
// merger replays the buffers into the real sink in a deterministic order
// from a single goroutine — the trace file then never depends on worker
// interleaving. Replaying into a TraceWriter keeps round sequence numbers
// contiguous because the writer assigns them at write time.
//
// A Recorder is not safe for concurrent use itself; it is the per-worker
// buffer that makes the fan-in safe.
type Recorder struct {
	events []recEvent
}

type recKind uint8

const (
	recPhaseStart recKind = iota + 1
	recRound
	recPhaseEnd
)

type recEvent struct {
	kind  recKind
	name  string // PhaseStart only
	round RoundStats
	phase PhaseStats
}

// Reset drops all buffered events, keeping capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Len returns the number of buffered events.
func (r *Recorder) Len() int { return len(r.events) }

// PhaseStart implements Tracer.
func (r *Recorder) PhaseStart(name string) {
	r.events = append(r.events, recEvent{kind: recPhaseStart, name: name})
}

// Round implements Tracer.
func (r *Recorder) Round(rs RoundStats) {
	r.events = append(r.events, recEvent{kind: recRound, round: rs})
}

// PhaseEnd implements Tracer.
func (r *Recorder) PhaseEnd(ps PhaseStats) {
	r.events = append(r.events, recEvent{kind: recPhaseEnd, phase: ps})
}

// Replay delivers the buffered events to t in recording order. The buffer
// is left intact; call Reset to reuse the Recorder.
func (r *Recorder) Replay(t Tracer) {
	for i := range r.events {
		ev := &r.events[i]
		switch ev.kind {
		case recPhaseStart:
			t.PhaseStart(ev.name)
		case recRound:
			t.Round(ev.round)
		case recPhaseEnd:
			t.PhaseEnd(ev.phase)
		}
	}
}
