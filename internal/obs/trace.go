package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceSchemaVersion identifies the JSONL trace layout. Bump when records
// change incompatibly; ReadTrace refuses newer versions.
const TraceSchemaVersion = 1

// Record types, in the order they may appear in a trace.
const (
	RecHeader     = "header"      // first line: schema version, env, run metadata
	RecPhaseStart = "phase_start" // a phase span opens
	RecRound      = "round"       // one executed round's counter deltas
	RecPhase      = "phase"       // a phase span closes, with its aggregates
	RecSummary    = "summary"     // last line: the run's authoritative totals
)

// TraceEnv records where a trace was produced (the BENCH_MIS.json
// convention). All fields are stable on one host, so they do not disturb
// trace determinism.
type TraceEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
}

// Record is one JSONL trace line. Type discriminates which fields are
// meaningful; zero-valued fields are omitted on the wire and read back as
// zero, so omission is lossless. WallNS is the only volatile field — every
// other field is deterministic in (graph, algorithm, seed, config); see
// Canonical.
type Record struct {
	Type string `json:"type"`

	// Header fields.
	SchemaVersion int               `json:"schema_version,omitempty"`
	Env           *TraceEnv         `json:"env,omitempty"`
	Meta          map[string]string `json:"meta,omitempty"`

	// Span fields (phase_start, phase).
	Name string `json:"name,omitempty"`

	// Round fields. Seq is a 1-based global sequence number over all round
	// records (engine-local Round indices restart per phase); Phase is the
	// innermost open span.
	Phase string `json:"phase,omitempty"`
	Seq   int    `json:"seq,omitempty"`
	Round int    `json:"round,omitempty"`

	// Counters. In a round record, Awake is the awake-node count of that
	// round; in a phase or summary record it is awake node-rounds (energy).
	Awake       int64   `json:"awake,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	MsgsSent    int64   `json:"msgs_sent,omitempty"`
	MsgsDropped int64   `json:"msgs_dropped,omitempty"`
	Bits        int64   `json:"bits,omitempty"`
	Violations  int64   `json:"violations,omitempty"`
	Residual    int     `json:"residual,omitempty"`
	MaxAwake    int     `json:"max_awake,omitempty"`
	AvgAwake    float64 `json:"avg_awake,omitempty"`
	P99Awake    int     `json:"p99_awake,omitempty"`
	BitsMax     int     `json:"bits_max,omitempty"`
	MISSize     int     `json:"mis_size,omitempty"`

	// Dynamic-repair summary fields (energymis.DynamicMIS.Close): repair
	// region component counts, and the batch engine's word-sweep and
	// window-pipeline counters. Zero (and omitted) for static runs.
	Components     int64 `json:"components,omitempty"`
	MaxComponents  int   `json:"max_components,omitempty"`
	SweepWords     int64 `json:"sweep_words,omitempty"`
	PackBuilds     int64 `json:"pack_builds,omitempty"`
	PackHits       int64 `json:"pack_hits,omitempty"`
	OverlapWindows int64 `json:"overlap_windows,omitempty"`

	WallNS int64 `json:"wall_ns,omitempty"`
}

var (
	envOnce   sync.Once
	cachedEnv TraceEnv
)

// CaptureEnv returns the host environment stamped into trace headers. The
// commit hash is best-effort (empty outside a git checkout) and computed
// once per process.
func CaptureEnv() TraceEnv {
	envOnce.Do(func() {
		cachedEnv = TraceEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			cachedEnv.Commit = strings.TrimSpace(string(out))
		}
	})
	return cachedEnv
}

// TraceWriter streams a run trace as JSONL. It implements Tracer; attach
// it to a run via sim.Config.Tracer (or energymis.Options.TracePath, which
// constructs one), call Summary with the finished run's totals, and Close.
// Writes are buffered; the first error sticks and is reported by Close.
type TraceWriter struct {
	bw    *bufio.Writer
	c     io.Closer
	phase string
	seq   int
	start time.Time
	err   error
}

// NewTraceWriter writes a trace to w, emitting the header immediately.
// meta carries run identification (algorithm, n, seed, ...); the "n" key,
// when present, lets analyzers compute awake fractions. If w is an
// io.Closer, Close closes it.
func NewTraceWriter(w io.Writer, meta map[string]string) *TraceWriter {
	t := &TraceWriter{bw: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	env := CaptureEnv()
	t.emit(Record{Type: RecHeader, SchemaVersion: TraceSchemaVersion, Env: &env, Meta: meta})
	return t
}

// CreateTrace creates (truncating) the file at path and returns a trace
// writer over it.
func CreateTrace(path string, meta map[string]string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating trace: %w", err)
	}
	return NewTraceWriter(f, meta), nil
}

func (t *TraceWriter) emit(r Record) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// PhaseStart implements Tracer.
func (t *TraceWriter) PhaseStart(name string) {
	t.phase = name
	t.emit(Record{Type: RecPhaseStart, Name: name})
}

// Round implements Tracer.
func (t *TraceWriter) Round(r RoundStats) {
	t.seq++
	t.emit(Record{
		Type: RecRound, Phase: t.phase, Seq: t.seq, Round: r.Round,
		Awake: int64(r.Awake), MsgsSent: r.MsgsSent, MsgsDropped: r.MsgsDropped,
		Bits: r.Bits, Violations: r.Violations, WallNS: r.WallNS,
	})
}

// PhaseEnd implements Tracer.
func (t *TraceWriter) PhaseEnd(p PhaseStats) {
	t.emit(Record{
		Type: RecPhase, Name: p.Name, Rounds: p.Rounds, Awake: p.Awake,
		MsgsSent: p.MsgsSent, MsgsDropped: p.MsgsDropped, Bits: p.Bits,
		Violations: p.Violations, Residual: p.Residual, WallNS: p.WallNS,
	})
}

// Summary writes the closing totals record. Call it once, after the run,
// with totals taken from the run's Result.
func (t *TraceWriter) Summary(s SummaryStats) {
	t.emit(Record{
		Type: RecSummary, Rounds: s.Rounds, Awake: s.AwakeTotal,
		MaxAwake: s.MaxAwake, AvgAwake: s.AvgAwake, P99Awake: s.P99Awake,
		MsgsSent: s.MsgsSent, MsgsDropped: s.MsgsDropped, Bits: s.BitsTotal,
		BitsMax: s.BitsMax, Violations: s.Violations, MISSize: s.MISSize,
		Components: s.Components, MaxComponents: s.MaxComponents,
		SweepWords: s.SweepWords, PackBuilds: s.PackBuilds,
		PackHits: s.PackHits, OverlapWindows: s.OverlapWindows,
		WallNS: time.Since(t.start).Nanoseconds(),
	})
}

// Err returns the first write or encoding error, if any.
func (t *TraceWriter) Err() error { return t.err }

// Close flushes the buffer and closes the underlying file, returning the
// first error encountered over the writer's lifetime.
func (t *TraceWriter) Close() error {
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Trace is a fully parsed run trace.
type Trace struct {
	Header  Record
	Records []Record // every record in file order, header included
}

// ReadTrace parses a JSONL trace. The first record must be a header with a
// schema version this package speaks.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if len(t.Records) == 0 {
			if rec.Type != RecHeader {
				return nil, fmt.Errorf("obs: trace does not start with a header record (got %q)", rec.Type)
			}
			if rec.SchemaVersion > TraceSchemaVersion || rec.SchemaVersion < 1 {
				return nil, fmt.Errorf("obs: trace has schema version %d, this binary speaks %d",
					rec.SchemaVersion, TraceSchemaVersion)
			}
			t.Header = rec
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("obs: empty trace")
	}
	return t, nil
}

// ReadTraceFile loads the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// MetaInt returns the named header metadata value as an int (0 when
// missing or non-numeric), e.g. MetaInt("n") for the node count.
func (t *Trace) MetaInt(key string) int {
	v, err := strconv.Atoi(t.Header.Meta[key])
	if err != nil {
		return 0
	}
	return v
}

// Summary returns the trace's summary record, or nil.
func (t *Trace) Summary() *Record {
	for i := len(t.Records) - 1; i >= 0; i-- {
		if t.Records[i].Type == RecSummary {
			return &t.Records[i]
		}
	}
	return nil
}

// Canonical returns the trace's records with every volatile (wall-time)
// field zeroed. Two runs with identical (graph, algorithm, seed, config)
// produce Canonical-equal traces regardless of worker count or machine
// load; CanonicalBytes gives the byte form for direct comparison.
func Canonical(t *Trace) []Record {
	out := make([]Record, len(t.Records))
	copy(out, t.Records)
	for i := range out {
		out[i].WallNS = 0
	}
	return out
}

// CanonicalBytes marshals records one per line, for byte-level trace
// comparison (see Canonical).
func CanonicalBytes(recs []Record) ([]byte, error) {
	var b strings.Builder
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}
