package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterAndHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("hits") != c {
		t.Fatal("Counter did not return the existing handle")
	}

	h := reg.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 110 { // -7 clamps to 0
		t.Fatalf("sum = %d, want 110", s.Sum)
	}
	// 0,-7 -> lt_1; 1 -> lt_2; 2,3 -> lt_4; 4 -> lt_8; 100 -> lt_128.
	want := map[string]int64{"lt_1": 2, "lt_2": 1, "lt_4": 2, "lt_8": 1, "lt_128": 1}
	for k, v := range want {
		if s.Buckets[k] != v {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", k, s.Buckets[k], v, s.Buckets)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("n").Inc()
				reg.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestRegistryTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewRegistryTracer(reg)
	tr.PhaseStart("phase-i")
	tr.Round(RoundStats{Round: 0, Awake: 10, MsgsSent: 20, MsgsDropped: 2, Bits: 160, WallNS: 100})
	tr.Round(RoundStats{Round: 1, Awake: 4, MsgsSent: 4, Bits: 32, WallNS: 50})
	tr.PhaseEnd(PhaseStats{Name: "phase-i", Rounds: 2, Awake: 14, MsgsSent: 24})

	for name, want := range map[string]int64{
		"rounds": 2, "awake_node_rounds": 14, "msgs_sent": 24, "msgs_dropped": 2,
		"bits_total": 192, "phases": 1,
		"phase.phase-i.rounds": 2, "phase.phase-i.awake": 14,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("awake_per_round").Snapshot().Count; got != 2 {
		t.Fatalf("awake histogram count = %d, want 2", got)
	}
}

func TestPublish(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(7)
	const name = "obs_test_registry"
	if err := reg.Publish(name); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(name); err == nil {
		t.Fatal("duplicate Publish accepted")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar.Get returned nil")
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if snap.Counters["x"] != 7 {
		t.Fatalf("exposed counter = %d, want 7", snap.Counters["x"])
	}
}

func TestNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b")
	reg.Counter("a")
	reg.Histogram("c")
	got := reg.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Names = %v", got)
	}
}
