package phase1

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestBatchMatchesLegacy differentially tests the struct-of-arrays batch
// automaton against the per-node reference: identical marking rounds, wake
// schedules, outputs, and engine counters for every graph, seed, and worker
// count.
func TestBatchMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-dense", graph.GNP(800, 0.1, 3)},
		{"ba-hubs", graph.BarabasiAlbert(1000, 20, 5)},
		{"clique", graph.Complete(200)},
		{"sparse", graph.GNP(500, 3.0/500, 7)}, // low Δ: plan may have 0 iterations
		{"edgeless", graph.FromEdges(50, nil)}, // MaxDegree 0: phase is skipped
	}
	p := DefaultParams()
	for _, tc := range cases {
		plan := MakePlan(tc.g.N(), tc.g.MaxDegree(), p)
		for seed := uint64(1); seed <= 3; seed++ {
			ref, err := RunWithPlanLegacy(tc.g, plan, p, sim.Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d legacy: %v", tc.name, seed, err)
			}
			for _, w := range []int{1, 2, 8} {
				out, err := RunWithPlan(tc.g, plan, p, sim.Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("%s seed=%d workers=%d batch: %v", tc.name, seed, w, err)
				}
				for v := range ref.InSet {
					if out.InSet[v] != ref.InSet[v] {
						t.Fatalf("%s seed=%d workers=%d: InSet[%d] = %v, legacy %v",
							tc.name, seed, w, v, out.InSet[v], ref.InSet[v])
					}
				}
				if out.Sampled != ref.Sampled || out.Spoiled != ref.Spoiled {
					t.Fatalf("%s seed=%d workers=%d: sampled/spoiled %d/%d, legacy %d/%d",
						tc.name, seed, w, out.Sampled, out.Spoiled, ref.Sampled, ref.Spoiled)
				}
				if len(out.Residual) != len(ref.Residual) {
					t.Fatalf("%s seed=%d workers=%d: residual size %d, legacy %d",
						tc.name, seed, w, len(out.Residual), len(ref.Residual))
				}
				r, rr := out.Res, ref.Res
				if r.Rounds != rr.Rounds || r.MsgsSent != rr.MsgsSent ||
					r.MsgsDropped != rr.MsgsDropped || r.BitsTotal != rr.BitsTotal ||
					r.BitsMax != rr.BitsMax || r.Violations != rr.Violations {
					t.Fatalf("%s seed=%d workers=%d: counters differ\n legacy: %+v\n batch:  %+v",
						tc.name, seed, w, rr, r)
				}
				for v := range r.Awake {
					if r.Awake[v] != rr.Awake[v] {
						t.Fatalf("%s seed=%d workers=%d: Awake[%d] = %d, legacy %d",
							tc.name, seed, w, v, r.Awake[v], rr.Awake[v])
					}
				}
			}
		}
	}
}
