package phase1

import (
	"math"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
)

// TestInvariantsAB reproduces the inductive invariants of Lemmas 2.2–2.4
// at the end of the phase: every active node has
//
//	A(T): at most O(T·log n) active and spoiled neighbors, and
//	B(T): at most Δ/2^T ·O(1) active non-spoiled neighbors,
//
// where T is the number of iterations. Together they give Lemma 2.1's
// O(log² n) residual degree.
func TestInvariantsAB(t *testing.T) {
	g := graph.GNP(2000, 0.4, 3)
	p := DefaultParams()
	plan := MakePlan(g.N(), g.MaxDegree(), p)
	if plan.Iterations == 0 {
		t.Fatal("test graph too sparse for Phase I")
	}
	machines, nodes := NewMachines(g, plan, p)
	if _, err := sim.Run(g, machines, sim.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}

	// Post-run classification: active = not in MIS and not dominated.
	active := make([]bool, g.N())
	for v := range nodes {
		active[v] = true
	}
	for v, nm := range nodes {
		if nm.InMIS {
			active[v] = false
			for _, u := range g.Neighbors(v) {
				active[u] = false
			}
		}
	}

	logn := math.Log2(float64(g.N()))
	boundA := 8 * float64(plan.Iterations+1) * logn * float64(plan.RoundsPerIter) / p.RoundsPerIterC
	// B(T): Δ/2^Iterations with constant slack.
	boundB := 8 * float64(plan.MaxDegree) / math.Pow(2, float64(plan.Iterations))

	worstA, worstB := 0, 0
	for v := range nodes {
		if !active[v] {
			continue
		}
		spoiled, fresh := 0, 0
		for _, u := range g.Neighbors(v) {
			if !active[u] {
				continue
			}
			if nodes[u].Spoiled() {
				spoiled++
			} else {
				fresh++
			}
		}
		if spoiled > worstA {
			worstA = spoiled
		}
		if fresh > worstB {
			worstB = fresh
		}
	}
	if float64(worstA) > boundA {
		t.Errorf("invariant A violated: %d active+spoiled neighbors > bound %.0f", worstA, boundA)
	}
	if float64(worstB) > boundB {
		t.Errorf("invariant B violated: %d active non-spoiled neighbors > bound %.0f", worstB, boundB)
	}
	t.Logf("A: worst %d (bound %.0f); B: worst %d (bound %.0f); iters=%d Δ=%d",
		worstA, boundA, worstB, boundB, plan.Iterations, plan.MaxDegree)
}

// TestSection41SampledBound reproduces the Section 4.1 computation: with
// IterTrim = 2, the per-node probability of ever being marked is
// O(1/log n), so the expected sampled count is O(n/log n).
func TestSection41SampledBound(t *testing.T) {
	g := graph.GNP(4000, 0.3, 5)
	out, err := Run(g, DefaultParams(), sim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.Iterations == 0 {
		t.Skip("phase skipped")
	}
	logn := math.Log2(float64(g.N()))
	bound := 20 * float64(g.N()) / logn
	if float64(out.Sampled) > bound {
		t.Fatalf("sampled %d > 20n/log n = %.0f", out.Sampled, bound)
	}
	t.Logf("sampled %d of %d (bound %.0f)", out.Sampled, g.N(), bound)
}

// TestMarkProbSchedule checks the per-round marking probabilities follow
// the paper's 2^i/(damp·Δ) schedule with the cap at 1.
func TestMarkProbSchedule(t *testing.T) {
	m := &Machine{plan: Plan{Iterations: 40, RoundsPerIter: 4, T: 160, MaxDegree: 64}, damp: 10}
	if got := m.markProb(0); math.Abs(got-1.0/640) > 1e-12 {
		t.Fatalf("markProb(0) = %v", got)
	}
	if got := m.markProb(4); math.Abs(got-2.0/640) > 1e-12 {
		t.Fatalf("markProb(iter1) = %v", got)
	}
	// Deep iterations saturate at probability 1.
	if got := m.markProb(159); got != 1 {
		t.Fatalf("markProb cap = %v", got)
	}
}
