package phase1

import (
	"fmt"
	"math"
	"slices"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/rng"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// Per-node flag bits of the batch automaton.
const (
	fConflict = 1 << iota
	fJoined
	fInactive
	fSpoiled
)

// Batch is the struct-of-arrays automaton of the phase: the pre-sampled
// marking rounds, the Lemma 2.5 wake schedules (flattened into one arena
// with per-node offsets), and the protocol flags, all in flat arrays driven
// whole-awake-sets at a time. Random draws, wake schedules, and state
// transitions replicate the per-node Machine exactly, so runs are
// byte-identical to the legacy path (enforced by TestBatchMatchesLegacy).
type Batch struct {
	g    *graph.Graph
	plan Plan
	damp float64

	rv      []int32 // logical round of the one-shot marking; -1 = never
	wakeAll []int32 // flattened sorted engine wake rounds
	wakeOff []int32 // node v's schedule is wakeAll[wakeOff[v]:wakeOff[v+1]]
	wi      []int32 // per-node cursor into its schedule segment
	flags   []uint8
}

var _ sim.BatchMachine = (*Batch)(nil)

// NewBatch builds the batch automaton for one phase run over g.
func NewBatch(g *graph.Graph, plan Plan, p Params) *Batch {
	return &Batch{g: g, plan: plan, damp: p.MarkDamp}
}

func markProbAt(plan Plan, damp float64, k int) float64 {
	i := k / plan.RoundsPerIter
	p := math.Pow(2, float64(i)) / (damp * float64(plan.MaxDegree))
	if p > 1 {
		p = 1
	}
	return p
}

// InitAll implements sim.BatchMachine: pre-sample each node's one-shot
// marking round and derive its S_{r_v} awake plan.
func (b *Batch) InitAll(env *sim.BatchEnv) []int {
	n := b.g.N()
	b.rv = make([]int32, n)
	b.wi = make([]int32, n)
	b.flags = make([]uint8, n)
	b.wakeOff = make([]int32, n+1)
	first := make([]int, n)
	if b.plan.T == 0 || b.plan.MaxDegree == 0 {
		for v := range first {
			b.rv[v] = -1
			first[v] = sim.Never
		}
		return first
	}
	// Every marking probability is a function of the logical round only;
	// precompute the T-entry table once instead of per node.
	probs := make([]float64, b.plan.T)
	for k := range probs {
		probs[k] = markProbAt(b.plan, b.damp, k)
	}
	var scratch []int32
	for v := 0; v < n; v++ {
		r := rng.ForNode(env.Seed, v)
		rv := int32(-1)
		for k := 0; k < b.plan.T; k++ {
			if r.Bernoulli(probs[k]) {
				rv = int32(k)
				break
			}
		}
		b.rv[v] = rv
		if rv < 0 {
			b.wakeOff[v+1] = b.wakeOff[v]
			first[v] = sim.Never // never marked: sleep through the whole phase
			continue
		}
		scratch = scratch[:0]
		for _, l := range schedule.Set(b.plan.T, int(rv)) {
			if int32(l) == rv {
				scratch = append(scratch, int32(3*l), int32(3*l+1))
			}
			scratch = append(scratch, int32(3*l+2))
		}
		slices.Sort(scratch)
		scratch = dedup32(scratch)
		b.wakeAll = append(b.wakeAll, scratch...)
		b.wakeOff[v+1] = int32(len(b.wakeAll))
		first[v] = int(scratch[0])
	}
	return first
}

func dedup32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ComposeAll implements sim.BatchMachine.
func (b *Batch) ComposeAll(round int, awake []int32, out *sim.BatchOutbox) {
	l, sub := int32(round/3), round%3
	switch sub {
	case 0:
		for _, v := range awake {
			if l == b.rv[v] && b.flags[v]&fInactive == 0 {
				out.Broadcast(v, sim.Msg{Kind: kindMark, Bits: 1})
			}
		}
	case 1:
		for _, v := range awake {
			if l == b.rv[v] && b.flags[v]&(fInactive|fConflict) == 0 {
				// Lone marked node in its cohort neighborhood: join.
				b.flags[v] |= fJoined
				out.Broadcast(v, sim.Msg{Kind: kindJoin, Bits: 1})
			}
		}
	case 2:
		for _, v := range awake {
			if b.flags[v]&fJoined != 0 {
				out.Broadcast(v, sim.Msg{Kind: kindInMIS, Bits: 1})
			}
		}
	}
}

// DeliverAll implements sim.BatchMachine.
func (b *Batch) DeliverAll(round int, awake []int32, in sim.Inboxes, next []int) {
	l, sub := int32(round/3), round%3
	for i, v := range awake {
		f := b.flags[v]
		switch sub {
		case 0:
			if l == b.rv[v] {
				for _, msg := range in.At(i) {
					if msg.Kind == kindMark {
						f |= fConflict
						break
					}
				}
			}
		case 1:
			if l == b.rv[v] {
				for _, msg := range in.At(i) {
					if msg.Kind == kindJoin && f&fJoined == 0 {
						f |= fInactive
					}
				}
				if f&(fJoined|fInactive) == 0 {
					f |= fSpoiled
				}
				if f&fConflict != 0 && f&fJoined == 0 {
					f |= fSpoiled
				}
			}
		case 2:
			if l < b.rv[v] && f&fJoined == 0 {
				for _, msg := range in.At(i) {
					if msg.Kind == kindInMIS {
						f |= fInactive
					}
				}
			}
		}
		b.flags[v] = f
		b.wi[v]++
		seg := b.wakeAll[b.wakeOff[v]:b.wakeOff[v+1]]
		if int(b.wi[v]) >= len(seg) {
			next[i] = sim.Never
		} else {
			next[i] = int(seg[b.wi[v]])
		}
	}
}

// outcome assembles the phase Outcome from the batch state.
func (b *Batch) outcome(res *sim.Result) *Outcome {
	n := b.g.N()
	out := &Outcome{InSet: make([]bool, n), Plan: b.plan, Res: res}
	for v := 0; v < n; v++ {
		out.InSet[v] = b.flags[v]&fJoined != 0
		if b.rv[v] >= 0 {
			out.Sampled++
		}
		if b.flags[v]&fSpoiled != 0 {
			out.Spoiled++
		}
	}
	out.Residual = verify.Residual(b.g, out.InSet)
	return out
}

// RunWithPlanLegacy executes the phase with the per-node Machine on the
// per-node engine: the reference the batch path is differentially tested
// against.
func RunWithPlanLegacy(g *graph.Graph, plan Plan, p Params, cfg sim.Config) (*Outcome, error) {
	machines, nodes := NewMachines(g, plan, p)
	res, err := sim.Run(g, machines, cfg)
	if err != nil {
		return nil, fmt.Errorf("phase1: %w", err)
	}
	out := &Outcome{InSet: make([]bool, g.N()), Plan: plan, Res: res}
	for v, nm := range nodes {
		out.InSet[v] = nm.InMIS
		if nm.Sampled() {
			out.Sampled++
		}
		if nm.Spoiled() {
			out.Spoiled++
		}
	}
	out.Residual = verify.Residual(g, out.InSet)
	return out, nil
}
