package phase1

import (
	"fmt"
	"math"
	"sort"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
)

// Message kinds.
const (
	kindMark  = 21
	kindJoin  = 22
	kindInMIS = 23
)

// Params are the tunable constants of the phase. The zero value is not
// meaningful; start from DefaultParams.
type Params struct {
	// RoundsPerIterC is c in "R = ceil(c·log2 n) rounds per iteration".
	RoundsPerIterC float64
	// MarkDamp is the damping constant in the base marking probability
	// 2^i/(MarkDamp·Δ). The paper uses 10.
	MarkDamp float64
	// IterTrim is a in "I = ceil(log2 Δ) − a·ceil(log2 log2 n)". The paper
	// uses a = 2, which also yields the O(n/log n) sampled-node bound of
	// Section 4.1.
	IterTrim int
	// MinIterations floors I (0 means the phase may be skipped entirely
	// when Δ is already polylogarithmic).
	MinIterations int
}

// DefaultParams returns the paper-faithful constants with a practical
// rounds-per-iteration multiplier.
func DefaultParams() Params {
	return Params{RoundsPerIterC: 2, MarkDamp: 10, IterTrim: 2}
}

// Plan describes the precomputed timetable of a phase run.
type Plan struct {
	Iterations    int
	RoundsPerIter int
	T             int // total logical rounds = Iterations * RoundsPerIter
	MaxDegree     int // the Δ the probabilities are based on
}

// PlanExplicit builds a timetable directly from an iteration count and a
// per-iteration round count. Section 4's Lemma 4.2 uses this to run the
// same one-shot-marking algorithm with Θ(log log n) rounds per iteration,
// stopping at a poly(log log n) degree target.
func PlanExplicit(iters, roundsPerIter, maxDeg int) Plan {
	if iters < 0 {
		iters = 0
	}
	if roundsPerIter < 1 {
		roundsPerIter = 1
	}
	return Plan{Iterations: iters, RoundsPerIter: roundsPerIter, T: iters * roundsPerIter, MaxDegree: maxDeg}
}

// RunWithPlan executes the phase on g under an explicit timetable. It runs
// the struct-of-arrays automaton on the batch runtime; results are
// byte-identical to RunWithPlanLegacy (the per-node reference).
func RunWithPlan(g *graph.Graph, plan Plan, p Params, cfg sim.Config) (*Outcome, error) {
	b := NewBatch(g, plan, p)
	res, err := sim.RunBatch(g, b, cfg)
	if err != nil {
		return nil, fmt.Errorf("phase1: %w", err)
	}
	return b.outcome(res), nil
}

// MakePlan computes the timetable for an n-node graph with maximum degree
// maxDeg.
func MakePlan(n, maxDeg int, p Params) Plan {
	if n < 2 {
		n = 2
	}
	log2n := math.Log2(float64(n))
	loglog := int(math.Ceil(math.Log2(math.Max(log2n, 2))))
	iters := 0
	if maxDeg > 1 {
		iters = int(math.Ceil(math.Log2(float64(maxDeg)))) - p.IterTrim*loglog
	}
	if iters < p.MinIterations {
		iters = p.MinIterations
	}
	r := int(math.Ceil(p.RoundsPerIterC * log2n))
	if r < 1 {
		r = 1
	}
	return Plan{Iterations: iters, RoundsPerIter: r, T: iters * r, MaxDegree: maxDeg}
}

// Machine is the per-node automaton of the phase.
type Machine struct {
	env  *sim.Env
	plan Plan
	damp float64

	// Pre-sampled state.
	rv   int   // logical round of the node's one-shot marking; -1 = never
	wake []int // sorted engine rounds to be awake, derived from S_{rv}
	wi   int   // index of the next wake round

	// Protocol state.
	conflict bool // a cohort neighbor was marked in the same round
	joined   bool
	inactive bool // a neighbor joined the MIS
	spoiled  bool // marked but did not join

	InMIS bool
}

var _ sim.Machine = (*Machine)(nil)

// NewMachines builds the automata for one phase run over g.
func NewMachines(g *graph.Graph, plan Plan, p Params) ([]sim.Machine, []*Machine) {
	machines := make([]sim.Machine, g.N())
	nodes := make([]*Machine, g.N())
	for v := range machines {
		nodes[v] = &Machine{plan: plan, damp: p.MarkDamp, rv: -1}
		machines[v] = nodes[v]
	}
	return machines, nodes
}

// markProb returns the marking probability of logical round k.
func (m *Machine) markProb(k int) float64 {
	i := k / m.plan.RoundsPerIter
	p := math.Pow(2, float64(i)) / (m.damp * float64(m.plan.MaxDegree))
	if p > 1 {
		p = 1
	}
	return p
}

// Init implements sim.Machine: pre-sample the one-shot marking round and
// derive the awake plan.
func (m *Machine) Init(env *sim.Env) int {
	m.env = env
	if m.plan.T == 0 || m.plan.MaxDegree == 0 {
		return sim.Never
	}
	for k := 0; k < m.plan.T; k++ {
		if env.Rand.Bernoulli(m.markProb(k)) {
			m.rv = k
			break
		}
	}
	if m.rv < 0 {
		return sim.Never // never marked: sleep through the whole phase
	}
	seen := make(map[int]bool)
	for _, l := range schedule.Set(m.plan.T, m.rv) {
		if l == m.rv {
			seen[3*l] = true
			seen[3*l+1] = true
		}
		seen[3*l+2] = true
	}
	m.wake = make([]int, 0, len(seen))
	for r := range seen {
		m.wake = append(m.wake, r)
	}
	sort.Ints(m.wake)
	m.wi = 0
	return m.wake[0]
}

// Compose implements sim.Machine.
func (m *Machine) Compose(round int, out *sim.Outbox) {
	l, sub := round/3, round%3
	switch sub {
	case 0:
		if l == m.rv && !m.inactive {
			out.Broadcast(sim.Msg{Kind: kindMark, Bits: 1})
		}
	case 1:
		if l == m.rv && !m.inactive && !m.conflict {
			// Lone marked node in its cohort neighborhood: join.
			m.joined = true
			m.InMIS = true
			out.Broadcast(sim.Msg{Kind: kindJoin, Bits: 1})
		}
	case 2:
		if m.joined {
			out.Broadcast(sim.Msg{Kind: kindInMIS, Bits: 1})
		}
	}
}

// Deliver implements sim.Machine.
func (m *Machine) Deliver(round int, inbox []sim.Msg) int {
	l, sub := round/3, round%3
	switch sub {
	case 0:
		if l == m.rv {
			for _, msg := range inbox {
				if msg.Kind == kindMark {
					m.conflict = true
					break
				}
			}
		}
	case 1:
		if l == m.rv {
			for _, msg := range inbox {
				if msg.Kind == kindJoin && !m.joined {
					m.inactive = true
				}
			}
			if !m.joined && !m.inactive {
				m.spoiled = true
			}
			if m.conflict && !m.joined {
				m.spoiled = true
			}
		}
	case 2:
		for _, msg := range inbox {
			if msg.Kind == kindInMIS && l < m.rv && !m.joined {
				m.inactive = true
			}
		}
	}
	m.wi++
	if m.wi >= len(m.wake) {
		return sim.Never
	}
	return m.wake[m.wi]
}

// Spoiled reports whether the node was marked but failed to join.
func (m *Machine) Spoiled() bool { return m.spoiled }

// Sampled reports whether the node was ever marked.
func (m *Machine) Sampled() bool { return m.rv >= 0 }

// Outcome of a phase run.
type Outcome struct {
	InSet    []bool // the independent set found
	Residual []int  // nodes not in the set and not dominated by it
	Sampled  int    // nodes that were marked (awake at all)
	Spoiled  int    // marked nodes that failed to join
	Plan     Plan
	Res      *sim.Result
}

// Run executes the phase on g.
func Run(g *graph.Graph, p Params, cfg sim.Config) (*Outcome, error) {
	return RunWithPlan(g, MakePlan(g.N(), g.MaxDegree(), p), p, cfg)
}
