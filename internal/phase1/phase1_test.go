package phase1

import (
	"math"
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

func TestMakePlan(t *testing.T) {
	p := DefaultParams()
	plan := MakePlan(1<<16, 1<<12, p) // log2 n = 16, loglog = 4, trim 8
	if plan.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", plan.Iterations)
	}
	if plan.RoundsPerIter != 32 {
		t.Fatalf("roundsPerIter = %d, want 32", plan.RoundsPerIter)
	}
	if plan.T != 128 {
		t.Fatalf("T = %d", plan.T)
	}
	// Low degree: phase is skipped.
	if got := MakePlan(1<<16, 64, p).Iterations; got != 0 {
		t.Fatalf("low-degree iterations = %d, want 0", got)
	}
	// MinIterations floors.
	p.MinIterations = 3
	if got := MakePlan(1<<16, 64, p).Iterations; got != 3 {
		t.Fatalf("floored iterations = %d", got)
	}
}

func runPhase(t *testing.T, g *graph.Graph, seed uint64) *Outcome {
	t.Helper()
	out, err := Run(g, DefaultParams(), sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIndependence(t *testing.T) {
	// The set computed by Phase I must always be independent — this is the
	// correctness property the schedule (Lemma 2.5) protects across
	// cohorts.
	graphs := []*graph.Graph{
		graph.GNP(1500, 0.3, 1),
		graph.GNP(1000, 0.8, 2),
		graph.Complete(700),
		graph.BarabasiAlbert(2000, 40, 3),
		graph.CompleteBipartite(300, 300),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 5; seed++ {
			out, err := Run(g, DefaultParams(), sim.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
				t.Fatalf("graph %d seed %d: set not independent, edge (%d,%d)", gi, seed, u, v)
			}
		}
	}
}

func TestResidualDegreeDrops(t *testing.T) {
	// Lemma 2.1: residual degree O(log^2 n). Use a dense graph so the
	// phase actually runs iterations.
	g := graph.GNP(1500, 0.4, 7)
	out := runPhase(t, g, 3)
	if out.Plan.Iterations == 0 {
		t.Fatal("phase skipped; test graph not dense enough")
	}
	log2n := math.Log2(float64(g.N()))
	bound := int(4 * log2n * log2n)
	sub := graph.InducedSubgraph(g, out.Residual)
	if got := sub.MaxDegree(); got > bound {
		t.Fatalf("residual max degree %d > %d (= 4 log^2 n); input Δ was %d",
			got, bound, g.MaxDegree())
	}
	if sub.MaxDegree() >= g.MaxDegree() {
		t.Fatalf("degree did not drop: %d -> %d", g.MaxDegree(), sub.MaxDegree())
	}
}

func TestEnergyBound(t *testing.T) {
	// Awake rounds per node <= 3 * (|S| for the schedule) = O(log T) =
	// O(log log n).
	g := graph.GNP(1500, 0.4, 9)
	out := runPhase(t, g, 5)
	bound := 3 * schedule.MaxSize(out.Plan.T)
	if got := out.Res.MaxAwake(); got > bound {
		t.Fatalf("MaxAwake = %d > 3*|S| = %d (T=%d)", got, bound, out.Plan.T)
	}
}

func TestUnsampledNodesSleep(t *testing.T) {
	g := graph.GNP(1500, 0.4, 11)
	plan := MakePlan(g.N(), g.MaxDegree(), DefaultParams())
	machines, nodes := NewMachines(g, plan, DefaultParams())
	res, err := sim.Run(g, machines, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, nm := range nodes {
		if !nm.Sampled() && res.Awake[v] != 0 {
			t.Fatalf("never-marked node %d was awake %d rounds", v, res.Awake[v])
		}
	}
}

func TestSampledFractionSmall(t *testing.T) {
	// Section 4.1: with IterTrim=2 the per-node sampling probability is
	// O(1/log n); the sampled count must be well below n.
	g := graph.GNP(3000, 0.3, 13)
	out := runPhase(t, g, 7)
	if out.Sampled > g.N()/2 {
		t.Fatalf("sampled %d of %d nodes; expected a small fraction", out.Sampled, g.N())
	}
}

func TestSkippedPhaseOnSparseGraph(t *testing.T) {
	g := graph.GNP(1000, 0.005, 1)
	out := runPhase(t, g, 1)
	if out.Plan.Iterations != 0 {
		t.Fatalf("iterations = %d on sparse graph", out.Plan.Iterations)
	}
	if verify.Count(out.InSet) != 0 {
		t.Fatal("skipped phase computed a nonempty set")
	}
	if len(out.Residual) != g.N() {
		t.Fatal("skipped phase removed nodes")
	}
	if out.Res.MaxAwake() != 0 {
		t.Fatal("skipped phase consumed energy")
	}
}

func TestCongestCompliance(t *testing.T) {
	g := graph.GNP(1200, 0.5, 17)
	out := runPhase(t, g, 19)
	if out.Res.Violations != 0 {
		t.Fatalf("violations=%d bitsMax=%d", out.Res.Violations, out.Res.BitsMax)
	}
	if out.Res.BitsMax > 1 {
		t.Fatalf("phase1 messages should be single-bit; got %d", out.Res.BitsMax)
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(800, 0.4, 21)
	a := runPhase(t, g, 42)
	b := runPhase(t, g, 42)
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("node %d differs across runs", v)
		}
	}
}

func TestSpoiledAccounting(t *testing.T) {
	g := graph.Complete(800)
	out := runPhase(t, g, 23)
	// In a clique nearly every marked node conflicts or is dominated; the
	// spoiled count must never exceed the sampled count.
	if out.Spoiled > out.Sampled {
		t.Fatalf("spoiled %d > sampled %d", out.Spoiled, out.Sampled)
	}
	if ok, u, v := verify.IsIndependent(g, out.InSet); !ok {
		t.Fatalf("clique set dependent: (%d,%d)", u, v)
	}
	if verify.Count(out.InSet) > 1 {
		t.Fatalf("clique independent set of size %d", verify.Count(out.InSet))
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(5).Build(),
		graph.Path(2),
	} {
		out, err := Run(g, DefaultParams(), sim.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _, _ := verify.IsIndependent(g, out.InSet); !ok {
			t.Fatal("tiny graph set not independent")
		}
	}
}
