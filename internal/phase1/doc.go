// Package phase1 implements Phase I of Algorithm 1 (Section 2.1,
// Lemma 2.1): a regularized Luby degree-reduction executed with
// O(log log n) worst-case energy.
//
// The algorithm runs I iterations of R = c·log n logical rounds. In the
// round belonging to iteration i, an undecided node is marked with
// probability 2^i/(damp·Δ); a node is marked at most once in the whole
// phase (one-shot marking), and a marked node that fails to join the MIS
// is "spoiled" and never acts again. Because all marking probabilities are
// fixed up front, every node can pre-sample the unique logical round r_v
// in which it is marked (or conclude it never is) before round 0, and wake
// exactly at the rounds of the Lemma 2.5 schedule S_{r_v}:
//
//   - at its own round r_v it is awake for all three sub-rounds and runs
//     one Luby step against the cohort marked in the same round;
//   - at every other scheduled round it is awake only for the third
//     sub-round, where MIS joiners announce themselves, so the node learns
//     before r_v whether it has been dominated.
//
// Never-marked nodes sleep through the entire phase (zero energy).
// The phase guarantee (Lemma 2.1): after removing the computed independent
// set and its neighborhood, the remaining graph has maximum degree
// O(log² n), w.h.p.
package phase1
