// Package pipeline composes multi-phase batch executions into one run.
//
// The paper's algorithms are phase compositions over shrinking residual
// subgraphs: Phase I on the input graph, shattering on the Phase I
// residual, Phase III on the shattered survivors, with a one-round
// all-awake synchronization charged at every phase boundary (Section 1.1's
// model lets a phase start with every surviving node awake; the
// synchronization plays that role in the accounting). Every phase runs on
// the batch runtime (sim.RunBatch), and this package supplies the shared
// machinery between them:
//
//   - one sim.Mem buffer pool threaded through every phase's Config, so
//     engine buffers are allocated once per pipeline (or once per worker,
//     for callers that reuse a Mem across many pipelines, like the bench
//     throughput executor) instead of once per phase — crossing a phase
//     boundary costs zero steady-state engine allocations;
//   - the residual node set in original IDs and its induced subgraphs;
//   - the stats.Accumulator mapping each phase's local measurements back
//     to original node IDs;
//   - per-phase seed derivation, so phases draw from independent streams
//     of one root seed.
//
// internal/core builds the paper's Algorithm 1 and Algorithm 2 on these
// primitives; the bench suites and both CLIs reach the batch pipeline
// through core.
package pipeline
