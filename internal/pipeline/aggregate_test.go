package pipeline

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/sim"
)

// TestMultiPhaseAggregation drives Record/Sync with synthetic engine
// results over shrinking residual sets (the composed-run shape: each
// phase runs on a subgraph of the last) and checks every composed
// measure against hand-computed expectations.
func TestMultiPhaseAggregation(t *testing.T) {
	const n = 10
	g := graph.Path(n)

	type phase struct {
		name    string
		origIDs []int32 // nil = identity over the full graph
		awake   []int32 // per phase-local node
		rounds  int
		msgs    int64
		dropped int64
		bits    int64
		bitsMax int
		sync    bool // a Sync boundary instead of an engine result
	}
	cases := []struct {
		name   string
		phases []phase
		// expectations
		rounds     int
		awakeTotal int64
		maxAwake   int
		avgAwake   float64
		msgs       int64
		dropped    int64
		bits       int64
		bitsMax    int
		perNode    []int64
	}{
		{
			name: "two-phase-shrinking",
			phases: []phase{
				// Phase 1 on all 10 nodes.
				{name: "p1", awake: []int32{3, 1, 1, 1, 1, 1, 1, 1, 1, 4},
					rounds: 5, msgs: 20, dropped: 2, bits: 160, bitsMax: 16},
				// Residual shrinks to {0, 5, 9}; sync wakes exactly those.
				{name: "sync", origIDs: []int32{0, 5, 9}, sync: true},
				// Phase 2 on the 3 residual nodes (local IDs 0..2).
				{name: "p2", origIDs: []int32{0, 5, 9}, awake: []int32{2, 1, 2},
					rounds: 3, msgs: 4, bits: 32, bitsMax: 32},
			},
			rounds:     5 + 1 + 3,
			awakeTotal: 15 + 3 + 5,
			maxAwake:   4 + 1 + 2, // node 9: 4 in p1, sync, 2 in p2
			avgAwake:   23.0 / 10,
			msgs:       24,
			dropped:    2,
			bits:       192,
			bitsMax:    32,
			perNode:    []int64{6, 1, 1, 1, 1, 3, 1, 1, 1, 7},
		},
		{
			name: "three-phase-chain",
			phases: []phase{
				{name: "a", awake: []int32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
					rounds: 2, msgs: 10, bits: 80, bitsMax: 8},
				{name: "sync-1", origIDs: []int32{2, 3, 4, 5}, sync: true},
				{name: "b", origIDs: []int32{2, 3, 4, 5}, awake: []int32{2, 2, 2, 2},
					rounds: 4, msgs: 8, bits: 64, bitsMax: 16},
				{name: "sync-2", origIDs: []int32{3}, sync: true},
				{name: "c", origIDs: []int32{3}, awake: []int32{5},
					rounds: 6, msgs: 1, dropped: 1, bits: 8, bitsMax: 8},
			},
			rounds:     2 + 1 + 4 + 1 + 6,
			awakeTotal: 10 + 4 + 8 + 1 + 5,
			maxAwake:   1 + 1 + 2 + 1 + 5, // node 3 is in every phase
			avgAwake:   28.0 / 10,
			msgs:       19,
			dropped:    1,
			bits:       152,
			bitsMax:    16,
			perNode:    []int64{1, 1, 4, 10, 4, 4, 1, 1, 1, 1},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := New(g, sim.Config{Seed: 1})
			for _, ph := range tc.phases {
				if ph.sync {
					local := make([]int, len(ph.origIDs))
					for i := range local {
						local[i] = i
					}
					pl.SetResidual(local, ph.origIDs)
					pl.Sync(ph.name)
					continue
				}
				res := &sim.Result{
					Rounds: ph.rounds, Awake: ph.awake,
					MsgsSent: ph.msgs, MsgsDropped: ph.dropped,
					BitsTotal: ph.bits, BitsMax: ph.bitsMax,
				}
				pl.Record(ph.name, res, ph.origIDs)
			}

			sum := pl.Summary()
			if sum.Rounds != tc.rounds {
				t.Errorf("Rounds = %d, want %d", sum.Rounds, tc.rounds)
			}
			if sum.AwakeTotal != tc.awakeTotal {
				t.Errorf("AwakeTotal = %d, want %d", sum.AwakeTotal, tc.awakeTotal)
			}
			if sum.MaxAwake != tc.maxAwake {
				t.Errorf("MaxAwake = %d, want %d", sum.MaxAwake, tc.maxAwake)
			}
			if sum.AvgAwake != tc.avgAwake {
				t.Errorf("AvgAwake = %v, want %v", sum.AvgAwake, tc.avgAwake)
			}
			if sum.MsgsSent != tc.msgs {
				t.Errorf("MsgsSent = %d, want %d", sum.MsgsSent, tc.msgs)
			}
			if sum.MsgsDropped != tc.dropped {
				t.Errorf("MsgsDropped = %d, want %d", sum.MsgsDropped, tc.dropped)
			}
			if sum.BitsTotal != tc.bits {
				t.Errorf("BitsTotal = %d, want %d", sum.BitsTotal, tc.bits)
			}
			if sum.BitsMax != tc.bitsMax {
				t.Errorf("BitsMax = %d, want %d", sum.BitsMax, tc.bitsMax)
			}
			per := pl.AwakePerNode()
			for v := range tc.perNode {
				if per[v] != tc.perNode[v] {
					t.Errorf("AwakePerNode[%d] = %d, want %d", v, per[v], tc.perNode[v])
				}
			}
			if len(sum.Phases) != len(tc.phases) {
				t.Errorf("%d recorded phases, want %d", len(sum.Phases), len(tc.phases))
			}
		})
	}
}

// captureTracer records tracer events for inspection.
type captureTracer struct {
	starts []string
	rounds []obs.RoundStats
	phases []obs.PhaseStats
}

func (c *captureTracer) PhaseStart(name string)    { c.starts = append(c.starts, name) }
func (c *captureTracer) Round(r obs.RoundStats)    { c.rounds = append(c.rounds, r) }
func (c *captureTracer) PhaseEnd(p obs.PhaseStats) { c.phases = append(c.phases, p) }

// TestPipelineTracerSpans checks that Begin/Record/Sync emit phase spans
// whose aggregates mirror the recorded results, with the residual size
// captured at record time.
func TestPipelineTracerSpans(t *testing.T) {
	g := graph.Path(6)
	cap := &captureTracer{}
	pl := New(g, sim.Config{Seed: 1, Tracer: cap})

	pl.Begin("p1")
	res := &sim.Result{Rounds: 2, Awake: []int32{1, 1, 1, 1, 1, 1}, MsgsSent: 6, BitsTotal: 48}
	pl.SetResidual([]int{2, 4}, nil)
	pl.Record("p1", res, nil)
	pl.Sync("sync")

	if want := []string{"p1", "sync"}; len(cap.starts) != 2 || cap.starts[0] != want[0] || cap.starts[1] != want[1] {
		t.Fatalf("PhaseStart events %v, want %v", cap.starts, want)
	}
	if len(cap.phases) != 2 {
		t.Fatalf("%d PhaseEnd events, want 2", len(cap.phases))
	}
	p1 := cap.phases[0]
	if p1.Name != "p1" || p1.Rounds != 2 || p1.Awake != 6 || p1.MsgsSent != 6 || p1.Bits != 48 {
		t.Errorf("p1 span %+v does not mirror the recorded result", p1)
	}
	if p1.Residual != 2 {
		t.Errorf("p1 span residual = %d, want 2 (set before recording)", p1.Residual)
	}
	// Sync contributes one synthetic round over the residual set.
	if len(cap.rounds) != 1 || cap.rounds[0].Awake != 2 {
		t.Fatalf("sync round events %+v, want one with awake=2", cap.rounds)
	}
	sync := cap.phases[1]
	if sync.Name != "sync" || sync.Rounds != 1 || sync.Awake != 2 {
		t.Errorf("sync span %+v, want rounds=1 awake=2", sync)
	}
}
