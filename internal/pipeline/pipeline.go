package pipeline

import (
	"time"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/stats"
)

// Pipeline tracks one composed run: the input graph, the accumulated
// output set, the residual node set the next phase runs on, and the shared
// engine resources.
type Pipeline struct {
	g    *graph.Graph
	base sim.Config // root-seed config; phases derive from it via ForPhase

	acc      *stats.Accumulator
	inSet    []bool
	residual []int // original IDs of the nodes the next phase runs on

	// Observability: base.Tracer (when set) receives phase spans from
	// Begin/Record/Sync, bracketing the per-round events the engine emits
	// during each phase's run. spanStart anchors span wall times.
	tracer    obs.Tracer
	spanStart time.Time
}

// New starts a pipeline over g. base carries the root seed, worker count,
// CONGEST budget, and the shared engine buffer pool; a nil base.Mem gets a
// fresh pool (callers executing many pipelines pass one Mem per worker to
// amortize engine allocations across runs — a Mem must not be shared by
// concurrent pipelines).
func New(g *graph.Graph, base sim.Config) *Pipeline {
	if base.Mem == nil {
		base.Mem = sim.NewMem()
	}
	n := g.N()
	residual := make([]int, n)
	for i := range residual {
		residual[i] = i
	}
	return &Pipeline{
		g: g, base: base,
		acc:      stats.NewAccumulator(n),
		inSet:    make([]bool, n),
		residual: residual,
		tracer:   base.Tracer,
	}
}

// Begin opens a phase span: the tracer (if any) gets a PhaseStart event,
// and per-round engine events until the matching Record are attributed to
// this phase. Call it immediately before running a phase; a no-op without
// a tracer.
func (p *Pipeline) Begin(name string) {
	if p.tracer != nil {
		p.tracer.PhaseStart(name)
		p.spanStart = time.Now()
	}
}

// Cfg returns the engine configuration of phase `phase`: a per-phase seed
// derived from the root seed (sim.Config.ForPhase), and the pipeline's
// shared Mem pool.
func (p *Pipeline) Cfg(phase uint64) sim.Config {
	return p.base.ForPhase(phase)
}

// Graph returns the pipeline's input graph.
func (p *Pipeline) Graph() *graph.Graph { return p.g }

// Residual returns the current residual node set in original IDs. The
// returned slice is the pipeline's own; phases must not mutate it.
func (p *Pipeline) Residual() []int { return p.residual }

// Subgraph materializes the induced subgraph of the current residual set,
// with Orig mapping local back to original IDs.
func (p *Pipeline) Subgraph() *graph.Subgraph {
	return graph.InducedSubgraph(p.g, p.residual)
}

// Record accounts one phase's engine result. origIDs[i] is the original
// node index of phase-local node i; nil means the phase ran on the full
// input graph. With a tracer attached, Record also closes a phase span:
// the emitted PhaseStats carry the result's aggregates, the residual size
// at this moment (callers update the residual before recording), and the
// wall time since the last Begin or Record.
func (p *Pipeline) Record(name string, res *sim.Result, origIDs []int32) {
	p.acc.AddPhase(name, res, origIDs)
	if p.tracer != nil {
		var awake int64
		for _, a := range res.Awake {
			awake += int64(a)
		}
		p.tracer.PhaseEnd(obs.PhaseStats{
			Name:        name,
			Rounds:      res.Rounds,
			Awake:       awake,
			MsgsSent:    res.MsgsSent,
			MsgsDropped: res.MsgsDropped,
			Bits:        res.BitsTotal,
			Violations:  res.Violations,
			Residual:    len(p.residual),
			WallNS:      p.sinceSpanStart(),
		})
	}
}

// sinceSpanStart returns the wall time since the span anchor and re-arms
// it, so consecutive Records (phase iterations under one Begin) partition
// the elapsed time instead of double-counting it.
func (p *Pipeline) sinceSpanStart() int64 {
	now := time.Now()
	var d int64
	if !p.spanStart.IsZero() {
		d = now.Sub(p.spanStart).Nanoseconds()
	}
	p.spanStart = now
	return d
}

// Join adds a phase's independent set (in phase-local IDs) to the output
// set. origIDs follows the Record convention.
func (p *Pipeline) Join(localInSet []bool, origIDs []int32) {
	for v, in := range localInSet {
		if !in {
			continue
		}
		if origIDs != nil {
			p.inSet[origIDs[v]] = true
		} else {
			p.inSet[v] = true
		}
	}
}

// SetResidual replaces the residual set with the given phase-local nodes,
// mapped through origIDs (Record convention).
func (p *Pipeline) SetResidual(local []int, origIDs []int32) {
	next := make([]int, 0, len(local))
	for _, v := range local {
		if origIDs != nil {
			next = append(next, int(origIDs[v]))
		} else {
			next = append(next, v)
		}
	}
	p.residual = next
}

// Sync charges the one-round all-awake phase-boundary synchronization to
// the current residual set. It is a real round in the model (every
// residual node wakes once), so a tracer sees it as a complete one-round
// phase span: PhaseStart, one Round event, PhaseEnd.
func (p *Pipeline) Sync(name string) {
	nodes := make([]int32, len(p.residual))
	for i, v := range p.residual {
		nodes[i] = int32(v)
	}
	p.acc.AddFlat(name, 1, nodes)
	if p.tracer != nil {
		p.tracer.PhaseStart(name)
		p.tracer.Round(obs.RoundStats{Round: 0, Awake: len(nodes)})
		p.tracer.PhaseEnd(obs.PhaseStats{
			Name: name, Rounds: 1, Awake: int64(len(nodes)), Residual: len(p.residual),
		})
	}
}

// InSet returns the accumulated output set (aliased, not copied).
func (p *Pipeline) InSet() []bool { return p.inSet }

// Summary finalizes the composed complexity measures.
func (p *Pipeline) Summary() stats.Summary { return p.acc.Summarize() }

// AwakePerNode returns the composed per-node awake counts.
func (p *Pipeline) AwakePerNode() []int64 { return p.acc.AwakePerNode() }
