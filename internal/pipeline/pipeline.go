package pipeline

import (
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/stats"
)

// Pipeline tracks one composed run: the input graph, the accumulated
// output set, the residual node set the next phase runs on, and the shared
// engine resources.
type Pipeline struct {
	g    *graph.Graph
	base sim.Config // root-seed config; phases derive from it via ForPhase

	acc      *stats.Accumulator
	inSet    []bool
	residual []int // original IDs of the nodes the next phase runs on
}

// New starts a pipeline over g. base carries the root seed, worker count,
// CONGEST budget, and the shared engine buffer pool; a nil base.Mem gets a
// fresh pool (callers executing many pipelines pass one Mem per worker to
// amortize engine allocations across runs — a Mem must not be shared by
// concurrent pipelines).
func New(g *graph.Graph, base sim.Config) *Pipeline {
	if base.Mem == nil {
		base.Mem = sim.NewMem()
	}
	n := g.N()
	residual := make([]int, n)
	for i := range residual {
		residual[i] = i
	}
	return &Pipeline{
		g: g, base: base,
		acc:      stats.NewAccumulator(n),
		inSet:    make([]bool, n),
		residual: residual,
	}
}

// Cfg returns the engine configuration of phase `phase`: a per-phase seed
// derived from the root seed (sim.Config.ForPhase), and the pipeline's
// shared Mem pool.
func (p *Pipeline) Cfg(phase uint64) sim.Config {
	return p.base.ForPhase(phase)
}

// Graph returns the pipeline's input graph.
func (p *Pipeline) Graph() *graph.Graph { return p.g }

// Residual returns the current residual node set in original IDs. The
// returned slice is the pipeline's own; phases must not mutate it.
func (p *Pipeline) Residual() []int { return p.residual }

// Subgraph materializes the induced subgraph of the current residual set,
// with Orig mapping local back to original IDs.
func (p *Pipeline) Subgraph() *graph.Subgraph {
	return graph.InducedSubgraph(p.g, p.residual)
}

// Record accounts one phase's engine result. origIDs[i] is the original
// node index of phase-local node i; nil means the phase ran on the full
// input graph.
func (p *Pipeline) Record(name string, res *sim.Result, origIDs []int32) {
	p.acc.AddPhase(name, res, origIDs)
}

// Join adds a phase's independent set (in phase-local IDs) to the output
// set. origIDs follows the Record convention.
func (p *Pipeline) Join(localInSet []bool, origIDs []int32) {
	for v, in := range localInSet {
		if !in {
			continue
		}
		if origIDs != nil {
			p.inSet[origIDs[v]] = true
		} else {
			p.inSet[v] = true
		}
	}
}

// SetResidual replaces the residual set with the given phase-local nodes,
// mapped through origIDs (Record convention).
func (p *Pipeline) SetResidual(local []int, origIDs []int32) {
	next := make([]int, 0, len(local))
	for _, v := range local {
		if origIDs != nil {
			next = append(next, int(origIDs[v]))
		} else {
			next = append(next, v)
		}
	}
	p.residual = next
}

// Sync charges the one-round all-awake phase-boundary synchronization to
// the current residual set.
func (p *Pipeline) Sync(name string) {
	nodes := make([]int32, len(p.residual))
	for i, v := range p.residual {
		nodes[i] = int32(v)
	}
	p.acc.AddFlat(name, 1, nodes)
}

// InSet returns the accumulated output set (aliased, not copied).
func (p *Pipeline) InSet() []bool { return p.inSet }

// Summary finalizes the composed complexity measures.
func (p *Pipeline) Summary() stats.Summary { return p.acc.Summarize() }

// AwakePerNode returns the composed per-node awake counts.
func (p *Pipeline) AwakePerNode() []int64 { return p.acc.AwakePerNode() }
