package pipeline

import (
	"testing"

	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// TestComposition runs a two-stage Luby pipeline (full graph, then a
// residual rerun — an artificial composition exercising every primitive)
// and checks ID mapping, accounting, and the final set.
func TestComposition(t *testing.T) {
	g := graph.GNP(300, 8.0/300, 3)
	pl := New(g, sim.Config{Seed: 42})

	set1, res1, err := luby.Run(g, pl.Cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	pl.Record("stage-1", res1, nil)
	pl.Join(set1, nil)
	pl.SetResidual(verify.Residual(g, set1), nil)

	if len(pl.Residual()) != 0 {
		// Luby decides everything; force a synthetic residual to exercise
		// the subgraph path anyway.
		t.Fatalf("unexpected residual %d after a full Luby run", len(pl.Residual()))
	}

	// Synthetic second stage on an explicit residual: the 50 lowest IDs.
	local := make([]int, 50)
	for i := range local {
		local[i] = i
	}
	pl.SetResidual(local, nil)
	pl.Sync("sync")
	sub := pl.Subgraph()
	if sub.Graph.N() != 50 {
		t.Fatalf("subgraph has %d nodes, want 50", sub.Graph.N())
	}
	set2, res2, err := luby.Run(sub.Graph, pl.Cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	pl.Record("stage-2", res2, sub.Orig)
	pl.Join(set2, sub.Orig)

	sum := pl.Summary()
	if sum.Rounds != res1.Rounds+1+res2.Rounds {
		t.Fatalf("composed rounds %d, want %d+1+%d", sum.Rounds, res1.Rounds, res2.Rounds)
	}
	if sum.MsgsSent != res1.MsgsSent+res2.MsgsSent {
		t.Fatalf("composed messages %d, want %d", sum.MsgsSent, res1.MsgsSent+res2.MsgsSent)
	}
	// Per-node awake counts must compose through the ID mapping.
	per := pl.AwakePerNode()
	for v := 0; v < g.N(); v++ {
		want := int64(res1.Awake[v])
		if v < 50 {
			want += 1 + int64(res2.Awake[v]) // sync charged to IDs 0..49
		}
		if per[v] != want {
			t.Fatalf("AwakePerNode[%d] = %d, want %d", v, per[v], want)
		}
	}
	in := pl.InSet()
	for v, s := range set1 {
		if s && !in[v] {
			t.Fatalf("stage-1 member %d missing from composed set", v)
		}
	}
}

// TestSharedMemIdentical reruns pipelines of different sizes through one
// shared Mem pool and checks results match fresh-buffer runs: the pool must
// not leak any state across phases or pipelines.
func TestSharedMemIdentical(t *testing.T) {
	mem := sim.NewMem()
	graphs := []*graph.Graph{
		graph.GNP(250, 8.0/250, 1),
		graph.GNP(80, 0.1, 2),
		graph.Complete(40),
	}
	for i, g := range graphs {
		for seed := uint64(1); seed <= 3; seed++ {
			fresh := New(g, sim.Config{Seed: seed})
			pooled := New(g, sim.Config{Seed: seed, Mem: mem})
			fs, fr, err := luby.Run(g, fresh.Cfg(1))
			if err != nil {
				t.Fatal(err)
			}
			ps, pr, err := luby.Run(g, pooled.Cfg(1))
			if err != nil {
				t.Fatal(err)
			}
			for v := range fs {
				if fs[v] != ps[v] {
					t.Fatalf("graph %d seed %d: pooled InSet[%d] differs", i, seed, v)
				}
			}
			if fr.Rounds != pr.Rounds || fr.MsgsSent != pr.MsgsSent || fr.BitsTotal != pr.BitsTotal {
				t.Fatalf("graph %d seed %d: pooled counters differ", i, seed)
			}
		}
	}
}
