package energymis_test

import (
	"fmt"

	energymis "github.com/energymis/energymis"
)

// ExampleRun computes a static MIS with the paper's Algorithm 1 and
// reports the measured complexities. Every run is deterministic in
// (graph, algorithm, seed).
func ExampleRun() {
	g := energymis.GNP(2000, 8.0/2000, 1)
	res, err := energymis.RunVerified(g, energymis.Algorithm1, energymis.Options{Seed: 42})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mis size:", res.MISSize())
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("max awake:", res.MaxAwake)
	fmt.Println("valid:", energymis.Check(g, res.InSet) == nil)
	// Output:
	// mis size: 576
	// rounds: 947
	// max awake: 85
	// valid: true
}

// ExampleNewDynamic maintains a MIS under an update stream: each batch
// wakes only the 1–2 hop neighborhood of the updates instead of re-running
// a static algorithm on the whole graph.
func ExampleNewDynamic() {
	g := energymis.GNP(500, 6.0/500, 7)
	d, err := energymis.NewDynamic(g, energymis.Luby, energymis.DynamicOptions{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, batch := range energymis.ChurnStream(g, 50, 1, 3) {
		if _, err := d.Apply(batch); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	st := d.Stats()
	_, _, inSet := d.Snapshot()
	fmt.Println("updates:", st.Updates)
	fmt.Println("mis still valid:", d.MISSize() > 0 && inSet != nil)
	fmt.Printf("awake node-rounds per update: %.1f\n",
		float64(st.AwakeTotal)/float64(st.Updates))
	// Output:
	// updates: 50
	// mis still valid: true
	// awake node-rounds per update: 15.2
}

// ExampleDynamicMIS_ApplyBatch coalesces an update stream through a
// batching window: every window of updates is repaired in one pass, so
// overlapping repair regions merge and are re-elected once. The set is a
// valid MIS again every time ApplyBatch returns.
func ExampleDynamicMIS_ApplyBatch() {
	g := energymis.GNP(500, 6.0/500, 7)
	d, err := energymis.NewDynamicFrom(g, energymis.GreedyMIS(g), energymis.DynamicOptions{
		Seed:   1,
		Window: 16, // repair every 16 updates as one batch
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	updates := energymis.FlattenStream(energymis.ChurnStream(g, 64, 1, 3))
	bs, err := d.ApplyBatch(updates)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	st := d.Stats()
	fmt.Println("updates:", bs.Updates)
	fmt.Println("repair batches:", st.Batches)
	fmt.Println("valid mis:", d.IsValidMIS())
	fmt.Printf("awake node-rounds per update: %.1f\n",
		float64(st.AwakeTotal)/float64(st.Updates))
	// Output:
	// updates: 64
	// repair batches: 4
	// valid mis: true
	// awake node-rounds per update: 11.6
}

// ExampleRun_batchPipeline runs many simulations through one pooled
// sim.Mem: all phases of every run share the same engine buffers, so warm
// runs execute with zero steady-state engine allocations. Results are
// byte-identical to fresh-buffer runs.
func ExampleRun_batchPipeline() {
	g := energymis.GNP(2000, 8.0/2000, 1)
	mem := energymis.NewMem() // shared across phases and across runs
	var totalAwake int64
	for seed := uint64(1); seed <= 4; seed++ {
		res, err := energymis.Run(g, energymis.Algorithm1, energymis.Options{
			Seed: seed,
			Mem:  mem,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		totalAwake += res.AwakeTotal
	}
	fmt.Println("runs: 4")
	fmt.Println("total awake node-rounds:", totalAwake)
	// Output:
	// runs: 4
	// total awake node-rounds: 72012
}
