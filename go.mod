module github.com/energymis/energymis

go 1.22
