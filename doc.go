// Package energymis is a simulation library for distributed maximal
// independent set (MIS) algorithms with low energy complexity, reproducing
//
//	Mohsen Ghaffari, Julian Portmann.
//	"Distributed MIS with Low Energy and Time Complexities", PODC 2023.
//	arXiv:2305.11639.
//
// The library implements the synchronous CONGEST message-passing model
// with sleeping semantics (a node is awake or asleep each round; energy
// complexity is the maximum number of awake rounds over nodes), the
// paper's two algorithms, their Section 4 constant-average-energy
// variants, and Luby's classic algorithm as the baseline:
//
//	algorithm      time complexity              energy complexity
//	Luby           O(log n)                     O(log n)
//	Algorithm1     O(log² n)                    O(log log n)
//	Algorithm2     O(log n·log log n·log* n)    O(log² log n)
//	Algorithm1Avg  as Algorithm1                as Algorithm1, O(1) average
//	Algorithm2Avg  as Algorithm2                as Algorithm2, O(1) average
//
// Quick start:
//
//	g := energymis.GNP(10_000, 8.0/10_000, 1)
//	res, err := energymis.Run(g, energymis.Algorithm1, energymis.Options{Seed: 42})
//	if err != nil { ... }
//	fmt.Println(res.MaxAwake, res.Rounds, res.MISSize())
//
// Every run is deterministic in (graph, algorithm, Options.Seed) and
// validates nothing by itself; use RunVerified to also check maximality
// and independence of the output.
//
// Beyond one-shot runs, DynamicMIS maintains the set under edge/node
// churn: updates (InsEdge, DelEdge, InsNode, DelNode) are applied through
// ApplyBatch, which coalesces them into windows of DynamicOptions.Window
// and repairs each window with one localized re-election on the batch
// engine — when a repair returns, IsValidMIS holds on the current
// topology. See docs/DYNAMIC.md for the update contract, the
// coalesce-and-repair model, energy accounting, and window tuning:
//
//	d, err := energymis.NewDynamic(g, energymis.Algorithm1,
//	    energymis.DynamicOptions{Seed: 42, Window: 64})
//	if err != nil { ... }
//	d.ApplyBatch(energymis.FlattenStream(energymis.ChurnStream(g, 1000, 1, 7)))
//	fmt.Println(d.IsValidMIS(), d.Stats().AwakeTotal)
package energymis
