package energymis

// Dynamic-repair trace acceptance: the repair phase spans and per-round
// events streamed by the batch path must sum exactly to the engine's
// repair totals, and obs.CheckTrace must accept the file.

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/energymis/energymis/internal/obs"
)

func TestDynamicTraceReproducesRepairTotals(t *testing.T) {
	for _, repair := range []RepairAlgo{RepairLuby, RepairGhaffari} {
		t.Run(repair.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "dyn.jsonl")
			// A unit-disk graph: its clustering makes adjacent nodes lose
			// coverage together, so repairs exercise both multi-node region
			// components (engine election spans) and singleton decisions.
			g := RandomGeometric(400, RadiusForAvgDegree(400, 12), 3)
			d, err := NewDynamic(g, Algorithm1, DynamicOptions{
				Seed: 9, Repair: repair, Window: 16, TracePath: path, SelfCheck: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			flat := FlattenStream(ChurnStream(g, 40, 4, 21))
			if _, err := d.ApplyBatch(flat); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			st := d.Stats()

			tr, err := obs.ReadTraceFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var awake, msgs, dropped, bits, viol int64
			var phaseRounds int
			names := map[string]int{}
			for _, rec := range tr.Records {
				switch rec.Type {
				case obs.RecRound:
					awake += rec.Awake
					msgs += rec.MsgsSent
					dropped += rec.MsgsDropped
					bits += rec.Bits
					viol += rec.Violations
				case obs.RecPhase:
					phaseRounds += rec.Rounds
					names[rec.Name]++
					if !strings.HasPrefix(rec.Name, "repair/") {
						t.Errorf("unexpected phase span %q", rec.Name)
					}
				}
			}
			if awake != st.AwakeTotal {
				t.Errorf("trace awake sum %d != Stats.AwakeTotal %d", awake, st.AwakeTotal)
			}
			if msgs != st.Messages {
				t.Errorf("trace msgs sum %d != Stats.Messages %d", msgs, st.Messages)
			}
			if dropped != st.MsgsDropped {
				t.Errorf("trace dropped sum %d != Stats.MsgsDropped %d", dropped, st.MsgsDropped)
			}
			if bits != st.Bits {
				t.Errorf("trace bits sum %d != Stats.Bits %d", bits, st.Bits)
			}
			if viol != st.Violations {
				t.Errorf("trace violations sum %d != Stats.Violations %d", viol, st.Violations)
			}
			if phaseRounds != int(st.Rounds) {
				t.Errorf("trace phase rounds sum %d != Stats.Rounds %d", phaseRounds, st.Rounds)
			}
			if names["repair/detect"] == 0 {
				t.Error("no repair/detect spans in trace")
			}
			elections := names["repair/luby"] + names["repair/ghaffari"] + names["repair/finisher"]
			if elections == 0 {
				t.Error("no election spans in trace")
			}
			if names["repair/singleton"] == 0 {
				t.Error("no singleton spans in trace")
			}
			if problems := obs.CheckTrace(tr); len(problems) != 0 {
				t.Errorf("CheckTrace: %v", problems)
			}
			sum := tr.Summary()
			if sum == nil {
				t.Fatal("trace has no summary record")
			}
			if sum.Rounds != int(st.Rounds) || sum.Awake != st.AwakeTotal || sum.MISSize != d.MISSize() {
				t.Errorf("summary record %+v does not match Stats", sum)
			}
		})
	}
}

// TestDynamicWindowedValidity drives ApplyBatch through several window
// sizes over the same stream and requires a valid MIS after every call,
// plus identical final topology regardless of windowing.
func TestDynamicWindowedValidity(t *testing.T) {
	g := GNP(300, 9.0/300, 5)
	flat := FlattenStream(ChurnStream(g, 50, 4, 8))
	var wantEdges int
	for _, window := range []int{0, 1, 7, 64, 1000} {
		d, err := NewDynamicFrom(g, GreedyMIS(g), DynamicOptions{Seed: 4, Window: window})
		if err != nil {
			t.Fatal(err)
		}
		for chunk := 0; chunk < len(flat); chunk += 25 {
			end := chunk + 25
			if end > len(flat) {
				end = len(flat)
			}
			if _, err := d.ApplyBatch(flat[chunk:end]); err != nil {
				t.Fatalf("window %d: %v", window, err)
			}
			if !d.IsValidMIS() {
				t.Fatalf("window %d: invalid MIS after chunk at %d: %v", window, chunk, d.Check())
			}
		}
		if wantEdges == 0 {
			wantEdges = d.M()
		} else if d.M() != wantEdges {
			t.Fatalf("window %d: final m=%d, want %d", window, d.M(), wantEdges)
		}
		st := d.Stats()
		if st.Updates != int64(len(flat)) {
			t.Fatalf("window %d: applied %d updates, want %d", window, st.Updates, len(flat))
		}
	}
}

// TestDynamicParallelTraceDeterministic runs the same traced workload at
// Workers 1 and Workers 8: parallel component elections buffer their
// spans per component and replay them in component order, so the
// canonical traces (wall times stripped) must be byte-identical, and the
// parallel trace must still conserve under CheckTrace.
func TestDynamicParallelTraceDeterministic(t *testing.T) {
	g := RandomGeometric(500, RadiusForAvgDegree(500, 12), 11)
	flat := FlattenStream(ChurnStream(g, 60, 4, 13))
	trace := func(workers int) []byte {
		path := filepath.Join(t.TempDir(), "dyn.jsonl")
		d, err := NewDynamicFrom(g, GreedyMIS(g), DynamicOptions{
			Seed: 5, Window: 16, Workers: workers, TracePath: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.ApplyBatch(flat); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := obs.ReadTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			if problems := obs.CheckTrace(tr); len(problems) != 0 {
				t.Errorf("CheckTrace (workers=%d): %v", workers, problems)
			}
		}
		// Drop the header: it legitimately records the worker count (and
		// environment details). Everything below it must match.
		recs := obs.Canonical(tr)[:0:0]
		for _, r := range obs.Canonical(tr) {
			if r.Type != obs.RecHeader {
				recs = append(recs, r)
			}
		}
		b, err := obs.CanonicalBytes(recs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := trace(1)
	par := trace(8)
	if string(seq) != string(par) {
		t.Error("canonical traces differ between Workers 1 and Workers 8")
	}
}

// TestDynamicLegacyTraceRejected pins the contract that tracing requires
// the batch repair path.
func TestDynamicLegacyTraceRejected(t *testing.T) {
	g := GNP(50, 0.1, 1)
	_, err := NewDynamicFrom(g, GreedyMIS(g), DynamicOptions{
		Legacy: true, TracePath: filepath.Join(t.TempDir(), "x.jsonl"),
	})
	if err == nil {
		t.Fatal("Legacy+TracePath accepted")
	}
}
