// Command adversarial stress-runs every algorithm on structurally extreme
// graphs — cliques (one giant conflict), stars (one hub), clique chains
// (dense local structure with global sparseness), a dense random graph,
// and an edgeless graph — verifying correctness and CONGEST compliance on
// each, and printing the measured complexities side by side.
package main

import (
	"fmt"
	"log"

	energymis "github.com/energymis/energymis"
)

func main() {
	cases := []struct {
		name string
		g    *energymis.Graph
	}{
		{"clique-1000", energymis.Complete(1000)},
		{"star-20000", energymis.Star(20_000)},
		{"cliquechain", energymis.CliqueChain(200, 20)},
		{"dense-gnp", energymis.GNP(2000, 0.25, 9)},
		{"edgeless", energymis.NewBuilder(5000).Build()},
		{"path-50000", energymis.Path(50_000)},
	}

	for _, c := range cases {
		fmt.Printf("%s: n=%d m=%d maxDeg=%d\n", c.name, c.g.N(), c.g.M(), c.g.MaxDegree())
		for _, algo := range energymis.Algorithms() {
			res, err := energymis.RunVerified(c.g, algo, energymis.Options{Seed: 13})
			if err != nil {
				log.Fatalf("%s / %s: %v", c.name, algo, err)
			}
			ok := "ok"
			if res.CongestViolations > 0 {
				ok = fmt.Sprintf("CONGEST VIOLATIONS=%d", res.CongestViolations)
			}
			fmt.Printf("  %-16s mis=%-6d rounds=%-6d maxAwake=%-5d avgAwake=%-8.2f %s\n",
				algo, res.MISSize(), res.Rounds, res.MaxAwake, res.AvgAwake, ok)
		}
		fmt.Println()
	}
}
