// Command quickstart is the smallest useful energymis program: build a
// random graph, run the paper's Algorithm 1, and print what it cost.
package main

import (
	"fmt"
	"log"

	energymis "github.com/energymis/energymis"
)

func main() {
	// A sparse random network of 10,000 nodes with average degree ~8.
	g := energymis.GNP(10_000, 8.0/10_000, 1)

	res, err := energymis.RunVerified(g, energymis.Algorithm1, energymis.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: n=%d m=%d maxDeg=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("MIS size: %d\n", res.MISSize())
	fmt.Printf("time complexity  (rounds):        %d\n", res.Rounds)
	fmt.Printf("energy complexity (max awake):    %d\n", res.MaxAwake)
	fmt.Printf("node-averaged energy:             %.2f\n", res.AvgAwake)
	fmt.Printf("99th-percentile energy:           %d\n", res.P99Awake)
	fmt.Println("\nper-phase breakdown:")
	for _, p := range res.Phases {
		fmt.Printf("  %-16s rounds=%-6d maxAwake=%-4d avgAwake=%.2f\n",
			p.Name, p.Rounds, p.MaxAwake, p.AvgAwake)
	}

	// Compare with the Luby baseline: fewer rounds, but every node pays
	// its full decision time in awake rounds.
	base, err := energymis.RunVerified(g, energymis.Luby, energymis.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLuby baseline: rounds=%d maxAwake=%d avgAwake=%.2f\n",
		base.Rounds, base.MaxAwake, base.AvgAwake)
}
