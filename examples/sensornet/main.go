// Command sensornet models the application the paper's introduction
// motivates: battery-powered radios scattered over an area (a random
// geometric graph) that must elect a backbone (an MIS) while spending as
// few awake slots as possible.
//
// Each awake round costs one unit of battery. The example compares how
// the energy budget is spent under Luby's algorithm, Algorithm 1, and the
// constant-average-energy variant, and reports battery-lifetime style
// statistics: the worst node, percentiles, and the fraction of sensors
// that finished within a small fixed budget.
package main

import (
	"fmt"
	"log"
	"sort"

	energymis "github.com/energymis/energymis"
)

func main() {
	const (
		nodes  = 20_000
		avgDeg = 12
		budget = 16 // awake slots a cheap sensor battery tolerates
	)
	g := energymis.RGG(nodes, avgDeg, 7)
	fmt.Printf("sensor field: n=%d m=%d maxDeg=%d  (budget: %d awake slots)\n\n",
		g.N(), g.M(), g.MaxDegree(), budget)

	fmt.Printf("%-16s %8s %9s %8s %8s %8s %14s\n",
		"algorithm", "rounds", "maxAwake", "p50", "p99", "avg", "within-budget")
	for _, algo := range []energymis.Algorithm{
		energymis.Luby, energymis.Algorithm1, energymis.Algorithm1Avg,
	} {
		res, err := energymis.RunVerified(g, algo, energymis.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		awake := append([]int64(nil), res.AwakePerNode...)
		sort.Slice(awake, func(i, j int) bool { return awake[i] < awake[j] })
		within := sort.Search(len(awake), func(i int) bool { return awake[i] > budget })
		fmt.Printf("%-16s %8d %9d %8d %8d %8.2f %13.2f%%\n",
			algo, res.Rounds, res.MaxAwake,
			awake[len(awake)/2], awake[len(awake)*99/100], res.AvgAwake,
			100*float64(within)/float64(len(awake)))
	}

	fmt.Println("\nReading: under Luby every sensor stays awake until it decides, so")
	fmt.Println("the whole field pays Θ(log n) battery slots. The energy-aware")
	fmt.Println("algorithms put almost every sensor to sleep within a handful of")
	fmt.Println("slots; only the unluckiest shattered component pays the Phase III")
	fmt.Println("constants, and the Section 4 variant drives the average to O(1).")
}
