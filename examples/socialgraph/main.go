// Command socialgraph runs the algorithms on a heavy-tailed
// preferential-attachment graph, the regime where Phase I's degree
// reduction actually has work to do: hubs with degree far above
// poly(log n) must be neutralized before shattering can succeed.
//
// The example prints the phase diagnostics that trace the paper's
// pipeline: input max degree → residual degree after Phase I (should be
// O(log² n), Lemma 2.1 / Corollary 3.2) → survivor components after
// Phase II (poly(log n) sized, Lemma 2.6) → Phase III spanning-tree depth
// (O(log n), Lemma 2.8).
package main

import (
	"fmt"
	"log"
	"math"

	energymis "github.com/energymis/energymis"
)

func main() {
	const n = 30_000
	g := energymis.BarabasiAlbert(n, 8, 11)
	log2n := math.Log2(float64(n))
	fmt.Printf("social graph: n=%d m=%d maxDeg=%d  (log²n = %.0f)\n\n",
		g.N(), g.M(), g.MaxDegree(), log2n*log2n)

	for _, algo := range []energymis.Algorithm{energymis.Algorithm1, energymis.Algorithm2} {
		res, err := energymis.RunVerified(g, algo, energymis.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		d := res.Diag
		fmt.Printf("%s:\n", algo)
		fmt.Printf("  MIS size %d | rounds %d | maxAwake %d | avgAwake %.2f\n",
			res.MISSize(), res.Rounds, res.MaxAwake, res.AvgAwake)
		fmt.Printf("  phase I:   %d iterations, degree %d -> %d (bound 4log²n = %.0f)\n",
			d.Phase1Iterations, d.InputMaxDegree, d.ResidualMaxDegree, 4*log2n*log2n)
		fmt.Printf("  phase II:  %d residual nodes -> %d survivors in %d components (max %d)\n",
			d.ResidualNodes, d.SurvivorNodes, d.SurvivorComponents, d.MaxComponent)
		fmt.Printf("  phase III: tree depth %d, finisher attempts %d, retries %d\n\n",
			d.TreeDepth, d.FinisherAttempts, d.Phase3Retries)
	}
}
