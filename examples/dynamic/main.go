// Command dynamic demonstrates MIS maintenance under churn: bootstrap a
// set once with the paper's Algorithm 1, then keep it maximal and
// independent across a thousand topology updates while waking only the
// 1–2 hop neighborhood of each change.
package main

import (
	"fmt"
	"log"

	energymis "github.com/energymis/energymis"
)

func main() {
	// A sensor network loses and gains links as radios fade in and out.
	g := energymis.RGG(5_000, 8, 1)

	d, err := energymis.NewDynamic(g, energymis.Algorithm1, energymis.DynamicOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("bootstrap: mis=%d awakeTotal=%d rounds=%d\n",
		d.MISSize(), st.BootstrapAwake, st.BootstrapRounds)

	// A thousand background churn updates, applied in batches of 10. (The
	// trace is generated from g, so it runs before any node removals.)
	for i, batch := range energymis.ChurnStream(g, 100, 10, 7) {
		if _, err := d.Apply(batch); err != nil {
			log.Fatalf("batch %d: %v", i, err)
		}
	}

	// Individual updates: a link drops, a node dies, a node is deployed.
	if _, err := d.RemoveEdge(0, int(g.Neighbors(0)[0])); err != nil {
		log.Fatal(err)
	}
	if _, err := d.RemoveNode(17); err != nil {
		log.Fatal(err)
	}
	id, bs, err := d.InsertNode(3, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed node %d: woke %d nodes, %d awake-rounds, in MIS: %v\n",
		id, bs.Woken, bs.AwakeRounds, d.InMIS(id))

	if err := d.Check(); err != nil {
		log.Fatal(err)
	}

	st = d.Stats()
	fmt.Printf("after %d updates in %d batches: mis=%d\n", st.Updates, st.Batches, d.MISSize())
	fmt.Printf("repair spend: awake/update=%.2f woken/update=%.2f (bootstrap cost %d — "+
		"recomputing per update would pay it every time)\n",
		float64(st.AwakeTotal)/float64(st.Updates),
		float64(st.WokenTotal)/float64(st.Updates),
		st.BootstrapAwake)
}
