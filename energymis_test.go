package energymis

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := GNP(2000, 8.0/2000, 1)
	for _, algo := range Algorithms() {
		res, err := RunVerified(g, algo, Options{Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.MISSize() == 0 {
			t.Fatalf("%s: empty MIS", algo)
		}
		if res.Rounds <= 0 || res.MaxAwake <= 0 {
			t.Fatalf("%s: missing measurements: %+v", algo, res)
		}
		if res.MaxAwake > res.Rounds {
			t.Fatalf("%s: energy %d above time %d", algo, res.MaxAwake, res.Rounds)
		}
		if res.CongestViolations != 0 {
			t.Fatalf("%s: CONGEST violations", algo)
		}
	}
}

func TestPublicAPIPhases(t *testing.T) {
	g := GNP(1000, 0.3, 2)
	res, err := Run(g, Algorithm1, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 3 {
		t.Fatalf("expected >=3 phases, got %d", len(res.Phases))
	}
	sum := 0
	for _, p := range res.Phases {
		sum += p.Rounds
	}
	if sum != res.Rounds {
		t.Fatalf("phase rounds %d != total %d", sum, res.Rounds)
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := RunVerified(g, Luby, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MISSize() != 2 {
		t.Fatalf("P4 MIS size %d", res.MISSize())
	}
}

func TestPublicAPIUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Path(3), Algorithm(0), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestGreedyOracle(t *testing.T) {
	g := RGG(500, 8, 4)
	if err := Check(g, GreedyMIS(g)); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsExported(t *testing.T) {
	gs := []*Graph{
		GNP(100, 0.05, 1), RGG(100, 6, 1), BarabasiAlbert(100, 2, 1),
		Grid2D(5, 5), Torus2D(5, 5), Cycle(9), Path(9), Star(9),
		Complete(9), RandomTree(50, 1), NearRegular(60, 4, 1), CliqueChain(3, 4),
		FromEdges(3, [][2]int{{0, 1}}),
	}
	for i, g := range gs {
		if g.N() == 0 {
			t.Fatalf("generator %d produced empty graph", i)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
	}
}
