// Command docscheck is the documentation gate run by the CI docs job.
//
// It enforces two invariants:
//
//  1. Every Go package under internal/, plus the public energymis root
//     package, has a package doc comment (by convention in the package's
//     doc.go).
//  2. Every relative link in the repo's markdown files (README.md,
//     ROADMAP.md, CHANGES.md, PAPER.md, PAPERS.md, docs/*.md) resolves to
//     an existing file.
//
// Usage: go run ./scripts/docscheck [repo-root]   (default ".")
//
// Exit status: 0 when clean, 1 with one line per violation otherwise.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkPackageDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: OK")
}

// checkPackageDocs verifies a package doc comment exists for the root
// package and every package under internal/.
func checkPackageDocs(root string) []string {
	dirs := map[string]bool{root: true}
	_ = filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs[path] = true
		}
		return nil
	})
	var problems []string
	for dir := range dirs {
		hasGo, hasDoc := false, false
		entries, err := os.ReadDir(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			hasGo = true
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", filepath.Join(dir, name), err))
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if hasGo && !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no doc comment (add a doc.go)", dir))
		}
	}
	return problems
}

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies relative links in the repo's markdown files.
func checkMarkdownLinks(root string) []string {
	var files []string
	for _, name := range []string{"README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md", "PAPERS.md"} {
		p := filepath.Join(root, name)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	files = append(files, docs...)

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", file, m[1]))
			}
		}
	}
	return problems
}
