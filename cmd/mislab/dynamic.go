package main

// The -dynamic mode: bootstrap a MIS with the chosen static algorithm,
// replay an update stream through the localized repair engine, and report
// the per-update cost next to what re-running the static algorithm after
// each update would have spent.

import (
	"fmt"

	energymis "github.com/energymis/energymis"
)

func runDynamic(g *energymis.Graph, algoName, streamKind, tracePath string, updates, batch, window int, seed uint64, workers int, check bool) error {
	algos, err := pickAlgos(algoName)
	if err != nil {
		return err
	}
	algo := algos[0] // "all" makes no sense for a stateful engine; use the first

	var trace [][]energymis.Update
	switch streamKind {
	case "churn":
		trace = energymis.ChurnStream(g, updates, batch, seed+1)
	case "window":
		// The sliding-window model owns the whole edge set (edges arrive
		// and expire), so it starts from an empty graph on the same nodes.
		g = energymis.NewBuilder(g.N()).Build()
		fmt.Println("(window stream starts from an empty graph; the generated edges are ignored)")
		trace = energymis.WindowStream(g.N(), 4*g.N(), updates, seed+1)
	case "hub":
		trace = energymis.HubAttackStream(g, updates, seed+1)
	default:
		return fmt.Errorf("unknown stream %q (churn, window, hub)", streamKind)
	}

	d, err := energymis.NewDynamic(g, algo, energymis.DynamicOptions{
		Seed: seed, Workers: workers, Window: window, TracePath: tracePath,
	})
	if err != nil {
		return err
	}
	st0 := d.Stats()
	fmt.Printf("bootstrap %s: rounds=%d awakeTotal=%d msgs=%d mis=%d\n\n",
		algo, st0.BootstrapRounds, st0.BootstrapAwake, st0.BootstrapMessages, d.MISSize())

	if window > 0 {
		// Coalescing mode: hand the whole stream to the engine and let the
		// window decide the repair batches. Per-batch Check is meaningless
		// here (the engine re-batches), so verify once at the end.
		if _, err := d.ApplyBatch(energymis.FlattenStream(trace)); err != nil {
			return err
		}
		if check {
			if err := d.Check(); err != nil {
				return err
			}
		}
	} else {
		for i, b := range trace {
			if _, err := d.Apply(b); err != nil {
				return fmt.Errorf("batch %d: %w", i, err)
			}
			if check {
				if err := d.Check(); err != nil {
					return fmt.Errorf("batch %d: %w", i, err)
				}
			}
		}
	}
	if err := d.Close(); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("stream %s: batches=%d updates=%d elections=%d\n",
		streamKind, st.Batches, st.Updates, st.Elections)
	if st.Updates == 0 {
		fmt.Println("no updates applied")
		return nil
	}
	fmt.Printf("repair cost: awake/update=%.2f woken/update=%.2f msgs/update=%.2f maxRegion=%d\n",
		float64(st.AwakeTotal)/float64(st.Updates),
		float64(st.WokenTotal)/float64(st.Updates),
		float64(st.Messages)/float64(st.Updates), st.MaxRegion)
	fmt.Printf("churn: evictions=%d joins=%d | final: n=%d m=%d mis=%d\n",
		st.Evictions, st.Joins, d.AliveCount(), d.M(), d.MISSize())
	if tracePath != "" {
		fmt.Printf("trace: %s\n", tracePath)
	}

	// What the static alternative would spend per update, on the final
	// topology.
	snap, _, _ := d.Snapshot()
	res, err := energymis.Run(snap, algo, energymis.Options{Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	var staticAwake int64
	for _, a := range res.AwakePerNode {
		staticAwake += a
	}
	perUpdate := float64(st.AwakeTotal) / float64(st.Updates)
	fmt.Printf("recompute-per-update would spend awake/update=%d (repair saves %.0fx)\n",
		staticAwake, float64(staticAwake)/perUpdate)
	return nil
}
