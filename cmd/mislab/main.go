// Command mislab runs one MIS algorithm on one generated graph and prints
// the measured complexities, the per-phase breakdown, and the structural
// diagnostics. With -dynamic it instead maintains the MIS under an update
// stream and reports the localized-repair cost.
//
// Usage:
//
//	mislab -algo algorithm1 -graph gnp -n 10000 -deg 8 -seed 1
//	mislab -algo all -graph rgg -n 20000 -deg 12
//	mislab -algo algorithm1 -n 10000 -trace run.jsonl   (analyze with mistrace)
//	mislab -dynamic -stream churn -updates 1000 -n 10000
//	mislab -dynamic -window 64 -trace dyn.jsonl -n 10000
//	mislab -dynamic -stream hub -graph ba -n 5000
//
// Graphs: gnp, rgg, udg, ba, grid, tree, reg, clique, star, path,
// cliquechain.
// (udg is the fixed-radius unit-disk family: -radius sets the
// communication range, 0 derives it from -deg.)
// Algorithms: luby, algorithm1, algorithm2, algorithm1-avg,
// algorithm2-avg, or "all". Streams: churn, window, hub.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	energymis "github.com/energymis/energymis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mislab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName   = flag.String("algo", "algorithm1", "algorithm (or 'all')")
		graphName  = flag.String("graph", "gnp", "graph family")
		n          = flag.Int("n", 10000, "number of nodes")
		deg        = flag.Float64("deg", 8, "target average degree (density knob)")
		radius     = flag.Float64("radius", 0, "udg communication radius (0 = derive from -deg)")
		seed       = flag.Uint64("seed", 1, "random seed (graph and run)")
		workers    = flag.Int("workers", 0, "parallel executor width (0 = sequential)")
		verify     = flag.Bool("verify", true, "verify the output is a maximal independent set")
		phases     = flag.Bool("phases", true, "print the per-phase breakdown")
		tracePath  = flag.String("trace", "", "write a JSONL run trace here (see cmd/mistrace)")
		dyn        = flag.Bool("dynamic", false, "maintain the MIS under an update stream")
		streamKind = flag.String("stream", "churn", "update stream: churn, window, hub")
		updates    = flag.Int("updates", 1000, "update-stream length (with -dynamic)")
		batch      = flag.Int("batch", 1, "updates per batch (with -dynamic, churn stream)")
		window     = flag.Int("window", 0, "coalesce updates into repair batches of this size (with -dynamic; 0 = apply stream batches as generated)")
	)
	flag.Parse()

	g, err := makeGraph(*graphName, *n, *deg, *radius, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s: n=%d m=%d maxDeg=%d avgDeg=%.2f\n\n",
		*graphName, g.N(), g.M(), g.MaxDegree(), g.AvgDegree())

	if *dyn {
		return runDynamic(g, *algoName, *streamKind, *tracePath, *updates, *batch, *window, *seed, *workers, *verify)
	}

	algos, err := pickAlgos(*algoName)
	if err != nil {
		return err
	}
	for _, algo := range algos {
		opts := energymis.Options{Seed: *seed, Workers: *workers}
		if *tracePath != "" {
			opts.TracePath = traceFile(*tracePath, algo.String(), len(algos) > 1)
		}
		var res *energymis.Result
		if *verify {
			res, err = energymis.RunVerified(g, algo, opts)
		} else {
			res, err = energymis.Run(g, algo, opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		fmt.Printf("%s: mis=%d rounds=%d maxAwake=%d p99Awake=%d avgAwake=%.2f msgs=%d bitsMax=%d\n",
			algo, res.MISSize(), res.Rounds, res.MaxAwake, res.P99Awake, res.AvgAwake,
			res.Messages, res.BitsMax)
		if opts.TracePath != "" {
			fmt.Printf("  trace: %s\n", opts.TracePath)
		}
		if res.CongestViolations > 0 {
			fmt.Printf("  WARNING: %d CONGEST violations\n", res.CongestViolations)
		}
		if *phases {
			for _, p := range res.Phases {
				fmt.Printf("  %-16s rounds=%-7d maxAwake=%-5d avgAwake=%.2f\n",
					p.Name, p.Rounds, p.MaxAwake, p.AvgAwake)
			}
			d := res.Diag
			fmt.Printf("  diag: Δ %d->%d | survivors %d in %d comps (max %d) | tree depth %d | retries %d\n",
				d.InputMaxDegree, d.ResidualMaxDegree, d.SurvivorNodes,
				d.SurvivorComponents, d.MaxComponent, d.TreeDepth, d.Phase3Retries)
		}
		fmt.Println()
	}
	return nil
}

// traceFile returns the trace path for one algorithm's run. With several
// algorithms sharing one -trace value, the algorithm name is inserted
// before the extension so each run keeps its own trace.
func traceFile(path, algo string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "-" + algo + ext
}

func pickAlgos(name string) ([]energymis.Algorithm, error) {
	if name == "all" {
		return energymis.Algorithms(), nil
	}
	for _, a := range energymis.Algorithms() {
		if a.String() == name {
			return []energymis.Algorithm{a}, nil
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func makeGraph(name string, n int, deg, radius float64, seed uint64) (*energymis.Graph, error) {
	switch name {
	case "gnp":
		return energymis.GNP(n, deg/float64(max(1, n-1)), seed), nil
	case "rgg":
		return energymis.RGG(n, deg, seed), nil
	case "udg":
		if radius <= 0 {
			radius = energymis.RadiusForAvgDegree(n, deg)
		}
		return energymis.RandomGeometric(n, radius, seed), nil
	case "ba":
		m := int(deg/2) + 1
		return energymis.BarabasiAlbert(n, m, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return energymis.Grid2D(side, side), nil
	case "tree":
		return energymis.RandomTree(n, seed), nil
	case "reg":
		return energymis.NearRegular(n, int(deg), seed), nil
	case "clique":
		return energymis.Complete(n), nil
	case "star":
		return energymis.Star(n), nil
	case "path":
		return energymis.Path(n), nil
	case "cliquechain":
		s := int(deg) + 2
		return energymis.CliqueChain(max(1, n/s), s), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
