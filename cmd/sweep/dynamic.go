package main

// Dynamic-workload experiments (the repair engine of internal/dynamic):
//
//	D1 — repair vs. per-update recompute under uniform churn
//	D2 — repair cost across stream classes (churn, window, hub attack)
//	D3 — sustained updates/sec vs. the coalescing window, per stream class
//	D4 — sustained updates/sec vs. repair workers, per coalescing window
//	D5 — sustained updates/sec vs. graph size, per repair mode
//	     (legacy per-node, word-packed batch, pipelined windows)

import (
	"fmt"
	"time"

	energymis "github.com/energymis/energymis"
)

// replay applies a trace and returns the cumulative stats.
func replay(d *energymis.DynamicMIS, trace [][]energymis.Update) (energymis.DynamicStats, error) {
	for i, batch := range trace {
		if _, err := d.Apply(batch); err != nil {
			return energymis.DynamicStats{}, fmt.Errorf("batch %d: %w", i, err)
		}
		if err := d.Check(); err != nil {
			return energymis.DynamicStats{}, fmt.Errorf("batch %d: %w", i, err)
		}
	}
	return d.Stats(), nil
}

// D1: dynamic repair vs. re-running the static algorithm after each
// update. Static cost is measured on sampled snapshots and extrapolated
// over the whole stream.
func runD1(c sweepConfig) error {
	var rows [][]string
	updates := 1000
	for _, n := range []int{c.n(4000), c.n(10000)} {
		g := energymis.GNP(n, 8.0/float64(n), uint64(n))
		d, err := energymis.NewDynamic(g, energymis.Luby, energymis.DynamicOptions{Seed: 1})
		if err != nil {
			return err
		}
		trace := energymis.ChurnStream(g, updates, 1, uint64(n))
		var staticAwake int64
		samples := 0
		for i, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				return err
			}
			if err := d.Check(); err != nil {
				return fmt.Errorf("D1: update %d: %w", i, err)
			}
			if i%100 == 99 {
				snap, _, _ := d.Snapshot()
				res, err := energymis.Run(snap, energymis.Luby, energymis.Options{Seed: uint64(i)})
				if err != nil {
					return err
				}
				for _, a := range res.AwakePerNode {
					staticAwake += a
				}
				samples++
			}
		}
		st := d.Stats()
		perUpdate := float64(st.AwakeTotal) / float64(st.Updates)
		staticPer := float64(staticAwake) / float64(samples)
		rows = append(rows, []string{
			i0(n), i0(int(st.Updates)), f2(perUpdate), f2(staticPer),
			f2(staticPer / perUpdate),
			f2(float64(st.WokenTotal) / float64(st.Updates)), i0(st.MaxRegion),
		})
	}
	table([]string{"n", "updates", "awake/update (repair)", "awake/update (recompute)",
		"saving x", "woken/update", "max region"}, rows)
	fmt.Println()
	fmt.Println("(every intermediate set validated as a maximal independent set; " +
		"recompute column sampled every 100 updates)")
	return nil
}

// D2: repair cost across the three stream classes.
func runD2(c sweepConfig) error {
	n := c.n(5000)
	var rows [][]string
	type gen struct {
		name  string
		graph *energymis.Graph
		trace func(g *energymis.Graph) [][]energymis.Update
	}
	gnp := energymis.GNP(n, 8.0/float64(n), 2)
	ba := energymis.BarabasiAlbert(n, 4, 2)
	empty := energymis.NewBuilder(n).Build()
	gens := []gen{
		{"uniform-churn", gnp, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.ChurnStream(g, 500, 1, 3)
		}},
		{"sliding-window", empty, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.WindowStream(n, 4*n, 500, 3)
		}},
		{"hub-attack", ba, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.HubAttackStream(g, 100, 3)
		}},
	}
	for _, gn := range gens {
		d, err := energymis.NewDynamic(gn.graph, energymis.Luby, energymis.DynamicOptions{Seed: 4})
		if err != nil {
			return err
		}
		st, err := replay(d, gn.trace(gn.graph))
		if err != nil {
			return fmt.Errorf("D2 %s: %w", gn.name, err)
		}
		rows = append(rows, []string{
			gn.name, i0(int(st.Updates)), i0(int(st.Batches)),
			f2(float64(st.AwakeTotal) / float64(st.Updates)),
			f2(float64(st.Messages) / float64(st.Updates)),
			i0(st.MaxRegion), i0(int(st.Evictions)), i0(int(st.Joins)),
		})
	}
	table([]string{"stream", "updates", "batches", "awake/update", "msgs/update",
		"max region", "evictions", "joins"}, rows)
	return nil
}

// D3: sustained update throughput against the coalescing window, per
// stream class. The engine starts from a greedy MIS (no bootstrap) so the
// wall clock measures pure repair throughput; each configuration keeps the
// best of -seeds timed replays. These numbers are wall-clock and
// machine-dependent — the gated, reproducible twins live in the bench
// harness's dynamic-throughput suite (BENCH_MIS.json).
func runD3(c sweepConfig) error {
	windows := []int{1, 8, 64, 256}
	upd := func(base int) int {
		u := int(float64(base) * c.scale)
		if u < 256 {
			u = 256
		}
		return u
	}
	type class struct {
		name string
		g    *energymis.Graph
		flat []energymis.Update
	}
	var classes []class
	{
		n := c.n(50000)
		g := energymis.GNP(n, 8.0/float64(n), 5)
		classes = append(classes, class{"uniform-churn", g,
			energymis.FlattenStream(energymis.ChurnStream(g, upd(12800), 1, 6))})
	}
	{
		n := c.n(20000)
		g := energymis.NewBuilder(n).Build()
		classes = append(classes, class{"sliding-window", g,
			energymis.FlattenStream(energymis.WindowStream(n, 500, upd(6400), 6))})
	}
	{
		n := c.n(10000)
		g := energymis.BarabasiAlbert(n, 4, 6)
		classes = append(classes, class{"hub-attack", g,
			energymis.FlattenStream(energymis.HubAttackStream(g, upd(200), 6))})
	}
	reps := c.seeds
	if reps < 1 {
		reps = 1
	}
	var rows [][]string
	for _, cl := range classes {
		inSet := energymis.GreedyMIS(cl.g)
		for _, w := range windows {
			var best float64
			var st energymis.DynamicStats
			for rep := 0; rep < reps; rep++ {
				d, err := energymis.NewDynamicFrom(cl.g, inSet, energymis.DynamicOptions{Seed: 9, Window: w})
				if err != nil {
					return err
				}
				start := time.Now()
				if _, err := d.ApplyBatch(cl.flat); err != nil {
					return fmt.Errorf("D3 %s w=%d: %w", cl.name, w, err)
				}
				elapsed := time.Since(start).Seconds()
				if ups := float64(len(cl.flat)) / elapsed; ups > best {
					best = ups
				}
				if rep == 0 {
					if err := d.Check(); err != nil {
						return fmt.Errorf("D3 %s w=%d: %w", cl.name, w, err)
					}
					st = d.Stats()
				}
			}
			rows = append(rows, []string{
				cl.name, i0(cl.g.N()), i0(int(st.Updates)), i0(w), i0(int(st.Batches)),
				fmt.Sprintf("%.0f", best),
				f2(float64(st.AwakeTotal) / float64(max64(st.Updates, 1))),
			})
		}
	}
	headers := []string{"stream", "n", "updates", "window", "batches", "updates/sec", "awake/update"}
	table(headers, rows)
	fmt.Println()
	fmt.Println("(wall-clock best of " + i0(reps) + " replays; gated twins: bench suite dynamic-throughput)")
	return c.writeCSV("D3.csv",
		[]string{"stream", "n", "updates", "window", "batches", "updates_per_sec", "awake_per_update"}, rows)
}

// D4: sustained update throughput against the repair worker count, per
// coalescing window. The workload is uniform churn on a unit-disk graph:
// its clustering makes adjacent nodes lose coverage together, so
// coalesced windows reliably split into multiple region components — the
// units the parallel executor distributes. The counters are byte-identical
// across the workers axis (asserted against the workers=1 run); only the
// wall clock moves.
func runD4(c sweepConfig) error {
	n := c.n(50000)
	g := energymis.RandomGeometric(n, energymis.RadiusForAvgDegree(n, 12), 5)
	upd := int(float64(25600) * c.scale)
	if upd < 256 {
		upd = 256
	}
	flat := energymis.FlattenStream(energymis.ChurnStream(g, upd, 1, 6))
	inSet := energymis.GreedyMIS(g)
	reps := c.seeds
	if reps < 1 {
		reps = 1
	}
	var rows [][]string
	for _, w := range []int{16, 64, 256} {
		var base energymis.DynamicStats
		for _, workers := range []int{1, 2, 4, 8} {
			var best float64
			var st energymis.DynamicStats
			for rep := 0; rep < reps; rep++ {
				d, err := energymis.NewDynamicFrom(g, inSet, energymis.DynamicOptions{
					Seed: 9, Window: w, Workers: workers,
				})
				if err != nil {
					return err
				}
				start := time.Now()
				if _, err := d.ApplyBatch(flat); err != nil {
					return fmt.Errorf("D4 w=%d workers=%d: %w", w, workers, err)
				}
				elapsed := time.Since(start).Seconds()
				if ups := float64(len(flat)) / elapsed; ups > best {
					best = ups
				}
				if rep == 0 {
					if err := d.Check(); err != nil {
						return fmt.Errorf("D4 w=%d workers=%d: %w", w, workers, err)
					}
					st = d.Stats()
				}
			}
			if workers == 1 {
				base = st
			} else if st != base {
				return fmt.Errorf("D4 w=%d: counters diverge between workers=1 and workers=%d", w, workers)
			}
			rows = append(rows, []string{
				i0(n), i0(int(st.Updates)), i0(w), i0(workers),
				fmt.Sprintf("%.0f", best),
				f2(float64(st.Components) / float64(max64(st.Batches, 1))),
				i0(st.MaxComponents),
			})
		}
	}
	headers := []string{"n", "updates", "window", "workers", "updates/sec",
		"components/batch", "max components"}
	table(headers, rows)
	fmt.Println()
	fmt.Println("(unit-disk churn, wall-clock best of " + i0(reps) + " replays; " +
		"counters verified byte-identical across the workers axis)")
	return c.writeCSV("D4.csv",
		[]string{"n", "updates", "window", "workers", "updates_per_sec",
			"components_per_batch", "max_components"}, rows)
}

// D5: sustained update throughput against graph size, per repair mode:
// the per-node legacy reference, the word-packed batch engine, and the
// word-packed engine with window pipelining. Uniform churn at window 64 on
// sparse GNP, n from 10⁴ to 10⁶. The deterministic counters are asserted
// byte-identical across all three modes — the modes may only move the
// wall clock. On a single-core host the pipelined row reads as packed
// plus snapshot/handoff overhead; its win needs a second core.
func runD5(c sweepConfig) error {
	reps := c.seeds
	if reps < 1 {
		reps = 1
	}
	upd := func(n int) int {
		u := n / 4
		if u > 51200 {
			u = 51200
		}
		if u < 256 {
			u = 256
		}
		return u
	}
	const window = 64
	modes := []struct {
		name string
		opts energymis.DynamicOptions
	}{
		{"legacy", energymis.DynamicOptions{Seed: 9, Window: window, Legacy: true}},
		{"packed", energymis.DynamicOptions{Seed: 9, Window: window}},
		{"pipelined", energymis.DynamicOptions{Seed: 9, Window: window, Pipeline: true}},
	}
	var rows [][]string
	for _, base := range []int{10000, 100000, 1000000} {
		n := c.n(base)
		g := energymis.GNP(n, 8.0/float64(n), uint64(n))
		flat := energymis.FlattenStream(energymis.ChurnStream(g, upd(n), 1, 6))
		inSet := energymis.GreedyMIS(g)
		var baseStats energymis.DynamicStats
		for mi, mode := range modes {
			var best float64
			var st energymis.DynamicStats
			var perf energymis.DynamicPerf
			for rep := 0; rep < reps; rep++ {
				d, err := energymis.NewDynamicFrom(g, inSet, mode.opts)
				if err != nil {
					return err
				}
				start := time.Now()
				if _, err := d.ApplyBatch(flat); err != nil {
					return fmt.Errorf("D5 n=%d %s: %w", n, mode.name, err)
				}
				elapsed := time.Since(start).Seconds()
				if ups := float64(len(flat)) / elapsed; ups > best {
					best = ups
				}
				if rep == 0 {
					if err := d.Check(); err != nil {
						return fmt.Errorf("D5 n=%d %s: %w", n, mode.name, err)
					}
					st = d.Stats()
					perf = d.Perf()
				}
			}
			if mi == 0 {
				baseStats = st
			} else if st != baseStats {
				return fmt.Errorf("D5 n=%d: counters diverge between legacy and %s", n, mode.name)
			}
			rows = append(rows, []string{
				i0(n), mode.name, i0(len(flat)), i0(window),
				fmt.Sprintf("%.0f", best),
				f2(float64(st.AwakeTotal) / float64(max64(st.Updates, 1))),
				i0(int(perf.SweepWords)), i0(int(perf.PackBuilds)), i0(int(perf.OverlapWindows)),
			})
		}
	}
	headers := []string{"n", "mode", "updates", "window", "updates/sec",
		"awake/update", "sweep words", "pack builds", "overlap windows"}
	table(headers, rows)
	fmt.Println()
	fmt.Println("(uniform churn, wall-clock best of " + i0(reps) + " replays; " +
		"counters verified byte-identical across the mode axis)")
	return c.writeCSV("D5.csv",
		[]string{"n", "mode", "updates", "window", "updates_per_sec",
			"awake_per_update", "sweep_words", "pack_builds", "overlap_windows"}, rows)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
