package main

// Dynamic-workload experiments (the repair engine of internal/dynamic):
//
//	D1 — repair vs. per-update recompute under uniform churn
//	D2 — repair cost across stream classes (churn, window, hub attack)

import (
	"fmt"

	energymis "github.com/energymis/energymis"
)

// replay applies a trace and returns the cumulative stats.
func replay(d *energymis.DynamicMIS, trace [][]energymis.Update) (energymis.DynamicStats, error) {
	for i, batch := range trace {
		if _, err := d.Apply(batch); err != nil {
			return energymis.DynamicStats{}, fmt.Errorf("batch %d: %w", i, err)
		}
		if err := d.Check(); err != nil {
			return energymis.DynamicStats{}, fmt.Errorf("batch %d: %w", i, err)
		}
	}
	return d.Stats(), nil
}

// D1: dynamic repair vs. re-running the static algorithm after each
// update. Static cost is measured on sampled snapshots and extrapolated
// over the whole stream.
func runD1(c sweepConfig) error {
	var rows [][]string
	updates := 1000
	for _, n := range []int{c.n(4000), c.n(10000)} {
		g := energymis.GNP(n, 8.0/float64(n), uint64(n))
		d, err := energymis.NewDynamic(g, energymis.Luby, energymis.DynamicOptions{Seed: 1})
		if err != nil {
			return err
		}
		trace := energymis.ChurnStream(g, updates, 1, uint64(n))
		var staticAwake int64
		samples := 0
		for i, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				return err
			}
			if err := d.Check(); err != nil {
				return fmt.Errorf("D1: update %d: %w", i, err)
			}
			if i%100 == 99 {
				snap, _, _ := d.Snapshot()
				res, err := energymis.Run(snap, energymis.Luby, energymis.Options{Seed: uint64(i)})
				if err != nil {
					return err
				}
				for _, a := range res.AwakePerNode {
					staticAwake += a
				}
				samples++
			}
		}
		st := d.Stats()
		perUpdate := float64(st.AwakeTotal) / float64(st.Updates)
		staticPer := float64(staticAwake) / float64(samples)
		rows = append(rows, []string{
			i0(n), i0(int(st.Updates)), f2(perUpdate), f2(staticPer),
			f2(staticPer / perUpdate),
			f2(float64(st.WokenTotal) / float64(st.Updates)), i0(st.MaxRegion),
		})
	}
	table([]string{"n", "updates", "awake/update (repair)", "awake/update (recompute)",
		"saving x", "woken/update", "max region"}, rows)
	fmt.Println()
	fmt.Println("(every intermediate set validated as a maximal independent set; " +
		"recompute column sampled every 100 updates)")
	return nil
}

// D2: repair cost across the three stream classes.
func runD2(c sweepConfig) error {
	n := c.n(5000)
	var rows [][]string
	type gen struct {
		name  string
		graph *energymis.Graph
		trace func(g *energymis.Graph) [][]energymis.Update
	}
	gnp := energymis.GNP(n, 8.0/float64(n), 2)
	ba := energymis.BarabasiAlbert(n, 4, 2)
	empty := energymis.NewBuilder(n).Build()
	gens := []gen{
		{"uniform-churn", gnp, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.ChurnStream(g, 500, 1, 3)
		}},
		{"sliding-window", empty, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.WindowStream(n, 4*n, 500, 3)
		}},
		{"hub-attack", ba, func(g *energymis.Graph) [][]energymis.Update {
			return energymis.HubAttackStream(g, 100, 3)
		}},
	}
	for _, gn := range gens {
		d, err := energymis.NewDynamic(gn.graph, energymis.Luby, energymis.DynamicOptions{Seed: 4})
		if err != nil {
			return err
		}
		st, err := replay(d, gn.trace(gn.graph))
		if err != nil {
			return fmt.Errorf("D2 %s: %w", gn.name, err)
		}
		rows = append(rows, []string{
			gn.name, i0(int(st.Updates)), i0(int(st.Batches)),
			f2(float64(st.AwakeTotal) / float64(st.Updates)),
			f2(float64(st.Messages) / float64(st.Updates)),
			i0(st.MaxRegion), i0(int(st.Evictions)), i0(int(st.Joins)),
		})
	}
	table([]string{"stream", "updates", "batches", "awake/update", "msgs/update",
		"max region", "evictions", "joins"}, rows)
	return nil
}
