package main

import (
	"fmt"
	"math"
	"path/filepath"

	energymis "github.com/energymis/energymis"
	"github.com/energymis/energymis/internal/bench"
	"github.com/energymis/energymis/internal/core"
	"github.com/energymis/energymis/internal/degreduce"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/phase1"
	"github.com/energymis/energymis/internal/phase3"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/shatter"
	"github.com/energymis/energymis/internal/sim"
	"github.com/energymis/energymis/internal/verify"
)

// avgRun runs (algo, graph) over the seeds and averages the measurements.
type measures struct {
	rounds, maxAwake, p99 float64
	avg                   float64
	mis                   float64
	bitsMax               float64
}

func measure(c sweepConfig, g *energymis.Graph, algo energymis.Algorithm) (measures, error) {
	var m measures
	seeds := c.seeds
	for s := 0; s < seeds; s++ {
		opts := energymis.Options{Seed: uint64(s) + 1}
		if c.traceDir != "" {
			opts.TracePath = filepath.Join(c.traceDir,
				fmt.Sprintf("%s-n%d-seed%d.jsonl", algo, g.N(), s+1))
		}
		res, err := energymis.RunVerified(g, algo, opts)
		if err != nil {
			return m, err
		}
		m.rounds += float64(res.Rounds)
		m.maxAwake += float64(res.MaxAwake)
		m.p99 += float64(res.P99Awake)
		m.avg += res.AvgAwake
		m.mis += float64(res.MISSize())
		m.bitsMax += float64(res.BitsMax)
	}
	k := float64(seeds)
	m.rounds /= k
	m.maxAwake /= k
	m.p99 /= k
	m.avg /= k
	m.mis /= k
	m.bitsMax /= k
	return m, nil
}

// E1: the comparison "table" of Sections 1.2/1.3 — every algorithm on a
// common sweep, reporting time and energy.
func runE1(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{c.n(4000), c.n(16000), c.n(65536)} {
		g := energymis.GNP(n, 12.0/float64(n), uint64(n))
		for _, algo := range energymis.Algorithms() {
			m, err := measure(c, g, algo)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				i0(n), algo.String(), f2(m.rounds), f2(m.maxAwake), f2(m.p99), f2(m.avg),
			})
		}
	}
	table([]string{"n", "algorithm", "rounds", "maxAwake", "p99Awake", "avgAwake"}, rows)
	return nil
}

func scalingRows(c sweepConfig, algo energymis.Algorithm) ([][]string, error) {
	var rows [][]string
	for _, base := range []int{2048, 8192, 32768, 131072} {
		n := c.n(base)
		g := energymis.GNP(n, 10.0/float64(n), uint64(n))
		m, err := measure(c, g, algo)
		if err != nil {
			return nil, err
		}
		log2n := math.Log2(float64(n))
		rows = append(rows, []string{
			i0(n), f2(m.rounds), f2(m.rounds / (log2n * log2n)), f2(m.maxAwake), f2(m.p99),
			f2(m.maxAwake / math.Log2(log2n)),
		})
	}
	return rows, nil
}

// E2: Theorem 1.1 scaling.
func runE2(c sweepConfig) error {
	rows, err := scalingRows(c, energymis.Algorithm1)
	if err != nil {
		return err
	}
	table([]string{"n", "rounds", "rounds/log²n", "maxAwake", "p99Awake", "maxAwake/loglog n"}, rows)
	return nil
}

// E3: Theorem 1.2 scaling.
func runE3(c sweepConfig) error {
	rows, err := scalingRows(c, energymis.Algorithm2)
	if err != nil {
		return err
	}
	table([]string{"n", "rounds", "rounds/log²n", "maxAwake", "p99Awake", "maxAwake/loglog n"}, rows)
	return nil
}

// E4: Lemma 2.1 — Phase I residual degree.
func runE4(c sweepConfig) error {
	var rows [][]string
	cases := []struct {
		name string
		g    *energymis.Graph
	}{
		{"gnp-dense", energymis.GNP(c.n(3000), 0.3, 3)},
		{"gnp-denser", energymis.GNP(c.n(1500), 0.6, 4)},
		{"ba-hubs", energymis.BarabasiAlbert(c.n(6000), 50, 5)},
		{"clique", energymis.Complete(c.n(900))},
	}
	for _, tc := range cases {
		for s := 0; s < c.seeds; s++ {
			out, err := phase1.Run(tc.g, phase1.DefaultParams(), sim.Config{Seed: uint64(s) + 1})
			if err != nil {
				return err
			}
			sub := graph.InducedSubgraph(tc.g, out.Residual)
			log2n := math.Log2(float64(tc.g.N()))
			rows = append(rows, []string{
				tc.name, i0(tc.g.N()), i0(tc.g.MaxDegree()), i0(out.Plan.Iterations),
				i0(sub.MaxDegree()), f2(float64(sub.MaxDegree()) / (log2n * log2n)),
				i0(out.Res.MaxAwake()), i0(out.Sampled),
			})
		}
	}
	table([]string{"graph", "n", "Δ", "iters", "residual Δ", "residualΔ/log²n", "maxAwake", "sampled"}, rows)
	return nil
}

// E5: Lemma 2.5 — schedule sizes.
func runE5(c sweepConfig) error {
	var rows [][]string
	for _, t := range []int{16, 256, 4096, 65536, 1 << 20} {
		maxSize := 0
		for k := 0; k < t; k += 1 + t/4096 {
			if s := len(schedule.Set(t, k)); s > maxSize {
				maxSize = s
			}
		}
		rows = append(rows, []string{
			i0(t), i0(maxSize), i0(schedule.MaxSize(t)),
			f2(float64(maxSize) / math.Log2(float64(t))),
		})
	}
	table([]string{"T", "max |S_k| (measured)", "bound ⌈log T⌉+1", "measured/log₂T"}, rows)
	return nil
}

// E6: Lemma 2.6 — shattering.
func runE6(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{c.n(8000), c.n(32000), c.n(128000)} {
		g := energymis.NearRegular(n, 16, uint64(n))
		for s := 0; s < c.seeds; s++ {
			out, err := shatter.Run(g, shatter.DefaultParams(), sim.Config{Seed: uint64(s) + 1})
			if err != nil {
				return err
			}
			log2n := math.Log2(float64(n))
			rows = append(rows, []string{
				i0(n), i0(out.Rounds), i0(len(out.Survivors)), i0(len(out.Components)),
				i0(out.MaxComponent), f2(float64(out.MaxComponent) / (log2n * log2n)),
			})
		}
	}
	table([]string{"n", "rounds", "survivors", "components", "max comp", "maxComp/log²n"}, rows)
	return nil
}

// E7: Lemma 2.8 — merging.
func runE7(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{c.n(500), c.n(2000), c.n(8000)} {
		// Sparse graphs stand in for shattered residuals.
		g := energymis.GNP(n, 5.0/float64(n), uint64(n))
		for s := 0; s < c.seeds; s++ {
			out, err := phase3.Run(g, phase3.DefaultParams(phase3.ModeAlg1), sim.Config{Seed: uint64(s) + 1})
			if err != nil {
				return err
			}
			if len(out.Undecided) > 0 {
				return fmt.Errorf("E7: %d undecided", len(out.Undecided))
			}
			rows = append(rows, []string{
				i0(n), i0(out.MaxComponent), i0(out.Timetable.Iters), i0(out.Timetable.Classes),
				i0(out.MaxDepth), f2(float64(out.MaxDepth) / math.Log2(float64(n))),
				i0(out.Res.MaxAwake()), i0(out.MaxAttempts),
			})
		}
	}
	table([]string{"n", "max comp", "iters", "classes", "tree depth", "depth/log n", "maxAwake", "attempts"}, rows)
	return nil
}

// E8: Lemma 3.1 — per-iteration degree drop.
func runE8(c sweepConfig) error {
	var rows [][]string
	g := energymis.GNP(c.n(2500), 0.35, 8)
	p := degreduce.DefaultParams()
	p.StopLogExp = 0
	p.StopMin = 16
	for s := 0; s < c.seeds; s++ {
		out, err := degreduce.Run(g, p, sim.Config{Seed: uint64(s) + 1})
		if err != nil {
			return err
		}
		for i, it := range out.Iters {
			bound := math.Pow(float64(it.Delta), 0.7)
			rows = append(rows, []string{
				i0(s), i0(i), i0(it.Delta), i0(it.MeasuredD),
				f2(float64(it.MeasuredD) / bound), i0(it.Res.MaxAwake()), i0(it.Nodes),
			})
		}
	}
	table([]string{"seed", "iter", "Δ (bound)", "measured Δ'", "Δ'/Δ^0.7", "maxAwake", "nodes"}, rows)
	return nil
}

// E9: Section 4 — node-averaged energy stays O(1).
func runE9(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{c.n(4000), c.n(16000), c.n(64000)} {
		g := energymis.NearRegular(n, 24, uint64(n))
		for _, algo := range []energymis.Algorithm{energymis.Algorithm1, energymis.Algorithm1Avg, energymis.Algorithm2Avg} {
			m, err := measure(c, g, algo)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				i0(n), algo.String(), f2(m.avg), f2(m.p99), f2(m.maxAwake),
			})
		}
	}
	table([]string{"n", "algorithm", "avgAwake", "p99Awake", "maxAwake"}, rows)
	return nil
}

// E10: CONGEST compliance.
func runE10(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{c.n(1000), c.n(16000)} {
		g := energymis.GNP(n, 10.0/float64(n), uint64(n))
		b := sim.DefaultB(n)
		for _, algo := range energymis.Algorithms() {
			res, err := energymis.RunVerified(g, algo, energymis.Options{Seed: 1})
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				i0(n), algo.String(), i0(res.BitsMax), i0(b),
				i0(int(res.CongestViolations)),
			})
		}
	}
	table([]string{"n", "algorithm", "bitsMax", "B", "violations"}, rows)
	return nil
}

// A1: disable one-shot marking by running plain Luby restricted to the
// same number of rounds as Phase I — the energy each node would pay if it
// had to stay awake to re-mark (the Section 2.1 motivation).
func runA1(c sweepConfig) error {
	var rows [][]string
	g := energymis.GNP(c.n(2500), 0.35, 5)
	out, err := phase1.Run(g, phase1.DefaultParams(), sim.Config{Seed: 1})
	if err != nil {
		return err
	}
	inSetL, resL, err := lubyRun(g, 1)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"phase1 (one-shot, scheduled)", i0(out.Res.MaxAwake()), f2(out.Res.AvgAwake()), i0(out.Plan.T * 3)})
	rows = append(rows, []string{"luby (re-marking, always awake)", i0(resL.MaxAwake()), f2(resL.AvgAwake()), i0(resL.Rounds)})
	_ = inSetL
	table([]string{"variant", "maxAwake", "avgAwake", "rounds"}, rows)
	return nil
}

func lubyRun(g *energymis.Graph, seed uint64) ([]bool, *sim.Result, error) {
	res, err := core.Run(g, core.Luby, func() core.Options {
		o := core.DefaultOptions()
		o.Seed = seed
		return o
	}())
	if err != nil {
		return nil, nil, err
	}
	return res.InSet, &sim.Result{Rounds: res.Summary.Rounds, Awake: awake32(res.AwakePerNode)}, nil
}

func awake32(a []int64) []int32 {
	out := make([]int32, len(a))
	for i, v := range a {
		out[i] = int32(v)
	}
	return out
}

// A2: finisher with K = 1 vs K = Θ(log n) parallel executions, stressed
// with a large component and a deliberately tight dynamics budget so that
// a single execution often fails to decide every node (the situation
// Lemma 2.7's parallel executions exist for).
func runA2(c sweepConfig) error {
	var rows [][]string
	g := energymis.GNP(300, 4.0/300, 9) // one large sparse component
	for _, k := range []int{1, 4, 0} {  // 0 = default Θ(log n)
		p := phase3.DefaultParams(phase3.ModeAlg1)
		p.K = k
		p.GhaffariC = 1
		p.GhaffariFloor = 1
		p.Attempts = 4
		fails, attempts := 0, 0
		runs := c.seeds * 4
		for s := 0; s < runs; s++ {
			out, err := phase3.Run(g, p, sim.Config{Seed: uint64(s) + 1})
			if err != nil {
				return err
			}
			fails += len(out.Undecided)
			attempts += out.MaxAttempts
		}
		label := fmt.Sprintf("K=%d", p.K)
		if k == 0 {
			label = "K=2⌈log n⌉ (default)"
		}
		rows = append(rows, []string{
			label, f2(float64(attempts) / float64(runs)), i0(fails),
		})
	}
	table([]string{"executions", "mean attempts", "undecided nodes (all runs)"}, rows)
	return nil
}

// A3: indegree threshold sweep in Lemma 2.8.
func runA3(c sweepConfig) error {
	var rows [][]string
	g := energymis.GNP(c.n(3000), 5.0/float64(c.n(3000)), 11)
	for _, thresh := range []int{3, 10, 40} {
		p := phase3.DefaultParams(phase3.ModeAlg1)
		p.IndegreeThresh = thresh
		out, err := phase3.Run(g, p, sim.Config{Seed: 1})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			i0(thresh), i0(out.Res.MaxAwake()), i0(out.MaxDepth), i0(len(out.Undecided)),
		})
	}
	table([]string{"threshold", "maxAwake", "tree depth", "undecided"}, rows)
	return nil
}

// A4: coloring trajectories — CV (used by phase3) vs the true Linial
// reduction palette chain.
func runA4(c sweepConfig) error {
	var rows [][]string
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		tt1 := phase3.NewTimetable(n, 40, phase3.DefaultParams(phase3.ModeAlg1))
		tt2 := phase3.NewTimetable(n, 40, phase3.DefaultParams(phase3.ModeAlg2))
		rows = append(rows, []string{
			i0(n), fmt.Sprintf("%v", tt1.Palette), i0(tt1.Classes),
			fmt.Sprintf("%v", tt2.Palette), i0(tt2.Classes),
		})
	}
	table([]string{"n", "Alg1 palette chain (LR=2)", "classes", "Alg2 chain (log*)", "classes"}, rows)
	fmt.Println()
	fmt.Println("(The general-graph Linial cover-free reduction is implemented and " +
		"property-tested in internal/linial; on the out-degree-1 forest H_L the " +
		"Cole–Vishkin chain above reaches the same O(log log n) / O(1) class counts.)")
	return nil
}

var _ = verify.Count // keep import for future extensions

// B1: the cmd/bench harness suites, printed as a markdown table. Reuses
// the exact suite definitions behind BENCH_MIS.json and the CI perf gate
// (fixed instance sizes; -scale does not apply). -seeds sets the timed
// repetitions per case.
func runB1(c sweepConfig) error {
	specs, err := bench.Specs(nil, true)
	if err != nil {
		return err
	}
	reps := c.seeds
	if reps < 1 {
		reps = 1
	}
	var rows [][]string
	for _, s := range specs {
		res, err := bench.Measure(s, reps)
		if err != nil {
			return err
		}
		m, t := res.Metrics, res.Timing
		rows = append(rows, []string{
			res.Key(), i0(int(m.Rounds)), i0(int(m.AwakeMax)), f2(m.AwakeAvg),
			i0(int(m.Messages)), fmt.Sprintf("%.1f", t.MinNS/1e6), f2(t.NSPerAwakeNodeRound),
		})
	}
	table([]string{"case", "rounds", "maxAwake", "avgAwake", "msgs", "min ms", "ns/awake-node-round"}, rows)
	fmt.Println()
	fmt.Printf("(quick subset, %d reps/case; `cmd/bench` emits the full suites as BENCH_MIS.json)\n", reps)
	return nil
}

// G1: the unit-disk sensor-field scenario — a fixed communication radius
// while the deployment densifies, so average degree grows linearly with n.
// Luby's energy tracks its O(log n) time, while Algorithm 1 keeps per-node
// energy near-flat: exactly the battery-lifetime story of the paper's
// sensor-network motivation, on the RandomGeometric family.
func runG1(c sweepConfig) error {
	const radius = 0.025
	var rows [][]string
	for _, base := range []int{4000, 8000, 16000} {
		n := c.n(base)
		g := energymis.RandomGeometric(n, radius, uint64(n))
		for _, algo := range []energymis.Algorithm{energymis.Luby, energymis.Algorithm1} {
			m, err := measure(c, g, algo)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				i0(n), f2(g.AvgDegree()), i0(g.MaxDegree()), algo.String(),
				f2(m.rounds), f2(m.maxAwake), f2(m.avg), f2(m.mis),
			})
		}
	}
	table([]string{"n", "avg deg", "Δ", "algorithm", "rounds", "maxAwake", "avgAwake", "|MIS|"}, rows)
	return nil
}
