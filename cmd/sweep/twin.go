package main

import (
	"fmt"

	"github.com/energymis/energymis/internal/twin"
)

// F1: the analytical-twin fit — every metric vs n per algorithm on the
// default sweep, with the least-squares constant, R², and worst relative
// residual per declared closed form. The committed TWIN_MIS.json is this
// experiment at scale 1 (`mistrace fit -out TWIN_MIS.json`); the CSV has
// one row per measured point with its model prediction, ready to plot
// measured-vs-predicted curves.
func runF1(c sweepConfig) error {
	spec := twin.DefaultSpec()
	spec.Seeds = c.seeds
	if c.scale != 1 {
		spec = spec.Scale(c.scale)
	}
	base, err := twin.CollectAndFit(spec, nil)
	if err != nil {
		return err
	}

	var rows [][]string
	csvRows := [][]string{}
	for i := range base.Entries {
		e := &base.Entries[i]
		r2 := "—"
		if e.R2OK {
			r2 = f2(e.R2)
		}
		rows = append(rows, []string{
			e.Algorithm, string(e.Metric), e.Shape.String(),
			fmt.Sprintf("%.3f", e.Constant), r2, f2(e.MaxRelResidual),
		})
		for _, p := range e.Points {
			pred := e.Predict(p.N)
			csvRows = append(csvRows, []string{
				e.Algorithm, string(e.Metric), string(e.Shape), i0(p.N),
				fmt.Sprintf("%g", p.Value), fmt.Sprintf("%.3f", pred),
				fmt.Sprintf("%.4f", (p.Value-pred)/pred),
			})
		}
	}
	table([]string{"algorithm", "metric", "shape", "fitted c", "R²", "max resid"}, rows)
	fmt.Println()
	fmt.Printf("(sweep: %s avgdeg=%g sizes=%v seeds=%d; `mistrace fit -compare TWIN_MIS.json` gates these curves in CI)\n",
		spec.Family, spec.AvgDeg, spec.Sizes, spec.Seeds)
	return c.writeCSV("F1.csv",
		[]string{"algorithm", "metric", "shape", "n", "measured", "predicted", "rel_residual"}, csvRows)
}
