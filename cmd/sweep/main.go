// Command sweep regenerates the paper-reproduction experiments (E1–E10),
// the ablations (A1–A4), the dynamic-MIS experiments (D1–D5), the bench
// twin (B1), the analytical-twin fit (F1), and the unit-disk scenario
// (G1), printing each as a markdown table (see the registry below for
// what each one measures).
//
// Usage:
//
//	sweep -e all
//	sweep -e E1,E4,E9,D1 -seeds 3 -scale 1
//	sweep -e E1 -scale 0.25 -trace traces/   (one JSONL run trace per measured run)
//	sweep -e D3 -csv out/                    (plot-ready CSV next to the table)
//
// -scale shrinks the instance sizes (0.25, 0.5, 1) to trade fidelity for
// runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var (
		expts    = flag.String("e", "all", "comma-separated experiment IDs (E1..E10, A1..A4, D1..D5, B1, F1, G1, all)")
		seeds    = flag.Int("seeds", 3, "seeds per configuration")
		scale    = flag.Float64("scale", 1, "instance-size multiplier")
		traceDir = flag.String("trace", "", "write one JSONL run trace per measured run into this directory (see cmd/mistrace)")
		csvDir   = flag.String("csv", "", "write plot-ready CSV files for experiments that emit them into this directory")
	)
	flag.Parse()

	for _, dir := range []string{*traceDir, *csvDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	registry := []experiment{
		{"E1", "Comparison table: time and energy of all algorithms", runE1},
		{"E2", "Theorem 1.1 scaling: Algorithm 1 rounds and awake vs n", runE2},
		{"E3", "Theorem 1.2 scaling: Algorithm 2 rounds and awake vs n", runE3},
		{"E4", "Lemma 2.1: Phase I residual degree = O(log² n)", runE4},
		{"E5", "Lemma 2.5: awake-schedule size and property", runE5},
		{"E6", "Lemma 2.6: shattering leaves small components", runE6},
		{"E7", "Lemma 2.8: merge iterations, tree depth, awake rounds", runE7},
		{"E8", "Lemma 3.1: per-iteration degree drop Δ -> Δ^0.7", runE8},
		{"E9", "Section 4: node-averaged energy is O(1)", runE9},
		{"E10", "CONGEST compliance: message sizes <= B", runE10},
		{"A1", "Ablation: one-shot marking off (energy blow-up)", runA1},
		{"A2", "Ablation: finisher executions K = 1 vs Θ(log n)", runA2},
		{"A3", "Ablation: indegree threshold in Lemma 2.8", runA3},
		{"A4", "Ablation: CV coloring depth vs Linial palette trajectory", runA4},
		{"D1", "Dynamic MIS: localized repair vs per-update recompute", runD1},
		{"D2", "Dynamic MIS: repair cost across update-stream classes", runD2},
		{"D3", "Dynamic MIS: updates/sec vs batch window across stream classes", runD3},
		{"D4", "Dynamic MIS: updates/sec vs repair workers per batch window", runD4},
		{"D5", "Dynamic MIS: updates/sec vs graph size per repair mode", runD5},
		{"B1", "Benchmark harness: quick suites (twin of BENCH_MIS.json)", runB1},
		{"F1", "Analytical twin: fit paper curves from a multi-size sweep", runF1},
		{"G1", "Unit-disk sensor field: fixed radius, growing density", runG1},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*expts, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	all := want["ALL"]

	cfg := sweepConfig{seeds: *seeds, scale: *scale, traceDir: *traceDir, csvDir: *csvDir}
	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("## %s — %s\n\n", e.id, e.desc)
		if err := e.fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched; use -e all or E1..E10, A1..A4, D1..D5, B1, F1, G1")
		os.Exit(1)
	}
}

type sweepConfig struct {
	seeds    int
	scale    float64
	traceDir string // when set, measure() writes one JSONL trace per run here
	csvDir   string // when set, experiments with CSV output write it here
}

// writeCSV saves one experiment's rows as <csvDir>/<name>; a no-op when
// -csv was not given.
func (c sweepConfig) writeCSV(name string, headers []string, rows [][]string) error {
	if c.csvDir == "" {
		return nil
	}
	path := filepath.Join(c.csvDir, name)
	var b strings.Builder
	b.WriteString(strings.Join(headers, ",") + "\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}

func (c sweepConfig) n(base int) int {
	n := int(float64(base) * c.scale)
	if n < 64 {
		n = 64
	}
	return n
}

type experiment struct {
	id   string
	desc string
	fn   func(sweepConfig) error
}

// table prints a markdown table.
func table(headers []string, rows [][]string) {
	fmt.Println("| " + strings.Join(headers, " | ") + " |")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, r := range rows {
		fmt.Println("| " + strings.Join(r, " | ") + " |")
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func i0(v int) string     { return fmt.Sprintf("%d", v) }
