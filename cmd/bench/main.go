// Command bench runs the benchmark-harness suites and emits/diffs the
// machine-readable BENCH_MIS.json report.
//
// Usage:
//
//	bench -out BENCH_MIS.json              # full run, write the baseline
//	bench -quick -compare BENCH_MIS.json   # the CI perf gate
//	bench -suites static,scaling -reps 7
//	bench -list
//
// Exit status: 0 on success, 1 when -compare finds a regression beyond
// -threshold on ns/awake-node-round, 2 on errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"

	"github.com/energymis/energymis/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		suitesFlag = flag.String("suites", "", "comma-separated suites to run (default all: "+strings.Join(bench.SuiteNames(), ",")+")")
		suiteAlias = flag.String("suite", "", "alias for -suites")
		quick      = flag.Bool("quick", false, "run only the quick subset (same cases/sizes as the full run; fewer of them)")
		reps       = flag.Int("reps", 0, "timed repetitions per case (default 5)")
		out        = flag.String("out", "", "write the JSON report to this path")
		compare    = flag.String("compare", "", "baseline report to diff against; regressions beyond -threshold fail the run")
		threshold  = flag.Float64("threshold", bench.DefaultThreshold, "regression budget on ns/awake-node-round (fraction, e.g. 0.20)")
		list       = flag.Bool("list", false, "list the selected cases and exit")
		quiet      = flag.Bool("q", false, "suppress per-case progress output")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the runs) to this path")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace of the measured runs to this path (view with go tool trace)")
	)
	flag.Parse()

	var suites []string
	for _, flagVal := range []string{*suitesFlag, *suiteAlias} {
		if flagVal == "" {
			continue
		}
		for _, s := range strings.Split(flagVal, ",") {
			suites = append(suites, strings.TrimSpace(s))
		}
	}
	specs, err := bench.Specs(suites, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no cases selected")
		return 2
	}
	if *list {
		for _, s := range specs {
			q := ""
			if s.Quick {
				q = "  [quick]"
			}
			fmt.Printf("%s%s\n", s.Key(), q)
		}
		return 0
	}

	r := *reps
	if r <= 0 {
		r = 5
	}
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer rtrace.Stop()
	}
	report, err := bench.RunSpecs(specs, r, *quick, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runtime.GC() // flush accurate allocation stats into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memprofile)
	}

	var cmp *bench.Comparison
	if *compare != "" {
		baseline, err := bench.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cmp, err = bench.Compare(baseline, report, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if cmp.Regressed() {
			// Scheduler noise can push a single case past the threshold;
			// a real regression survives a second measurement. Re-run only
			// the regressed cases, keep each case's best timing, and
			// re-judge.
			cmp, err = remeasureRegressed(specs, baseline, report, cmp, r, *threshold, progress)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	}

	// Write the report only after any re-measurement has replaced noisy
	// timings: the saved JSON must be the exact data the gate judged.
	if *out != "" {
		if err := bench.WriteFile(*out, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cases)\n", *out, len(report.Cases))
	}

	if cmp != nil {
		cmp.Format(os.Stdout)
		if cmp.Regressed() {
			return 1
		}
	} else if *out == "" {
		// No sink selected: the report goes to stdout.
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(data))
	}
	return 0
}

func remeasureRegressed(specs []bench.Spec, baseline, report *bench.Report, cmp *bench.Comparison, reps int, threshold float64, progress func(string)) (*bench.Comparison, error) {
	byKey := map[string]bench.Spec{}
	for _, s := range specs {
		byKey[s.Key()] = s
	}
	done := map[string]bool{}
	for _, d := range cmp.Regressions {
		// A case past both gated metrics appears once per metric; one
		// re-measurement covers both.
		spec, ok := byKey[d.Case]
		if !ok || done[d.Case] {
			continue
		}
		done[d.Case] = true
		if progress != nil {
			progress(fmt.Sprintf("re-measuring regressed case %s", d.Case))
		}
		again, err := bench.Measure(spec, reps)
		if err != nil {
			return nil, err
		}
		// Keep the better of the two measurements per gated metric (wall
		// time and allocations move independently): a noisy burst shouldn't
		// fail the gate, a real regression repeats.
		if cur := report.Case(d.Case); cur != nil {
			best := cur.Timing
			if t := again.Timing; t.MinNS < best.MinNS {
				best.Reps, best.MinNS, best.MeanNS, best.MaxNS, best.StdevNS = t.Reps, t.MinNS, t.MeanNS, t.MaxNS, t.StdevNS
				best.NSPerAwakeNodeRound = t.NSPerAwakeNodeRound
				best.RunsPerSec = t.RunsPerSec
				best.UpdatesPerSec = t.UpdatesPerSec
			}
			if t := again.Timing; t.AllocsPerAwakeNodeRound < best.AllocsPerAwakeNodeRound {
				best.AllocsPerOp, best.BytesPerOp = t.AllocsPerOp, t.BytesPerOp
				best.AllocsPerAwakeNodeRound = t.AllocsPerAwakeNodeRound
				best.AllocsPerRun = t.AllocsPerRun
				best.AllocsPerUpdate = t.AllocsPerUpdate
			}
			cur.Timing = best
		}
	}
	return bench.Compare(baseline, report, threshold)
}
