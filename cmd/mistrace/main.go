package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/energymis/energymis/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch cmd := args[0]; cmd {
	case "summary":
		err = cmdSummary(args[1:], stdout)
	case "diff":
		err = cmdDiff(args[1:], stdout)
	case "check":
		var failed bool
		failed, err = cmdCheck(args[1:], stdout)
		if err == nil && failed {
			return 1
		}
	case "csv":
		err = cmdCSV(args[1:], stdout)
	case "fit":
		var failed bool
		failed, err = cmdFit(args[1:], stdout, stderr)
		if err == nil && failed {
			return 1
		}
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "mistrace: unknown subcommand %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "mistrace:", err)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  mistrace summary [-top k] [-width n] trace.jsonl
  mistrace diff a.jsonl b.jsonl
  mistrace check trace.jsonl...
  mistrace csv [-o out.csv] [-totals] trace.jsonl
  mistrace fit [-compare TWIN_MIS.json] [-out TWIN_MIS.json] [-csv residuals.csv]
`)
}

func cmdSummary(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	top := fs.Int("top", 3, "show the k hottest phases by awake node-rounds")
	width := fs.Int("width", 60, "sparkline width in columns")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summary wants exactly one trace file")
	}
	t, err := obs.ReadTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	s := obs.Summarize(t)

	fmt.Fprintf(w, "trace %s (schema v%d)\n", fs.Arg(0), t.Header.SchemaVersion)
	if len(s.Meta) > 0 {
		keys := make([]string, 0, len(s.Meta))
		for k := range s.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  meta:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, s.Meta[k])
		}
		fmt.Fprintln(w)
	}
	tot := s.Total
	fmt.Fprintf(w, "  totals: rounds=%d maxAwake=%d avgAwake=%.2f awakeTotal=%d msgs=%d dropped=%d bits=%d mis=%d\n",
		tot.Rounds, tot.MaxAwake, tot.AvgAwake, tot.Awake, tot.MsgsSent,
		tot.MsgsDropped, tot.Bits, tot.MISSize)
	if tot.Components > 0 || tot.SweepWords > 0 || tot.OverlapWindows > 0 {
		fmt.Fprintf(w, "  dynamic: components=%d maxComponents=%d sweepWords=%d packBuilds=%d packHits=%d overlapWindows=%d\n",
			tot.Components, tot.MaxComponents, tot.SweepWords,
			tot.PackBuilds, tot.PackHits, tot.OverlapWindows)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "  %-18s %8s %12s %7s %12s %9s %10s\n",
		"phase", "rounds", "awake", "awake%", "msgs", "residual", "wall")
	for _, p := range s.Phases {
		share := 0.0
		if tot.Awake > 0 {
			share = 100 * float64(p.Awake) / float64(tot.Awake)
		}
		fmt.Fprintf(w, "  %-18s %8d %12d %6.1f%% %12d %9d %10s\n",
			p.Name, p.Rounds, p.Awake, share, p.MsgsSent, p.Residual,
			time.Duration(p.WallNS).Round(time.Microsecond))
	}

	if *top > 0 && len(s.Phases) > 1 {
		fmt.Fprintf(w, "\n  top %d phases by awake node-rounds:\n", min(*top, len(s.Phases)))
		for i, p := range obs.TopPhases(s, *top) {
			fmt.Fprintf(w, "    %d. %-18s awake=%d rounds=%d\n", i+1, p.Name, p.Awake, p.Rounds)
		}
	}

	if spark := obs.Sparkline(s, *width); spark != "" {
		fmt.Fprintf(w, "\n  awake curve (%d round events, peak %d):\n  %s\n",
			s.RoundCount, s.PeakAwake, spark)
	}
	return nil
}

func cmdDiff(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two trace files")
	}
	ta, err := obs.ReadTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tb, err := obs.ReadTraceFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := obs.Diff(obs.Summarize(ta), obs.Summarize(tb))

	fmt.Fprintf(w, "A: %s\nB: %s\n\n", fs.Arg(0), fs.Arg(1))
	fmt.Fprintf(w, "%-18s %20s %24s %26s\n", "phase", "rounds (A→B)", "awake (A→B)", "msgs (A→B)")
	for _, p := range d.Phases {
		tag := ""
		switch {
		case !p.InA:
			tag = " [B only]"
		case !p.InB:
			tag = " [A only]"
		}
		fmt.Fprintf(w, "%-18s %8d → %-9d %10d → %-11d %11d → %-12d%s\n",
			p.Name, p.Rounds[0], p.Rounds[1], p.Awake[0], p.Awake[1],
			p.MsgsSent[0], p.MsgsSent[1], tag)
	}
	a, b := d.A.Total, d.B.Total
	fmt.Fprintf(w, "\ntotals: rounds %d → %d (%+d), awake %d → %d (%+d), msgs %d → %d (%+d), mis %d → %d\n",
		a.Rounds, b.Rounds, b.Rounds-a.Rounds,
		a.Awake, b.Awake, b.Awake-a.Awake,
		a.MsgsSent, b.MsgsSent, b.MsgsSent-a.MsgsSent,
		a.MISSize, b.MISSize)
	return nil
}

func cmdCheck(args []string, w io.Writer) (failed bool, err error) {
	if len(args) == 0 {
		return false, fmt.Errorf("check wants at least one trace file")
	}
	for _, path := range args {
		t, err := obs.ReadTraceFile(path)
		if err != nil {
			return false, err
		}
		problems := obs.CheckTrace(t)
		if len(problems) == 0 {
			fmt.Fprintf(w, "%s: OK (%d records)\n", path, len(t.Records))
			continue
		}
		failed = true
		fmt.Fprintf(w, "%s: %d problem(s)\n", path, len(problems))
		for _, p := range problems {
			fmt.Fprintf(w, "  - %s\n", p)
		}
	}
	return failed, nil
}

func cmdCSV(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("csv", flag.ContinueOnError)
	out := fs.String("o", "", "write CSV to this file instead of stdout")
	totals := fs.Bool("totals", false, "emit the summary totals as one row (components, sweep and pipeline counters included) instead of the round curve")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("csv wants exactly one trace file")
	}
	t, err := obs.ReadTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	write := obs.WriteCurveCSV
	if *totals {
		write = obs.WriteTotalsCSV
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := write(f, t); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return write(w, t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
