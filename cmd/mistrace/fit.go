package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/energymis/energymis/internal/twin"
)

// cmdFit re-fits the analytical twin from fresh deterministic runs and,
// with -compare, evaluates the fit against the committed TWIN_MIS.json
// (the CI twin-fitness gate). Unlike the other subcommands it runs
// simulations instead of reading traces: the twin's input is the measured
// curve itself. Returns failed=true when a curve leaves its band.
func cmdFit(args []string, stdout, stderr io.Writer) (failed bool, err error) {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	compare := fs.String("compare", "", "committed baseline to evaluate against; out-of-band curves fail the run")
	out := fs.String("out", "", "write the fitted baseline JSON to this path (regenerates TWIN_MIS.json)")
	csvPath := fs.String("csv", "", "write the residual table as CSV to this path (the CI artifact)")
	seeds := fs.Int("seeds", 0, "seeds per size (default: the baseline's, or 2)")
	scale := fs.Float64("scale", 1, "sweep-size multiplier (ignored with -compare: the baseline's sweep is authoritative)")
	family := fs.String("family", "", "graph family gnp|udg|ba|grid (default: the baseline's, or gnp)")
	quiet := fs.Bool("q", false, "suppress per-run progress output")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 0 {
		return false, fmt.Errorf("fit takes no positional arguments (use -compare/-out)")
	}

	spec := twin.DefaultSpec()
	var base *twin.Baseline
	if *compare != "" {
		// The baseline's sweep spec is authoritative: constants fitted at
		// different sizes would differ by pre-asymptotic terms, not drift.
		base, err = twin.ReadBaseline(*compare)
		if err != nil {
			return false, err
		}
		spec = base.Sweep
	} else {
		if *family != "" {
			spec.Family = *family
		}
		if *seeds > 0 {
			spec.Seeds = *seeds
		}
		if *scale != 1 {
			spec = spec.Scale(*scale)
		}
	}

	progress := func(line string) { fmt.Fprintln(stderr, line) }
	if *quiet {
		progress = nil
	}
	cur, err := twin.CollectAndFit(spec, progress)
	if err != nil {
		return false, err
	}
	if *out != "" {
		if err := twin.WriteBaseline(*out, cur); err != nil {
			return false, err
		}
		fmt.Fprintf(stderr, "wrote %s (%d models)\n", *out, len(cur.Entries))
	}

	if base == nil {
		// No baseline: print the fit itself (evaluating against itself
		// renders the same residual table with zero drift).
		ev, err := twin.Evaluate(cur, cur)
		if err != nil {
			return false, err
		}
		ev.Format(stdout)
		return false, writeFitCSV(*csvPath, ev, stderr)
	}
	ev, err := twin.Evaluate(base, cur)
	if err != nil {
		return false, err
	}
	ev.Format(stdout)
	if err := writeFitCSV(*csvPath, ev, stderr); err != nil {
		return false, err
	}
	return ev.OutOfBand(), nil
}

func writeFitCSV(path string, ev *twin.Evaluation, stderr io.Writer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ev.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
