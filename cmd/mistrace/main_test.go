package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var o, e bytes.Buffer
	code = run(args, &o, &e)
	return code, o.String(), e.String()
}

func TestSummaryGolden(t *testing.T) {
	code, out, errOut := runCmd(t, "summary", "testdata/golden_a.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"schema v1",
		"algorithm=algorithm1",
		"rounds=4 maxAwake=2 avgAwake=1.25 awakeTotal=10 msgs=12 dropped=1 bits=96 mis=5",
		"phase-a",
		"sync",
		"phase-b",
		"1. phase-a",
		"awake curve (4 round events, peak 4)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q\n%s", want, out)
		}
	}
	// phase-a holds 6 of 10 awake node-rounds.
	if !strings.Contains(out, "60.0%") {
		t.Errorf("summary output missing phase-a awake share 60.0%%\n%s", out)
	}
}

func TestDiffGolden(t *testing.T) {
	code, out, errOut := runCmd(t, "diff", "testdata/golden_a.jsonl", "testdata/golden_b.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"[A only]", // phase-b exists only in A
		"[B only]", // phase-c exists only in B
		"rounds 4 → 5 (+1)",
		"awake 10 → 15 (+5)",
		"msgs 12 → 18 (+6)",
		"mis 5 → 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q\n%s", want, out)
		}
	}
}

func TestCheckGolden(t *testing.T) {
	code, out, errOut := runCmd(t, "check", "testdata/golden_a.jsonl", "testdata/golden_b.jsonl")
	if code != 0 {
		t.Fatalf("clean traces: exit %d, stderr: %s", code, errOut)
	}
	if strings.Count(out, "OK") != 2 {
		t.Errorf("want two OK lines, got:\n%s", out)
	}
}

func TestCheckCorrupt(t *testing.T) {
	code, out, _ := runCmd(t, "check", "testdata/corrupt.jsonl")
	if code != 1 {
		t.Fatalf("corrupt trace: want exit 1, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"sequence gap",  // seq jumps 1 → 3
		"messages sent", // summary claims 99, records sum to 10
	} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %q\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	code, out, errOut := runCmd(t, "csv", "testdata/golden_a.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 round records
		t.Fatalf("want 5 CSV lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "seq,phase,round,awake,awake_frac,msgs_sent,msgs_dropped,bits,violations,wall_ns" {
		t.Errorf("bad CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,phase-a,0,4,0.500000,8,") {
		t.Errorf("bad first CSV row: %s", lines[1])
	}

	// -o writes the same bytes to a file.
	path := filepath.Join(t.TempDir(), "curve.csv")
	if code, _, errOut := runCmd(t, "csv", "-o", path, "testdata/golden_a.jsonl"); code != 0 {
		t.Fatalf("csv -o: exit %d, stderr: %s", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Errorf("csv -o wrote different bytes than stdout")
	}
}

func TestSummaryDynamicLine(t *testing.T) {
	code, out, errOut := runCmd(t, "summary", "testdata/golden_dyn.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	want := "dynamic: components=5 maxComponents=2 sweepWords=120 packBuilds=30 packHits=90 overlapWindows=7"
	if !strings.Contains(out, want) {
		t.Errorf("summary output missing %q\n%s", want, out)
	}
	// Static traces must not grow the line.
	if _, out, _ := runCmd(t, "summary", "testdata/golden_a.jsonl"); strings.Contains(out, "dynamic:") {
		t.Errorf("static summary grew a dynamic line:\n%s", out)
	}
}

func TestCSVTotals(t *testing.T) {
	code, out, errOut := runCmd(t, "csv", "-totals", "testdata/golden_dyn.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 totals row, got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "rounds,awake_total,max_awake,avg_awake,p99_awake,"+
		"msgs_sent,msgs_dropped,bits,bits_max,violations,mis_size,"+
		"components,max_components,sweep_words,pack_builds,pack_hits,overlap_windows" {
		t.Errorf("bad totals header: %s", lines[0])
	}
	if lines[1] != "3,8,3,1.000000,3,16,0,64,32,0,4,5,2,120,30,90,7" {
		t.Errorf("bad totals row: %s", lines[1])
	}
}

// TestPipelineGolden pins the pipeline-mode trace end to end: the meta
// line reports the mode, the dynamic summary line carries the overlap
// counters, csv -totals emits them, and the trace is internally
// consistent under check.
func TestPipelineGolden(t *testing.T) {
	code, out, errOut := runCmd(t, "summary", "testdata/golden_pipeline.jsonl")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"mode=pipeline",
		"dynamic: components=6 maxComponents=3 sweepWords=160 packBuilds=12 packHits=148 overlapWindows=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q\n%s", want, out)
		}
	}

	code, out, errOut = runCmd(t, "csv", "-totals", "testdata/golden_pipeline.jsonl")
	if code != 0 {
		t.Fatalf("csv -totals exit %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 totals row, got %d lines:\n%s", len(lines), out)
	}
	if lines[1] != "5,12,3,1.500000,3,24,0,96,32,0,3,6,3,160,12,148,3" {
		t.Errorf("bad totals row: %s", lines[1])
	}

	if code, out, _ := runCmd(t, "check", "testdata/golden_pipeline.jsonl"); code != 0 {
		t.Errorf("check rejects the pipeline golden trace:\n%s", out)
	}
}

func TestBadUsage(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	if code, _, _ := runCmd(t, "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand: want exit 2, got %d", code)
	}
	if code, _, _ := runCmd(t, "summary", "testdata/nope.jsonl"); code != 2 {
		t.Errorf("missing file: want exit 2, got %d", code)
	}
	if code, _, _ := runCmd(t, "diff", "testdata/golden_a.jsonl"); code != 2 {
		t.Errorf("diff with one file: want exit 2, got %d", code)
	}
	if code, out, _ := runCmd(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Errorf("help: want usage on stdout with exit 0, got %d", code)
	}
}
