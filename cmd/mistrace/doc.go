// Command mistrace analyzes versioned JSONL run traces produced by the
// library's Options.TracePath (and the -trace flags of mislab and sweep).
//
// Usage:
//
//	mistrace summary [-top k] [-width n] trace.jsonl
//	mistrace diff a.jsonl b.jsonl
//	mistrace check trace.jsonl...
//	mistrace csv [-o out.csv] trace.jsonl
//	mistrace fit [-compare TWIN_MIS.json] [-out TWIN_MIS.json] [-csv residuals.csv]
//
// summary prints the run metadata, the totals from the closing summary
// record, a per-phase table (rounds, awake node-rounds and their share,
// messages, residual set size, wall time), the top-k phases by awake
// node-rounds, and the awake-vs-round curve as a sparkline.
//
// diff aligns two traces phase by phase (retried phases pre-summed per
// side) and prints per-phase and total deltas — e.g. to compare two
// algorithms, two seeds, or two revisions on one workload.
//
// check validates internal consistency: structural invariants (summary
// present, rounds inside phase spans, contiguous sequence numbers) and
// conservation (per-round deltas and per-phase aggregates each sum
// exactly to the summary the run's Result reported). Exits non-zero and
// lists every violation if a trace fails.
//
// csv emits the awake-vs-round curve as CSV for plotting.
//
// fit is the analytical-twin gate (internal/twin, docs/TWIN.md): it runs
// the deterministic multi-size sweep, fits the constants of the paper's
// closed-form complexity curves by least squares, and — with -compare —
// evaluates the fit against the committed TWIN_MIS.json, exiting 1 when
// a measured curve leaves its tolerance band. -out regenerates the
// baseline; -csv writes the residual table for the CI artifact.
package main
