package energymis_test

// Benchmark harness: one benchmark per reproduction experiment (the
// E-series of cmd/sweep).
// Each benchmark reports the paper's complexity measures as custom
// metrics (rounds, awake counts) in addition to wall-clock throughput, so
// `go test -bench=. -benchmem` regenerates every experiment's headline
// series. The metrics are produced by internal/bench — the same harness
// behind `cmd/bench` and BENCH_MIS.json — so both report identical
// quantities; cmd/sweep prints the same data as full markdown tables.

import (
	"fmt"
	"math"
	"testing"

	energymis "github.com/energymis/energymis"
	"github.com/energymis/energymis/internal/bench"
	"github.com/energymis/energymis/internal/degreduce"
	"github.com/energymis/energymis/internal/graph"
	"github.com/energymis/energymis/internal/phase1"
	"github.com/energymis/energymis/internal/phase3"
	"github.com/energymis/energymis/internal/schedule"
	"github.com/energymis/energymis/internal/shatter"
	"github.com/energymis/energymis/internal/sim"
)

func reportRun(b *testing.B, g *energymis.Graph, algo energymis.Algorithm) {
	b.Helper()
	var m bench.Metrics
	for i := 0; i < b.N; i++ {
		res, err := energymis.Run(g, algo, energymis.Options{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m = bench.FromResult(res)
	}
	b.ReportMetric(float64(m.Rounds), "rounds")
	b.ReportMetric(float64(m.AwakeMax), "maxAwake")
	b.ReportMetric(m.AwakeAvg, "avgAwake")
	if m.AwakeTotal > 0 && b.N > 0 {
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(perOp/float64(m.AwakeTotal), "ns/awake-node-round")
	}
}

// BenchmarkHarnessQuick runs the cmd/bench quick suite cases through the
// standard Go benchmark driver — the same workloads the CI perf gate
// times, here with -benchmem allocation accounting.
func BenchmarkHarnessQuick(b *testing.B) {
	specs, err := bench.Specs(nil, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range specs {
		spec := spec
		b.Run(spec.Key(), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				if m, err = spec.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if m.AwakeTotal > 0 && b.N > 0 {
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(perOp/float64(m.AwakeTotal), "ns/awake-node-round")
			}
		})
	}
}

// BenchmarkE1ComparisonTable: the §1.2/§1.3 comparison — every algorithm
// on a common graph. One sub-benchmark per (n, algorithm) row.
func BenchmarkE1ComparisonTable(b *testing.B) {
	for _, n := range []int{4096, 32768} {
		g := energymis.GNP(n, 12.0/float64(n), uint64(n))
		for _, algo := range energymis.Algorithms() {
			b.Run(fmt.Sprintf("n=%d/%s", n, algo), func(b *testing.B) {
				reportRun(b, g, algo)
			})
		}
	}
}

// BenchmarkE2Alg1Scaling: Theorem 1.1 — rounds ~ O(log² n), maxAwake ~
// O(log log n).
func BenchmarkE2Alg1Scaling(b *testing.B) {
	for _, n := range []int{2048, 16384, 131072} {
		g := energymis.GNP(n, 10.0/float64(n), uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			reportRun(b, g, energymis.Algorithm1)
		})
	}
}

// BenchmarkE3Alg2Scaling: Theorem 1.2.
func BenchmarkE3Alg2Scaling(b *testing.B) {
	for _, n := range []int{2048, 16384, 131072} {
		g := energymis.GNP(n, 10.0/float64(n), uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			reportRun(b, g, energymis.Algorithm2)
		})
	}
}

// BenchmarkE4Phase1Residual: Lemma 2.1 — residual degree after Phase I.
func BenchmarkE4Phase1Residual(b *testing.B) {
	cases := []struct {
		name string
		g    *energymis.Graph
	}{
		{"gnp-dense", energymis.GNP(2000, 0.3, 3)},
		{"ba-hubs", energymis.BarabasiAlbert(4000, 50, 5)},
		{"clique", energymis.Complete(800)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var resid, awake int
			for i := 0; i < b.N; i++ {
				out, err := phase1.Run(tc.g, phase1.DefaultParams(), sim.Config{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				sub := graph.InducedSubgraph(tc.g, out.Residual)
				resid = sub.MaxDegree()
				awake = out.Res.MaxAwake()
			}
			log2n := math.Log2(float64(tc.g.N()))
			b.ReportMetric(float64(resid), "residualDeg")
			b.ReportMetric(float64(resid)/(log2n*log2n), "residualDeg/log²n")
			b.ReportMetric(float64(awake), "maxAwake")
		})
	}
}

// BenchmarkE5Schedule: Lemma 2.5 — schedule construction cost and size.
func BenchmarkE5Schedule(b *testing.B) {
	for _, t := range []int{1 << 8, 1 << 14, 1 << 20} {
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				s := schedule.Set(t, i%t)
				if len(s) > size {
					size = len(s)
				}
			}
			b.ReportMetric(float64(size), "|S_k|")
			b.ReportMetric(float64(schedule.MaxSize(t)), "bound")
		})
	}
}

// BenchmarkE6Shattering: Lemma 2.6 — survivor component sizes.
func BenchmarkE6Shattering(b *testing.B) {
	for _, n := range []int{8192, 65536} {
		g := energymis.NearRegular(n, 16, uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var maxComp, survivors int
			for i := 0; i < b.N; i++ {
				out, err := shatter.Run(g, shatter.DefaultParams(), sim.Config{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				maxComp = out.MaxComponent
				survivors = len(out.Survivors)
			}
			b.ReportMetric(float64(maxComp), "maxComp")
			b.ReportMetric(float64(survivors), "survivors")
		})
	}
}

// BenchmarkE7Merge: Lemma 2.8 — merging iterations, tree depth, energy.
func BenchmarkE7Merge(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		g := energymis.GNP(n, 5.0/float64(n), uint64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var depth, awake, iters int
			for i := 0; i < b.N; i++ {
				out, err := phase3.Run(g, phase3.DefaultParams(phase3.ModeAlg1), sim.Config{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(out.Undecided) > 0 {
					b.Fatalf("%d undecided", len(out.Undecided))
				}
				depth = out.MaxDepth
				awake = out.Res.MaxAwake()
				iters = out.Timetable.Iters
			}
			b.ReportMetric(float64(depth), "treeDepth")
			b.ReportMetric(float64(depth)/math.Log2(float64(n)), "depth/logn")
			b.ReportMetric(float64(awake), "maxAwake")
			b.ReportMetric(float64(iters), "iters")
		})
	}
}

// BenchmarkE8DegreeDrop: Lemma 3.1 — Δ -> Δ^0.7 per iteration.
func BenchmarkE8DegreeDrop(b *testing.B) {
	g := energymis.GNP(2000, 0.35, 8)
	p := degreduce.DefaultParams()
	p.StopLogExp = 0
	p.StopMin = 16
	b.Run("iterated", func(b *testing.B) {
		var ratio float64
		var iters int
		for i := 0; i < b.N; i++ {
			out, err := degreduce.Run(g, p, sim.Config{Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			iters = len(out.Iters)
			if iters > 0 {
				first := out.Iters[0]
				ratio = float64(first.MeasuredD) / math.Pow(float64(first.Delta), 0.7)
			}
		}
		b.ReportMetric(ratio, "Δ'/Δ^0.7")
		b.ReportMetric(float64(iters), "iters")
	})
}

// BenchmarkE9AverageEnergy: Section 4 — node-averaged energy O(1).
func BenchmarkE9AverageEnergy(b *testing.B) {
	for _, n := range []int{8192, 65536} {
		g := energymis.NearRegular(n, 24, uint64(n))
		for _, algo := range []energymis.Algorithm{energymis.Algorithm1, energymis.Algorithm1Avg} {
			b.Run(fmt.Sprintf("n=%d/%s", n, algo), func(b *testing.B) {
				reportRun(b, g, algo)
			})
		}
	}
}

// BenchmarkE10MessageSize: CONGEST compliance — bitsMax vs budget.
func BenchmarkE10MessageSize(b *testing.B) {
	g := energymis.GNP(16384, 10.0/16384, 7)
	for _, algo := range energymis.Algorithms() {
		b.Run(algo.String(), func(b *testing.B) {
			var bits int
			var viol int64
			for i := 0; i < b.N; i++ {
				res, err := energymis.Run(g, algo, energymis.Options{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				bits = res.BitsMax
				viol = res.CongestViolations
			}
			b.ReportMetric(float64(bits), "bitsMax")
			b.ReportMetric(float64(sim.DefaultB(g.N())), "B")
			if viol != 0 {
				b.Fatalf("CONGEST violations: %d", viol)
			}
		})
	}
}

// BenchmarkA3IndegreeThreshold: ablation of the Lemma 2.8 constant.
func BenchmarkA3IndegreeThreshold(b *testing.B) {
	g := energymis.GNP(4096, 5.0/4096, 11)
	for _, thresh := range []int{3, 10, 40} {
		b.Run(fmt.Sprintf("theta=%d", thresh), func(b *testing.B) {
			p := phase3.DefaultParams(phase3.ModeAlg1)
			p.IndegreeThresh = thresh
			var awake int
			for i := 0; i < b.N; i++ {
				out, err := phase3.Run(g, p, sim.Config{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				awake = out.Res.MaxAwake()
			}
			b.ReportMetric(float64(awake), "maxAwake")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (node-rounds per
// second) to contextualize the experiment runtimes; the scaling suite of
// cmd/bench tracks the same workload across worker counts.
func BenchmarkEngineThroughput(b *testing.B) {
	g := energymis.GNP(50_000, 10.0/50_000, 3)
	b.Run("luby-50k", func(b *testing.B) {
		reportRun(b, g, energymis.Luby)
	})
}
