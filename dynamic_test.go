package energymis

import (
	"testing"
)

// TestDynamicChurnProperty is the dynamic subsystem's main property test:
// over a 1,000-step random churn stream, after every single update the
// repaired set must (a) pass the MIS validity check on the current
// topology, and (b) agree in validity with a from-scratch static Run on a
// snapshot of the current graph — same-validity, not same-set, since the
// maintained set and a fresh run legitimately differ.
func TestDynamicChurnProperty(t *testing.T) {
	g := GNP(300, 9.0/300, 17)
	d, err := NewDynamic(g, Luby, DynamicOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trace := ChurnStream(g, 1000, 1, 23)
	for i, batch := range trace {
		if _, err := d.Apply(batch); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("update %d: maintained set invalid: %v", i, err)
		}
		snap, _, inSet := d.Snapshot()
		if err := Check(snap, inSet); err != nil {
			t.Fatalf("update %d: snapshot disagreement: %v", i, err)
		}
		res, err := Run(snap, Luby, Options{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatalf("update %d: static run: %v", i, err)
		}
		if err := Check(snap, res.InSet); err != nil {
			t.Fatalf("update %d: from-scratch run invalid: %v", i, err)
		}
	}
	if st := d.Stats(); st.Updates != 1000 {
		t.Fatalf("updates = %d", st.Updates)
	}
}

// TestDynamicNodeChurnProperty exercises the node operations through the
// public API under a mixed stream including hub attacks.
func TestDynamicNodeChurnProperty(t *testing.T) {
	g := BarabasiAlbert(250, 3, 7)
	for _, repair := range []RepairAlgo{RepairLuby, RepairGhaffari} {
		d, err := NewDynamic(g, Algorithm1, DynamicOptions{Seed: 9, Repair: repair, SelfCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, batch := range HubAttackStream(g, 30, 3) {
			if _, err := d.Apply(batch); err != nil {
				t.Fatalf("repair=%v batch %d: %v", repair, i, err)
			}
		}
		if d.AliveCount() != g.N() {
			t.Fatalf("alive = %d", d.AliveCount())
		}
	}
}

// TestDynamicAcceptance10k is the PR's acceptance criterion: on a GNP
// n=10,000 uniform-churn stream of 1,000 updates, every intermediate set
// is a valid MIS, and dynamic repair spends >= 10x fewer total
// node-awake-rounds than re-running the static algorithm after each
// update (static cost measured on sampled snapshots and extrapolated).
func TestDynamicAcceptance10k(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		n       = 10_000
		updates = 1000
		sample  = 100 // static recompute measured every sample-th update
	)
	g := GNP(n, 8.0/n, 1)
	d, err := NewDynamic(g, Luby, DynamicOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace := ChurnStream(g, updates, 1, 3)
	var staticAwakeSampled int64
	samples := 0
	for i, batch := range trace {
		if _, err := d.Apply(batch); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("update %d: invalid intermediate set: %v", i, err)
		}
		if i%sample == sample-1 {
			snap, _, _ := d.Snapshot()
			res, err := Run(snap, Luby, Options{Seed: uint64(i)})
			if err != nil {
				t.Fatalf("static sample at %d: %v", i, err)
			}
			for _, a := range res.AwakePerNode {
				staticAwakeSampled += a
			}
			samples++
		}
	}
	st := d.Stats()
	if st.Updates != updates {
		t.Fatalf("updates = %d", st.Updates)
	}
	staticTotal := staticAwakeSampled / int64(samples) * int64(updates)
	if st.AwakeTotal*10 > staticTotal {
		t.Fatalf("dynamic repair awake %d not 10x below per-update recompute %d",
			st.AwakeTotal, staticTotal)
	}
	t.Logf("dynamic awake=%d vs recompute-every-update awake=%d (%.0fx saving; woken/update=%.1f)",
		st.AwakeTotal, staticTotal,
		float64(staticTotal)/float64(st.AwakeTotal),
		float64(st.WokenTotal)/float64(st.Updates))
}

func TestDynamicPublicSurface(t *testing.T) {
	g := Path(4)
	d, err := NewDynamic(g, Luby, DynamicOptions{Seed: 1, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Algorithm() != Luby || d.N() != 4 || d.M() != 3 || d.MISSize() == 0 {
		t.Fatalf("surface: %d nodes %d edges mis=%d", d.N(), d.M(), d.MISSize())
	}
	id, _, err := d.InsertNode(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Alive(id) || d.Degree(id) != 2 || !d.HasEdge(id, 0) {
		t.Fatal("insert-node surface wrong")
	}
	if _, err := d.Apply([]Update{DelEdge(1, 2), InsEdge(1, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Batches != 3 || st.BootstrapRounds == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(d.AwakePerNode()) != d.N() {
		t.Fatal("awake vector length")
	}
	if _, err := NewDynamic(g, Algorithm(0), DynamicOptions{}); err == nil {
		t.Fatal("unknown bootstrap algorithm accepted")
	}
}

func TestWindowStreamPublic(t *testing.T) {
	trace := WindowStream(80, 40, 200, 5)
	if StreamUpdates(trace) == 0 {
		t.Fatal("empty trace")
	}
	d, err := NewDynamic(NewBuilder(80).Build(), Luby, DynamicOptions{Seed: 1, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range trace {
		if _, err := d.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}
