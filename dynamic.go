package energymis

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/energymis/energymis/internal/core"
	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/obs"
	"github.com/energymis/energymis/internal/stream"
)

// Update is one topology change for a DynamicMIS. Build updates with
// InsEdge/DelEdge/InsNode/DelNode and apply them with ApplyBatch
// (window-coalesced), Apply (one batch) or the per-update convenience
// methods.
type Update = dynamic.Update

// UpdateOp identifies the kind of an Update.
type UpdateOp = dynamic.Op

// Update operations.
const (
	OpInsertEdge = dynamic.OpInsertEdge
	OpRemoveEdge = dynamic.OpRemoveEdge
	OpInsertNode = dynamic.OpInsertNode
	OpRemoveNode = dynamic.OpRemoveNode
)

// InsEdge returns an edge-insertion update.
func InsEdge(u, v int) Update { return dynamic.InsEdge(u, v) }

// DelEdge returns an edge-removal update.
func DelEdge(u, v int) Update { return dynamic.DelEdge(u, v) }

// InsNode returns a node-insertion update; the node is assigned the next
// slot index when applied.
func InsNode(neighbors ...int) Update { return dynamic.InsNode(neighbors...) }

// DelNode returns a node-removal update.
func DelNode(v int) Update { return dynamic.DelNode(v) }

// RepairAlgo selects the localized re-election protocol used by repairs.
type RepairAlgo = dynamic.RepairAlgo

// Repair protocols.
const (
	// RepairLuby re-elects with Luby's algorithm on the affected region.
	RepairLuby = dynamic.RepairLuby
	// RepairGhaffari uses the desire-level dynamics with a Luby finisher.
	RepairGhaffari = dynamic.RepairGhaffari
)

// BatchStats is the measured cost of one update batch (or, from
// ApplyBatch, the aggregate over the windows it applied).
type BatchStats = dynamic.BatchStats

// DynamicStats is the cumulative cost of a DynamicMIS lifetime.
type DynamicStats = dynamic.Stats

// DynamicOptions configures a DynamicMIS. The zero value is valid: seed 0,
// Luby repairs, sequential execution, default CONGEST budget, batch-engine
// repairs, no coalescing window.
type DynamicOptions struct {
	// Seed drives the bootstrap run and all repair randomness.
	Seed uint64
	// Workers > 1 runs the bootstrap on the parallel engine executor and
	// elects independent repair-region components concurrently on a
	// worker pool with per-worker engine memory. Results are
	// byte-identical for every worker count — the per-component counters
	// and trace spans merge in deterministic region order — so Workers
	// trades wall clock only. See docs/DYNAMIC.md for when it pays.
	Workers int
	// B overrides the CONGEST budget in bits (0 = default).
	B int
	// Repair selects the re-election protocol (default RepairLuby).
	Repair RepairAlgo
	// SelfCheck validates the MIS invariant after every batch (O(n+m);
	// meant for tests).
	SelfCheck bool
	// Window > 0 makes ApplyBatch coalesce updates into repairs of at
	// most Window updates each; 0 repairs each ApplyBatch slice as a
	// single batch. Larger windows merge overlapping repair regions
	// (higher throughput, higher per-repair latency); see docs/DYNAMIC.md
	// for tuning.
	Window int
	// Pipeline overlaps ApplyBatch windows: the structural apply of
	// window k+1 runs while window k's repair is still electing, with a
	// deterministic join, so sets, counters, and traces stay byte-
	// identical to the serial schedule. Needs Window > 0 to have windows
	// to overlap, and degrades to the serial schedule under Legacy or
	// SelfCheck (the reference path has no snapshot sweeps; SelfCheck
	// reads the whole graph between batches). See docs/DYNAMIC.md.
	Pipeline bool
	// Legacy selects the per-node reference repair path (identical sets
	// and counters; for differential testing and head-to-head
	// benchmarks). Incompatible with TracePath.
	Legacy bool
	// TracePath, when non-empty, streams a versioned JSONL trace of every
	// repair to the given file: election phase spans ("repair/luby",
	// "repair/ghaffari", "repair/finisher"), per-round engine events, and
	// one synthetic "repair/detect" span per batch carrying the
	// detection-round cost. Call Close to write the summary record; the
	// summary covers repairs only (not the bootstrap), so mistrace check
	// proves the streamed spans reproduce the engine's repair totals.
	TracePath string
}

// DynamicMIS maintains a maximal independent set under edge and node
// churn. An update wakes only the nodes in the 1–2 hop neighborhood of
// the change and repairs the set with a localized re-election, instead of
// re-running a static algorithm on the whole network; rounds, per-node
// awake rounds, and messages are accounted with the same semantics as
// static runs. Repairs execute on the SoA batch engine (see
// docs/DYNAMIC.md); DynamicOptions.Legacy selects the per-node reference
// path.
type DynamicMIS struct {
	eng      *dynamic.Engine
	algo     Algorithm
	window   int
	pipeline bool

	// Tracing state: the open writer and the per-node awake ledger at
	// trace start, so Close can summarize exactly the traced window.
	tw        *obs.TraceWriter
	tracePath string
	awakeBase []int64
}

func newDynamicMIS(g *Graph, inSet []bool, algo Algorithm, algoName string, opts DynamicOptions) (*DynamicMIS, error) {
	if opts.Legacy && opts.TracePath != "" {
		return nil, fmt.Errorf("energymis: tracing requires the batch repair path (Legacy=false)")
	}
	d := &DynamicMIS{algo: algo, window: opts.Window, pipeline: opts.Pipeline, tracePath: opts.TracePath}
	params := dynamic.Params{
		Seed:      opts.Seed,
		Repair:    opts.Repair,
		B:         opts.B,
		Workers:   opts.Workers,
		SelfCheck: opts.SelfCheck,
		Legacy:    opts.Legacy,
	}
	if params.Repair == 0 {
		params.Repair = RepairLuby
	}
	if opts.TracePath != "" {
		tw, err := obs.CreateTrace(opts.TracePath, map[string]string{
			"algorithm": algoName,
			"mode":      "dynamic",
			"repair":    params.Repair.String(),
			"n":         strconv.Itoa(g.N()),
			"m":         strconv.Itoa(g.M()),
			"seed":      strconv.FormatUint(opts.Seed, 10),
			"workers":   strconv.Itoa(opts.Workers),
			"window":    strconv.Itoa(opts.Window),
		})
		if err != nil {
			return nil, err
		}
		d.tw = tw
		params.Tracer = tw
	}
	eng, err := dynamic.New(g, inSet, params)
	if err != nil {
		if d.tw != nil {
			d.tw.Close()
		}
		return nil, err
	}
	d.eng = eng
	return d, nil
}

// NewDynamic bootstraps a dynamic MIS on g by running the static algorithm
// algo, then maintains the set under updates. The bootstrap cost is
// recorded in DynamicStats' Bootstrap fields. When DynamicOptions.TracePath
// is set, call Close after the last update to finalize the trace.
func NewDynamic(g *Graph, algo Algorithm, opts DynamicOptions) (*DynamicMIS, error) {
	ca := algo.toCore()
	if ca == 0 {
		return nil, fmt.Errorf("energymis: unknown algorithm %d", int(algo))
	}
	copts := core.DefaultOptions()
	copts.Seed = opts.Seed
	copts.Workers = opts.Workers
	copts.B = opts.B
	res, err := core.Run(g, ca, copts)
	if err != nil {
		return nil, fmt.Errorf("energymis: dynamic bootstrap: %w", err)
	}
	d, err := newDynamicMIS(g, res.InSet, algo, ca.String(), opts)
	if err != nil {
		return nil, err
	}
	s := res.Summary
	d.eng.NoteBootstrap(dynamic.BootstrapCost{
		Rounds:       s.Rounds,
		AwakePerNode: res.AwakePerNode,
		Messages:     s.MsgsSent,
		MsgsDropped:  s.MsgsDropped,
		Bits:         s.BitsTotal,
		BitsMax:      s.BitsMax,
		Violations:   s.Violations,
	})
	if d.tw != nil {
		d.awakeBase = d.eng.AwakePerNode()
	}
	return d, nil
}

// NewDynamicFrom wraps an existing maximal independent set of g (for
// example GreedyMIS(g), or the InSet of a previous Run) in a dynamic
// engine without paying for a bootstrap run; the Bootstrap fields of
// DynamicStats stay zero. The set is validated; inSet is copied.
func NewDynamicFrom(g *Graph, inSet []bool, opts DynamicOptions) (*DynamicMIS, error) {
	return newDynamicMIS(g, inSet, 0, "external", opts)
}

// Algorithm returns the static algorithm used for the bootstrap (0 for
// NewDynamicFrom).
func (d *DynamicMIS) Algorithm() Algorithm { return d.algo }

// Window returns the ApplyBatch coalescing window (0 = whole slice).
func (d *DynamicMIS) Window() int { return d.window }

// InsertEdge inserts the edge {u, v} and repairs the set.
func (d *DynamicMIS) InsertEdge(u, v int) (BatchStats, error) { return d.eng.InsertEdge(u, v) }

// RemoveEdge removes the edge {u, v} and repairs the set.
func (d *DynamicMIS) RemoveEdge(u, v int) (BatchStats, error) { return d.eng.RemoveEdge(u, v) }

// InsertNode adds a node adjacent to neighbors and returns its slot index.
func (d *DynamicMIS) InsertNode(neighbors ...int) (int, BatchStats, error) {
	return d.eng.InsertNode(neighbors...)
}

// RemoveNode deletes node v and all its incident edges.
func (d *DynamicMIS) RemoveNode(v int) (BatchStats, error) { return d.eng.RemoveNode(v) }

// Apply applies a batch of updates atomically with a single repair pass;
// overlapping affected regions are re-elected together.
func (d *DynamicMIS) Apply(batch []Update) (BatchStats, error) { return d.eng.Apply(batch) }

// ApplyBatch applies a stream of updates through the coalescing window
// (DynamicOptions.Window): each window of updates is repaired in one
// batch, merging overlapping regions. With Window 0 (or a stream no
// longer than the window) it is one Apply call. With Pipeline set, each
// window's repair overlaps the next window's structural apply — same
// sets, counters, and traces, better wall clock on multi-core hosts. The
// returned BatchStats aggregate all windows; the set is fully repaired
// when ApplyBatch returns. On error, updates past the failed window are
// not applied.
func (d *DynamicMIS) ApplyBatch(updates []Update) (BatchStats, error) {
	if len(updates) == 0 {
		return BatchStats{}, nil
	}
	if d.window <= 0 || d.window >= len(updates) {
		return d.eng.Apply(updates)
	}
	if d.pipeline {
		return d.applyPipelined(updates)
	}
	var agg BatchStats
	for start := 0; start < len(updates); start += d.window {
		end := start + d.window
		if end > len(updates) {
			end = len(updates)
		}
		bs, err := d.eng.Apply(updates[start:end])
		agg.Add(bs)
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// applyPipelined streams updates through an overlapping batcher. The
// batcher is created per call — the pipeline's double-buffered windows
// live on the engine, so this allocates almost nothing — and is always
// drained before returning: ApplyBatch's contract is a fully repaired
// set, so repairs never stay in flight across calls.
func (d *DynamicMIS) applyPipelined(updates []Update) (BatchStats, error) {
	b := dynamic.NewPipelinedBatcher(d.eng, d.window)
	var agg BatchStats
	for i := range updates {
		bs, _, err := b.Add(updates[i])
		agg.Add(bs)
		if err != nil {
			b.Discard()
			return agg, err
		}
	}
	bs, err := b.Flush()
	agg.Add(bs)
	if err != nil {
		b.Discard()
	}
	return agg, err
}

// InSet returns a copy of the membership vector indexed by slot; dead
// slots are false.
func (d *DynamicMIS) InSet() []bool { return d.eng.InSet() }

// InMIS reports whether node v is currently in the maintained set.
func (d *DynamicMIS) InMIS(v int) bool { return d.eng.InMIS(v) }

// MISSize returns the current number of members.
func (d *DynamicMIS) MISSize() int {
	n := 0
	for _, in := range d.eng.InSet() {
		if in {
			n++
		}
	}
	return n
}

// N returns the number of node slots (alive and dead).
func (d *DynamicMIS) N() int { return d.eng.N() }

// AliveCount returns the number of live nodes.
func (d *DynamicMIS) AliveCount() int { return d.eng.AliveCount() }

// M returns the current number of edges.
func (d *DynamicMIS) M() int { return d.eng.M() }

// Alive reports whether slot v holds a live node.
func (d *DynamicMIS) Alive(v int) bool { return d.eng.Alive(v) }

// Degree returns the current degree of node v.
func (d *DynamicMIS) Degree(v int) int { return d.eng.Degree(v) }

// HasEdge reports whether {u, v} is currently an edge.
func (d *DynamicMIS) HasEdge(u, v int) bool { return d.eng.HasEdge(u, v) }

// Snapshot builds an immutable compacted graph of the live topology, the
// mapping from snapshot index to slot, and the membership vector aligned
// with the snapshot indexing.
func (d *DynamicMIS) Snapshot() (*Graph, []int, []bool) {
	g, orig := d.eng.Snapshot()
	ids := make([]int, len(orig))
	for i, v := range orig {
		ids[i] = int(v)
	}
	return g, ids, d.eng.SnapshotSet(orig)
}

// Stats returns the cumulative lifetime statistics.
func (d *DynamicMIS) Stats() DynamicStats { return d.eng.Stats() }

// DynamicPerf counts the batch engine's internal mechanics — word-sweep
// volume, row-pack snapshot reuse, and overlapped windows. Unlike
// DynamicStats these measure the implementation, not the distributed
// protocol, so they may change between modes that produce identical
// protocol counters.
type DynamicPerf = dynamic.Perf

// Perf returns cumulative engine-mechanics counters (see DynamicPerf).
func (d *DynamicMIS) Perf() DynamicPerf { return d.eng.Perf() }

// AwakePerNode returns cumulative per-slot awake rounds (bootstrap plus
// all repairs) — the per-node energy spend.
func (d *DynamicMIS) AwakePerNode() []int64 { return d.eng.AwakePerNode() }

// Check validates that the maintained set is a maximal independent set of
// the current topology.
func (d *DynamicMIS) Check() error { return d.eng.Check() }

// IsValidMIS reports whether the maintained set is currently a maximal
// independent set of the topology — the per-update invariant of the
// update contract (docs/DYNAMIC.md). Check returns the reason when it is
// not.
func (d *DynamicMIS) IsValidMIS() bool { return d.eng.Check() == nil }

// Close finalizes the run trace, writing a summary record computed from
// the engine's repair totals (so `mistrace check` can verify the streamed
// spans reproduce them) and closing the file. A no-op without TracePath;
// safe to call more than once. Updates applied after Close are not traced
// but are otherwise unaffected.
func (d *DynamicMIS) Close() error {
	if d.tw == nil {
		return nil
	}
	tw := d.tw
	d.tw = nil
	st := d.eng.Stats()
	awake := d.eng.AwakePerNode()
	for v, base := range d.awakeBase {
		if v < len(awake) {
			awake[v] -= base
		}
	}
	sort.Slice(awake, func(i, j int) bool { return awake[i] < awake[j] })
	perf := d.eng.Perf()
	sum := obs.SummaryStats{
		Rounds:      int(st.Rounds),
		AwakeTotal:  st.AwakeTotal,
		MsgsSent:    st.Messages,
		MsgsDropped: st.MsgsDropped,
		BitsTotal:   st.Bits,
		BitsMax:     st.BitsMax,
		Violations:  st.Violations,
		MISSize:     d.MISSize(),

		Components:     st.Components,
		MaxComponents:  st.MaxComponents,
		SweepWords:     perf.SweepWords,
		PackBuilds:     perf.PackBuilds,
		PackHits:       perf.PackHits,
		OverlapWindows: perf.OverlapWindows,
	}
	if n := len(awake); n > 0 {
		sum.MaxAwake = int(awake[n-1])
		sum.AvgAwake = float64(st.AwakeTotal) / float64(n)
		sum.P99Awake = int(awake[(n-1)*99/100])
	}
	tw.Summary(sum)
	if err := tw.Close(); err != nil {
		return fmt.Errorf("energymis: writing trace %s: %w", d.tracePath, err)
	}
	return nil
}

// Update-stream generators: deterministic workload traces for DynamicMIS.

// ChurnStream emits steps batches of `batch` uniform edge toggles each,
// starting from g's topology (insert when absent, remove when present).
func ChurnStream(g *Graph, steps, batch int, seed uint64) [][]Update {
	return stream.UniformChurn(g, steps, batch, seed)
}

// WindowStream emits steps batches over an n-node universe where one
// random edge arrives per step and expires after window steps.
func WindowStream(n, window, steps int, seed uint64) [][]Update {
	return stream.SlidingWindow(n, window, steps, seed)
}

// HubAttackStream emits steps adversarial batches that repeatedly kill and
// reintroduce the current maximum-degree node, maximizing repair regions.
func HubAttackStream(g *Graph, steps int, seed uint64) [][]Update {
	return stream.HubAttack(g, steps, seed)
}

// StreamUpdates counts the individual updates in a trace.
func StreamUpdates(trace [][]Update) int { return stream.Updates(trace) }

// FlattenStream concatenates a stream's batches into one update sequence,
// for feeding ApplyBatch (which re-windows it by DynamicOptions.Window).
func FlattenStream(trace [][]Update) []Update {
	out := make([]Update, 0, stream.Updates(trace))
	for _, b := range trace {
		out = append(out, b...)
	}
	return out
}
