package energymis

import (
	"fmt"

	"github.com/energymis/energymis/internal/core"
	"github.com/energymis/energymis/internal/dynamic"
	"github.com/energymis/energymis/internal/stream"
)

// Update is one topology change for a DynamicMIS. Build updates with
// InsEdge/DelEdge/InsNode/DelNode and apply them with Apply (batched) or
// the per-update convenience methods.
type Update = dynamic.Update

// UpdateOp identifies the kind of an Update.
type UpdateOp = dynamic.Op

// Update operations.
const (
	OpInsertEdge = dynamic.OpInsertEdge
	OpRemoveEdge = dynamic.OpRemoveEdge
	OpInsertNode = dynamic.OpInsertNode
	OpRemoveNode = dynamic.OpRemoveNode
)

// InsEdge returns an edge-insertion update.
func InsEdge(u, v int) Update { return dynamic.InsEdge(u, v) }

// DelEdge returns an edge-removal update.
func DelEdge(u, v int) Update { return dynamic.DelEdge(u, v) }

// InsNode returns a node-insertion update; the node is assigned the next
// slot index when applied.
func InsNode(neighbors ...int) Update { return dynamic.InsNode(neighbors...) }

// DelNode returns a node-removal update.
func DelNode(v int) Update { return dynamic.DelNode(v) }

// RepairAlgo selects the localized re-election protocol used by repairs.
type RepairAlgo = dynamic.RepairAlgo

// Repair protocols.
const (
	// RepairLuby re-elects with Luby's algorithm on the affected region.
	RepairLuby = dynamic.RepairLuby
	// RepairGhaffari uses the desire-level dynamics with a Luby finisher.
	RepairGhaffari = dynamic.RepairGhaffari
)

// BatchStats is the measured cost of one update batch.
type BatchStats = dynamic.BatchStats

// DynamicStats is the cumulative cost of a DynamicMIS lifetime.
type DynamicStats = dynamic.Stats

// DynamicOptions configures a DynamicMIS. The zero value is valid: seed 0,
// Luby repairs, sequential execution, default CONGEST budget.
type DynamicOptions struct {
	// Seed drives the bootstrap run and all repair randomness.
	Seed uint64
	// Workers > 1 runs bootstrap and re-elections on a worker pool.
	Workers int
	// B overrides the CONGEST budget in bits (0 = default).
	B int
	// Repair selects the re-election protocol (default RepairLuby).
	Repair RepairAlgo
	// SelfCheck validates the MIS invariant after every batch (O(n+m);
	// meant for tests).
	SelfCheck bool
}

// DynamicMIS maintains a maximal independent set under edge and node
// churn. An update wakes only the nodes in the 1–2 hop neighborhood of
// the change and repairs the set with a localized re-election, instead of
// re-running a static algorithm on the whole network; rounds, per-node
// awake rounds, and messages are accounted with the same semantics as
// static runs.
type DynamicMIS struct {
	eng  *dynamic.Engine
	algo Algorithm
}

// NewDynamic bootstraps a dynamic MIS on g by running the static algorithm
// algo, then maintains the set under updates. The bootstrap cost is
// recorded in DynamicStats' Bootstrap fields.
func NewDynamic(g *Graph, algo Algorithm, opts DynamicOptions) (*DynamicMIS, error) {
	ca := algo.toCore()
	if ca == 0 {
		return nil, fmt.Errorf("energymis: unknown algorithm %d", int(algo))
	}
	copts := core.DefaultOptions()
	copts.Seed = opts.Seed
	copts.Workers = opts.Workers
	copts.B = opts.B
	res, err := core.Run(g, ca, copts)
	if err != nil {
		return nil, fmt.Errorf("energymis: dynamic bootstrap: %w", err)
	}
	eng, err := dynamic.New(g, res.InSet, dynamic.Params{
		Seed:      opts.Seed,
		Repair:    opts.Repair,
		B:         opts.B,
		Workers:   opts.Workers,
		SelfCheck: opts.SelfCheck,
	})
	if err != nil {
		return nil, err
	}
	eng.NoteBootstrap(res.Summary.Rounds, res.AwakePerNode, res.Summary.MsgsSent)
	return &DynamicMIS{eng: eng, algo: algo}, nil
}

// Algorithm returns the static algorithm used for the bootstrap.
func (d *DynamicMIS) Algorithm() Algorithm { return d.algo }

// InsertEdge inserts the edge {u, v} and repairs the set.
func (d *DynamicMIS) InsertEdge(u, v int) (BatchStats, error) { return d.eng.InsertEdge(u, v) }

// RemoveEdge removes the edge {u, v} and repairs the set.
func (d *DynamicMIS) RemoveEdge(u, v int) (BatchStats, error) { return d.eng.RemoveEdge(u, v) }

// InsertNode adds a node adjacent to neighbors and returns its slot index.
func (d *DynamicMIS) InsertNode(neighbors ...int) (int, BatchStats, error) {
	return d.eng.InsertNode(neighbors...)
}

// RemoveNode deletes node v and all its incident edges.
func (d *DynamicMIS) RemoveNode(v int) (BatchStats, error) { return d.eng.RemoveNode(v) }

// Apply applies a batch of updates atomically with a single repair pass;
// overlapping affected regions are re-elected together.
func (d *DynamicMIS) Apply(batch []Update) (BatchStats, error) { return d.eng.Apply(batch) }

// InSet returns a copy of the membership vector indexed by slot; dead
// slots are false.
func (d *DynamicMIS) InSet() []bool { return d.eng.InSet() }

// InMIS reports whether node v is currently in the maintained set.
func (d *DynamicMIS) InMIS(v int) bool { return d.eng.InMIS(v) }

// MISSize returns the current number of members.
func (d *DynamicMIS) MISSize() int {
	n := 0
	for _, in := range d.eng.InSet() {
		if in {
			n++
		}
	}
	return n
}

// N returns the number of node slots (alive and dead).
func (d *DynamicMIS) N() int { return d.eng.N() }

// AliveCount returns the number of live nodes.
func (d *DynamicMIS) AliveCount() int { return d.eng.AliveCount() }

// M returns the current number of edges.
func (d *DynamicMIS) M() int { return d.eng.M() }

// Alive reports whether slot v holds a live node.
func (d *DynamicMIS) Alive(v int) bool { return d.eng.Alive(v) }

// Degree returns the current degree of node v.
func (d *DynamicMIS) Degree(v int) int { return d.eng.Degree(v) }

// HasEdge reports whether {u, v} is currently an edge.
func (d *DynamicMIS) HasEdge(u, v int) bool { return d.eng.HasEdge(u, v) }

// Snapshot builds an immutable compacted graph of the live topology, the
// mapping from snapshot index to slot, and the membership vector aligned
// with the snapshot indexing.
func (d *DynamicMIS) Snapshot() (*Graph, []int, []bool) {
	g, orig := d.eng.Snapshot()
	ids := make([]int, len(orig))
	for i, v := range orig {
		ids[i] = int(v)
	}
	return g, ids, d.eng.SnapshotSet(orig)
}

// Stats returns the cumulative lifetime statistics.
func (d *DynamicMIS) Stats() DynamicStats { return d.eng.Stats() }

// AwakePerNode returns cumulative per-slot awake rounds (bootstrap plus
// all repairs) — the per-node energy spend.
func (d *DynamicMIS) AwakePerNode() []int64 { return d.eng.AwakePerNode() }

// Check validates that the maintained set is a maximal independent set of
// the current topology.
func (d *DynamicMIS) Check() error { return d.eng.Check() }

// Update-stream generators: deterministic workload traces for DynamicMIS.

// ChurnStream emits steps batches of `batch` uniform edge toggles each,
// starting from g's topology (insert when absent, remove when present).
func ChurnStream(g *Graph, steps, batch int, seed uint64) [][]Update {
	return stream.UniformChurn(g, steps, batch, seed)
}

// WindowStream emits steps batches over an n-node universe where one
// random edge arrives per step and expires after window steps.
func WindowStream(n, window, steps int, seed uint64) [][]Update {
	return stream.SlidingWindow(n, window, steps, seed)
}

// HubAttackStream emits steps adversarial batches that repeatedly kill and
// reintroduce the current maximum-degree node, maximizing repair regions.
func HubAttackStream(g *Graph, steps int, seed uint64) [][]Update {
	return stream.HubAttack(g, steps, seed)
}

// StreamUpdates counts the individual updates in a trace.
func StreamUpdates(trace [][]Update) int { return stream.Updates(trace) }
