package energymis

// Determinism regression tests for the executors: the parallel engine must
// produce byte-identical outputs and identical complexity counters for any
// worker count, on static runs and under dynamic churn. Run in CI under
// -race (the parallel routing phase is lock-free by ownership; races here
// are correctness bugs, not just perf bugs).

import (
	"bytes"
	"testing"

	"github.com/energymis/energymis/internal/luby"
	"github.com/energymis/energymis/internal/sim"
)

var determinismWorkers = []int{1, 2, 8}

func insetBytes(inSet []bool) []byte {
	b := make([]byte, len(inSet))
	for i, in := range inSet {
		if in {
			b[i] = 1
		}
	}
	return b
}

func TestStaticExecutorDeterminism(t *testing.T) {
	g := GNP(500, 10.0/500, 11)
	for _, algo := range []Algorithm{Luby, Algorithm1, Algorithm2} {
		var ref *Result
		var refSet []byte
		for _, w := range determinismWorkers {
			res, err := RunVerified(g, algo, Options{Seed: 5, Workers: w})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, w, err)
			}
			set := insetBytes(res.InSet)
			if ref == nil {
				ref, refSet = res, set
				continue
			}
			if !bytes.Equal(set, refSet) {
				t.Fatalf("%v workers=%d: MIS differs from sequential", algo, w)
			}
			if res.Rounds != ref.Rounds || res.MaxAwake != ref.MaxAwake ||
				res.AvgAwake != ref.AvgAwake || res.AwakeTotal != ref.AwakeTotal ||
				res.Messages != ref.Messages || res.MessagesDropped != ref.MessagesDropped ||
				res.BitsTotal != ref.BitsTotal || res.BitsMax != ref.BitsMax {
				t.Fatalf("%v workers=%d: counters differ\n seq: %+v\n par: %+v", algo, w, ref, res)
			}
			for v := range res.AwakePerNode {
				if res.AwakePerNode[v] != ref.AwakePerNode[v] {
					t.Fatalf("%v workers=%d: awake[%d] = %d, sequential %d",
						algo, w, v, res.AwakePerNode[v], ref.AwakePerNode[v])
				}
			}
		}
	}
}

// TestBatchVsLegacyLubyDeterminism cross-checks the two runtimes: the
// struct-of-arrays Luby on the batch engine (what energymis.Luby runs)
// against the per-node Machine on the per-node engine, for every worker
// count. Output sets, all counters, and per-node energy must be
// byte-identical — the batch runtime is an execution strategy, not an
// algorithm change.
func TestBatchVsLegacyLubyDeterminism(t *testing.T) {
	for _, n := range []int{300, 1000} {
		g := GNP(n, 10.0/float64(n), uint64(n)+17)
		refSet, refRes, err := luby.RunLegacy(g, sim.Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range determinismWorkers {
			set, res, err := luby.Run(g, sim.Config{Seed: 9, Workers: w})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if !bytes.Equal(insetBytes(set), insetBytes(refSet)) {
				t.Fatalf("n=%d workers=%d: batch MIS differs from legacy", n, w)
			}
			if res.Rounds != refRes.Rounds || res.MsgsSent != refRes.MsgsSent ||
				res.MsgsDropped != refRes.MsgsDropped || res.BitsTotal != refRes.BitsTotal ||
				res.BitsMax != refRes.BitsMax || res.Violations != refRes.Violations {
				t.Fatalf("n=%d workers=%d: counters differ\n legacy: %+v\n batch:  %+v",
					n, w, refRes, res)
			}
			for v := range res.Awake {
				if res.Awake[v] != refRes.Awake[v] {
					t.Fatalf("n=%d workers=%d: awake[%d] = %d, legacy %d",
						n, w, v, res.Awake[v], refRes.Awake[v])
				}
			}
		}
	}
}

func TestDynamicExecutorDeterminism(t *testing.T) {
	g := GNP(400, 8.0/400, 7)
	trace := ChurnStream(g, 60, 2, 13)
	var refSet []byte
	var ref DynamicStats
	for _, w := range determinismWorkers {
		d, err := NewDynamic(g, Luby, DynamicOptions{Seed: 3, Workers: w, SelfCheck: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for _, batch := range trace {
			if _, err := d.Apply(batch); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
		}
		set := insetBytes(d.InSet())
		st := d.Stats()
		if refSet == nil {
			refSet, ref = set, st
			continue
		}
		if !bytes.Equal(set, refSet) {
			t.Fatalf("workers=%d: maintained MIS differs from sequential", w)
		}
		if st != ref {
			t.Fatalf("workers=%d: stats differ\n seq: %+v\n par: %+v", w, ref, st)
		}
	}
}
